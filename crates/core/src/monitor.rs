//! The per-version monitors: event streaming between leader and followers
//! (§3.3 of the paper).
//!
//! Every version runs with a monitor interposed on its system calls.  The
//! **leader**'s monitor executes each call against the kernel, transfers any
//! newly created descriptors to the followers over their data channels, and
//! publishes an event (with out-of-line payloads in the shared memory pool)
//! into the ring buffer.  A **follower**'s monitor replays those events: it
//! returns the leader's results to its own copy of the application without
//! touching the outside world, except for process-local calls which it
//! executes itself.  When a follower's next call does not match the next
//! event, the BPF rewrite rules decide whether the divergence is allowed
//! (§3.4); when the coordinator promotes a follower after a leader crash, the
//! monitor swaps its system call table and takes over as leader (§5.1).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::Mutex;

use varan_kernel::process::Pid;
use varan_kernel::sim::SimPoint;
use varan_kernel::syscall::{SyscallOutcome, SyscallRequest};
use varan_kernel::time::{ClockSource, SimInstant};
use varan_kernel::{Errno, Kernel};
use varan_ring::{
    ClockOrdering, Consumer, Event, EventJournal, JournalRecord, PoolAllocator, Producer,
    SharedPtr, SharedRegion,
};

use crate::context::{
    FollowerLink, HandoverTicket, LogDistanceSampler, RingSet, SharedFollowers, VersionContext,
};
use crate::costs::MonitorCosts;
use crate::program::SyscallInterface;
use crate::rules::{RuleAction, ScopedRules};
use crate::stats::VersionCounters;
use crate::table::{HandlerAction, SyscallTable};

/// How long a follower waits for the next event before re-checking its
/// promotion and kill flags.
const FOLLOWER_POLL: Duration = Duration::from_millis(2);

/// Journal records replayed per batch by a catching-up runtime joiner.
const REPLAY_BATCH: usize = 1024;

/// A pool of retired main-ring consumer handles shared with the fleet: slots
/// released by promoted or retired followers go back here for future
/// joiners.
pub(crate) type SlotPool = Arc<Mutex<Vec<Consumer<Event>>>>;

/// How long a follower facing a fatal divergence verdict waits for a
/// possible promotion before killing itself. A divergence at a crashed
/// leader's final events races with the coordinator's promotion decision;
/// the coordinator adjudicates within microseconds, so this bound is only
/// ever paid in full by genuinely divergent followers of a healthy leader
/// (their kill is delayed, never averted). Sized generously so even a
/// descheduled coordinator on a loaded CI machine wins the race.  Measured
/// against the kernel's [`ClockSource`]: under simulated time the grace is
/// 200 *virtual* milliseconds, so a 10,000-run sweep never sleeps through
/// it for real.
const PROMOTION_GRACE: Duration = Duration::from_millis(200);

/// The leader-side recording engine, shared by the leader's monitor and by a
/// follower's monitor after promotion.
#[derive(Debug)]
pub(crate) struct LeaderCore {
    kernel: Kernel,
    pid: Pid,
    tid: u32,
    producer: Producer<Event>,
    ring_capacity: u64,
    pool: Arc<PoolAllocator>,
    followers: SharedFollowers,
    rings: Arc<RingSet>,
    costs: MonitorCosts,
    sampler: Arc<LogDistanceSampler>,
    /// Payload regions attached to recent events; freed once every follower's
    /// reclamation horizon (lap counter for lap-gated replay consumers, the
    /// gating sequence otherwise) has passed them — see
    /// [`LeaderCore::retire_payloads`].
    payload_window: VecDeque<(u64, SharedRegion)>,
    /// The fleet's spill journal, when elastic membership is enabled.  Every
    /// main-tuple event is appended here **before** it is published to the
    /// ring: journal coverage is therefore always a superset of the
    /// published stream, which is what makes a joiner's
    /// journal-replay→ring handover race-free (see `varan_ring::journal`
    /// and `Consumer::resume_at`).
    journal: Option<Arc<EventJournal>>,
    /// Telemetry registry (shard lane = the ring this core publishes to).
    obs: Arc<varan_obs::Registry>,
    /// The telemetry shard lane: the clamped ring index.
    shard: usize,
    /// Captures since the last sampled latency measurement.
    capture_ticks: u64,
}

impl LeaderCore {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        kernel: Kernel,
        pid: Pid,
        tid: u32,
        rings: Arc<RingSet>,
        pool: Arc<PoolAllocator>,
        followers: SharedFollowers,
        costs: MonitorCosts,
        sampler: Arc<LogDistanceSampler>,
        journal: Option<Arc<EventJournal>>,
        obs: Arc<varan_obs::Registry>,
    ) -> Self {
        let ring = rings.ring(tid as usize);
        // Journal coverage must be a superset of ring 0's stream (the
        // joiner handover depends on it), so the gate is ring *identity*,
        // not the raw tid: with a single provisioned tuple every thread's
        // publishes clamp to ring 0 and must all be spilled.
        let shard = (tid as usize).min(rings.tuples().saturating_sub(1));
        let feeds_main_ring = shard == 0;
        let journal = if feeds_main_ring { journal } else { None };
        LeaderCore {
            kernel,
            pid,
            tid,
            producer: ring.producer(),
            ring_capacity: ring.capacity() as u64,
            pool: Arc::clone(&pool),
            followers,
            rings,
            costs,
            sampler,
            payload_window: VecDeque::new(),
            journal,
            obs,
            shard,
            capture_ticks: 0,
        }
    }

    /// Executes `request` against the kernel, streams it to the followers and
    /// returns the outcome, updating `counters`.
    pub(crate) fn execute_and_record(
        &mut self,
        request: &SyscallRequest,
        clock: &varan_ring::VariantClock,
        counters: &VersionCounters,
    ) -> SyscallOutcome {
        let (outcome, event, shared, overhead) = self.capture(request, clock, counters);
        let sequence = self.producer.publish_signed(event, event.signature());
        if let Some(region) = shared {
            self.payload_window.push_back((sequence, region));
        }
        self.retire_payloads();
        self.sample_backlog();
        SyscallOutcome {
            cost: outcome.cost + overhead,
            ..outcome
        }
    }

    /// Executes `requests` back to back and streams them as **one** ring
    /// claim ([`Producer::publish_batch`]): one gating check and one cursor
    /// store amortised over the whole batch.  Everything else — descriptor
    /// transfer, pool copies, the journal-append-before-publish ordering,
    /// per-event cost accounting — is identical to the one-at-a-time path,
    /// so followers and journal replayers cannot tell the difference.
    ///
    /// Batches larger than the ring are split into ring-sized claims (a
    /// single claim beyond capacity could never fit in flight at once).
    pub(crate) fn execute_and_record_batch(
        &mut self,
        requests: &[SyscallRequest],
        clock: &varan_ring::VariantClock,
        counters: &VersionCounters,
    ) -> Vec<SyscallOutcome> {
        let mut outcomes = Vec::with_capacity(requests.len());
        for chunk in requests.chunks((self.ring_capacity as usize).max(1)) {
            let mut events = Vec::with_capacity(chunk.len());
            let mut sigs = Vec::with_capacity(chunk.len());
            let mut regions = Vec::with_capacity(chunk.len());
            for request in chunk {
                let (outcome, event, shared, overhead) =
                    self.capture(request, clock, counters);
                sigs.push(event.signature());
                events.push(event);
                regions.push(shared);
                outcomes.push(SyscallOutcome {
                    cost: outcome.cost + overhead,
                    ..outcome
                });
            }
            if let Some(first) = self.producer.publish_batch_signed(&events, &sigs) {
                for (i, region) in regions.into_iter().enumerate() {
                    if let Some(region) = region {
                        self.payload_window.push_back((first + i as u64, region));
                    }
                }
                self.retire_payloads();
            }
        }
        self.sample_backlog();
        outcomes
    }

    /// Executes `request` against the kernel and prepares (but does not
    /// publish) its stream event: descriptor transfer, payload pool copy,
    /// clock stamp and journal append all happen here, in that order.
    /// Returns the raw outcome, the ready-to-publish event, the payload
    /// region to retire once the event leaves the ring, and the accounted
    /// monitor overhead.
    fn capture(
        &mut self,
        request: &SyscallRequest,
        clock: &varan_ring::VariantClock,
        counters: &VersionCounters,
    ) -> (SyscallOutcome, Event, Option<SharedRegion>, u64) {
        // Telemetry: one relaxed add per capture; the latency stopwatch is
        // sampled (1 in CAPTURE_SAMPLE_EVERY) so its own cost stays out of
        // the hot path it measures.
        let capture_started = if varan_obs::enabled() {
            self.obs.metrics.events_published.add(self.shard, 1);
            self.capture_ticks = self.capture_ticks.wrapping_add(1);
            (self.capture_ticks % varan_obs::CAPTURE_SAMPLE_EVERY == 0)
                .then(std::time::Instant::now)
        } else {
            None
        };
        let outcome = self.kernel.syscall(self.pid, request);
        VersionCounters::add(&counters.cycles, outcome.cost);

        // 1. Transfer any newly created descriptor to every live follower
        //    over its data channel, before the event becomes visible.
        let mut fd_transfers = 0usize;
        if let Some(fd_info) = outcome.fd {
            let followers = self.followers.read();
            for link in followers.iter().filter(|link| link.is_alive()) {
                // Upgrade members mirror the stream's descriptor numbering
                // (identity placement, like a checkpoint restore), so the
                // numbers their replayed application holds survive a
                // promotion; launched followers keep the historical
                // lowest-free placement plus translation.
                let transferred = if link.identity_fds {
                    self.kernel
                        .transfer_fd_identity(self.pid, fd_info.fd, link.pid)
                } else {
                    self.kernel.transfer_fd(self.pid, fd_info.fd, link.pid)
                };
                if let Ok(local_fd) = transferred {
                    link.channel.send_fd(fd_info.fd, local_fd);
                    fd_transfers += 1;
                }
            }
            VersionCounters::add(&counters.fd_transfers, 1);
        }

        // 2. Copy any out-of-line payload into the shared memory pool.
        let payload_len = outcome.payload_len();
        let shared = match &outcome.data {
            Some(data) if !data.is_empty() => match self.pool.alloc_and_write(data) {
                Ok(region) => Some(region),
                Err(_) => None, // pool exhausted: fall back to no payload reuse
            },
            _ => None,
        };
        let shared_ptr = shared.map(|region| region.ptr()).unwrap_or(SharedPtr::NULL);

        // 3. Publish the event, stamped with the variant clock.  With the
        //    fleet enabled the event is spilled to the journal *first*:
        //    anything visible in the ring is then guaranteed to be readable
        //    from the journal too, so a joining follower that switches from
        //    journal replay to ring consumption can never fall into a gap.
        let timestamp = clock.tick();
        let event = Event::syscall(request.sysno.number(), &request.args, outcome.result)
            .with_tid(self.tid)
            .with_clock(timestamp)
            .with_shared(shared_ptr);
        if let Some(journal) = &self.journal {
            // The journal record mirrors what the *ring* event advertises:
            // when the pool was exhausted the event carries no payload
            // handle, so the journal must not carry the payload either —
            // otherwise a journal-replaying joiner and a live follower
            // would disagree about the very same event.
            let payload = if event.has_payload() {
                outcome.data.clone()
            } else {
                None
            };
            let mut record = JournalRecord::from_event(&event, payload);
            record.args = request.args;
            // An append failure (disk full) only degrades elasticity —
            // running followers are unaffected — so it must not take
            // down the leader's syscall path.
            let _ = journal.append(record);
        }

        // 4. Account the monitor overhead (the publish itself is the
        //    caller's job — single or batched).
        let overhead = self.costs.leader_overhead(
            request.sysno.is_virtual(),
            payload_len,
            if fd_transfers > 0 { 1 } else { 0 },
        );
        VersionCounters::add(&counters.monitor_cycles, overhead);
        VersionCounters::add(&counters.events, 1);
        VersionCounters::add(&counters.syscalls, 1);
        self.kernel.clock().advance(overhead);
        if let Some(started) = capture_started {
            self.obs
                .metrics
                .syscall_capture_nanos
                .record(started.elapsed().as_nanos() as u64);
        }

        (outcome, event, shared, overhead)
    }

    /// Frees payload regions below the reclamation horizon: the minimum, over
    /// every active consumer, of its lap counter (replay completion, for
    /// lap-gated replay consumers) or its gating sequence (plain consumers).
    /// A region is only recycled once every registered consumer has *passed*
    /// it — not merely once the ring has lapped, as the PR 2 copy-out
    /// discipline assumed — which is what lets followers replay directly
    /// against pool-resident payloads.
    ///
    /// Uses the producer's cached horizon and refreshes it at most once per
    /// call (only when the cache blocks the oldest region), mirroring the
    /// cached-gate discipline of the publish path.
    fn retire_payloads(&mut self) {
        let mut horizon = self.producer.reclaim_horizon();
        let mut refreshed = false;
        while let Some(&(seq, region)) = self.payload_window.front() {
            if seq >= horizon {
                if refreshed {
                    break;
                }
                horizon = self.producer.refresh_reclaim_horizon();
                refreshed = true;
                if seq >= horizon {
                    break;
                }
            }
            let _ = self.pool.free(region);
            self.payload_window.pop_front();
        }
    }

    /// Samples the maximum follower backlog for the log-distance figure.
    ///
    /// The sample is the producer's own lag estimate — `published` minus its
    /// cached gating sequence, two relaxed loads — instead of a scan of
    /// every consumer cursor under the follower lock on each publish.  The
    /// cached gate refreshes lazily (on the publish slow path), so the
    /// estimate is an upper bound on the true maximum backlog; the exact
    /// per-slot scan (`RingSet::max_backlog`) remains in use off the hot
    /// path, where failover ranks promotion candidates.
    fn sample_backlog(&self) {
        let lag = self.producer.lag_estimate();
        self.sampler.observe(lag);
        if varan_obs::enabled() {
            self.obs.metrics.follower_lag.set(self.shard, lag);
        }
    }

    /// A fresh core for the same version on thread `tid`: shares every
    /// cross-version structure (rings, pool, followers, sampler, journal)
    /// and gets its own producer and payload window.
    pub(crate) fn fork_with_tid(&self, tid: u32) -> LeaderCore {
        LeaderCore::new(
            self.kernel.clone(),
            self.pid,
            tid,
            Arc::clone(&self.rings),
            Arc::clone(&self.pool),
            Arc::clone(&self.followers),
            self.costs.clone(),
            Arc::clone(&self.sampler),
            self.journal.clone(),
            Arc::clone(&self.obs),
        )
    }

    pub(crate) fn execute_locally(
        &mut self,
        request: &SyscallRequest,
        counters: &VersionCounters,
    ) -> SyscallOutcome {
        let outcome = self.kernel.syscall(self.pid, request);
        VersionCounters::add(&counters.cycles, outcome.cost);
        VersionCounters::add(&counters.local_calls, 1);
        VersionCounters::add(&counters.syscalls, 1);
        VersionCounters::add(
            &counters.monitor_cycles,
            self.costs.intercept_cost(request.sysno.is_virtual()),
        );
        outcome
    }
}

/// Executes a planned handover on the current leader's thread (the heart of
/// the upgrade pipeline's *promote* stage, see `crate::upgrade`): the leader
/// stops publishing by construction (it is running this instead of a system
/// call), re-activates the granted ring slot at exactly the next sequence —
/// so it will replay precisely the events it did not publish itself — links
/// itself back into the follower set so the successor's descriptor transfers
/// reach it, switches the current-leader register and only then releases the
/// successor.  Returns the activated consumer plus the rule registry and
/// slot pool carried by the ticket.
///
/// Ordering matters: the consumer gate must exist *before* the successor is
/// allowed to publish (otherwise the demoted leader could miss events), and
/// the successor's old follower link must be dead before it starts
/// transferring descriptors (so it never transfers to itself).
fn demote_to_follower(
    context: &VersionContext,
    ring: &Arc<varan_ring::RingBuffer<Event>>,
    followers: &SharedFollowers,
    ticket: HandoverTicket,
) -> Option<(Consumer<Event>, Arc<ScopedRules>, SlotPool)> {
    let HandoverTicket {
        mut consumer,
        successor_index,
        successor_promoted,
        current_leader,
        rules,
        slot_pool,
    } = ticket;
    // The successor may have died between the orchestrator's last liveness
    // check and this pickup; yielding leadership to a corpse would leave
    // the execution leaderless with a falsely successful report.  Refuse
    // the ticket instead: the leader keeps leading, the orchestrator sees
    // `Aborted` and rolls the hop back.
    let successor_alive = followers
        .read()
        .iter()
        .any(|link| link.index == successor_index && link.is_alive());
    if !successor_alive {
        consumer.unsubscribe();
        slot_pool.lock().push(consumer);
        context.handover.abort();
        return None;
    }
    consumer.resume_at(ring.published());
    {
        let mut links = followers.write();
        for link in links.iter() {
            if link.index == successor_index {
                link.discard();
            }
        }
        links.push(FollowerLink {
            index: context.index,
            pid: context.pid,
            channel: context.channel.clone(),
            alive: Arc::new(AtomicBool::new(true)),
            slot: consumer.index(),
            catching_up: Arc::new(AtomicBool::new(false)),
            promotable: true,
            // The retiree's table *is* the stream numbering; keep it that
            // way so a rollback re-promotion needs no renumbering.
            identity_fds: true,
        });
    }
    current_leader.store(successor_index, Ordering::Release);
    successor_promoted.store(true, Ordering::Release);
    context.obs.trace(
        "upgrade.demote",
        context.index as u64,
        successor_index as u64,
    );
    Some((consumer, rules, slot_pool))
}

/// The monitor interposed on the leader version.
#[derive(Debug)]
pub struct LeaderMonitor {
    core: LeaderCore,
    context: VersionContext,
    table: SyscallTable,
    next_tid: Arc<std::sync::atomic::AtomicU32>,
    /// Set once this leader executed a planned handover: from then on every
    /// call is dispatched through the embedded follower monitor (the
    /// retired leader keeps running, replaying its successor's stream from
    /// the spare slot granted by the handover ticket).
    demoted: Option<Box<FollowerMonitor>>,
}

impl LeaderMonitor {
    pub(crate) fn new(core: LeaderCore, context: VersionContext) -> Self {
        LeaderMonitor {
            core,
            context,
            table: SyscallTable::leader(),
            next_tid: Arc::new(std::sync::atomic::AtomicU32::new(1)),
            demoted: None,
        }
    }

    /// The version context this monitor serves.
    #[must_use]
    pub fn context(&self) -> &VersionContext {
        &self.context
    }

    /// The system call table currently installed.
    #[must_use]
    pub fn table(&self) -> &SyscallTable {
        &self.table
    }

    /// Picks up a posted handover ticket and retires this leader into a
    /// follower: subsequent calls replay the successor's stream.  Only the
    /// main-thread monitor (tuple 0) executes handovers; the upgrade
    /// pipeline requires single-threaded application versions.
    fn execute_handover(&mut self, ticket: HandoverTicket) {
        let followers = Arc::clone(&self.core.followers);
        let ring = Arc::clone(self.core.rings.ring(0));
        let Some((consumer, rules, slot_pool)) =
            demote_to_follower(&self.context, &ring, &followers, ticket)
        else {
            return; // dead successor: the handover was aborted, keep leading
        };
        let promoted_core = self.core.fork_with_tid(self.core.tid);
        let follower = FollowerMonitor::with_consumer(
            self.core.kernel.clone(),
            self.context.clone(),
            Arc::clone(&self.core.rings),
            consumer,
            Arc::clone(&self.core.pool),
            rules,
            self.core.costs.clone(),
            promoted_core,
            Some(slot_pool),
            None,
            None,
        );
        self.demoted = Some(Box::new(follower));
        self.context.handover.complete();
    }
}

impl SyscallInterface for LeaderMonitor {
    fn syscall(&mut self, request: &SyscallRequest) -> SyscallOutcome {
        if self.demoted.is_none() && self.core.tid == 0 && self.context.handover.is_requested() {
            if let Some(ticket) = self.context.handover.begin() {
                self.execute_handover(ticket);
            }
        }
        if let Some(follower) = self.demoted.as_mut() {
            return follower.syscall(request);
        }
        match self.table.action(request.sysno) {
            HandlerAction::ExecuteLocally => {
                self.core.execute_locally(request, &self.context.counters)
            }
            HandlerAction::Deny => {
                SyscallOutcome::err(request.sysno, Errno::ENOSYS, self.core.costs.intercept)
            }
            _ => self
                .core
                .execute_and_record(request, &self.context.clock, &self.context.counters),
        }
    }

    fn syscall_batch(&mut self, requests: &[SyscallRequest]) -> Vec<SyscallOutcome> {
        if self.demoted.is_none() && self.core.tid == 0 && self.context.handover.is_requested() {
            if let Some(ticket) = self.context.handover.begin() {
                self.execute_handover(ticket);
            }
        }
        if let Some(follower) = self.demoted.as_mut() {
            return follower.syscall_batch(requests);
        }
        // Only plain record-path calls batch into a single ring reservation;
        // a local or denied call in the middle falls back to the sequential
        // path to preserve program order.
        let all_recorded = requests.iter().all(|request| {
            !matches!(
                self.table.action(request.sysno),
                HandlerAction::ExecuteLocally | HandlerAction::Deny
            )
        });
        if all_recorded {
            self.core
                .execute_and_record_batch(requests, &self.context.clock, &self.context.counters)
        } else {
            requests.iter().map(|request| self.syscall(request)).collect()
        }
    }

    fn spawn_thread(&mut self) -> Box<dyn SyscallInterface> {
        if let Some(follower) = self.demoted.as_mut() {
            return follower.spawn_thread();
        }
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        let core = self.core.fork_with_tid(tid);
        Box::new(LeaderMonitor {
            core,
            context: self.context.clone(),
            table: self.table.clone(),
            next_tid: Arc::clone(&self.next_tid),
            demoted: None,
        })
    }

    fn cpu_work(&mut self, cycles: u64) {
        VersionCounters::add(&self.context.counters.cycles, cycles);
        if self.demoted.is_none() {
            self.core.kernel.clock().advance(cycles);
        }
    }
}

/// Where a staged event's out-of-line payload lives until replay delivers it.
///
/// The steady-state path is [`StagedPayload::Pooled`]: the payload stays in
/// the shared pool and the follower reads it only when the application asks
/// for the data, under lap-based reclamation (the leader may not recycle the
/// region until this queue's lap counter passes the event — see
/// [`Consumer::enable_lap_gate`]).  [`StagedPayload::Owned`] is the PR 2
/// copy-out fallback, kept for replay sources where a pool borrow is unsound
/// or unavailable: surplus sibling threads sharing a clamped ring (their
/// replay can stall arbitrarily long on the variant clock, and a promotion
/// could release the queue's consumer under them) and journal catch-up
/// (journal records carry their payload inline; the pool region may be long
/// recycled).
#[derive(Debug, Clone)]
enum StagedPayload {
    /// The event carried no out-of-line payload.
    None,
    /// Payload still resident in the shared pool, protected by the lap gate.
    Pooled(SharedPtr),
    /// Payload copied out of the pool (or journal) at staging time.
    Owned(Vec<u8>),
}

impl StagedPayload {
    fn len(&self) -> usize {
        match self {
            StagedPayload::None => 0,
            StagedPayload::Pooled(ptr) => ptr.len() as usize,
            StagedPayload::Owned(data) => data.len(),
        }
    }
}

/// An event taken out of the ring together with its out-of-line payload.
///
/// Draining a batch advances the gating sequence past the event, which frees
/// the *slot* for the producer — but under lap-based reclamation the payload
/// region stays pinned until the queue's lap counter passes `origin`, so the
/// payload does not need to be copied at drain time.
#[derive(Debug, Clone)]
struct StagedEvent {
    event: Event,
    payload: StagedPayload,
    /// The ring sequence this event was drained at; `None` for events staged
    /// from the journal (which are outside the ring's lap/certification
    /// discipline).
    origin: Option<u64>,
}

/// One ring event retained for batch-hash certification: the leader's
/// published signature lane value next to the follower's own signature,
/// filled in at replay.  Folded and compared once per window
/// ([`certify_window`]); individual entries are only revisited to localize a
/// fold mismatch.
#[derive(Debug, Clone, Copy)]
struct WindowEntry {
    seq: u64,
    leader_event: Event,
    leader_sig: u64,
    /// The signature the follower computed from its *own* request when it
    /// replayed this event; `None` until replayed (or never, if a rewrite
    /// rule consumed the event — the window is then dirty).
    follower_sig: Option<u64>,
    follower_event: Event,
}

/// Replay state shared by every follower thread whose (clamped) thread tuple
/// maps to the same ring: one exclusive ring consumer plus per-leader-thread
/// queues of staged events.
///
/// When the application spawns more threads than thread tuples were
/// provisioned, the leader clamps the surplus threads onto the last ring
/// ([`RingSet::ring`]) and keeps publishing, with each event tagged by its
/// raw tid.  The follower side must map threads identically — but a ring
/// consumer slot can only be claimed once, so the surplus follower threads
/// *share* the clamped ring's consumer through this queue and pick out the
/// events tagged with their own tid.
#[derive(Debug)]
struct TupleQueue {
    /// The ring consumer; `None` once released (promotion or retirement).
    consumer: Option<Consumer<Event>>,
    /// Events drained from the ring awaiting replay (payloads pool-resident
    /// on the zero-copy path), keyed by the leader thread that published
    /// them.  Replayed front to back per thread; cross-thread order is
    /// enforced by the variant clock.
    staged: HashMap<u32, VecDeque<StagedEvent>>,
    /// Scratch buffer reused by batch refills.
    scratch: Vec<Event>,
    /// Monitors currently sharing this queue; maintained under the queue
    /// lock so exactly one dropper observes the count reach zero and
    /// releases the consumer (an `Arc::strong_count` check would race when
    /// sibling threads exit concurrently).
    owners: usize,
    /// The largest batch one drain round may peek: half the ring capacity,
    /// so a laggard follower never pins more than half a lap of slots (and,
    /// under lap-based reclamation, payload regions) in one gulp.
    max_drain: usize,
    /// Ring events retained for batch-hash certification, contiguous by
    /// sequence (drain order); cleared at every window boundary.
    window: VecDeque<WindowEntry>,
    /// Ring-staged events drained but not yet disposed of (replayed, or
    /// consumed by a rewrite rule).  The lap counter advances — and the
    /// window certifies — when this reaches zero.
    outstanding: usize,
    /// The ring sequence up to which events have been drained (exclusive);
    /// the lap counter's target at the next quiescent point.
    drained_through: u64,
    /// Set when a rewrite rule consumed a window event (divergence already
    /// adjudicated per-event): the fold would compare mismatched pairings,
    /// so certification is skipped for that window.
    window_dirty: bool,
}

impl TupleQueue {
    fn with_consumer(mut consumer: Consumer<Event>, ring_capacity: usize) -> Self {
        // Every replay consumer is lap-gated: the gating sequence is free to
        // advance at drain time (unblocking the producer's slot reuse) while
        // the lap counter keeps the batch's payload regions pinned in the
        // pool until replay completes.
        consumer.enable_lap_gate();
        TupleQueue {
            consumer: Some(consumer),
            staged: HashMap::new(),
            scratch: Vec::new(),
            owners: 1,
            max_drain: (ring_capacity / 2).max(1),
            window: VecDeque::new(),
            outstanding: 0,
            drained_through: 0,
            window_dirty: false,
        }
    }
}

/// One bounded drain round: peek up to half a lap, stage every event, read
/// the leader's signature lane into the certification window, advance the
/// gating sequence once.  Returns the number of events staged.
///
/// The zero-copy path (sole queue owner) stages payloads as
/// [`StagedPayload::Pooled`]: no bytes leave the pool at drain time, and the
/// lap counter — which only advances at the next quiescent point
/// ([`finish_window_entry`]) — keeps the regions pinned.  With surplus
/// sibling threads sharing the queue (`owners > 1`) payloads are copied out
/// ([`StagedPayload::Owned`]), because a sibling's replay can stall
/// arbitrarily long on the variant clock and a promotion may release the
/// consumer while its events are still staged.
///
/// Reused buffers (`scratch`, the per-tid deques, the window) make the
/// steady state allocation-free; the counting-allocator test in the module
/// tests asserts this.
fn refill_ring_queue(
    queue: &mut TupleQueue,
    pool: &PoolAllocator,
    metrics: &varan_obs::Metrics,
) -> usize {
    let queue = &mut *queue;
    let mut scratch = std::mem::take(&mut queue.scratch);
    scratch.clear();
    let zero_copy = queue.owners == 1;
    let Some(consumer) = queue.consumer.as_mut() else {
        queue.scratch = scratch;
        return 0;
    };
    let base = consumer.next_sequence();
    let peeked = consumer.peek_batch(&mut scratch, queue.max_drain);
    for (i, event) in scratch.iter().copied().enumerate() {
        let seq = base + i as u64;
        let payload = if !event.has_payload() {
            StagedPayload::None
        } else if zero_copy {
            metrics
                .follower_copy_bytes_saved
                .add(u64::from(event.shared().len()));
            StagedPayload::Pooled(event.shared())
        } else {
            let data = pool.read(event.shared());
            metrics.follower_copy_bytes.add(data.len() as u64);
            StagedPayload::Owned(data)
        };
        // The signature lane is read while the slot is still gated (before
        // the advance below), like the event itself.
        queue.window.push_back(WindowEntry {
            seq,
            leader_event: event,
            leader_sig: consumer.sig_at(seq),
            follower_sig: None,
            follower_event: Event::default(),
        });
        queue.staged.entry(event.tid()).or_default().push_back(StagedEvent {
            event,
            payload,
            origin: Some(seq),
        });
    }
    if peeked > 0 {
        queue.outstanding += peeked;
        queue.drained_through = base + peeked as u64;
        consumer.advance(peeked);
    }
    queue.scratch = scratch;
    peeked
}

/// Marks the window entry for `seq` disposed of: `follower` carries the
/// identity event the follower computed from its own request when the event
/// was replayed, or `None` when a rewrite rule consumed it (the window is
/// then dirty — the pairing diverged and was already adjudicated per-event).
///
/// When the last outstanding event of the drained range is disposed of, the
/// window certifies ([`certify_window`]) and the lap counter advances to
/// `drained_through`, releasing the batch's pool regions to the producer in
/// one step.
fn finish_window_entry(
    queue: &mut TupleQueue,
    seq: u64,
    follower: Option<Event>,
    obs: &varan_obs::Registry,
    version: usize,
) {
    let index = queue
        .window
        .front()
        .and_then(|front| seq.checked_sub(front.seq));
    if let Some(index) = index {
        if let Some(entry) = queue.window.get_mut(index as usize) {
            debug_assert_eq!(entry.seq, seq, "window entries are sequence-contiguous");
            match follower {
                Some(event) => {
                    entry.follower_sig = Some(event.signature());
                    entry.follower_event = event;
                }
                None => queue.window_dirty = true,
            }
        }
    }
    queue.outstanding = queue.outstanding.saturating_sub(1);
    if queue.outstanding == 0 {
        certify_window(queue, obs, version);
        let through = queue.drained_through;
        if let Some(consumer) = queue.consumer.as_mut() {
            consumer.advance_lap_to(through);
        }
    }
}

/// Batch-hash divergence certification: folds the leader's published
/// signature lane and the follower's replay signatures over the window and
/// compares **one u64** for the whole batch.  Only on a fold mismatch does
/// it fall back to per-event comparison, localizing the first diverging
/// call byte-exactly (kind, sysno, tid and argument words all feed the
/// per-event CRC32C signature).
///
/// A mismatch is reported through telemetry, never by killing the follower:
/// the per-event sysno check and the rewrite rules (§3.4) remain the kill
/// authority, and a rule firing inside the window marks it dirty so the
/// fold never second-guesses an adjudicated divergence.
fn certify_window(queue: &mut TupleQueue, obs: &varan_obs::Registry, version: usize) {
    if queue.window.is_empty() {
        return;
    }
    let clean =
        !queue.window_dirty && queue.window.iter().all(|entry| entry.follower_sig.is_some());
    if clean {
        let mut leader = varan_ring::SIGNATURE_FOLD_SEED;
        let mut follower = varan_ring::SIGNATURE_FOLD_SEED;
        for entry in &queue.window {
            leader = varan_ring::fold_signature(leader, entry.leader_sig);
            follower =
                varan_ring::fold_signature(follower, entry.follower_sig.unwrap_or_default());
        }
        if leader == follower {
            obs.metrics.divergence_fast_path_hits.add(1);
        } else {
            obs.metrics.divergence_hash_mismatches.add(1);
            // Localize: first entry whose per-event signature differs.
            if let Some(entry) = queue
                .window
                .iter()
                .find(|entry| entry.follower_sig != Some(entry.leader_sig))
            {
                obs.trace("monitor.hash_divergence", version as u64, entry.seq);
                obs.trace(
                    "monitor.hash_divergence_pair",
                    u64::from(entry.leader_event.sysno()),
                    u64::from(entry.follower_event.sysno()),
                );
            }
        }
    }
    queue.window.clear();
    queue.window_dirty = false;
}

/// Catch-up state of a runtime joiner replaying the spill journal from
/// sequence 0 before switching to live ring consumption (the *canary* stage
/// of the upgrade pipeline; same protocol as `crate::fleet`'s observers but
/// driving a real application version through the replay).
#[derive(Debug)]
pub(crate) struct CatchUp {
    journal: Arc<EventJournal>,
    /// Next journal sequence to replay.
    pos: u64,
    /// Whether the ring gate has been registered (within half a lap).
    registered: bool,
    started: SimInstant,
    /// The follower link's catching-up flag, cleared at the live switch.
    link_catching_up: Arc<AtomicBool>,
    /// The member handle's live flag, set at the live switch.
    live: Arc<AtomicBool>,
    /// Attach→live latency sink, stored at the live switch.
    catch_up_nanos: Arc<AtomicU64>,
}

impl CatchUp {
    pub(crate) fn new(
        clock: &ClockSource,
        journal: Arc<EventJournal>,
        link_catching_up: Arc<AtomicBool>,
        live: Arc<AtomicBool>,
        catch_up_nanos: Arc<AtomicU64>,
    ) -> Self {
        CatchUp {
            journal,
            pos: 0,
            registered: false,
            started: clock.start(),
            link_catching_up,
            live,
            catch_up_nanos,
        }
    }
}

/// Installs descriptor mappings for fd-creating events that predate a
/// runtime joiner's attach: the descriptor was transferred to the other
/// followers when the event happened, so the joiner asks the kernel for its
/// own duplicate from the *current* leader on first use.
///
/// Healing resolves a historical number against the leader's **current**
/// table.  That is sound here because the virtual kernel never recycles
/// descriptor numbers within a process (`install_fd` is monotonic): a
/// number either still denotes the same object or is gone.  Across
/// leadership generations a number can denote a newer object, but replay
/// never executes against healed descriptors — only the state at the live
/// switch matters, and by then every mapping has converged to the current
/// meaning (later creation events overwrite nothing: the first heal already
/// resolved to the live object).
#[derive(Debug)]
pub(crate) struct FdHealer {
    kernel: Kernel,
    /// The joiner's own process.
    pid: Pid,
    current_leader: Arc<std::sync::atomic::AtomicUsize>,
    /// Version index → pid, covering launched versions and fleet members.
    pids: Arc<Mutex<HashMap<usize, Pid>>>,
}

impl FdHealer {
    pub(crate) fn new(
        kernel: Kernel,
        pid: Pid,
        current_leader: Arc<std::sync::atomic::AtomicUsize>,
        pids: Arc<Mutex<HashMap<usize, Pid>>>,
    ) -> Self {
        FdHealer {
            kernel,
            pid,
            current_leader,
            pids,
        }
    }

    fn heal(&self, result: i64, fd_map: &mut HashMap<i64, i32>) {
        if result < 0 || fd_map.contains_key(&result) {
            return;
        }
        let leader = self.current_leader.load(Ordering::Acquire);
        let Some(&leader_pid) = self.pids.lock().get(&leader) else {
            return;
        };
        if leader_pid == self.pid {
            return;
        }
        // Identity placement (falling back to lowest-free inside the
        // kernel): the joiner's table mirrors the leader's numbering.
        if let Ok(local) = self
            .kernel
            .transfer_fd_identity(leader_pid, result as i32, self.pid)
        {
            fd_map.insert(result, local);
        }
    }
}

/// The monitor interposed on a follower version.
#[derive(Debug)]
pub struct FollowerMonitor {
    kernel: Kernel,
    context: VersionContext,
    table: SyscallTable,
    /// Replay state of this thread's (clamped) ring, shared with any sibling
    /// threads clamped onto the same ring.
    tuple: Arc<Mutex<TupleQueue>>,
    /// Ring index → shared replay state, for [`FollowerMonitor::spawn_thread`]
    /// to find (or create) the queue of a clamped ring.
    tuples: Arc<Mutex<HashMap<usize, Weak<Mutex<TupleQueue>>>>>,
    /// The consumer slot this version drains on every ring.
    slot: usize,
    pool: Arc<PoolAllocator>,
    rules: Arc<ScopedRules>,
    costs: MonitorCosts,
    /// Leader descriptor number → descriptor number in this follower's
    /// process (populated from the data channel, §3.3.2). Shared across the
    /// version's thread monitors, like the process-wide descriptor table it
    /// mirrors — any thread may drain a transfer another thread needs.
    fd_map: Arc<Mutex<HashMap<i64, i32>>>,
    /// An event taken out of the staged queue but not yet consumed (pushed
    /// back when a divergence was resolved by executing an extra local call,
    /// or while the variant clock says another thread's event goes first).
    pending: Option<StagedEvent>,
    /// The leader engine used after promotion.
    promoted_core: Option<LeaderCore>,
    promotion_handled: bool,
    tid: u32,
    next_tid: Arc<std::sync::atomic::AtomicU32>,
    rings: Arc<RingSet>,
    /// Journal catch-up state; `Some` while a runtime joiner is replaying
    /// history, `None` once live (and always for launched followers).
    catch_up: Option<CatchUp>,
    /// Late-attach descriptor healing; `None` for launched followers.
    healer: Option<FdHealer>,
    /// Where the consumer handle goes when this follower releases it
    /// (promotion or retirement); `None` for launched followers whose slots
    /// are not pooled.
    slot_pool: Option<SlotPool>,
}

impl FollowerMonitor {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        kernel: Kernel,
        context: VersionContext,
        rings: Arc<RingSet>,
        consumer_slot: usize,
        pool: Arc<PoolAllocator>,
        rules: Arc<ScopedRules>,
        costs: MonitorCosts,
        promoted_core: LeaderCore,
    ) -> Result<Self, crate::error::CoreError> {
        let consumer = rings.ring(0).consumer(consumer_slot)?;
        Ok(Self::with_consumer(
            kernel,
            context,
            rings,
            consumer,
            pool,
            rules,
            costs,
            promoted_core,
            None,
            None,
            None,
        ))
    }

    /// Builds a follower around an already-claimed main-ring consumer: used
    /// by the fleet for runtime joiners (with catch-up and healing state)
    /// and by the handover path for demoted ex-leaders (with a slot pool).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_consumer(
        kernel: Kernel,
        context: VersionContext,
        rings: Arc<RingSet>,
        consumer: Consumer<Event>,
        pool: Arc<PoolAllocator>,
        rules: Arc<ScopedRules>,
        costs: MonitorCosts,
        promoted_core: LeaderCore,
        slot_pool: Option<SlotPool>,
        catch_up: Option<CatchUp>,
        healer: Option<FdHealer>,
    ) -> Self {
        let slot = consumer.index();
        let capacity = rings.ring(0).capacity();
        let tuple = Arc::new(Mutex::new(TupleQueue::with_consumer(consumer, capacity)));
        let mut registry = HashMap::new();
        registry.insert(0usize, Arc::downgrade(&tuple));
        FollowerMonitor {
            kernel,
            context,
            table: SyscallTable::follower(),
            tuple,
            tuples: Arc::new(Mutex::new(registry)),
            slot,
            pool,
            rules,
            costs,
            fd_map: Arc::new(Mutex::new(HashMap::new())),
            pending: None,
            promoted_core: Some(promoted_core),
            promotion_handled: false,
            tid: 0,
            next_tid: Arc::new(std::sync::atomic::AtomicU32::new(1)),
            rings,
            catch_up,
            healer,
            slot_pool,
        }
    }

    /// The version context this monitor serves.
    #[must_use]
    pub fn context(&self) -> &VersionContext {
        &self.context
    }

    /// A snapshot of the descriptor translation map accumulated from the
    /// data channel.
    #[must_use]
    pub fn fd_map(&self) -> HashMap<i64, i32> {
        self.fd_map.lock().clone()
    }

    /// The thread tuple this monitor belongs to (0 for the main thread).
    #[must_use]
    pub fn tid(&self) -> u32 {
        self.tid
    }

    fn drain_fd_channel(&mut self) {
        while let Some(transfer) = self.context.channel.recv_fd() {
            self.fd_map
                .lock()
                .insert(i64::from(transfer.leader_fd), transfer.local_fd);
            VersionCounters::add(&self.context.counters.fd_transfers, 1);
            VersionCounters::add(&self.context.counters.monitor_cycles, self.costs.fd_receive);
        }
    }

    /// Disposes of a ring-staged event a rewrite rule consumed without
    /// replay: the certification window for its batch is marked dirty (the
    /// pairing diverged and was adjudicated per-event) and the lap counter
    /// still advances once the batch quiesces.
    fn dispose_rule_consumed(&mut self, origin: Option<u64>) {
        if let Some(seq) = origin {
            let mut queue = self.tuple.lock();
            finish_window_entry(&mut queue, seq, None, &self.context.obs, self.context.index);
        }
    }

    /// Pops the next staged event published by this monitor's own thread.
    fn pop_staged(&mut self) -> Option<StagedEvent> {
        self.tuple
            .lock()
            .staged
            .get_mut(&self.tid)
            .and_then(VecDeque::pop_front)
    }

    /// Drains published events into the shared staged queues with one
    /// gating advance (§3.3.1 batched consumption). Returns `true` if any
    /// event was staged.
    fn refill_batch(&mut self) -> bool {
        if self.catch_up.is_some() {
            return self.refill_from_journal();
        }
        self.refill_from_ring()
    }

    fn refill_from_ring(&mut self) -> bool {
        let mut queue = self.tuple.lock();
        refill_ring_queue(&mut queue, &self.pool, &self.context.obs.metrics) > 0
    }

    /// One batch of the runtime joiner's catch-up protocol (mirrors
    /// `crate::fleet`'s observer loop, phases 3–5): replay the journal
    /// without gating the leader, register the ring gate once within half a
    /// lap of the cursor, and switch to live ring consumption when the
    /// journal is drained past the registered position.
    fn refill_from_journal(&mut self) -> bool {
        let mut cu = self.catch_up.take().expect("catch-up state");
        let (start, records) = match cu.journal.read_from(cu.pos, REPLAY_BATCH) {
            Ok(read) => read,
            Err(err) => {
                self.context.killed.store(true, Ordering::Release);
                panic!(
                    "varan: joiner {} journal read at {}: {err}",
                    self.context.index, cu.pos
                );
            }
        };
        if !records.is_empty() && start != cu.pos {
            self.context.killed.store(true, Ordering::Release);
            panic!(
                "varan: joiner {} journal gap: wanted sequence {}, oldest retained is {start}",
                self.context.index, cu.pos
            );
        }
        if records.is_empty() {
            {
                let mut queue = self.tuple.lock();
                let consumer = queue.consumer.as_mut().expect("joiner holds its ring slot");
                consumer.resume_at(cu.pos);
            }
            if !cu.registered {
                // Nothing left to replay but the gate was not registered
                // yet: register it and read the journal once more — the
                // leader may have appended (journal-first) while we were
                // registering, and those records must come from the journal,
                // not the ring, to keep the handover race-free.
                cu.registered = true;
                self.catch_up = Some(cu);
                // Simulation boundary: the window between gate registration
                // and the drain-switch is where a crashing candidate is the
                // nastiest (the gate exists, the member is not yet live).
                let _ = self
                    .kernel
                    .sim_probe(self.context.pid, SimPoint::GateRegistered);
                return true;
            }
            // Journal drained while gating: every remaining event is (or
            // will be) published at or above the gate — go live.
            let _ = self.kernel.sim_probe(self.context.pid, SimPoint::LiveSwitch);
            cu.link_catching_up.store(false, Ordering::Release);
            let catch_up = cu.started.elapsed().as_nanos() as u64;
            cu.catch_up_nanos.store(catch_up, Ordering::Release);
            cu.live.store(true, Ordering::Release);
            self.context.obs.metrics.joiner_catch_up_nanos.record(catch_up);
            self.context
                .obs
                .trace("fleet.live", self.context.index as u64, cu.pos);
            return self.refill_from_ring();
        }
        let replayed = records.len() as u64;
        let newly_registered = {
            let mut queue = self.tuple.lock();
            for record in records {
                let event = record.to_event();
                // Journal payloads are inline in the record (the pool region
                // may be long recycled): stage them owned, outside the ring's
                // lap/certification discipline.
                let staged = StagedEvent {
                    event,
                    payload: match record.payload {
                        Some(data) => StagedPayload::Owned(data),
                        None => StagedPayload::None,
                    },
                    origin: None,
                };
                queue
                    .staged
                    .entry(staged.event.tid())
                    .or_default()
                    .push_back(staged);
            }
            cu.pos += replayed;
            let consumer = queue.consumer.as_mut().expect("joiner holds its ring slot");
            if cu.registered {
                consumer.resume_at(cu.pos);
                false
            } else if self.rings.ring(0).published().saturating_sub(cu.pos)
                < (self.rings.ring(0).capacity() as u64) / 2
            {
                consumer.resume_at(cu.pos);
                cu.registered = true;
                true
            } else {
                false
            }
        };
        self.catch_up = Some(cu);
        if newly_registered {
            let _ = self
                .kernel
                .sim_probe(self.context.pid, SimPoint::GateRegistered);
        }
        true
    }

    /// Bounded wait for new events so the kill/promotion flags are
    /// re-checked regularly.
    ///
    /// The precise condvar wait on the ring is only used while this thread
    /// owns the queue exclusively; with siblings sharing the clamped ring
    /// the wait must not happen under the queue lock (it would stall a
    /// sibling whose events are already staged), so those threads fall back
    /// to a plain bounded sleep.
    fn wait_for_events(&self) {
        let clock = self.kernel.wait_clock();
        if clock.is_simulated() {
            // Virtual time: never park the thread — advance the clock and
            // yield so the producer (or coordinator) gets the CPU.
            clock.sleep(FOLLOWER_POLL);
            return;
        }
        {
            let queue = self.tuple.lock();
            if queue.owners == 1 {
                if let Some(consumer) = queue.consumer.as_ref() {
                    let _ = consumer.wait_for_published(FOLLOWER_POLL);
                    return;
                }
            }
        }
        std::thread::sleep(FOLLOWER_POLL);
    }

    /// Waits for the next event, respecting the variant clock's
    /// happens-before order and the promotion/kill flags.
    ///
    /// Events are pulled from the ring in batches — the gating sequence
    /// advances once per drained batch rather than once per event — and
    /// replayed front to back from this thread's staged queue.
    ///
    /// Promotion only takes effect once the ring has been drained: a freshly
    /// promoted follower first catches up with everything the crashed leader
    /// already published, so the remaining followers keep seeing a single
    /// consistent stream.
    fn next_event(&mut self) -> Option<StagedEvent> {
        loop {
            if self.context.is_killed() {
                return None;
            }
            let staged = match self.pending.take().or_else(|| self.pop_staged()) {
                Some(staged) => staged,
                None => {
                    if self.refill_batch() {
                        continue;
                    }
                    if self.context.is_promoted() {
                        return None;
                    }
                    // Nothing staged for this thread: wait (bounded, so the
                    // kill/promotion flags are re-checked) without consuming
                    // anything — the next refill stages whatever arrives.
                    self.wait_for_events();
                    continue;
                }
            };
            match self.context.clock.check(staged.event.clock()) {
                ClockOrdering::Ready | ClockOrdering::Stale => return Some(staged),
                ClockOrdering::NotYet => {
                    // An event from another thread tuple must be consumed
                    // first; hold on to this one and wait.
                    self.pending = Some(staged);
                    if self.context.is_killed() {
                        return None;
                    }
                    std::thread::yield_now();
                }
            }
        }
    }

    fn translate_fd_args(&self, request: &SyscallRequest) -> SyscallRequest {
        let mut translated = request.clone();
        if let Some(&local) = self.fd_map.lock().get(&(request.args[0] as i64)) {
            translated.args[0] = local as u64;
        }
        translated
    }

    fn replay(&mut self, request: &SyscallRequest) -> SyscallOutcome {
        loop {
            let staged = match self.next_event() {
                Some(staged) => staged,
                None => return self.after_wait_interrupted(request),
            };
            let event = staged.event;
            let origin = staged.origin;
            if event.sysno() == request.sysno.number() {
                return self.consume_matching(request, staged);
            }
            // Divergence: consult the rewrite rules (§3.4), resolved through
            // the scoped registry so a runtime joiner (or retired ex-leader)
            // answers to its own rule set without loosening anybody else's.
            let leader_events = vec![u32::from(event.sysno())];
            let engine = self.rules.engine_for(self.context.index);
            let (action, _rule) = engine.evaluate(request, &leader_events);
            match action {
                RuleAction::ExecuteExtra => {
                    VersionCounters::add(&self.context.counters.divergences_allowed, 1);
                    self.context.obs.metrics.divergences_allowed.add(1);
                    self.context.obs.trace(
                        "monitor.divergence_allowed",
                        self.context.index as u64,
                        u64::from(request.sysno.number()),
                    );
                    self.pending = Some(staged);
                    let translated = self.translate_fd_args(request);
                    let outcome = self.kernel.syscall(self.context.pid, &translated);
                    if let Some(fd_info) = outcome.fd {
                        // The extra call created a descriptor the application
                        // will name by its local number; drop any stale
                        // leader-numbered mapping that would shadow it.
                        self.fd_map.lock().remove(&i64::from(fd_info.fd));
                    }
                    VersionCounters::add(&self.context.counters.cycles, outcome.cost);
                    VersionCounters::add(&self.context.counters.syscalls, 1);
                    return outcome;
                }
                RuleAction::SkipLeaderEvent => {
                    VersionCounters::add(&self.context.counters.divergences_allowed, 1);
                    self.context.obs.metrics.divergences_allowed.add(1);
                    self.context.obs.trace(
                        "monitor.divergence_allowed",
                        self.context.index as u64,
                        u64::from(event.sysno()),
                    );
                    self.context.clock.observe(event.clock());
                    self.dispose_rule_consumed(origin);
                    continue;
                }
                RuleAction::Kill => {
                    // A crashed leader's tail can legitimately diverge from a
                    // healthy follower at the crash-triggering request, and
                    // the verdict races with the coordinator's promotion
                    // decision — give it a bounded window before treating
                    // the divergence as fatal.  The grace runs on the
                    // kernel's clock source (wall in production, virtual
                    // under simulation) with the PR-1 value as the default.
                    let clock = self.kernel.wait_clock();
                    let grace = clock.deadline(PROMOTION_GRACE);
                    while !self.context.is_promoted() && !grace.expired() {
                        clock.sleep(FOLLOWER_POLL);
                    }
                    // Once promoted, skip the stale event and keep draining;
                    // the takeover happens in after_wait_interrupted() when
                    // the ring is empty, preserving drain-before-promote.
                    if self.context.is_promoted() {
                        self.context.clock.observe(event.clock());
                        self.dispose_rule_consumed(origin);
                        continue;
                    }
                    VersionCounters::add(&self.context.counters.divergences_killed, 1);
                    self.context.obs.metrics.divergences_killed.add(1);
                    self.context.obs.trace(
                        "monitor.divergence_killed",
                        self.context.index as u64,
                        u64::from(event.sysno()),
                    );
                    self.context.killed.store(true, Ordering::Release);
                    panic!(
                        "varan: follower {} killed: attempted {} while leader executed {}",
                        self.context.index,
                        request.sysno.name(),
                        event.sysno()
                    );
                }
            }
        }
    }

    fn consume_matching(&mut self, request: &SyscallRequest, staged: StagedEvent) -> SyscallOutcome {
        let StagedEvent {
            event,
            payload,
            origin,
        } = staged;
        self.context.clock.observe(event.clock());
        let payload_len = payload.len();
        // Drain on every event, not just fd-creating ones: the leader also
        // re-transfers upgraded descriptors (e.g. listen() turning the plain
        // socket into a listener), and the mapping must be current before
        // this follower could ever be promoted.
        self.drain_fd_channel();
        let mut fds = 0usize;
        if request.sysno.creates_fd() && event.result() >= 0 {
            fds = 1;
            // A runtime joiner replays events whose descriptor transfers
            // happened before it attached; heal the missing mapping with a
            // fresh kernel-side transfer from the current leader.
            if let Some(healer) = &self.healer {
                healer.heal(event.result(), &mut self.fd_map.lock());
            }
        }
        let overhead =
            self.costs
                .follower_overhead(request.sysno.is_virtual(), payload_len, fds);
        if varan_obs::enabled() {
            // Lane = version index: replays are per-follower, not per-ring.
            self.context
                .obs
                .metrics
                .events_replayed
                .add(self.context.index, 1);
        }
        VersionCounters::add(&self.context.counters.monitor_cycles, overhead);
        VersionCounters::add(&self.context.counters.events, 1);
        VersionCounters::add(&self.context.counters.syscalls, 1);
        let mut outcome = SyscallOutcome::ok(request.sysno, event.result(), overhead);
        match payload {
            StagedPayload::None => {}
            StagedPayload::Owned(data) => outcome = outcome.with_data(data),
            // The one copy left on the payload path: the application owns
            // the buffer it receives (mirroring the paper's copy into the
            // app's own buffer), materialized here — after replay is
            // certain — rather than speculatively at drain time.  The lap
            // gate still pins the region: it only advances below, via
            // finish_window_entry, after this read.
            StagedPayload::Pooled(ptr) => outcome = outcome.with_data(self.pool.read(ptr)),
        }
        if fds > 0 {
            outcome = outcome.with_fd(event.result() as i32);
        }
        if let Some(seq) = origin {
            // The follower's own half of the certification fold: its request,
            // pressed into the same identity shape the leader published.
            let mine = Event::syscall(request.sysno.number(), &request.args, 0).with_tid(self.tid);
            let mut queue = self.tuple.lock();
            finish_window_entry(&mut queue, seq, Some(mine), &self.context.obs, self.context.index);
        }
        outcome
    }

    /// Handles a request whose event wait was interrupted by a promotion or a
    /// kill verdict.
    fn after_wait_interrupted(&mut self, request: &SyscallRequest) -> SyscallOutcome {
        if self.context.is_promoted() {
            self.ensure_promoted();
            // The interrupted call is restarted and executed by the new
            // leader, mirroring the -ERESTARTSYS handling in §3.2.
            VersionCounters::add(&self.context.counters.restarts, 1);
            return self.leader_execute(request);
        }
        // Killed: unwind this version.
        panic!(
            "varan: follower {} killed while waiting for events",
            self.context.index
        );
    }

    fn ensure_promoted(&mut self) {
        if self.promotion_handled {
            return;
        }
        self.promotion_handled = true;
        self.table.promote_to_leader();
        self.release_slot();
        // Pick up any descriptor transfers still sitting on the data channel
        // (the crashed leader may have died before this follower replayed an
        // event that would have drained them).
        self.drain_fd_channel();
    }

    /// Retires this thread's ring consumer and, when the slot came from the
    /// fleet's spare pool, hands the handle back so a future joiner can
    /// re-activate it (consumer claims are permanent, so a dropped handle
    /// would leak the slot for the rest of the run).
    fn release_slot(&mut self) {
        let consumer = self.tuple.lock().consumer.take();
        if let Some(mut consumer) = consumer {
            consumer.unsubscribe();
            if let Some(pool) = &self.slot_pool {
                pool.lock().push(consumer);
            }
        }
    }

    /// Picks up a posted handover ticket: this *promoted* follower (the
    /// current leader) retires back into a plain follower on the granted
    /// spare slot, releasing its successor.  The inverse of
    /// [`FollowerMonitor::ensure_promoted`], used by multi-hop upgrade
    /// chains where the leader being retired is itself a previously promoted
    /// candidate.
    fn execute_unpromotion(&mut self, ticket: HandoverTicket) {
        let followers = Arc::clone(
            &self
                .promoted_core
                .as_ref()
                .expect("promoted follower has a leader core")
                .followers,
        );
        let ring = Arc::clone(self.rings.ring(0));
        let Some((consumer, rules, slot_pool)) =
            demote_to_follower(&self.context, &ring, &followers, ticket)
        else {
            return; // dead successor: the handover was aborted, keep leading
        };
        self.slot = consumer.index();
        let tuple = Arc::new(Mutex::new(TupleQueue::with_consumer(consumer, ring.capacity())));
        let mut registry = HashMap::new();
        registry.insert(0usize, Arc::downgrade(&tuple));
        self.tuple = tuple;
        self.tuples = Arc::new(Mutex::new(registry));
        self.table = SyscallTable::follower();
        self.rules = rules;
        self.slot_pool = Some(slot_pool);
        self.pending = None;
        self.promotion_handled = false;
        self.context.promoted.store(false, Ordering::Release);
        self.context.handover.complete();
    }

    fn leader_execute(&mut self, request: &SyscallRequest) -> SyscallOutcome {
        let translated = self.translate_fd_args(request);
        let core = self
            .promoted_core
            .as_mut()
            .expect("promoted follower has a leader core");
        let outcome = core.execute_and_record(&translated, &self.context.clock, &self.context.counters);
        if let Some(fd_info) = outcome.fd {
            // The application will refer to this brand-new descriptor by its
            // *local* number from now on.  A replay-era mapping keyed by the
            // same number (the old leader recycled it for a different object
            // back then) would silently shadow the new descriptor and
            // misdirect every later call on it — drop it.
            self.fd_map.lock().remove(&i64::from(fd_info.fd));
        }
        outcome
    }

    fn execute_locally(&mut self, request: &SyscallRequest) -> SyscallOutcome {
        let translated = self.translate_fd_args(request);
        let outcome = self.kernel.syscall(self.context.pid, &translated);
        VersionCounters::add(&self.context.counters.cycles, outcome.cost);
        VersionCounters::add(&self.context.counters.local_calls, 1);
        VersionCounters::add(&self.context.counters.syscalls, 1);
        VersionCounters::add(
            &self.context.counters.monitor_cycles,
            self.costs.intercept_cost(request.sysno.is_virtual()),
        );
        outcome
    }
}

impl SyscallInterface for FollowerMonitor {
    fn syscall(&mut self, request: &SyscallRequest) -> SyscallOutcome {
        // A promotion must not take effect before the ring is drained: the
        // crashed leader's published events still have to be replayed, or
        // the new leader would re-execute (and re-publish) calls the other
        // followers have already seen. The drain-then-switch happens inside
        // replay()/next_event(); only once the switch is done
        // (promotion_handled) does this monitor dispatch as a leader.
        if self.promotion_handled {
            // A planned handover retires this (promoted) leader back into a
            // follower before the next call executes.
            if self.tid == 0 && self.context.handover.is_requested() {
                if let Some(ticket) = self.context.handover.begin() {
                    self.execute_unpromotion(ticket);
                }
            }
        }
        if self.promotion_handled {
            return match self.table.action(request.sysno) {
                HandlerAction::ExecuteLocally => self.execute_locally(request),
                HandlerAction::Deny => {
                    SyscallOutcome::err(request.sysno, Errno::ENOSYS, self.costs.intercept)
                }
                _ => self.leader_execute(request),
            };
        }
        match self.table.action(request.sysno) {
            HandlerAction::ExecuteLocally => self.execute_locally(request),
            HandlerAction::Deny => {
                SyscallOutcome::err(request.sysno, Errno::ENOSYS, self.costs.intercept)
            }
            _ => self.replay(request),
        }
    }

    fn spawn_thread(&mut self) -> Box<dyn SyscallInterface> {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        // Clamp exactly as the leader does (LeaderCore::new → RingSet::ring):
        // threads past the provisioned tuples share the last ring. A ring's
        // consumer slot can only be claimed once, so the surplus threads
        // share the clamped ring's replay queue instead of panicking with
        // "no free ring for thread".
        let ring_index = (tid as usize).min(self.rings.tuples().saturating_sub(1));
        let tuple = {
            let mut registry = self.tuples.lock();
            match registry.get(&ring_index).and_then(Weak::upgrade) {
                Some(tuple) => {
                    tuple.lock().owners += 1;
                    tuple
                }
                None => {
                    // A dead Weak with the slot still claimed means every
                    // thread of this tuple exited earlier in the run
                    // (consumer claims are permanent); spawning *another*
                    // thread onto it afterwards is unsupported — the retired
                    // gate cannot be safely re-registered mid-stream — and
                    // was a panic before this monitor existed too.
                    let consumer = self
                        .rings
                        .ring(ring_index)
                        .consumer(self.slot)
                        .unwrap_or_else(|err| {
                            panic!(
                                "varan: follower {} thread {tid}: cannot claim ring \
                                 {ring_index} slot {} (threads of an exhausted tuple \
                                 cannot be respawned): {err}",
                                self.context.index, self.slot
                            )
                        });
                    let capacity = self.rings.ring(ring_index).capacity();
                    let tuple =
                        Arc::new(Mutex::new(TupleQueue::with_consumer(consumer, capacity)));
                    registry.insert(ring_index, Arc::downgrade(&tuple));
                    tuple
                }
            }
        };
        let core = self
            .promoted_core
            .as_ref()
            .expect("follower has a leader core")
            .fork_with_tid(tid);
        Box::new(FollowerMonitor {
            kernel: self.kernel.clone(),
            context: self.context.clone(),
            table: self.table.clone(),
            tuple,
            tuples: Arc::clone(&self.tuples),
            slot: self.slot,
            pool: Arc::clone(&self.pool),
            rules: Arc::clone(&self.rules),
            costs: self.costs.clone(),
            fd_map: Arc::clone(&self.fd_map),
            pending: None,
            promoted_core: Some(core),
            promotion_handled: self.promotion_handled,
            tid,
            next_tid: Arc::clone(&self.next_tid),
            rings: Arc::clone(&self.rings),
            catch_up: None,
            healer: None,
            // The spare pool only holds *main-ring* consumers; a sibling
            // clamped onto ring 0 must be able to return the pooled slot if
            // it is the last owner, while non-main tuples are never pooled.
            slot_pool: if ring_index == 0 {
                self.slot_pool.clone()
            } else {
                None
            },
        })
    }

    fn cpu_work(&mut self, cycles: u64) {
        // Followers run the same computation on their own core; it counts
        // towards their own cycle budget but never touches the leader path.
        VersionCounters::add(&self.context.counters.cycles, cycles);
    }
}

impl Drop for FollowerMonitor {
    fn drop(&mut self) {
        // Hand a pooled slot back to the fleet when the follower retires
        // (clean exit, kill, or detach); no-op when already released by a
        // promotion. Threads sharing a clamped ring leave the release to
        // whichever of them drops last, decided under the queue lock.
        let last_owner = {
            let mut queue = self.tuple.lock();
            queue.owners = queue.owners.saturating_sub(1);
            queue.owners == 0
        };
        if last_owner {
            self.release_slot();
        }
    }
}

#[doc(hidden)]
pub mod replay_probe {
    //! A test- and bench-only driver for the zero-copy replay machinery:
    //! owns a `TupleQueue` over a real ring consumer and exposes the
    //! drain → replay → certify cycle without the full monitor stack, so
    //! allocation behaviour and certification arithmetic can be exercised
    //! deterministically (and from integration tests, which cannot reach
    //! the private internals).

    use super::*;
    use varan_ring::RingBuffer;

    /// Drives one replay queue the way a sole-owner [`FollowerMonitor`]
    /// would: bounded drains, pool-resident payloads, per-window
    /// certification and lap advancement.
    #[derive(Debug)]
    pub struct ReplayProbe {
        queue: TupleQueue,
        pool: Arc<PoolAllocator>,
        obs: Arc<varan_obs::Registry>,
    }

    impl ReplayProbe {
        /// Claims consumer `slot` on `ring` and wraps it in a lap-gated
        /// replay queue.
        pub fn new(
            ring: &Arc<RingBuffer<Event>>,
            slot: usize,
            pool: Arc<PoolAllocator>,
            obs: Arc<varan_obs::Registry>,
        ) -> Self {
            let consumer = ring.consumer(slot).expect("free consumer slot");
            ReplayProbe {
                queue: TupleQueue::with_consumer(consumer, ring.capacity()),
                pool,
                obs,
            }
        }

        /// One bounded drain round; returns the number of events staged.
        pub fn drain(&mut self) -> usize {
            refill_ring_queue(&mut self.queue, &self.pool, &self.obs.metrics)
        }

        /// Events currently staged for `tid`.
        pub fn staged_len(&self, tid: u32) -> usize {
            self.queue.staged.get(&tid).map_or(0, VecDeque::len)
        }

        /// The queue's lap counter: number of events whose replay has
        /// completed (pool regions below it are reclaimable).
        pub fn lap(&self) -> u64 {
            self.queue
                .consumer
                .as_ref()
                .map_or(0, Consumer::lap)
        }

        /// Replays the next staged event of `tid` as a perfectly matching
        /// follower request: delivers the payload (the single owned buffer
        /// the application receives) and completes the certification window
        /// entry.  Returns the delivered payload length.
        pub fn replay_next(&mut self, tid: u32) -> Option<usize> {
            let staged = self.queue.staged.get_mut(&tid)?.pop_front()?;
            let mine = Event::syscall(staged.event.sysno(), staged.event.args(), 0)
                .with_tid(staged.event.tid());
            self.finish(staged, mine)
        }

        /// Replays the next staged event of `tid` with the follower's side
        /// of the certification replaced by `follower` — used to plant
        /// divergences the batch fold must catch.
        pub fn replay_next_as(&mut self, tid: u32, follower: Event) -> Option<usize> {
            let staged = self.queue.staged.get_mut(&tid)?.pop_front()?;
            self.finish(staged, follower)
        }

        /// Drops the next staged event of `tid` as a rewrite rule would
        /// (consumed without replay): dirties the window, still advances
        /// the lap at the quiescent point.
        pub fn skip_next(&mut self, tid: u32) -> Option<()> {
            let staged = self.queue.staged.get_mut(&tid)?.pop_front()?;
            if let Some(seq) = staged.origin {
                finish_window_entry(&mut self.queue, seq, None, &self.obs, 0);
            }
            Some(())
        }

        fn finish(&mut self, staged: StagedEvent, mine: Event) -> Option<usize> {
            let delivered = match staged.payload {
                StagedPayload::None => Vec::new(),
                StagedPayload::Owned(data) => data,
                // Safe for the same reason as in consume_matching: the lap
                // only advances in finish_window_entry, below this read.
                StagedPayload::Pooled(ptr) => self.pool.read(ptr),
            };
            let len = delivered.len();
            if let Some(seq) = staged.origin {
                finish_window_entry(&mut self.queue, seq, Some(mine), &self.obs, 0);
            }
            Some(len)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::replay_probe::ReplayProbe;
    use super::*;
    use varan_ring::{PoolConfig, RingBuffer, WaitStrategy};

    fn harness(
        capacity: usize,
    ) -> (
        Arc<RingBuffer<Event>>,
        Arc<PoolAllocator>,
        Arc<varan_obs::Registry>,
        ReplayProbe,
    ) {
        let ring: Arc<RingBuffer<Event>> =
            Arc::new(RingBuffer::new(capacity, 1, WaitStrategy::Spin).unwrap());
        let pool = Arc::new(PoolAllocator::new(PoolConfig::default()));
        let obs = Arc::new(varan_obs::Registry::new());
        let probe = ReplayProbe::new(&ring, 0, Arc::clone(&pool), Arc::clone(&obs));
        (ring, pool, obs, probe)
    }

    fn publish_payload_event(
        ring: &Arc<RingBuffer<Event>>,
        pool: &PoolAllocator,
        fill: u8,
        len: usize,
    ) -> u64 {
        let region = pool.alloc_and_write(&vec![fill; len]).unwrap();
        let event = Event::syscall(0, &[u64::from(fill)], len as i64)
            .with_shared(region.ptr());
        ring.producer().publish_signed(event, event.signature())
    }

    #[test]
    fn laggard_drain_never_pins_more_than_half_a_lap() {
        let (ring, _pool, _obs, mut probe) = harness(16);
        let producer = ring.producer();
        for i in 0..16u64 {
            let event = Event::syscall(1, &[i], 0);
            producer.publish_signed(event, event.signature());
        }
        // The ring is full; one drain round takes at most half a lap...
        assert_eq!(probe.drain(), 8);
        assert_eq!(probe.staged_len(0), 8);
        // ...and frees those slots for the producer immediately (the gate
        // advanced), while the lap counter still pins the batch's payloads.
        assert_eq!(producer.refresh_reclaim_horizon(), 0);
        let event = Event::syscall(1, &[99], 0);
        assert!(producer.try_publish(event).is_ok());
        // Replay completion releases the whole batch in one lap advance.
        for _ in 0..8 {
            probe.replay_next(0).unwrap();
        }
        assert_eq!(probe.lap(), 8);
        assert_eq!(producer.refresh_reclaim_horizon(), 8);
    }

    #[test]
    fn zero_copy_staging_saves_payload_bytes_and_certifies_once_per_batch() {
        let (ring, pool, obs, mut probe) = harness(16);
        for i in 0..4 {
            publish_payload_event(&ring, &pool, i, 512);
        }
        assert_eq!(probe.drain(), 4);
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.follower_copy_bytes_saved, 4 * 512);
        assert_eq!(snap.follower_copy_bytes, 0);
        for _ in 0..4 {
            assert_eq!(probe.replay_next(0), Some(512));
        }
        let snap = obs.metrics.snapshot();
        // One fold comparison certified the whole batch.
        assert_eq!(snap.divergence_fast_path_hits, 1);
        assert_eq!(snap.divergence_hash_mismatches, 0);
    }

    #[test]
    fn planted_divergence_fails_the_fold_and_is_localized() {
        let (ring, _pool, obs, mut probe) = harness(16);
        let producer = ring.producer();
        for i in 0..4u64 {
            let event = Event::syscall(2, &[i, 7], 0);
            producer.publish_signed(event, event.signature());
        }
        assert_eq!(probe.drain(), 4);
        probe.replay_next(0).unwrap();
        // Same sysno, different argument word: the per-event sysno check
        // would pass this one, only the signature fold catches it.
        let divergent = Event::syscall(2, &[1, 8], 0);
        probe.replay_next_as(0, divergent).unwrap();
        probe.replay_next(0).unwrap();
        probe.replay_next(0).unwrap();
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.divergence_fast_path_hits, 0);
        assert_eq!(snap.divergence_hash_mismatches, 1);
        // The lap still advances: hash mismatches report, they never wedge
        // reclamation (or kill — the rules remain the kill authority).
        assert_eq!(probe.lap(), 4);
    }

    #[test]
    fn rule_consumed_event_dirties_the_window_but_not_the_lap() {
        let (ring, _pool, obs, mut probe) = harness(16);
        let producer = ring.producer();
        for i in 0..3u64 {
            let event = Event::syscall(3, &[i], 0);
            producer.publish_signed(event, event.signature());
        }
        assert_eq!(probe.drain(), 3);
        probe.replay_next(0).unwrap();
        probe.skip_next(0).unwrap();
        probe.replay_next(0).unwrap();
        let snap = obs.metrics.snapshot();
        // An adjudicated divergence skips certification entirely: neither
        // a fast-path hit nor a false mismatch.
        assert_eq!(snap.divergence_fast_path_hits, 0);
        assert_eq!(snap.divergence_hash_mismatches, 0);
        assert_eq!(probe.lap(), 3);
    }
}
