//! The monitor-side cost model.
//!
//! `varan-kernel`'s [`CostModel`](varan_kernel::cost::CostModel) prices the
//! *native* execution of a system call; this module prices what the monitor
//! adds on top: the interception trampoline, publishing or consuming a ring
//! buffer event, copying an out-of-line payload through the shared memory
//! pool, and transferring a file descriptor over the data channel.  The
//! defaults are calibrated from Figure 4 of the paper (the `intercept`,
//! `leader` and `follower` bars minus the `native` bar), so regenerating the
//! micro-benchmark reproduces the paper's cost structure.

use serde::{Deserialize, Serialize};

use varan_kernel::cost::Cycles;

/// Cycles the monitor adds to a system call, by mechanism.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorCosts {
    /// Cost of the rewritten-jump interception path (entry point, register
    /// save/restore, table lookup).  Figure 4: `intercept - native` ≈ 70
    /// cycles for regular calls.
    pub intercept: Cycles,
    /// Interception cost for virtual (vDSO) system calls, which go through
    /// the generated stub (§3.2.1).  Figure 4: 122 − 49 ≈ 73 cycles.
    pub intercept_vsyscall: Cycles,
    /// Leader cost of publishing one event into the ring buffer.
    /// Figure 4 (`close`): 1718 − 1330 ≈ 390 cycles.
    pub event_publish: Cycles,
    /// Follower cost of consuming one event from the ring buffer.
    /// Figure 4 (`close` follower): ≈ 260 cycles.
    pub event_consume: Cycles,
    /// Leader cost of copying a 512-byte payload into the shared pool.
    /// Figure 4 (`read` leader − `close` leader): ≈ 1370 cycles per 512 B.
    pub payload_publish_per_512: Cycles,
    /// Follower cost of copying a 512-byte payload out of the shared pool.
    /// Figure 4 (`read` follower − `close` follower): ≈ 1700 cycles per 512 B.
    pub payload_consume_per_512: Cycles,
    /// Leader cost of sending one descriptor over the data channel.
    /// Figure 4 (`open` leader − intercepted open − publish): ≈ 5400 cycles.
    pub fd_send: Cycles,
    /// Follower cost of receiving one descriptor.
    /// Figure 4 (`open` follower): ≈ 7100 cycles.
    pub fd_receive: Cycles,
    /// Extra cost charged to a ptrace-style monitor for each context switch
    /// between tracee and monitor (used by the baselines, not by VARAN).
    pub ptrace_switch: Cycles,
}

impl Default for MonitorCosts {
    fn default() -> Self {
        MonitorCosts {
            intercept: 70,
            intercept_vsyscall: 73,
            event_publish: 390,
            event_consume: 260,
            payload_publish_per_512: 1370,
            payload_consume_per_512: 1700,
            fd_send: 5400,
            fd_receive: 7100,
            ptrace_switch: 3200,
        }
    }
}

impl MonitorCosts {
    /// Creates the Figure 4-calibrated default model.
    #[must_use]
    pub fn new() -> Self {
        MonitorCosts::default()
    }

    /// Leader-side cost of copying `bytes` of payload into the pool.
    #[must_use]
    pub fn payload_publish(&self, bytes: usize) -> Cycles {
        self.payload_publish_per_512 * bytes as Cycles / 512
    }

    /// Follower-side cost of copying `bytes` of payload out of the pool.
    #[must_use]
    pub fn payload_consume(&self, bytes: usize) -> Cycles {
        self.payload_consume_per_512 * bytes as Cycles / 512
    }

    /// Total leader-side overhead for recording a call with `payload` bytes
    /// of out-of-line data and `fds` descriptor transfers.
    #[must_use]
    pub fn leader_overhead(&self, virtual_call: bool, payload: usize, fds: usize) -> Cycles {
        self.intercept_cost(virtual_call)
            + self.event_publish
            + self.payload_publish(payload)
            + self.fd_send * fds as Cycles
    }

    /// Total follower-side overhead for replaying such a call.
    #[must_use]
    pub fn follower_overhead(&self, virtual_call: bool, payload: usize, fds: usize) -> Cycles {
        self.intercept_cost(virtual_call)
            + self.event_consume
            + self.payload_consume(payload)
            + self.fd_receive * fds as Cycles
    }

    /// The plain interception cost for a call.
    #[must_use]
    pub fn intercept_cost(&self, virtual_call: bool) -> Cycles {
        if virtual_call {
            self.intercept_vsyscall
        } else {
            self.intercept
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varan_kernel::cost::CostModel;
    use varan_kernel::Sysno;

    #[test]
    fn figure_4_shape_is_reproduced() {
        let native = CostModel::default();
        let monitor = MonitorCosts::default();

        // close(-1): leader ≈ 1718, follower ≈ 257 in the paper.
        let close_native = native.native_cost(Sysno::Close, 0);
        let close_leader = close_native + monitor.leader_overhead(false, 0, 0);
        let close_follower = monitor.follower_overhead(false, 0, 0);
        assert!(close_leader > close_native);
        assert!(close_follower < close_native, "follower is cheaper than native");

        // read(512): leader pays the extra shared-memory copy.
        let read_leader = native.native_cost(Sysno::Read, 512) + monitor.leader_overhead(false, 512, 0);
        let write_leader =
            native.native_cost(Sysno::Write, 512) + monitor.leader_overhead(false, 0, 0);
        assert!(read_leader > write_leader);

        // open: the descriptor transfer dominates for both sides.
        let open_leader = native.native_cost(Sysno::Open, 0) + monitor.leader_overhead(false, 0, 1);
        let open_follower = monitor.follower_overhead(false, 0, 1);
        assert!(open_leader > 2 * native.native_cost(Sysno::Open, 0));
        assert!(open_follower > close_follower * 10);
        assert!(open_follower < open_leader);

        // time: overhead is large relatively but small absolutely.
        let time_leader = native.native_cost(Sysno::Time, 0) + monitor.leader_overhead(true, 0, 0);
        assert!(time_leader < close_native);
    }

    #[test]
    fn payload_costs_scale_linearly() {
        let monitor = MonitorCosts::default();
        assert_eq!(monitor.payload_publish(0), 0);
        assert_eq!(monitor.payload_publish(512), monitor.payload_publish_per_512);
        assert_eq!(
            monitor.payload_consume(1024),
            2 * monitor.payload_consume_per_512
        );
    }

    #[test]
    fn vsyscall_interception_uses_its_own_cost() {
        let monitor = MonitorCosts::default();
        assert_eq!(monitor.intercept_cost(true), monitor.intercept_vsyscall);
        assert_eq!(monitor.intercept_cost(false), monitor.intercept);
    }
}
