//! Record-replay on top of the event stream (§5.4 of the paper).
//!
//! VARAN's event streaming is "a variant of record-replay" whose log is
//! bounded and kept in memory.  Full record-replay is obtained by adding two
//! artificial clients: during recording, a client that behaves like a
//! follower and writes the content of the ring buffer to persistent storage;
//! during replay, a client that behaves like the leader and republishes the
//! persisted events.  This module implements that log and the two clients:
//!
//! * [`RecordLog`] — the persistent log: one entry per system call, with the
//!   arguments, result and any payload.  Its on-disk form is a journal
//!   segment of `varan_ring::journal` (the same format the leader spills for
//!   late-joining followers), so there is a single event encoding across
//!   record-replay and the elastic fleet.
//! * [`Recorder`] — wraps any [`SyscallInterface`] and appends every call to
//!   a log while forwarding it (the record-phase client).
//! * [`Replayer`] — serves system calls *from* a log without executing them
//!   (the replay-phase client), so an execution can be reproduced offline —
//!   including against several other versions at once, as the paper suggests
//!   for triaging which revisions are susceptible to a reported crash.

use std::path::Path;

use varan_kernel::syscall::{SyscallOutcome, SyscallRequest};
use varan_kernel::{Errno, Sysno};
use varan_ring::journal::{decode_segment, encode_segment, JournalRecord};
use varan_ring::EventKind;

use crate::error::CoreError;
use crate::program::SyscallInterface;

/// One recorded system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// System call number.
    pub sysno: u16,
    /// The six register arguments.
    pub args: [u64; 6],
    /// Result returned to the application.
    pub result: i64,
    /// Out-of-line payload returned to the application (e.g. `read` data).
    pub payload: Option<Vec<u8>>,
}

/// A persistent event log.
///
/// Since the elastic-fleet work there is **one** on-disk event format: a
/// saved record-replay log *is* a journal segment (first sequence 0) in the
/// encoding of [`varan_ring::journal`] — the same frames the leader spills
/// for late-joining followers.  Anything that reads journal segments can
/// read a saved log and vice versa.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordLog {
    entries: Vec<LogEntry>,
}

impl LogEntry {
    fn to_record(&self) -> JournalRecord {
        JournalRecord {
            kind: EventKind::Syscall,
            sysno: self.sysno,
            tid: 0,
            clock: 0,
            result: self.result,
            args: self.args,
            payload: self.payload.clone(),
        }
    }

    fn from_record(record: JournalRecord) -> LogEntry {
        LogEntry {
            sysno: record.sysno,
            args: record.args,
            result: record.result,
            payload: record.payload,
        }
    }
}

impl RecordLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        RecordLog::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: LogEntry) {
        self.entries.push(entry);
    }

    /// The recorded entries, in execution order.
    #[must_use]
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of recorded entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes of payload data captured.
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|entry| entry.payload.as_ref().map(Vec::len).unwrap_or(0))
            .sum()
    }

    /// Serialises the log as a single journal segment with first sequence 0.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let records: Vec<JournalRecord> =
            self.entries.iter().map(LogEntry::to_record).collect();
        encode_segment(0, &records)
    }

    /// Decodes a log previously produced by [`RecordLog::encode`] (or any
    /// complete journal segment).
    ///
    /// Decoding is strict, fully bounds-checked and checksum-verified
    /// (per-frame CRC32C plus the sealed-segment trailer hash,
    /// docs/DURABILITY.md): a truncated, torn or corrupt input returns
    /// [`CoreError::CorruptLog`] naming the failing byte offset, never a
    /// panic and never a silently altered log.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptLog`] if the bytes are malformed.
    pub fn decode(bytes: &[u8]) -> Result<Self, CoreError> {
        let (_first_seq, records) = decode_segment(bytes)
            .map_err(|err| CoreError::CorruptLog(err.to_string()))?;
        Ok(RecordLog {
            entries: records.into_iter().map(LogEntry::from_record).collect(),
        })
    }

    /// Writes the encoded log to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptLog`] wrapping the I/O error message.
    pub fn save(&self, path: &Path) -> Result<(), CoreError> {
        std::fs::write(path, self.encode())
            .map_err(|err| CoreError::CorruptLog(format!("write {}: {err}", path.display())))
    }

    /// Loads an encoded log from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptLog`] for I/O or decoding failures.
    pub fn load(path: &Path) -> Result<Self, CoreError> {
        let bytes = std::fs::read(path)
            .map_err(|err| CoreError::CorruptLog(format!("read {}: {err}", path.display())))?;
        RecordLog::decode(&bytes)
    }
}

/// The record-phase client: forwards calls to an inner interface and appends
/// each one to the log.
pub struct Recorder {
    inner: Box<dyn SyscallInterface>,
    log: RecordLog,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("entries", &self.log.len()).finish()
    }
}

impl Recorder {
    /// Wraps `inner`, recording every call that passes through.
    #[must_use]
    pub fn new(inner: Box<dyn SyscallInterface>) -> Self {
        Recorder {
            inner,
            log: RecordLog::new(),
        }
    }

    /// Finishes recording and returns the log.
    #[must_use]
    pub fn into_log(self) -> RecordLog {
        self.log
    }

    /// The log recorded so far.
    #[must_use]
    pub fn log(&self) -> &RecordLog {
        &self.log
    }
}

impl SyscallInterface for Recorder {
    fn syscall(&mut self, request: &SyscallRequest) -> SyscallOutcome {
        let outcome = self.inner.syscall(request);
        self.log.push(LogEntry {
            sysno: request.sysno.number(),
            args: request.args,
            result: outcome.result,
            payload: outcome.data.clone(),
        });
        outcome
    }

    fn spawn_thread(&mut self) -> Box<dyn SyscallInterface> {
        // Recording is per main tuple in this reproduction; spawned threads
        // pass through unrecorded (the same simplification the ring-based
        // recorder client would make for its extra consumer slot).
        self.inner.spawn_thread()
    }

    fn cpu_work(&mut self, cycles: u64) {
        self.inner.cpu_work(cycles);
    }
}

/// The replay-phase client: serves system calls from a previously recorded
/// log without executing anything.
#[derive(Debug, Clone)]
pub struct Replayer {
    log: RecordLog,
    position: usize,
    mismatches: u64,
}

impl Replayer {
    /// Creates a replayer over `log`.
    #[must_use]
    pub fn new(log: RecordLog) -> Self {
        Replayer {
            log,
            position: 0,
            mismatches: 0,
        }
    }

    /// Number of entries already replayed.
    #[must_use]
    pub fn position(&self) -> usize {
        self.position
    }

    /// Number of calls that did not match the recorded sequence.
    #[must_use]
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }

    /// Returns `true` once the whole log has been replayed.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.position >= self.log.len()
    }
}

impl SyscallInterface for Replayer {
    fn syscall(&mut self, request: &SyscallRequest) -> SyscallOutcome {
        let Some(entry) = self.log.entries().get(self.position) else {
            return SyscallOutcome::err(request.sysno, Errno::ENOSYS, 0);
        };
        self.position += 1;
        if entry.sysno != request.sysno.number() {
            self.mismatches += 1;
        }
        let sysno = Sysno::from_number(entry.sysno).unwrap_or(request.sysno);
        let mut outcome = SyscallOutcome::ok(sysno, entry.result, 0);
        if let Some(payload) = &entry.payload {
            outcome = outcome.with_data(payload.clone());
        }
        outcome
    }

    fn spawn_thread(&mut self) -> Box<dyn SyscallInterface> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{DirectExecutor, ProgramExit, VersionProgram};
    use varan_kernel::Kernel;

    struct SmallWorkload;

    impl VersionProgram for SmallWorkload {
        fn name(&self) -> String {
            "small-workload".to_owned()
        }

        fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
            let fd = sys.open("/dev/zero", 0);
            for _ in 0..5 {
                let data = sys.read(fd as i32, 32);
                sys.write(1, &data);
                sys.time();
            }
            sys.close(fd as i32);
            ProgramExit::Exited(0)
        }
    }

    #[test]
    fn recording_captures_every_call_in_order() {
        let kernel = Kernel::new();
        let mut recorder = Recorder::new(Box::new(DirectExecutor::new(&kernel, "record")));
        SmallWorkload.run(&mut recorder);
        let log = recorder.into_log();
        // open + 5 * (read + write + time) + close = 17 calls.
        assert_eq!(log.len(), 17);
        assert!(!log.is_empty());
        assert_eq!(log.entries()[0].sysno, Sysno::Open.number());
        assert_eq!(log.entries()[16].sysno, Sysno::Close.number());
        assert!(log.payload_bytes() >= 5 * 32);
    }

    #[test]
    fn encode_decode_round_trips() {
        let kernel = Kernel::new();
        let mut recorder = Recorder::new(Box::new(DirectExecutor::new(&kernel, "encode")));
        SmallWorkload.run(&mut recorder);
        let log = recorder.into_log();
        let decoded = RecordLog::decode(&log.encode()).unwrap();
        assert_eq!(decoded, log);
    }

    #[test]
    fn decode_rejects_corrupt_logs() {
        assert!(matches!(
            RecordLog::decode(b"junk"),
            Err(CoreError::CorruptLog(_))
        ));
        let mut bytes = RecordLog::new().encode();
        bytes[0] = b'X';
        assert!(RecordLog::decode(&bytes).is_err());
        // Truncated payload.
        let kernel = Kernel::new();
        let mut recorder = Recorder::new(Box::new(DirectExecutor::new(&kernel, "t")));
        SmallWorkload.run(&mut recorder);
        let mut bytes = recorder.into_log().encode();
        bytes.truncate(bytes.len() - 8);
        assert!(RecordLog::decode(&bytes).is_err());
    }

    #[test]
    fn saved_logs_are_journal_segments() {
        // One on-disk event format: a saved RecordLog decodes as a journal
        // segment, and a journal segment of syscall records decodes as a log.
        let kernel = Kernel::new();
        let mut recorder = Recorder::new(Box::new(DirectExecutor::new(&kernel, "seg")));
        SmallWorkload.run(&mut recorder);
        let log = recorder.into_log();
        let bytes = log.encode();
        let (first_seq, records) = varan_ring::journal::decode_segment(&bytes).unwrap();
        assert_eq!(first_seq, 0);
        assert_eq!(records.len(), log.len());
        assert_eq!(records[0].sysno, Sysno::Open.number());
        let reencoded = varan_ring::journal::encode_segment(0, &records);
        assert_eq!(RecordLog::decode(&reencoded).unwrap(), log);
    }

    #[test]
    fn decode_reports_offsets_for_midstream_corruption() {
        let kernel = Kernel::new();
        let mut recorder = Recorder::new(Box::new(DirectExecutor::new(&kernel, "mid")));
        SmallWorkload.run(&mut recorder);
        let mut bytes = recorder.into_log().encode();
        // Flip the first frame's kind byte to an unknown value: corruption,
        // reported with its byte offset instead of a panic.
        bytes[16] = 0xEE;
        match RecordLog::decode(&bytes) {
            Err(CoreError::CorruptLog(reason)) => {
                assert!(reason.contains("byte 16"), "unexpected reason: {reason}")
            }
            other => panic!("expected CorruptLog, got {other:?}"),
        }
        // A payload length pointing past the end is truncation, not a panic.
        let kernel = Kernel::new();
        let mut recorder = Recorder::new(Box::new(DirectExecutor::new(&kernel, "mid2")));
        SmallWorkload.run(&mut recorder);
        let mut bytes = recorder.into_log().encode();
        // The final frame (close, no payload) is: 79-byte header ending in
        // the payload-length marker, then the 4-byte frame CRC, then the
        // 16-byte segment trailer.  Make the length field claim a megabyte
        // that is not there.
        let marker_end = bytes.len() - 16 - 4;
        bytes[marker_end - 8..marker_end].copy_from_slice(&(1u64 << 20).to_le_bytes());
        assert!(RecordLog::decode(&bytes).is_err());
        // And corrupting the segment trailer itself is equally detected.
        let mut bytes = recorder_bytes();
        let len = bytes.len();
        bytes[len - 1] ^= 0xFF;
        assert!(RecordLog::decode(&bytes).is_err());
    }

    fn recorder_bytes() -> Vec<u8> {
        let kernel = Kernel::new();
        let mut recorder = Recorder::new(Box::new(DirectExecutor::new(&kernel, "mid3")));
        SmallWorkload.run(&mut recorder);
        recorder.into_log().encode()
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_harmless() {
        // End-to-end checksum pin for the record-replay surface: flipping
        // any byte of a saved log either fails decoding with a located
        // error or (never, for a flip — but the contract is the point)
        // round-trips to the identical log.  No silent absorption.
        let bytes = recorder_bytes();
        let original = RecordLog::decode(&bytes).unwrap();
        for at in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[at] ^= 0x01;
            match RecordLog::decode(&flipped) {
                Err(CoreError::CorruptLog(_)) => {}
                Err(other) => panic!("unexpected error kind at byte {at}: {other:?}"),
                Ok(decoded) => {
                    assert_eq!(decoded, original, "flip at byte {at} silently absorbed");
                }
            }
        }
    }

    #[test]
    fn file_save_and_load_round_trip() {
        let kernel = Kernel::new();
        let mut recorder = Recorder::new(Box::new(DirectExecutor::new(&kernel, "file")));
        SmallWorkload.run(&mut recorder);
        let log = recorder.into_log();
        let path = std::env::temp_dir().join(format!(
            "varan-recordlog-test-{}.bin",
            std::process::id()
        ));
        log.save(&path).unwrap();
        let loaded = RecordLog::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, log);
        assert!(RecordLog::load(Path::new("/nonexistent/varan.log")).is_err());
    }

    #[test]
    fn replay_reproduces_the_recorded_execution_without_a_kernel() {
        let kernel = Kernel::new();
        kernel
            .populate_file("/var/www/data.bin", vec![7u8; 64])
            .unwrap();
        let mut recorder = Recorder::new(Box::new(DirectExecutor::new(&kernel, "rec")));
        SmallWorkload.run(&mut recorder);
        let log = recorder.into_log();

        // Replay against a *replayer*: no kernel involved at all.
        let mut replayer = Replayer::new(log);
        let exit = SmallWorkload.run(&mut replayer);
        assert!(exit.is_clean());
        assert!(replayer.finished());
        assert_eq!(replayer.mismatches(), 0);
    }

    #[test]
    fn replay_detects_divergent_executions() {
        let kernel = Kernel::new();
        let mut recorder = Recorder::new(Box::new(DirectExecutor::new(&kernel, "rec")));
        SmallWorkload.run(&mut recorder);
        let mut replayer = Replayer::new(recorder.into_log());

        struct DifferentWorkload;
        impl VersionProgram for DifferentWorkload {
            fn name(&self) -> String {
                "different".to_owned()
            }
            fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
                sys.time(); // recorded log starts with open, not time
                ProgramExit::Exited(0)
            }
        }
        DifferentWorkload.run(&mut replayer);
        assert_eq!(replayer.mismatches(), 1);
    }

    #[test]
    fn replaying_past_the_end_reports_enosys() {
        let mut replayer = Replayer::new(RecordLog::new());
        let outcome = replayer.syscall(&SyscallRequest::time());
        assert_eq!(outcome.errno(), Some(Errno::ENOSYS));
        assert!(replayer.finished());
    }
}
