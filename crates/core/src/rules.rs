//! System-call sequence rewrite rules (§2.3 and §3.4).
//!
//! When a follower's next system call does not match the next event streamed
//! by the leader, the follower consults its rewrite rules before giving up.
//! Rules are BPF programs in the seccomp dialect with VARAN's `event`
//! extension (see `varan-bpf`): the filter inspects the follower's attempted
//! call (`ld [0]`, arguments at `ld [16]`…) and the leader's upcoming events
//! (`ld event[k]`), and returns `SECCOMP_RET_ALLOW` to permit the divergence
//! or `SECCOMP_RET_KILL` to terminate the follower.
//!
//! Two rule lists exist, matching the two divergence categories from §2.3:
//!
//! * **addition** rules fire when the *follower* wants to execute a call the
//!   leader did not (the follower executes it locally and the leader's event
//!   stream is left untouched);
//! * **removal** rules fire when the *leader* executed a call the follower
//!   does not issue (the leader's event is skipped).
//!
//! Coalescing patterns are expressed as a combination of the two.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use varan_bpf::asm::assemble;
use varan_bpf::seccomp::{RetValue, SeccompData};
use varan_bpf::vm::{FilterContext, Vm};
use varan_bpf::Program;
use varan_kernel::syscall::SyscallRequest;

use crate::error::CoreError;

/// How a detected divergence should be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleAction {
    /// The follower executes its additional system call locally and retries
    /// matching against the same leader event.
    ExecuteExtra,
    /// The leader's event is dropped and the follower retries matching its
    /// call against the next event.
    SkipLeaderEvent,
    /// The follower is killed (no rule allowed the divergence).
    Kill,
}

/// A compiled rewrite rule.
#[derive(Debug, Clone)]
struct Rule {
    name: String,
    program: Program,
}

/// The follower-side rewrite-rule engine.
#[derive(Debug, Clone, Default)]
pub struct RuleEngine {
    addition_rules: Vec<Rule>,
    removal_rules: Vec<Rule>,
}

impl RuleEngine {
    /// Creates an engine with no rules (any divergence kills the follower,
    /// which is the behaviour of prior lock-step NVX systems).
    #[must_use]
    pub fn new() -> Self {
        RuleEngine::default()
    }

    /// Returns `true` if no rules are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.addition_rules.is_empty() && self.removal_rules.is_empty()
    }

    /// Number of installed rules (addition + removal).
    #[must_use]
    pub fn len(&self) -> usize {
        self.addition_rules.len() + self.removal_rules.len()
    }

    /// Installs an *addition* rule from BPF assembly text (the format of
    /// Listing 1 in the paper).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Rule`] if the program does not assemble or fails
    /// verification.
    pub fn add_addition_rule(&mut self, name: &str, source: &str) -> Result<(), CoreError> {
        let program = assemble(source).map_err(|err| CoreError::Rule(err.to_string()))?;
        self.addition_rules.push(Rule {
            name: name.to_owned(),
            program,
        });
        Ok(())
    }

    /// Installs a *removal* rule from BPF assembly text.  The filter sees the
    /// leader's surplus event as `ld event[0]` and the follower's next call
    /// as `ld [0]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Rule`] if the program does not assemble or fails
    /// verification.
    pub fn add_removal_rule(&mut self, name: &str, source: &str) -> Result<(), CoreError> {
        let program = assemble(source).map_err(|err| CoreError::Rule(err.to_string()))?;
        self.removal_rules.push(Rule {
            name: name.to_owned(),
            program,
        });
        Ok(())
    }

    /// Convenience: installs an addition rule allowing the follower to
    /// execute `extra` whenever the leader's next event is `leader_next`.
    ///
    /// # Errors
    ///
    /// Propagates assembly errors (should not happen for generated rules).
    pub fn allow_extra_call(
        &mut self,
        name: &str,
        extra: u16,
        leader_next: u16,
    ) -> Result<(), CoreError> {
        let source = format!(
            "ld event[0]\n jeq #{leader_next}, check\n jmp bad\ncheck: ld [0]\n jeq #{extra}, good\nbad: ret #0\ngood: ret #0x7fff0000\n"
        );
        self.add_addition_rule(name, &source)
    }

    /// Convenience: installs a removal rule allowing the leader's `surplus`
    /// event to be skipped whenever the follower's next call is
    /// `follower_next`.
    ///
    /// # Errors
    ///
    /// Propagates assembly errors (should not happen for generated rules).
    pub fn allow_skipped_call(
        &mut self,
        name: &str,
        surplus: u16,
        follower_next: u16,
    ) -> Result<(), CoreError> {
        let source = format!(
            "ld event[0]\n jeq #{surplus}, check\n jmp bad\ncheck: ld [0]\n jeq #{follower_next}, good\nbad: ret #0\ngood: ret #0x7fff0000\n"
        );
        self.add_removal_rule(name, &source)
    }

    fn run_rules(
        rules: &[Rule],
        follower: &SyscallRequest,
        leader_events: &[u32],
    ) -> Option<String> {
        let data = SeccompData::for_syscall(i32::from(follower.sysno.number()), &follower.args);
        let context = FilterContext::new(data).with_leader_events(leader_events.to_vec());
        for rule in rules {
            let vm = match Vm::new(&rule.program) {
                Ok(vm) => vm,
                Err(_) => continue,
            };
            if let Ok(verdict) = vm.run(&context) {
                if RetValue::decode(verdict) == RetValue::Allow {
                    return Some(rule.name.clone());
                }
            }
        }
        None
    }

    /// Resolves a divergence: the follower attempted `follower` while the
    /// leader's upcoming events (current first) are `leader_events`.
    ///
    /// Returns the action to take and, when a rule fired, its name.
    #[must_use]
    pub fn evaluate(
        &self,
        follower: &SyscallRequest,
        leader_events: &[u32],
    ) -> (RuleAction, Option<String>) {
        if let Some(name) = Self::run_rules(&self.addition_rules, follower, leader_events) {
            return (RuleAction::ExecuteExtra, Some(name));
        }
        if let Some(name) = Self::run_rules(&self.removal_rules, follower, leader_events) {
            return (RuleAction::SkipLeaderEvent, Some(name));
        }
        (RuleAction::Kill, None)
    }

    /// The exact rule from Listing 1 of the paper, which allows Lighttpd
    /// revision 2436 (follower) to issue its additional `getuid`/`getgid`
    /// checks while running against revision 2435 as leader.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for signature consistency.
    pub fn with_listing_1(mut self) -> Result<Self, CoreError> {
        self.add_addition_rule(
            "lighttpd-2436-issetugid",
            r"
            ld event[0]
            jeq #108, getegid   /* __NR_getegid */
            jeq #2, open        /* __NR_open */
            jmp bad
        getegid:
            ld [0]              /* offsetof(struct seccomp_data, nr) */
            jeq #102, good      /* __NR_getuid */
        open:
            ld [0]
            jeq #104, good      /* __NR_getgid */
        bad: ret #0             /* SECCOMP_RET_KILL */
        good: ret #0x7fff0000   /* SECCOMP_RET_ALLOW */
        ",
        )?;
        Ok(self)
    }
}

/// Per-follower rewrite-rule scoping.
///
/// The base system shares one [`RuleEngine`] between every follower, which is
/// fine when all followers run the same pair of revisions — but the live
/// upgrade pipeline (`crate::upgrade`) runs *different* revision pairs
/// concurrently: a canary replaying the current leader needs rules for its
/// own divergences, while a retired ex-leader following the freshly promoted
/// revision needs the reverse rules, and neither set should loosen the
/// divergence checks applied to anybody else.  This registry maps a version
/// index to its own engine, falling back to the launch-time default, and
/// supports runtime install/remove so rules can be scoped to a follower for
/// exactly as long as it exists.
#[derive(Debug, Default)]
pub struct ScopedRules {
    default: Arc<RuleEngine>,
    scoped: RwLock<HashMap<usize, Arc<RuleEngine>>>,
}

impl ScopedRules {
    /// Creates a registry whose fallback for unscoped versions is `default`.
    #[must_use]
    pub fn new(default: RuleEngine) -> Self {
        ScopedRules {
            default: Arc::new(default),
            scoped: RwLock::new(HashMap::new()),
        }
    }

    /// The engine that governs divergences of version `index`: its scoped
    /// engine when one is installed, the launch-time default otherwise.
    #[must_use]
    pub fn engine_for(&self, index: usize) -> Arc<RuleEngine> {
        self.scoped
            .read()
            .get(&index)
            .cloned()
            .unwrap_or_else(|| Arc::clone(&self.default))
    }

    /// The launch-time default engine.
    #[must_use]
    pub fn default_engine(&self) -> Arc<RuleEngine> {
        Arc::clone(&self.default)
    }

    /// Installs (or replaces) the engine scoped to version `index`.
    pub fn install(&self, index: usize, rules: RuleEngine) {
        self.scoped.write().insert(index, Arc::new(rules));
    }

    /// Removes the engine scoped to version `index`; the version falls back
    /// to the default.  Returns `true` if a scoped engine was installed.
    pub fn remove(&self, index: usize) -> bool {
        self.scoped.write().remove(&index).is_some()
    }

    /// Number of versions with a scoped engine installed.
    #[must_use]
    pub fn scoped_count(&self) -> usize {
        self.scoped.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varan_kernel::Sysno;

    fn request(sysno: Sysno) -> SyscallRequest {
        SyscallRequest::new(sysno, [0; 6])
    }

    #[test]
    fn empty_engine_kills_all_divergences() {
        let engine = RuleEngine::new();
        assert!(engine.is_empty());
        let (action, rule) = engine.evaluate(&request(Sysno::Getuid), &[108]);
        assert_eq!(action, RuleAction::Kill);
        assert!(rule.is_none());
    }

    #[test]
    fn listing_1_allows_the_lighttpd_divergence() {
        let engine = RuleEngine::new().with_listing_1().unwrap();
        assert_eq!(engine.len(), 1);
        // Follower wants getuid (102) while leader executed getegid (108).
        let (action, rule) = engine.evaluate(&request(Sysno::Getuid), &[108]);
        assert_eq!(action, RuleAction::ExecuteExtra);
        assert_eq!(rule.as_deref(), Some("lighttpd-2436-issetugid"));
        // Follower wants getgid (104) while the leader is about to open (2).
        let (action, _) = engine.evaluate(&request(Sysno::Getgid), &[2]);
        assert_eq!(action, RuleAction::ExecuteExtra);
        // Anything else is killed.
        let (action, _) = engine.evaluate(&request(Sysno::Write), &[108]);
        assert_eq!(action, RuleAction::Kill);
    }

    #[test]
    fn generated_addition_rules_match_only_their_pair() {
        let mut engine = RuleEngine::new();
        engine
            .allow_extra_call("read-urandom", Sysno::Open.number(), Sysno::Open.number())
            .unwrap();
        engine
            .allow_extra_call("extra-read", Sysno::Read.number(), Sysno::Open.number())
            .unwrap();
        let (action, rule) = engine.evaluate(&request(Sysno::Read), &[u32::from(Sysno::Open.number())]);
        assert_eq!(action, RuleAction::ExecuteExtra);
        assert_eq!(rule.as_deref(), Some("extra-read"));
        let (action, _) = engine.evaluate(&request(Sysno::Write), &[u32::from(Sysno::Open.number())]);
        assert_eq!(action, RuleAction::Kill);
    }

    #[test]
    fn removal_rules_skip_leader_events() {
        let mut engine = RuleEngine::new();
        engine
            .allow_skipped_call("leader-extra-fcntl", Sysno::Fcntl.number(), Sysno::Write.number())
            .unwrap();
        let (action, rule) = engine.evaluate(
            &request(Sysno::Write),
            &[u32::from(Sysno::Fcntl.number()), u32::from(Sysno::Write.number())],
        );
        assert_eq!(action, RuleAction::SkipLeaderEvent);
        assert_eq!(rule.as_deref(), Some("leader-extra-fcntl"));
    }

    #[test]
    fn addition_rules_take_precedence_over_removal_rules() {
        let mut engine = RuleEngine::new();
        engine
            .allow_extra_call("extra", Sysno::Getuid.number(), Sysno::Getegid.number())
            .unwrap();
        engine
            .allow_skipped_call("skip", Sysno::Getegid.number(), Sysno::Getuid.number())
            .unwrap();
        let (action, _) = engine.evaluate(
            &request(Sysno::Getuid),
            &[u32::from(Sysno::Getegid.number())],
        );
        assert_eq!(action, RuleAction::ExecuteExtra);
    }

    #[test]
    fn scoped_rules_override_only_their_version() {
        let mut default = RuleEngine::new();
        default
            .allow_extra_call("default-extra", Sysno::Getuid.number(), Sysno::Getegid.number())
            .unwrap();
        let scoped = ScopedRules::new(default);
        let mut special = RuleEngine::new();
        special
            .allow_skipped_call("skip-egid", Sysno::Getegid.number(), Sysno::Getuid.number())
            .unwrap();
        scoped.install(7, special);
        assert_eq!(scoped.scoped_count(), 1);

        // Version 7 resolves through its own engine (removal rule) ...
        let (action, _) = scoped
            .engine_for(7)
            .evaluate(&request(Sysno::Getuid), &[u32::from(Sysno::Getegid.number())]);
        assert_eq!(action, RuleAction::SkipLeaderEvent);
        // ... while every other version still uses the default (addition rule).
        let (action, _) = scoped
            .engine_for(3)
            .evaluate(&request(Sysno::Getuid), &[u32::from(Sysno::Getegid.number())]);
        assert_eq!(action, RuleAction::ExecuteExtra);

        // Removal falls back to the default.
        assert!(scoped.remove(7));
        assert!(!scoped.remove(7));
        let (action, _) = scoped
            .engine_for(7)
            .evaluate(&request(Sysno::Getuid), &[u32::from(Sysno::Getegid.number())]);
        assert_eq!(action, RuleAction::ExecuteExtra);
    }

    #[test]
    fn malformed_rules_are_rejected() {
        let mut engine = RuleEngine::new();
        let err = engine.add_addition_rule("broken", "frobnicate #1").unwrap_err();
        assert!(matches!(err, CoreError::Rule(_)));
        let err = engine
            .add_removal_rule("no-return", "ld [0]")
            .unwrap_err();
        assert!(matches!(err, CoreError::Rule(_)));
    }
}
