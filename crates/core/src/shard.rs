//! The sharded coordinator: leader, followers, observers, failover and
//! planned handover over a **ring set** instead of a single ring.
//!
//! PR 1–5 built the full Varan stack — leader/follower streaming, elastic
//! fleet, live upgrades — on one shared ring, which caps aggregate
//! throughput at the contention of a single gating sequence.  This module
//! re-hosts the orchestration layers on `varan_ring::ShardSet`: every event
//! is keyed to a shard by its connection/descriptor at capture time
//! (`varan_kernel::shard::connection_key`), and every control-plane
//! operation — follower replay, divergence monitoring, checkpoint cuts,
//! observer catch-up, failover promotion, leader handover, journal
//! retention — iterates the shard set instead of assuming a singleton.
//!
//! # Per-shard streams, global order where it matters
//!
//! Each shard's stream is totally ordered by its ring; cross-shard order is
//! carried by the leader's Lamport clock stamped on every event.  A
//! follower replays in **program order** (its own program issues the same
//! syscalls in the same order as the leader's), pulling each call's event
//! from the shard that call keys to — so it observes every shard's stream
//! in publication order and the clock only serves audits, never blocking.
//!
//! # Consistent cuts and per-shard retention
//!
//! An observer attaches at a *cut vector*: one journal-tail sequence per
//! shard, registered in the restore registry **before** the kernel snapshot
//! is taken (same order as the PR-3 single-journal protocol, per shard).
//! Each shard's retention anchor is the minimum of the in-flight cuts'
//! components for *that shard* — an idle shard is never pinned by a busy
//! shard's oldest checkpoint, and vice versa.
//!
//! # Failure domains
//!
//! A fault in one shard stays in that shard: a consumer crash on shard `s`
//! releases only shard `s`'s gate (the member unsubscribes everywhere and
//! is discarded), a torn journal tail on shard `s` loses only shard `s`'s
//! final record, and the per-shard digests let the harness say *which* lane
//! diverged.  Leader crash is the one whole-plane event: the promotion
//! protocol drains **every** shard before the successor executes natively
//! (drain-before-promote, now a vector condition).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use varan_kernel::process::Pid;
use varan_kernel::shard::connection_key;
use varan_kernel::signal::Signal;
use varan_kernel::syscall::{SyscallOutcome, SyscallRequest};
use varan_kernel::{Errno, Kernel};
use varan_ring::shard::{shard_for_key, ShardSet, ShardSpec};
use varan_ring::{
    Consumer, Event, EventJournal, JournalError, JournalRecord, Producer, SharedRegion,
    WaitStrategy, EVENT_INLINE_ARGS,
};

use crate::error::CoreError;
use crate::fleet::fold_stream_digest;
use crate::program::{ProgramExit, SyscallInterface, VersionProgram};

/// Poll interval while a follower waits for events or a verdict.
const FOLLOWER_POLL: Duration = Duration::from_micros(200);

/// How long a follower waits for a missing event before declaring the
/// stream dead (bounds every wait loop so harness bugs fail, not hang).
const STREAM_TIMEOUT: Duration = Duration::from_secs(10);

/// Journal records replayed per batch during observer catch-up.
const REPLAY_BATCH: usize = 512;

/// Sentinel for "no member" in the promotion/handover mailboxes.
const NO_MEMBER: usize = usize::MAX;

/// Configuration of a sharded N-version execution.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of independent ring/journal shards.
    pub shards: usize,
    /// Ring capacity per shard (power of two).
    pub ring_capacity: usize,
    /// Consumer slots per shard: every member (including the leader, whose
    /// slot idles until a handover demotes it) plus every observer needs
    /// one.
    pub max_members: usize,
    /// Journal directory (`seg-<shard>-*.vrj` files); `None` disables
    /// journaling, and with it observer attach.
    pub journal_dir: Option<PathBuf>,
    /// Records per journal segment.
    pub segment_records: usize,
    /// Wait strategy for every shard ring.
    pub wait: WaitStrategy,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            ring_capacity: 256,
            max_members: 4,
            journal_dir: None,
            segment_records: 4096,
            wait: WaitStrategy::Yield,
        }
    }
}

impl ShardedConfig {
    /// A config with `shards` shards and defaults elsewhere.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        ShardedConfig {
            shards,
            ..ShardedConfig::default()
        }
    }

    /// Enables the per-shard journals under `dir`.
    #[must_use]
    pub fn with_journal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Overrides the per-shard ring capacity.
    #[must_use]
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Overrides the consumer-slot budget.
    #[must_use]
    pub fn with_max_members(mut self, members: usize) -> Self {
        self.max_members = members;
        self
    }

    /// Overrides the journal segment rotation threshold.
    #[must_use]
    pub fn with_segment_records(mut self, records: usize) -> Self {
        self.segment_records = records.max(1);
        self
    }
}

/// The shard a request keys to: its connection key hashed over the set, or
/// the control shard (0) for key-less calls.
#[must_use]
pub fn shard_of(request: &SyscallRequest, shards: usize) -> usize {
    match connection_key(request) {
        Some(key) => shard_for_key(key, shards),
        None => 0,
    }
}

/// Recomputes a shard's stream digest from its journal, using the same fold
/// as the live members ([`fold_stream_digest`]).  Returns `(records, digest)`.
///
/// # Errors
///
/// Returns [`JournalError`] if the journal cannot be read back.
pub fn shard_journal_digest(
    journal: &EventJournal,
    from: u64,
) -> Result<(u64, u64), JournalError> {
    let (start, records) = journal.read_from(from, usize::MAX)?;
    let mut digest = 0u64;
    let mut seq = start;
    for record in &records {
        let payload_len = record.payload.as_ref().map(Vec::len).unwrap_or(0) as u64;
        digest = fold_stream_digest(
            digest,
            seq,
            record.sysno,
            record.result,
            record.clock,
            payload_len,
        );
        seq += 1;
    }
    Ok((records.len() as u64, digest))
}

/// Shared state of one sharded execution.
struct PlaneState {
    plane: Arc<ShardSet>,
    kernel: Kernel,
    leader_pid: Pid,
    /// Global Lamport clock stamped on every published event.
    clock: AtomicU64,
    /// Per-shard stream digests as the (current) leader publishes.
    leader_digests: Mutex<Vec<u64>>,
    /// Per-shard events published (the shard sequence counters).
    leader_counts: Vec<AtomicU64>,
    /// False once the current leader's thread has stopped executing.
    leader_alive: AtomicBool,
    /// True only if the leader stopped by crashing (enables promotion).
    leader_crashed: AtomicBool,
    /// Member index told to take over leadership (failover or handover).
    promoted: AtomicUsize,
    /// Member index a planned handover wants as successor; the leader picks
    /// this up at its next syscall boundary.
    handover: AtomicUsize,
    /// Promotions that actually happened.
    promotions: AtomicU64,
    /// In-flight observer cuts — the per-shard retention registry.
    restoring: Mutex<Vec<Vec<u64>>>,
    /// Unused consumer slots, claimed and deactivated at launch.  Every
    /// ring slot starts *active* at sequence zero, so a slot left unclaimed
    /// would gate the producer forever after one lap; claiming and
    /// unsubscribing them up front is what makes `max_members` a budget
    /// rather than a requirement.  Observers draw their consumer sets from
    /// this pool.
    spare: Mutex<Vec<(usize, Vec<Consumer<Event>>)>>,
    /// Set once the member programs have all finished (observers drain and
    /// exit when they reach the final cursor after this).
    closed: AtomicBool,
}

impl PlaneState {
    fn shards(&self) -> usize {
        self.plane.len()
    }

    /// Re-anchors every shard's journal at the oldest in-flight cut for
    /// *that shard* (or its own tail when nothing is restoring) — the
    /// per-shard retention rule.
    fn refresh_anchors(&self) {
        let restoring = self.restoring.lock();
        let cut: Vec<u64> = (0..self.shards())
            .map(|s| {
                restoring
                    .iter()
                    .filter_map(|c| c.get(s).copied())
                    .min()
                    .unwrap_or_else(|| match self.plane.shard(s).journal() {
                        Some(journal) => journal.tail_sequence(),
                        None => self.plane.shard(s).published(),
                    })
            })
            .collect();
        varan_obs::global().trace("shard.anchor", cut.len() as u64, fold_cut(&cut));
        self.plane.set_anchors(&cut);
    }
}

/// Folds a cut vector into one trace operand (FNV-1a over the components).
fn fold_cut(cut: &[u64]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &seq in cut {
        for byte in seq.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Per-member shared bookkeeping.
struct MemberState {
    name: String,
    /// Per-shard digests of the stream this member observed.
    digests: Mutex<Vec<u64>>,
    /// Per-shard events observed.
    counts: Vec<AtomicU64>,
    /// Per-shard next ring sequence to consume (replaying members).
    positions: Vec<AtomicU64>,
    /// Divergences this member tolerated-then-died on.
    failure: Mutex<Option<String>>,
    alive: AtomicBool,
}

impl MemberState {
    fn new(name: String, shards: usize) -> Self {
        MemberState {
            name,
            digests: Mutex::new(vec![0; shards]),
            counts: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            positions: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            failure: Mutex::new(None),
            alive: AtomicBool::new(true),
        }
    }

    fn fail(&self, reason: String) {
        let mut failure = self.failure.lock();
        if failure.is_none() {
            *failure = Some(reason);
        }
        self.alive.store(false, Ordering::Release);
    }
}

/// A member's role at a given moment.
enum Role {
    Leader {
        producers: Vec<Producer<Event>>,
        /// Per-shard windows of live pool regions; bounded by ring capacity
        /// so a payload outlives its event's residency in the ring.
        windows: Vec<VecDeque<SharedRegion>>,
    },
    Follower {
        consumers: Vec<Consumer<Event>>,
        staged: Vec<VecDeque<StagedEvent>>,
    },
}

struct StagedEvent {
    seq: u64,
    event: Event,
    payload: Option<Vec<u8>>,
}

struct MemberInner {
    role: Role,
    member: usize,
    /// Consumer set claimed for this member at launch but currently idle
    /// (the acting leader's own slot, waiting for a demotion).  Consumer
    /// claims are permanent on a ring, so the slot is claimed once and
    /// parked rather than re-claimed.
    parked: Option<Vec<Consumer<Event>>>,
}

/// The [`SyscallInterface`] handed to a sharded member's program.  One
/// struct serves both roles: followers become leaders (failover, handover
/// succession) and leaders become followers (handover retirement) without
/// the program noticing.
pub struct ShardedMemberIf {
    state: Arc<PlaneState>,
    me: Arc<MemberState>,
    inner: Arc<Mutex<MemberInner>>,
}

impl std::fmt::Debug for ShardedMemberIf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMemberIf")
            .field("member", &self.me.name)
            .finish()
    }
}

impl ShardedMemberIf {
    fn leader_execute(
        &self,
        inner: &mut MemberInner,
        request: &SyscallRequest,
    ) -> SyscallOutcome {
        let state = &self.state;
        // A planned handover retires this leader at the syscall boundary.
        let successor = state.handover.swap(NO_MEMBER, Ordering::AcqRel);
        if successor != NO_MEMBER && successor != inner.member {
            self.demote(inner, successor);
            return self.follower_replay(inner, request);
        }

        let (shard, event, outcome) = self.leader_capture(inner, request);
        let Role::Leader { producers, .. } = &mut inner.role else {
            unreachable!("leader_execute called on a follower");
        };
        producers[shard].publish(event);
        outcome
    }

    /// Executes and records a whole batch on the leader, publishing each
    /// shard's events through one `publish_batch` reservation.  Journal
    /// appends for the entire batch land before any ring publish, which is
    /// strictly stronger than the per-event journal-before-publish
    /// invariant the catch-up protocol relies on.
    fn leader_execute_batch(
        &self,
        inner: &mut MemberInner,
        requests: &[SyscallRequest],
    ) -> Vec<SyscallOutcome> {
        let state = &self.state;
        let successor = state.handover.swap(NO_MEMBER, Ordering::AcqRel);
        if successor != NO_MEMBER && successor != inner.member {
            self.demote(inner, successor);
            return requests
                .iter()
                .map(|request| self.follower_replay(inner, request))
                .collect();
        }

        let mut outcomes = Vec::with_capacity(requests.len());
        let mut per_shard: Vec<Vec<Event>> = (0..state.shards()).map(|_| Vec::new()).collect();
        for request in requests {
            let (shard, event, outcome) = self.leader_capture(inner, request);
            per_shard[shard].push(event);
            outcomes.push(outcome);
        }
        let Role::Leader { producers, .. } = &mut inner.role else {
            unreachable!("leader_execute_batch called on a follower");
        };
        for (shard, events) in per_shard.into_iter().enumerate() {
            if events.is_empty() {
                continue;
            }
            // A batch larger than the ring cannot be reserved at once.
            let capacity = state.plane.shard(shard).ring().capacity().max(1);
            for chunk in events.chunks(capacity) {
                let _ = producers[shard].publish_batch(chunk);
            }
        }
        outcomes
    }

    /// The record path shared by the single and batched leader calls:
    /// executes on the kernel, copies the payload into the shard's pool,
    /// appends to the shard journal and folds the stream digest — i.e.
    /// everything *except* the ring publish, which the caller performs
    /// (individually or via `publish_batch`).
    fn leader_capture(
        &self,
        inner: &mut MemberInner,
        request: &SyscallRequest,
    ) -> (usize, Event, SyscallOutcome) {
        let state = &self.state;
        let shard = shard_of(request, state.shards());
        let outcome = state.kernel.syscall(state.leader_pid, request);
        let clock = state.clock.fetch_add(1, Ordering::AcqRel) + 1;

        let Role::Leader { windows, .. } = &mut inner.role else {
            unreachable!("leader_capture called on a follower");
        };
        let payload = outcome.data.clone();
        let payload_len = payload.as_ref().map(Vec::len).unwrap_or(0) as u64;
        let mut event = Event::syscall(
            request.sysno.number(),
            &request.args[..EVENT_INLINE_ARGS],
            outcome.result,
        )
        .with_clock(clock);
        if let Some(bytes) = &payload {
            if let Ok(region) = state.plane.shard(shard).pool().alloc_and_write(bytes) {
                event = event.with_shared(region.ptr());
                let window = &mut windows[shard];
                window.push_back(region);
                while window.len() > state.plane.shard(shard).ring().capacity() {
                    if let Some(old) = window.pop_front() {
                        let _ = state.plane.shard(shard).pool().free(old);
                    }
                }
            }
        }

        // Journal-append BEFORE ring-publish: the per-shard replay/catch-up
        // handover is race-free only while each shard's journal coverage is
        // a superset of its ring stream.
        let seq = match state.plane.shard(shard).journal() {
            Some(journal) => {
                let record = JournalRecord {
                    kind: event.kind(),
                    sysno: event.sysno(),
                    tid: 0,
                    clock,
                    result: outcome.result,
                    args: request.args,
                    payload: payload.clone(),
                };
                journal.append(record).unwrap_or_else(|_| {
                    state.leader_counts[shard].load(Ordering::Acquire)
                })
            }
            None => state.leader_counts[shard].load(Ordering::Acquire),
        };

        {
            let mut digests = state.leader_digests.lock();
            digests[shard] = fold_stream_digest(
                digests[shard],
                seq,
                event.sysno(),
                outcome.result,
                clock,
                payload_len,
            );
            let mut mine = self.me.digests.lock();
            mine[shard] = digests[shard];
        }
        state.leader_counts[shard].fetch_add(1, Ordering::AcqRel);
        self.me.counts[shard].fetch_add(1, Ordering::AcqRel);
        if let Some(metrics) = varan_obs::hot() {
            metrics.events_published.add(shard, 1);
        }
        (shard, event, outcome)
    }

    /// Retires this (current) leader into a follower: gates re-register at
    /// each shard's published cursor, digests carry over, and `successor`
    /// is told to take the lead once it has drained every shard.
    fn demote(&self, inner: &mut MemberInner, successor: usize) {
        let state = &self.state;
        let published = state.plane.published_vector();
        let mut consumers = inner.parked.take().unwrap_or_default();
        for (shard, consumer) in consumers.iter_mut().enumerate() {
            consumer.resume_at(published[shard]);
            self.me.positions[shard].store(published[shard], Ordering::Release);
        }
        {
            // The retiring leader has observed the whole stream; its member
            // digest continues from the global one.
            let digests = state.leader_digests.lock();
            *self.me.digests.lock() = digests.clone();
        }
        let staged = (0..state.shards()).map(|_| VecDeque::new()).collect();
        inner.role = Role::Follower { consumers, staged };
        state.promoted.store(successor, Ordering::Release);
        varan_obs::global().trace("shard.demote", inner.member as u64, successor as u64);
    }

    /// Promotes this (drained) follower into the leader role.
    fn promote(&self, inner: &mut MemberInner) {
        let state = &self.state;
        let previous = std::mem::replace(
            &mut inner.role,
            Role::Leader {
                producers: state.plane.producers(),
                windows: (0..state.shards()).map(|_| VecDeque::new()).collect(),
            },
        );
        if let Role::Follower { mut consumers, .. } = previous {
            for consumer in consumers.iter_mut() {
                consumer.unsubscribe();
            }
            // Park the slot: a later demotion (handover rotation) re-arms it.
            inner.parked = Some(consumers);
        }
        {
            // Continuity: the successor observed the full stream, so the
            // global digests continue from its member digests.
            let mine = self.me.digests.lock();
            *state.leader_digests.lock() = mine.clone();
        }
        state.promoted.store(NO_MEMBER, Ordering::Release);
        state.promotions.fetch_add(1, Ordering::AcqRel);
        state.leader_alive.store(true, Ordering::Release);
        state.leader_crashed.store(false, Ordering::Release);
        let obs = varan_obs::global();
        obs.metrics.promotions.add(1);
        obs.trace("shard.promote", inner.member as u64, 0);
    }

    fn refill(&self, inner: &mut MemberInner, shard: usize) -> usize {
        let state = &self.state;
        let Role::Follower { consumers, staged } = &mut inner.role else {
            return 0;
        };
        let mut events = Vec::new();
        let consumer = &mut consumers[shard];
        let base = consumer.next_sequence();
        // Peek (copying payloads while the slots are still gated), then
        // advance once for the whole batch.
        let taken = consumer.peek_batch(&mut events, usize::MAX);
        for (i, event) in events.iter().enumerate() {
            let payload = if event.has_payload() {
                Some(state.plane.shard(shard).pool().read(event.shared()))
            } else {
                None
            };
            staged[shard].push_back(StagedEvent {
                seq: base + i as u64,
                event: *event,
                payload,
            });
        }
        consumer.advance(taken);
        self.me.positions[shard].store(consumer.next_sequence(), Ordering::Release);
        taken
    }

    fn refill_all(&self, inner: &mut MemberInner) -> usize {
        (0..self.state.shards())
            .map(|shard| self.refill(inner, shard))
            .sum()
    }

    /// True when this follower has consumed and replayed everything the
    /// leader ever published — the vector drain-before-promote condition.
    fn fully_drained(&self, inner: &MemberInner) -> bool {
        let state = &self.state;
        let Role::Follower { consumers, staged } = &inner.role else {
            return false;
        };
        let published = state.plane.published_vector();
        (0..state.shards()).all(|s| {
            staged[s].is_empty() && consumers[s].next_sequence() >= published[s]
        })
    }

    fn follower_replay(
        &self,
        inner: &mut MemberInner,
        request: &SyscallRequest,
    ) -> SyscallOutcome {
        let state = &self.state;
        let shard = shard_of(request, state.shards());
        let clock_source = state.kernel.wait_clock();
        let deadline = clock_source.deadline(STREAM_TIMEOUT);
        loop {
            if self.me.failure.lock().is_some() {
                return SyscallOutcome::err(request.sysno, Errno::EPIPE, 1);
            }
            let staged_event = {
                let Role::Follower { staged, .. } = &mut inner.role else {
                    unreachable!("follower_replay called on a leader");
                };
                staged[shard].pop_front()
            };
            if let Some(staged_event) = staged_event {
                return self.consume(inner, request, staged_event, shard);
            }
            if self.refill(inner, shard) > 0 {
                continue;
            }
            // Nothing on this shard: check for a takeover verdict.
            if state.promoted.load(Ordering::Acquire) == inner.member {
                self.refill_all(inner);
                if self.fully_drained(inner) {
                    self.promote(inner);
                    return self.leader_execute(inner, request);
                }
                // Events remain on other shards: the program will replay
                // through them before it can take over, but the event for
                // *this* request may itself still be in flight — fall
                // through and keep waiting on this shard.
            }
            if deadline.expired() {
                self.me.fail(format!(
                    "follower {}: timed out waiting for {} on shard {shard}",
                    self.me.name,
                    request.sysno.name(),
                ));
                return SyscallOutcome::err(request.sysno, Errno::EPIPE, 1);
            }
            clock_source.sleep(FOLLOWER_POLL);
        }
    }

    fn consume(
        &self,
        inner: &mut MemberInner,
        request: &SyscallRequest,
        staged: StagedEvent,
        shard: usize,
    ) -> SyscallOutcome {
        let StagedEvent {
            seq,
            event,
            payload,
        } = staged;
        if event.sysno() != request.sysno.number() {
            // Per-shard divergence: the member leaves the plane, releasing
            // its gates everywhere — the blast radius is this member, not
            // the shard and not the plane.
            if let Role::Follower { consumers, .. } = &mut inner.role {
                for consumer in consumers.iter_mut() {
                    consumer.unsubscribe();
                }
            }
            self.me.fail(format!(
                "follower {}: divergence on shard {shard}: attempted {} while leader published {}",
                self.me.name,
                request.sysno.name(),
                event.sysno(),
            ));
            return SyscallOutcome::err(request.sysno, Errno::EPIPE, 1);
        }
        let payload_len = payload.as_ref().map(Vec::len).unwrap_or(0) as u64;
        {
            let mut digests = self.me.digests.lock();
            digests[shard] = fold_stream_digest(
                digests[shard],
                seq,
                event.sysno(),
                event.result(),
                event.clock(),
                payload_len,
            );
        }
        self.me.counts[shard].fetch_add(1, Ordering::AcqRel);
        let mut outcome = SyscallOutcome::ok(request.sysno, event.result(), 1);
        if let Some(data) = payload {
            outcome = outcome.with_data(data);
        }
        if request.sysno.creates_fd() && event.result() >= 0 {
            outcome = outcome.with_fd(event.result() as i32);
        }
        outcome
    }
}

impl SyscallInterface for ShardedMemberIf {
    fn syscall(&mut self, request: &SyscallRequest) -> SyscallOutcome {
        let inner = Arc::clone(&self.inner);
        let mut inner = inner.lock();
        match inner.role {
            Role::Leader { .. } => self.leader_execute(&mut inner, request),
            Role::Follower { .. } => self.follower_replay(&mut inner, request),
        }
    }

    fn syscall_batch(&mut self, requests: &[SyscallRequest]) -> Vec<SyscallOutcome> {
        let inner = Arc::clone(&self.inner);
        let mut inner = inner.lock();
        match inner.role {
            Role::Leader { .. } => self.leader_execute_batch(&mut inner, requests),
            Role::Follower { .. } => requests
                .iter()
                .map(|request| self.follower_replay(&mut inner, request))
                .collect(),
        }
    }

    fn spawn_thread(&mut self) -> Box<dyn SyscallInterface> {
        // Threads of one member share its role and bookkeeping; calls are
        // serialised on the member lock (the sharded plane parallelises
        // across members and shards, not within one member).
        Box::new(ShardedMemberIf {
            state: Arc::clone(&self.state),
            me: Arc::clone(&self.me),
            inner: Arc::clone(&self.inner),
        })
    }

    fn cpu_work(&mut self, cycles: u64) {
        self.state.kernel.charge_compute(cycles);
    }
}

/// Report of one member's run.
#[derive(Debug, Clone)]
pub struct ShardedMemberReport {
    /// The member's program name.
    pub name: String,
    /// How the program ended.
    pub exit: ProgramExit,
    /// Per-shard stream digests this member observed.
    pub digests: Vec<u64>,
    /// Per-shard events this member observed.
    pub counts: Vec<u64>,
    /// Why the member died, if it did.
    pub failure: Option<String>,
}

/// Report of one observer's catch-up.
#[derive(Debug, Clone)]
pub struct ShardedObserverReport {
    /// The cut vector the observer attached at.
    pub cut: Vec<u64>,
    /// Per-shard digests folded from the cut to the final cursor.
    pub digests: Vec<u64>,
    /// Per-shard events observed (journal replay + live).
    pub counts: Vec<u64>,
    /// Per-shard sequences at which the observer went live on the ring.
    pub live_at: Vec<u64>,
    /// Why the observer failed, if it did.
    pub failure: Option<String>,
}

/// Report of a whole sharded execution.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Shard count of the plane.
    pub shards: usize,
    /// Per-shard events the leader(s) published.
    pub leader_counts: Vec<u64>,
    /// Per-shard stream digests as published.
    pub leader_digests: Vec<u64>,
    /// Per-member outcomes (member 0 is the initial leader).
    pub members: Vec<ShardedMemberReport>,
    /// Observer outcomes, in attach order.
    pub observers: Vec<ShardedObserverReport>,
    /// Leadership changes (failover promotions and planned handovers).
    pub promotions: u64,
}

impl ShardedReport {
    /// Total events published across shards.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.leader_counts.iter().sum()
    }

    /// True if every surviving member's per-shard digests match the
    /// published stream's (crashed members stopped mid-stream and are
    /// excluded, as are members that recorded an explicit failure).
    #[must_use]
    pub fn converged(&self) -> bool {
        self.members
            .iter()
            .filter(|m| m.failure.is_none() && !matches!(m.exit, ProgramExit::Crashed(_)))
            .all(|m| m.digests == self.leader_digests)
    }

    /// `(min, max)` events over the shards — the balance witness used by
    /// the bench's ≥64-connection scenario.
    #[must_use]
    pub fn balance(&self) -> (u64, u64) {
        let min = self.leader_counts.iter().copied().min().unwrap_or(0);
        let max = self.leader_counts.iter().copied().max().unwrap_or(0);
        (min, max)
    }
}

/// Handle on one attached observer.
#[derive(Debug)]
pub struct ShardedObserverHandle {
    handle: JoinHandle<ShardedObserverReport>,
}

/// A running sharded N-version execution.
pub struct ShardedNvx {
    state: Arc<PlaneState>,
    members: Vec<Arc<MemberState>>,
    handles: Vec<JoinHandle<ProgramExit>>,
    observers: Vec<ShardedObserverHandle>,
}

impl std::fmt::Debug for ShardedNvx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedNvx")
            .field("shards", &self.state.shards())
            .field("members", &self.members.len())
            .finish()
    }
}

impl ShardedNvx {
    /// Launches `programs` (first = leader, rest = followers) over a fresh
    /// shard set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the shard set cannot be built or the member
    /// count exceeds the slot budget.
    pub fn launch(
        kernel: &Kernel,
        programs: Vec<Box<dyn VersionProgram>>,
        config: &ShardedConfig,
    ) -> Result<ShardedNvx, CoreError> {
        if programs.is_empty() {
            return Err(CoreError::NoVersions);
        }
        if programs.len() > config.max_members {
            return Err(CoreError::Fleet(format!(
                "{} members exceed the {}-slot budget",
                programs.len(),
                config.max_members
            )));
        }
        let mut spec = ShardSpec::new(config.shards)
            .with_ring_capacity(config.ring_capacity)
            .with_consumers(config.max_members)
            .with_wait(config.wait)
            .with_segment_records(config.segment_records);
        if let Some(dir) = &config.journal_dir {
            spec = spec.with_journal_dir(dir);
        }
        let plane = Arc::new(ShardSet::new(&spec).map_err(|e| CoreError::Fleet(e.to_string()))?);
        // Claim every slot the members won't use and deactivate it NOW: an
        // unclaimed slot is born active at sequence zero and would wedge
        // every producer at its first lap.  The deactivated sets go into
        // the spare pool for observers.
        let mut spare = Vec::new();
        for slot in (programs.len()..config.max_members).rev() {
            let mut consumers = plane
                .claim_slot(slot)
                .map_err(|e| CoreError::Fleet(e.to_string()))?;
            for consumer in consumers.iter_mut() {
                consumer.unsubscribe();
            }
            spare.push((slot, consumers));
        }
        let leader_pid = kernel.spawn_process(&programs[0].name());
        let shards = plane.len();
        let state = Arc::new(PlaneState {
            plane,
            kernel: kernel.clone(),
            leader_pid,
            clock: AtomicU64::new(0),
            leader_digests: Mutex::new(vec![0; shards]),
            leader_counts: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            leader_alive: AtomicBool::new(true),
            leader_crashed: AtomicBool::new(false),
            promoted: AtomicUsize::new(NO_MEMBER),
            handover: AtomicUsize::new(NO_MEMBER),
            promotions: AtomicU64::new(0),
            restoring: Mutex::new(Vec::new()),
            spare: Mutex::new(spare),
            closed: AtomicBool::new(false),
        });

        let mut members = Vec::new();
        let mut handles = Vec::new();
        for (index, mut program) in programs.into_iter().enumerate() {
            let me = Arc::new(MemberState::new(program.name(), shards));
            members.push(Arc::clone(&me));
            // Every member claims its consumer slot up front (claims are
            // permanent); the initial leader parks its set for a later
            // demotion.
            let mut consumers = state
                .plane
                .claim_slot(index)
                .map_err(|e| CoreError::Fleet(e.to_string()))?;
            let (role, parked) = if index == 0 {
                for consumer in consumers.iter_mut() {
                    consumer.unsubscribe();
                }
                (
                    Role::Leader {
                        producers: state.plane.producers(),
                        windows: (0..shards).map(|_| VecDeque::new()).collect(),
                    },
                    Some(consumers),
                )
            } else {
                (
                    Role::Follower {
                        consumers,
                        staged: (0..shards).map(|_| VecDeque::new()).collect(),
                    },
                    None,
                )
            };
            let state_for_thread = Arc::clone(&state);
            let me_for_thread = Arc::clone(&me);
            let handle = std::thread::Builder::new()
                .name(format!("varan-shard-member-{index}"))
                .spawn(move || {
                    let mut interface = ShardedMemberIf {
                        state: Arc::clone(&state_for_thread),
                        me: Arc::clone(&me_for_thread),
                        inner: Arc::new(Mutex::new(MemberInner {
                            role,
                            member: index,
                            parked,
                        })),
                    };
                    let result =
                        catch_unwind(AssertUnwindSafe(|| program.run(&mut interface)));
                    let leading = {
                        let mut inner = interface.inner.lock();
                        // Release the member's gates so a dead program never
                        // stalls the plane.
                        if let Role::Follower { consumers, .. } = &mut inner.role {
                            for consumer in consumers.iter_mut() {
                                consumer.unsubscribe();
                            }
                        }
                        matches!(inner.role, Role::Leader { .. })
                    };
                    let exit = match result {
                        Ok(exit) => exit,
                        Err(_) => {
                            me_for_thread.fail("program panicked".to_owned());
                            ProgramExit::Crashed(Signal::Sigsegv)
                        }
                    };
                    if leading {
                        if matches!(exit, ProgramExit::Crashed(_)) {
                            state_for_thread
                                .leader_crashed
                                .store(true, Ordering::Release);
                        }
                        state_for_thread.leader_alive.store(false, Ordering::Release);
                    }
                    me_for_thread.alive.store(false, Ordering::Release);
                    exit
                })
                .expect("spawn member thread");
            handles.push(handle);
        }

        Ok(ShardedNvx {
            state,
            members,
            handles,
            observers: Vec::new(),
        })
    }

    /// The underlying shard set (benchmarks and tests inspect it).
    #[must_use]
    pub fn plane(&self) -> Arc<ShardSet> {
        Arc::clone(&self.state.plane)
    }

    /// Requests a planned leadership handover to `member` (picked up by the
    /// current leader at its next syscall boundary).
    pub fn request_handover(&self, member: usize) {
        self.state.handover.store(member, Ordering::Release);
    }

    /// Attaches an observer at a consistent cut: registers the cut in the
    /// per-shard retention registry, snapshots the kernel at it, then
    /// replays every shard's journal from its component and goes live
    /// shard-by-shard.  Requires a journaled plane.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the plane is unjournaled, the slot budget is
    /// exhausted, or the checkpoint fails.
    pub fn attach_observer(&mut self) -> Result<(), CoreError> {
        let state = Arc::clone(&self.state);
        if state.plane.shard(0).journal().is_none() {
            return Err(CoreError::Fleet(
                "observer attach requires a journaled plane".into(),
            ));
        }
        let (slot, consumers) = state
            .spare
            .lock()
            .pop()
            .ok_or_else(|| CoreError::Fleet("no observer slots left".into()))?;
        // Register the cut BEFORE snapshotting: from this instant no shard
        // may retire a segment at or above any component of it.
        let cut = {
            let mut restoring = state.restoring.lock();
            let cut = state.plane.consistent_cut();
            restoring.push(cut.clone());
            cut
        };
        varan_obs::global().trace("shard.cut", cut.len() as u64, fold_cut(&cut));
        let checkpoint = state
            .kernel
            .checkpoint_at_cut(state.leader_pid, &cut, &std::collections::HashMap::new())
            .map_err(|e| CoreError::Fleet(format!("checkpoint failed: {e:?}")))?;
        let observer_pid = state.kernel.spawn_process("shard-observer");
        state
            .kernel
            .restore_process(&checkpoint, observer_pid)
            .map_err(|e| CoreError::Fleet(format!("restore failed: {e:?}")))?;

        let handle = std::thread::Builder::new()
            .name(format!("varan-shard-observer-{slot}"))
            .spawn(move || run_observer(&state, cut, consumers))
            .expect("spawn observer thread");
        self.observers.push(ShardedObserverHandle { handle });
        Ok(())
    }

    /// Waits for every member (monitoring for leader crashes and promoting
    /// the best-placed follower), then for every observer, and assembles
    /// the report.
    #[must_use]
    pub fn wait(self) -> ShardedReport {
        let ShardedNvx {
            state,
            members,
            handles,
            observers,
        } = self;
        let clock = state.kernel.wait_clock();

        // Failover watch: while the member programs run, a crashed leader
        // triggers promotion of the live follower with the smallest total
        // backlog across the shard set.
        let mut handles: Vec<Option<JoinHandle<ProgramExit>>> =
            handles.into_iter().map(Some).collect();
        let mut exits: Vec<Option<ProgramExit>> = vec![None; handles.len()];
        loop {
            for (index, slot) in handles.iter_mut().enumerate() {
                let finished = slot.as_ref().map(|h| h.is_finished()).unwrap_or(false);
                if finished {
                    if let Some(handle) = slot.take() {
                        exits[index] = Some(handle.join().unwrap_or_else(|_| {
                            ProgramExit::Crashed(Signal::Sigsegv)
                        }));
                    }
                }
            }
            if state.leader_crashed.swap(false, Ordering::AcqRel) {
                let published = state.plane.published_vector();
                let candidate = members
                    .iter()
                    .enumerate()
                    .filter(|(i, m)| {
                        exits[*i].is_none()
                            && m.alive.load(Ordering::Acquire)
                            && m.failure.lock().is_none()
                    })
                    .min_by_key(|(_, m)| {
                        (0..state.shards())
                            .map(|s| {
                                published[s]
                                    .saturating_sub(m.positions[s].load(Ordering::Acquire))
                            })
                            .sum::<u64>()
                    })
                    .map(|(i, _)| i);
                if let Some(successor) = candidate {
                    state.promoted.store(successor, Ordering::Release);
                }
            }
            if handles.iter().all(Option::is_none) {
                break;
            }
            clock.sleep(FOLLOWER_POLL);
        }

        // Member programs are done; observers drain to the final cursor.
        state.closed.store(true, Ordering::Release);
        let observer_reports: Vec<ShardedObserverReport> = observers
            .into_iter()
            .map(|observer| {
                observer.handle.join().unwrap_or_else(|_| ShardedObserverReport {
                    cut: Vec::new(),
                    digests: Vec::new(),
                    counts: Vec::new(),
                    live_at: Vec::new(),
                    failure: Some("observer thread panicked".to_owned()),
                })
            })
            .collect();

        let member_reports = members
            .iter()
            .zip(exits)
            .map(|(member, exit)| ShardedMemberReport {
                name: member.name.clone(),
                exit: exit.unwrap_or(ProgramExit::Crashed(Signal::Sigsegv)),
                digests: member.digests.lock().clone(),
                counts: member
                    .counts
                    .iter()
                    .map(|c| c.load(Ordering::Acquire))
                    .collect(),
                failure: member.failure.lock().clone(),
            })
            .collect();

        let leader_digests = state.leader_digests.lock().clone();
        ShardedReport {
            shards: state.shards(),
            leader_counts: state
                .leader_counts
                .iter()
                .map(|c| c.load(Ordering::Acquire))
                .collect(),
            leader_digests,
            members: member_reports,
            observers: observer_reports,
            promotions: state.promotions.load(Ordering::Acquire),
        }
    }
}

/// The observer loop: per-shard journal replay from the cut, gate
/// registration within half a lap, live consumption to the final cursor.
fn run_observer(
    state: &Arc<PlaneState>,
    cut: Vec<u64>,
    mut consumers: Vec<Consumer<Event>>,
) -> ShardedObserverReport {
    let shards = state.shards();
    let mut positions = cut.clone();
    let mut digests = vec![0u64; shards];
    let mut counts = vec![0u64; shards];
    let mut live = vec![false; shards];
    let mut live_at = vec![0u64; shards];
    let mut failure: Option<String> = None;
    let clock = state.kernel.wait_clock();
    let mut finished_restore = false;

    'outer: loop {
        let mut progressed = false;
        for shard in 0..shards {
            let ring = state.plane.shard(shard).ring();
            if !live[shard] {
                let journal = state.plane.shard(shard).journal().expect("journaled plane");
                match journal.read_from(positions[shard], REPLAY_BATCH) {
                    Ok((start, records)) => {
                        if !records.is_empty() {
                            if start != positions[shard] {
                                failure = Some(format!(
                                    "observer: shard {shard} journal gap: wanted {} got {start}",
                                    positions[shard]
                                ));
                                break 'outer;
                            }
                            for record in &records {
                                let payload_len =
                                    record.payload.as_ref().map(Vec::len).unwrap_or(0) as u64;
                                digests[shard] = fold_stream_digest(
                                    digests[shard],
                                    positions[shard],
                                    record.sysno,
                                    record.result,
                                    record.clock,
                                    payload_len,
                                );
                                positions[shard] += 1;
                                counts[shard] += 1;
                            }
                            progressed = true;
                        }
                    }
                    Err(err) => {
                        failure = Some(format!("observer: shard {shard} journal: {err}"));
                        break 'outer;
                    }
                }
                // Register the gate once within half a lap of this shard's
                // cursor (per-shard registration: a laggard lane keeps
                // replaying its journal while a quiet lane goes live
                // immediately).
                let published = ring.published();
                if published.saturating_sub(positions[shard])
                    < (ring.capacity() / 2) as u64
                {
                    let tail = state
                        .plane
                        .shard(shard)
                        .journal()
                        .map(|journal| journal.tail_sequence())
                        .unwrap_or(published);
                    if tail <= positions[shard] {
                        consumers[shard].resume_at(positions[shard]);
                        live[shard] = true;
                        live_at[shard] = positions[shard];
                        progressed = true;
                    }
                }
            } else {
                let mut events = Vec::new();
                let base = consumers[shard].next_sequence();
                let taken = consumers[shard].peek_batch(&mut events, REPLAY_BATCH);
                for (i, event) in events.iter().enumerate() {
                    let payload_len = u64::from(event.shared().len());
                    digests[shard] = fold_stream_digest(
                        digests[shard],
                        base + i as u64,
                        event.sysno(),
                        event.result(),
                        event.clock(),
                        payload_len,
                    );
                    counts[shard] += 1;
                }
                consumers[shard].advance(taken);
                positions[shard] = consumers[shard].next_sequence();
                if taken > 0 {
                    progressed = true;
                }
            }
        }

        if !finished_restore && live.iter().all(|&l| l) {
            // Restore complete: withdraw this observer's cut from the
            // registry and let every shard's anchor advance independently.
            finished_restore = true;
            let mut restoring = state.restoring.lock();
            if let Some(at) = restoring.iter().position(|c| *c == cut) {
                restoring.remove(at);
            }
            drop(restoring);
            state.refresh_anchors();
        }

        if state.closed.load(Ordering::Acquire) {
            let published = state.plane.published_vector();
            let done = (0..shards).all(|s| positions[s] >= published[s]);
            if done && live.iter().all(|&l| l) {
                break;
            }
            if done {
                // The stream ended before some lane came within half a lap
                // (tiny runs): finish its replay from the journal.
                let all_tail = (0..shards).all(|s| {
                    state
                        .plane
                        .shard(s)
                        .journal()
                        .map(|j| j.tail_sequence() <= positions[s])
                        .unwrap_or(true)
                });
                if all_tail {
                    break;
                }
            }
        }
        if !progressed {
            clock.sleep(FOLLOWER_POLL);
        }
    }

    if !finished_restore {
        let mut restoring = state.restoring.lock();
        if let Some(at) = restoring.iter().position(|c| *c == cut) {
            restoring.remove(at);
        }
        drop(restoring);
        state.refresh_anchors();
    }
    for consumer in consumers.iter_mut() {
        consumer.unsubscribe();
    }
    ShardedObserverReport {
        cut,
        digests,
        counts,
        live_at,
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// A deterministic workload that spreads its traffic over several
    /// descriptors (and therefore several shards): open `files` sinks, then
    /// write to them round-robin with a key-less `time` call interleaved.
    struct ShardWorkload {
        label: String,
        files: usize,
        iterations: u32,
        crash_at: Option<u32>,
    }

    impl ShardWorkload {
        fn new(label: &str, files: usize, iterations: u32) -> Self {
            ShardWorkload {
                label: label.to_owned(),
                files,
                iterations,
                crash_at: None,
            }
        }

        fn crashing_at(mut self, at: u32) -> Self {
            self.crash_at = Some(at);
            self
        }
    }

    impl VersionProgram for ShardWorkload {
        fn name(&self) -> String {
            self.label.clone()
        }

        fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
            let mut fds = Vec::new();
            for _ in 0..self.files {
                let fd = sys.open("/dev/null", varan_kernel::fs::flags::O_WRONLY);
                assert!(fd >= 0, "open failed: {fd}");
                fds.push(fd as i32);
            }
            for i in 0..self.iterations {
                if Some(i) == self.crash_at {
                    return ProgramExit::Crashed(Signal::Sigsegv);
                }
                let fd = fds[i as usize % fds.len()];
                sys.write(fd, &[i as u8; 48]);
                if i % 3 == 0 {
                    sys.time();
                }
            }
            for fd in &fds {
                sys.close(*fd);
            }
            sys.exit(0);
            ProgramExit::Exited(0)
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "varan-core-shard-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn workloads(n: usize, files: usize, iterations: u32) -> Vec<Box<dyn VersionProgram>> {
        (0..n)
            .map(|i| {
                Box::new(ShardWorkload::new(&format!("v{i}"), files, iterations))
                    as Box<dyn VersionProgram>
            })
            .collect()
    }

    #[test]
    fn followers_converge_per_shard_over_four_lanes() {
        let kernel = Kernel::new();
        let config = ShardedConfig::new(4).with_ring_capacity(64);
        let nvx = ShardedNvx::launch(&kernel, workloads(3, 8, 60), &config).unwrap();
        let report = nvx.wait();
        for member in &report.members {
            assert!(member.failure.is_none(), "{:?}", member.failure);
            assert!(member.exit.is_clean(), "{:?}", member.exit);
        }
        assert!(report.converged(), "per-shard digests diverged: {report:?}");
        assert_eq!(report.promotions, 0);
        // The descriptor spread actually uses more than the control shard.
        let busy = report.leader_counts.iter().filter(|&&c| c > 0).count();
        assert!(busy >= 2, "traffic collapsed onto {busy} shard(s)");
        for member in &report.members[1..] {
            assert_eq!(member.counts, report.leader_counts);
        }
    }

    #[test]
    fn observer_catches_up_per_shard_from_a_consistent_cut() {
        let kernel = Kernel::new();
        let dir = temp_dir("observer");
        let config = ShardedConfig::new(4)
            .with_ring_capacity(64)
            .with_journal_dir(&dir);
        let mut nvx = ShardedNvx::launch(&kernel, workloads(2, 8, 80), &config).unwrap();
        nvx.attach_observer().unwrap();
        let plane = nvx.plane();
        let report = nvx.wait();
        assert!(report.converged());
        let observer = &report.observers[0];
        assert!(observer.failure.is_none(), "{:?}", observer.failure);
        assert_eq!(observer.cut.len(), 4);
        for shard in 0..4 {
            let journal = plane.shard(shard).journal().expect("journaled plane");
            let (records, digest) =
                shard_journal_digest(journal, observer.cut[shard]).unwrap();
            assert_eq!(
                observer.counts[shard], records,
                "shard {shard}: observer saw a different event count"
            );
            assert_eq!(
                observer.digests[shard], digest,
                "shard {shard}: observer digest diverged from the journal"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn planned_handover_rotates_leadership_without_divergence() {
        let kernel = Kernel::new();
        let config = ShardedConfig::new(4).with_ring_capacity(64);
        let nvx = ShardedNvx::launch(&kernel, workloads(3, 6, 120), &config).unwrap();
        nvx.request_handover(1);
        let report = nvx.wait();
        for member in &report.members {
            assert!(member.failure.is_none(), "{:?}", member.failure);
            assert!(member.exit.is_clean(), "{:?}", member.exit);
        }
        assert_eq!(report.promotions, 1, "handover did not happen");
        assert!(report.converged(), "digest continuity broke across handover");
        assert!(report.total_events() > 0);
    }

    #[test]
    fn leader_crash_promotes_the_most_caught_up_follower() {
        let kernel = Kernel::new();
        let config = ShardedConfig::new(4).with_ring_capacity(64);
        let programs: Vec<Box<dyn VersionProgram>> = vec![
            Box::new(ShardWorkload::new("leader", 6, 90).crashing_at(40)),
            Box::new(ShardWorkload::new("f1", 6, 90)),
            Box::new(ShardWorkload::new("f2", 6, 90)),
        ];
        let nvx = ShardedNvx::launch(&kernel, programs, &config).unwrap();
        let report = nvx.wait();
        assert!(matches!(
            report.members[0].exit,
            ProgramExit::Crashed(_)
        ));
        assert_eq!(report.promotions, 1, "no follower took over");
        for member in &report.members[1..] {
            assert!(member.failure.is_none(), "{:?}", member.failure);
            assert!(member.exit.is_clean(), "{:?}", member.exit);
        }
        assert!(report.converged(), "survivors diverged after failover");
        // The plane kept running past the crash point.
        assert!(
            report.members[1].counts.iter().sum::<u64>()
                > report.members[0].counts.iter().sum::<u64>(),
            "no post-crash progress"
        );
    }

    #[test]
    fn keyless_calls_stay_on_the_control_shard() {
        let request = varan_kernel::syscall::SyscallRequest::time();
        assert_eq!(shard_of(&request, 8), 0);
        let read = varan_kernel::syscall::SyscallRequest::read(9, 16);
        assert_eq!(shard_of(&read, 8), shard_for_key(9, 8));
    }
}
