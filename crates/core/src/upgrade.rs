//! Zero-downtime live upgrades: canary → soak → promote → retire.
//!
//! The paper's deployment scenarios treat the version set as fixed at launch:
//! §5.1 runs eight Redis revisions side by side so a crash in any one of them
//! is survived, and §5.2 keeps two Lighttpd revisions in lock-step under
//! rewrite rules — but both start every revision at boot.  The elastic fleet
//! (`crate::fleet`) made membership a runtime operation; this module composes
//! the two into a first-class **dynamic software update** pipeline an
//! operator could drive through a live service:
//!
//! 1. **Canary.** The candidate revision joins the running execution as a
//!    follower ([`crate::fleet::FleetController::attach_version`]): its
//!    program starts from the beginning and replays the complete spill
//!    journal, with its own [`RuleEngine`] scoped to it so benign
//!    syscall-sequence divergences between the revisions (§2.3/§3.4) are
//!    rewritten instead of fatal.  The outside world is untouched — the
//!    candidate never executes an external call.
//! 2. **Soak.** Once live on the ring, the candidate must replay a
//!    configurable number of events while its divergence and lag statistics
//!    are watched.  Crashing, diverging beyond its rule set, or falling
//!    behind the lag ceiling rolls the upgrade back.
//! 3. **Promote / retire.** The current leader picks up a handover ticket at
//!    its next system-call boundary: it stops publishing, re-registers on a
//!    spare ring slot at exactly the next sequence, and releases the
//!    candidate, which drains the ring and takes over through the existing
//!    promotion path — the same drain-then-switch used for crash failover,
//!    so the other followers observe one continuous stream and in-flight
//!    client connections keep being served (zero client-visible downtime).
//!    The retired leader keeps running as a follower of the new revision
//!    (with optional reverse rules scoped to it), available as an instant
//!    rollback target.
//! 4. **Rollback.** Any failure before the handover leaves the original
//!    fleet exactly as it was: the candidate is detached, its ring slot
//!    returns to the spare pool and its scoped rules are removed.
//!
//! The pipeline requires single-threaded application versions (the handover
//! executes on the leader's main monitor) and a fleet configured with
//! [`crate::fleet::FleetConfig::retain_history`].

use std::time::Duration;

use parking_lot::Mutex;

use crate::context::HandoverState;
use crate::fleet::{FleetController, VersionMember};
use crate::program::VersionProgram;
use crate::rules::RuleEngine;

/// How often the orchestrator polls member progress.  All orchestrator
/// waits and deadlines run on the execution's clock source — wall time in
/// production, virtual time under simulation — so the [`UpgradeConfig`]
/// timeouts keep their historical defaults while a simulated upgrade sweep
/// completes in wall microseconds.
const ORCHESTRATOR_POLL: Duration = Duration::from_millis(1);

/// Tunables of the upgrade pipeline.
#[derive(Debug, Clone)]
pub struct UpgradeConfig {
    /// Events the candidate must replay *live* (after catch-up) before it is
    /// considered soaked.
    pub soak_events: u64,
    /// Maximum replay backlog (events behind the leader) tolerated during
    /// soak; beyond it the candidate is rolled back as too slow to lead.
    pub lag_ceiling: u64,
    /// Bound on the canary stage (attach → live ring consumption).
    pub catch_up_timeout: Duration,
    /// Bound on the soak stage.
    pub soak_timeout: Duration,
    /// Bound on the handover (demote request → leadership switched).  Also
    /// bounds how long the orchestrator waits to observe the new leader's
    /// first published event.
    pub handover_timeout: Duration,
}

impl Default for UpgradeConfig {
    fn default() -> Self {
        UpgradeConfig {
            soak_events: 256,
            lag_ceiling: 4096,
            catch_up_timeout: Duration::from_secs(60),
            soak_timeout: Duration::from_secs(60),
            handover_timeout: Duration::from_secs(10),
        }
    }
}

/// Why an upgrade stage was rolled back.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RollbackReason {
    /// The candidate could not even be attached (no spare slot, member cap,
    /// missing journal history).
    AttachFailed(String),
    /// The candidate crashed, was killed by an unresolved divergence, hit a
    /// journal gap, or exited before the upgrade completed.
    CandidateFailed(String),
    /// The candidate did not reach live ring consumption in time.
    CatchUpTimeout,
    /// The candidate fell behind the lag ceiling during soak.
    LagExceeded {
        /// Observed backlog in events.
        backlog: u64,
        /// The configured ceiling.
        ceiling: u64,
    },
    /// The candidate did not replay enough live events in time.
    SoakTimeout,
    /// No spare ring slot was left for the retiring leader.
    NoSpareSlot(String),
    /// Another handover was already pending on the leader.
    HandoverRefused,
    /// The leader never reached a system-call boundary to execute the
    /// handover (e.g. parked in a blocking call with no traffic).
    HandoverTimeout,
}

impl std::fmt::Display for RollbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RollbackReason::AttachFailed(err) => write!(f, "attach failed: {err}"),
            RollbackReason::CandidateFailed(err) => write!(f, "candidate failed: {err}"),
            RollbackReason::CatchUpTimeout => write!(f, "catch-up timed out"),
            RollbackReason::LagExceeded { backlog, ceiling } => {
                write!(f, "lag {backlog} exceeded ceiling {ceiling}")
            }
            RollbackReason::SoakTimeout => write!(f, "soak timed out"),
            RollbackReason::NoSpareSlot(err) => write!(f, "no spare slot: {err}"),
            RollbackReason::HandoverRefused => write!(f, "handover refused"),
            RollbackReason::HandoverTimeout => write!(f, "handover timed out"),
        }
    }
}

/// How one upgrade stage ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageOutcome {
    /// The candidate was promoted and the old leader retired to a spare
    /// slot.
    Promoted,
    /// The upgrade was rolled back; the original fleet is intact.
    RolledBack(RollbackReason),
}

/// Statistics of one upgrade stage (one revision hop).
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Name of the candidate revision.
    pub revision: String,
    /// Version index assigned to the candidate (when it attached).
    pub candidate_index: Option<usize>,
    /// How the stage ended.
    pub outcome: StageOutcome,
    /// Canary cost: attach → live ring consumption, in milliseconds.
    pub catch_up_ms: f64,
    /// Events the candidate replayed during the soak stage.
    pub soak_events: u64,
    /// Divergences the candidate's scoped rules allowed (catch-up + soak).
    pub divergences_allowed: u64,
    /// Largest replay backlog observed during soak.
    pub max_lag: u64,
    /// Handover request → new leader's first published event, in
    /// milliseconds (0 when rolled back).
    pub promote_latency_ms: f64,
}

impl StageReport {
    /// Returns `true` if the stage promoted its candidate.
    #[must_use]
    pub fn promoted(&self) -> bool {
        matches!(self.outcome, StageOutcome::Promoted)
    }
}

/// The aggregate report of a multi-hop upgrade chain.
#[derive(Debug, Clone, Default)]
pub struct UpgradeReport {
    /// One report per attempted hop, in order.
    pub stages: Vec<StageReport>,
    /// Version index holding leadership after the chain.
    pub final_leader: usize,
}

impl UpgradeReport {
    /// Number of hops that promoted their candidate.
    #[must_use]
    pub fn promoted(&self) -> u64 {
        self.stages.iter().filter(|stage| stage.promoted()).count() as u64
    }

    /// Number of hops that were rolled back.
    #[must_use]
    pub fn rolled_back(&self) -> u64 {
        self.stages.len() as u64 - self.promoted()
    }

    /// Median promote latency over the promoted hops, in milliseconds.
    #[must_use]
    pub fn median_promote_latency_ms(&self) -> f64 {
        let mut latencies: Vec<f64> = self
            .stages
            .iter()
            .filter(|stage| stage.promoted())
            .map(|stage| stage.promote_latency_ms)
            .collect();
        if latencies.is_empty() {
            return 0.0;
        }
        latencies.sort_by(f64::total_cmp);
        latencies[latencies.len() / 2]
    }
}

/// One hop of an upgrade chain: the candidate revision plus the rewrite
/// rules that make its (and its predecessor's) benign divergences survivable.
pub struct UpgradeStep {
    /// The candidate revision's program.
    pub program: Box<dyn VersionProgram>,
    /// Rules scoped to the candidate while it replays the current leader's
    /// stream (the candidate's extra/missing calls relative to the leader).
    pub candidate_rules: RuleEngine,
    /// Rules scoped to the *retired* leader once it follows the candidate
    /// (the reverse direction), installed at promote time.
    pub retiree_rules: Option<RuleEngine>,
}

impl std::fmt::Debug for UpgradeStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpgradeStep")
            .field("program", &self.program.name())
            .field("candidate_rules", &self.candidate_rules.len())
            .field(
                "retiree_rules",
                &self.retiree_rules.as_ref().map(RuleEngine::len),
            )
            .finish()
    }
}

impl UpgradeStep {
    /// A step with no rewrite rules (revisions with identical syscall
    /// behaviour).
    #[must_use]
    pub fn new(program: Box<dyn VersionProgram>) -> Self {
        UpgradeStep {
            program,
            candidate_rules: RuleEngine::new(),
            retiree_rules: None,
        }
    }

    /// Sets the candidate-side rules, consuming and returning the step.
    #[must_use]
    pub fn with_candidate_rules(mut self, rules: RuleEngine) -> Self {
        self.candidate_rules = rules;
        self
    }

    /// Sets the retiree-side rules, consuming and returning the step.
    #[must_use]
    pub fn with_retiree_rules(mut self, rules: RuleEngine) -> Self {
        self.retiree_rules = Some(rules);
        self
    }
}

/// Drives staged dynamic software updates over a running N-version
/// execution.  One upgrade runs at a time; clone-free (borrow the fleet
/// controller wherever needed).
#[derive(Debug)]
pub struct UpgradeOrchestrator {
    fleet: FleetController,
    config: UpgradeConfig,
    /// Serialises hops: overlapping handovers would race for the leader.
    in_flight: Mutex<()>,
}

impl UpgradeOrchestrator {
    /// Creates an orchestrator over `fleet` with the given tunables.
    #[must_use]
    pub fn new(fleet: FleetController, config: UpgradeConfig) -> Self {
        UpgradeOrchestrator {
            fleet,
            config,
            in_flight: Mutex::new(()),
        }
    }

    /// The fleet controller this orchestrator drives.
    #[must_use]
    pub fn fleet(&self) -> &FleetController {
        &self.fleet
    }

    /// Runs every step of `steps` in order, continuing past rolled-back
    /// hops (a bad revision is skipped, the chain goes on from the current
    /// leader), and returns the aggregate report.
    pub fn run_chain(&self, steps: Vec<UpgradeStep>) -> UpgradeReport {
        let stages = steps.into_iter().map(|step| self.upgrade(step)).collect();
        UpgradeReport {
            stages,
            final_leader: self.fleet.current_leader_index(),
        }
    }

    /// Drives one complete upgrade hop: canary → soak → promote → retire,
    /// rolling back automatically on any failure before the handover.
    pub fn upgrade(&self, step: UpgradeStep) -> StageReport {
        let report = self.upgrade_inner(step);
        // Stage accounting covers every exit path of the hop at once.
        let obs = self.fleet.obs();
        let candidate = report.candidate_index.unwrap_or(usize::MAX) as u64;
        if report.promoted() {
            obs.metrics.promotions.add(1);
            obs.trace("upgrade.promoted", candidate, 0);
        } else {
            obs.metrics.rollbacks.add(1);
            obs.trace("upgrade.rollback", candidate, 0);
        }
        report
    }

    fn upgrade_inner(&self, step: UpgradeStep) -> StageReport {
        let _serial = self.in_flight.lock();
        let clock = self.fleet.wait_clock();
        let revision = step.program.name();
        let mut report = StageReport {
            revision,
            candidate_index: None,
            outcome: StageOutcome::RolledBack(RollbackReason::AttachFailed(String::new())),
            catch_up_ms: 0.0,
            soak_events: 0,
            divergences_allowed: 0,
            max_lag: 0,
            promote_latency_ms: 0.0,
        };

        // 1. Canary: attach the candidate and wait for the live switch.
        let member = match self.fleet.attach_version(step.program, step.candidate_rules) {
            Ok(member) => member,
            Err(err) => {
                report.outcome =
                    StageOutcome::RolledBack(RollbackReason::AttachFailed(err.to_string()));
                return report;
            }
        };
        report.candidate_index = Some(member.index);
        self.fleet
            .obs()
            .trace("upgrade.canary", member.index as u64, 0);
        let catch_up_deadline = clock.deadline(self.config.catch_up_timeout);
        loop {
            if member.is_live() {
                break;
            }
            if let Some(reason) = self.candidate_failure(&member) {
                report.divergences_allowed = member.divergences_allowed();
                report.outcome = StageOutcome::RolledBack(reason);
                return report;
            }
            if catch_up_deadline.expired() {
                self.fleet.detach_version(member.index);
                report.outcome = StageOutcome::RolledBack(RollbackReason::CatchUpTimeout);
                return report;
            }
            clock.sleep(ORCHESTRATOR_POLL);
        }
        report.catch_up_ms = member
            .catch_up_latency()
            .map(|latency| latency.as_secs_f64() * 1000.0)
            .unwrap_or(0.0);

        // 2. Soak: watch divergence, lag and liveness over live replay.
        let soak_started_events = member.events_replayed();
        self.fleet
            .obs()
            .trace("upgrade.soak", member.index as u64, soak_started_events);
        let soak_deadline = clock.deadline(self.config.soak_timeout);
        loop {
            if let Some(reason) = self.candidate_failure(&member) {
                report.divergences_allowed = member.divergences_allowed();
                report.outcome = StageOutcome::RolledBack(reason);
                return report;
            }
            let lag = self.fleet.backlog_of_slot(member.slot);
            report.max_lag = report.max_lag.max(lag);
            if lag > self.config.lag_ceiling {
                self.fleet.detach_version(member.index);
                report.outcome = StageOutcome::RolledBack(RollbackReason::LagExceeded {
                    backlog: lag,
                    ceiling: self.config.lag_ceiling,
                });
                return report;
            }
            let soaked = member.events_replayed().saturating_sub(soak_started_events);
            if soaked >= self.config.soak_events {
                report.soak_events = soaked;
                break;
            }
            if soak_deadline.expired() {
                self.fleet.detach_version(member.index);
                report.outcome = StageOutcome::RolledBack(RollbackReason::SoakTimeout);
                return report;
            }
            clock.sleep(ORCHESTRATOR_POLL);
        }
        report.divergences_allowed = member.divergences_allowed();

        // 3. Promote: post the handover ticket and wait for the leader to
        //    demote itself; retire rules for the outgoing leader first.
        let old_leader = self.fleet.current_leader_index();
        let retiree_rules_installed = if let Some(rules) = step.retiree_rules {
            self.fleet.scoped_rules().install(old_leader, rules);
            true
        } else {
            false
        };
        let rollback_rules = |this: &Self| {
            if retiree_rules_installed {
                this.fleet.scoped_rules().remove(old_leader);
            }
        };
        let Some(old_context) = self.fleet.context_of(old_leader) else {
            rollback_rules(self);
            self.fleet.detach_version(member.index);
            report.outcome = StageOutcome::RolledBack(RollbackReason::NoSpareSlot(format!(
                "unknown leader index {old_leader}"
            )));
            return report;
        };
        let ticket = match self.fleet.make_handover_ticket(member.index) {
            Ok(ticket) => ticket,
            Err(err) => {
                rollback_rules(self);
                self.fleet.detach_version(member.index);
                report.outcome =
                    StageOutcome::RolledBack(RollbackReason::NoSpareSlot(err.to_string()));
                return report;
            }
        };
        let promote_started = clock.start();
        self.fleet
            .obs()
            .trace("upgrade.promote", member.index as u64, old_leader as u64);
        if let Err(ticket) = old_context.handover.request(ticket) {
            self.fleet.return_ticket(ticket);
            rollback_rules(self);
            self.fleet.detach_version(member.index);
            report.outcome = StageOutcome::RolledBack(RollbackReason::HandoverRefused);
            return report;
        }
        let handover_deadline = clock.deadline(self.config.handover_timeout);
        loop {
            match old_context.handover.state() {
                HandoverState::Demoted => break,
                HandoverState::Aborted => {
                    // The leader refused the ticket: the candidate died in
                    // the window after the last soak check.  Its slot is
                    // already back in the pool; leadership never moved.
                    old_context.handover.reset();
                    rollback_rules(self);
                    report.outcome = StageOutcome::RolledBack(
                        RollbackReason::CandidateFailed(
                            member
                                .failure()
                                .map(|failure| failure.0)
                                .or_else(|| member.exit())
                                .unwrap_or_else(|| "died during handover".to_owned()),
                        ),
                    );
                    return report;
                }
                _ => {}
            }
            if handover_deadline.expired() {
                if let Some(ticket) = old_context.handover.cancel() {
                    self.fleet.return_ticket(ticket);
                    rollback_rules(self);
                    self.fleet.detach_version(member.index);
                    report.outcome = StageOutcome::RolledBack(RollbackReason::HandoverTimeout);
                    return report;
                }
                // The cancel lost the race: the leader is mid-demotion and
                // will acknowledge shortly — keep waiting.
            }
            clock.sleep(ORCHESTRATOR_POLL);
        }
        old_context.handover.reset();
        // The candidate's canary-era rules were written for replaying the
        // *previous* leader's stream; as leader it evaluates none, and when
        // it is demoted by a later hop that hop's retiree rules apply.
        // Leaving them installed would silently mask real divergences then.
        self.fleet.scoped_rules().remove(member.index);

        // 4. The handover is irrevocable from here: leadership has switched.
        //    Wait (bounded — it needs traffic) for the new leader's first
        //    published event to measure client-visible promote latency.
        let published_at_switch = self.fleet.published();
        let publish_deadline = clock.deadline(self.config.handover_timeout);
        while self.fleet.published() <= published_at_switch && !publish_deadline.expired() {
            clock.sleep(ORCHESTRATOR_POLL);
        }
        // The stopwatch result goes into the telemetry histogram and the
        // report reads it *back* from there (`Histogram::last`): the figure
        // the bench publishes is provably the same number the live
        // introspection endpoint serves.  Hops are serialised by
        // `in_flight`, so the last recorded sample is this hop's.
        let metrics = &self.fleet.obs().metrics;
        metrics
            .promote_latency_nanos
            .record(promote_started.elapsed().as_nanos() as u64);
        report.promote_latency_ms =
            metrics.promote_latency_nanos.last() as f64 / 1_000_000.0;
        report.outcome = StageOutcome::Promoted;
        report
    }

    /// Classifies a candidate that stopped during canary or soak.
    fn candidate_failure(&self, member: &VersionMember) -> Option<RollbackReason> {
        if let Some(failure) = member.failure() {
            return Some(RollbackReason::CandidateFailed(failure.0));
        }
        if !member.is_alive() {
            return Some(RollbackReason::CandidateFailed(
                member
                    .exit()
                    .unwrap_or_else(|| "exited before going live".to_owned()),
            ));
        }
        None
    }
}
