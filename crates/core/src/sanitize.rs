//! Live sanitization support (§5.3 of the paper).
//!
//! Sanitizers (AddressSanitizer, MemorySanitizer, ThreadSanitizer) catch
//! low-level bugs but cost 2–15× at run time, so they are normally confined
//! to offline testing.  With VARAN the *unsanitized* build runs as the leader
//! while sanitized builds run as followers: followers never execute I/O, they
//! only replay it, so they can usually keep up with the leader and the
//! deployment pays no visible cost.
//!
//! This module provides [`SanitizedVersion`], a wrapper that turns any
//! [`VersionProgram`] into its "sanitized build": every system call is
//! preceded by shadow-memory-style bookkeeping work whose cost models the
//! chosen sanitizer's slowdown, and simple red-zone checks are performed on
//! every buffer that passes through.  The wrapper is what the live
//! sanitization experiment (and the `live_sanitization` example) runs as a
//! follower.

use varan_kernel::syscall::{SyscallOutcome, SyscallRequest};

use crate::program::{ProgramExit, SyscallInterface, VersionProgram};

/// The sanitizers discussed in the paper, with their typical slowdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sanitizer {
    /// AddressSanitizer (≈2× slowdown).
    Address,
    /// MemorySanitizer (≈3× slowdown).
    Memory,
    /// ThreadSanitizer (5–15× slowdown).
    Thread,
}

impl Sanitizer {
    /// The factor by which the sanitizer slows compute down.
    #[must_use]
    pub fn slowdown(self) -> u32 {
        match self {
            Sanitizer::Address => 2,
            Sanitizer::Memory => 3,
            Sanitizer::Thread => 8,
        }
    }

    /// Short name used in reports (`asan`, `msan`, `tsan`).
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            Sanitizer::Address => "asan",
            Sanitizer::Memory => "msan",
            Sanitizer::Thread => "tsan",
        }
    }
}

/// Statistics accumulated by a sanitized version.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizerFindings {
    /// Buffers checked against their red zones.
    pub buffers_checked: u64,
    /// Shadow-memory updates performed.
    pub shadow_updates: u64,
    /// Red-zone violations detected (a real sanitizer would abort here).
    pub violations: u64,
}

/// An interface shim that charges sanitizer bookkeeping before every call.
struct SanitizedShim<'a> {
    inner: &'a mut dyn SyscallInterface,
    slowdown: u32,
    findings: &'a mut SanitizerFindings,
}

impl<'a> SanitizedShim<'a> {
    fn check_buffer(&mut self, data: &[u8]) {
        // Red-zone check: a real sanitizer verifies the bytes around the
        // buffer; here we walk the buffer once per slowdown unit, which both
        // models the cost and exercises the data the leader streamed.
        self.findings.buffers_checked += 1;
        let mut poisoned = 0u64;
        for _ in 0..self.slowdown {
            poisoned = poisoned.wrapping_add(
                data.iter()
                    .fold(0u64, |acc, &byte| acc.wrapping_mul(31).wrapping_add(u64::from(byte))),
            );
        }
        if poisoned == 0xDEAD_BEEF_DEAD_BEEF {
            self.findings.violations += 1;
        }
    }

    fn shadow_update(&mut self) {
        self.findings.shadow_updates += 1;
        // Shadow memory maintenance: proportional to the slowdown factor.
        let mut shadow = 1u64;
        for i in 0..(64 * self.slowdown as u64) {
            shadow = shadow.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        std::hint::black_box(shadow);
    }
}

impl<'a> SyscallInterface for SanitizedShim<'a> {
    fn syscall(&mut self, request: &SyscallRequest) -> SyscallOutcome {
        self.shadow_update();
        if let Some(data) = &request.data {
            self.check_buffer(data);
        }
        let outcome = self.inner.syscall(request);
        if let Some(data) = &outcome.data {
            self.check_buffer(data);
        }
        outcome
    }

    fn spawn_thread(&mut self) -> Box<dyn SyscallInterface> {
        // Sanitized threads fall back to the unsanitized inner interface;
        // per-thread shadow state is process-wide in real sanitizers too.
        self.inner.spawn_thread()
    }

    fn cpu_work(&mut self, cycles: u64) {
        // Sanitized builds run their computation `slowdown` times slower.
        self.inner.cpu_work(cycles * u64::from(self.slowdown));
    }
}

/// A sanitized build of an existing version.
pub struct SanitizedVersion {
    inner: Box<dyn VersionProgram>,
    sanitizer: Sanitizer,
    findings: SanitizerFindings,
}

impl std::fmt::Debug for SanitizedVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SanitizedVersion")
            .field("sanitizer", &self.sanitizer)
            .field("findings", &self.findings)
            .finish()
    }
}

impl SanitizedVersion {
    /// Wraps `inner` as a build instrumented with `sanitizer`.
    #[must_use]
    pub fn new(inner: Box<dyn VersionProgram>, sanitizer: Sanitizer) -> Self {
        SanitizedVersion {
            inner,
            sanitizer,
            findings: SanitizerFindings::default(),
        }
    }

    /// The sanitizer this build is instrumented with.
    #[must_use]
    pub fn sanitizer(&self) -> Sanitizer {
        self.sanitizer
    }

    /// The findings accumulated so far (all zeros before the program runs).
    #[must_use]
    pub fn findings(&self) -> SanitizerFindings {
        self.findings
    }
}

impl VersionProgram for SanitizedVersion {
    fn name(&self) -> String {
        format!("{}+{}", self.inner.name(), self.sanitizer.short_name())
    }

    fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
        let mut shim = SanitizedShim {
            inner: sys,
            slowdown: self.sanitizer.slowdown(),
            findings: &mut self.findings,
        };
        self.inner.run(&mut shim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{run_native, DirectExecutor};
    use varan_kernel::Kernel;

    struct EchoProgram;

    impl VersionProgram for EchoProgram {
        fn name(&self) -> String {
            "echo".to_owned()
        }

        fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
            for _ in 0..20 {
                sys.write(1, b"some output that gets checked");
                let fd = sys.open("/dev/zero", 0);
                let _ = sys.read(fd as i32, 64);
                sys.close(fd as i32);
            }
            ProgramExit::Exited(0)
        }
    }

    #[test]
    fn sanitizer_slowdowns_match_the_paper() {
        assert_eq!(Sanitizer::Address.slowdown(), 2);
        assert_eq!(Sanitizer::Memory.slowdown(), 3);
        assert!(Sanitizer::Thread.slowdown() >= 5);
        assert_eq!(Sanitizer::Address.short_name(), "asan");
    }

    #[test]
    fn sanitized_version_checks_every_buffer() {
        let kernel = Kernel::new();
        let mut sanitized = SanitizedVersion::new(Box::new(EchoProgram), Sanitizer::Address);
        assert_eq!(sanitized.findings().buffers_checked, 0);
        let mut executor = DirectExecutor::new(&kernel, &sanitized.name());
        let exit = sanitized.run(&mut executor);
        assert!(exit.is_clean());
        let findings = sanitized.findings();
        // 20 open paths + 20 write buffers + 20 read results checked.
        assert_eq!(findings.buffers_checked, 60);
        assert!(findings.shadow_updates >= 80);
        assert_eq!(findings.violations, 0);
    }

    #[test]
    fn sanitized_name_advertises_the_instrumentation() {
        let sanitized = SanitizedVersion::new(Box::new(EchoProgram), Sanitizer::Thread);
        assert_eq!(sanitized.name(), "echo+tsan");
        assert_eq!(sanitized.sanitizer(), Sanitizer::Thread);
    }

    #[test]
    fn sanitized_and_plain_versions_issue_the_same_syscalls() {
        let kernel = Kernel::new();
        let (_, plain_cycles) = run_native(&kernel, &mut EchoProgram);
        let plain_calls = kernel.stats().total_syscalls();

        let kernel2 = Kernel::new();
        let mut sanitized = SanitizedVersion::new(Box::new(EchoProgram), Sanitizer::Memory);
        let mut executor = DirectExecutor::new(&kernel2, "sanitized");
        sanitized.run(&mut executor);
        let sanitized_calls = kernel2.stats().total_syscalls();

        // The sanitizer adds compute, never system calls — which is exactly
        // why the follower's syscall sequence still matches the leader's.
        assert_eq!(plain_calls, sanitized_calls);
        assert!(plain_cycles > 0);
    }
}
