//! Error type for the NVX framework.

use std::error::Error;
use std::fmt;

use varan_ring::{JournalError, RingError};

/// Errors produced while setting up or running an N-version execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The configuration asked for zero versions.
    NoVersions,
    /// A ring-buffer or shared-memory error occurred during setup.
    Ring(RingError),
    /// A BPF rewrite rule failed to assemble or verify.
    Rule(String),
    /// A version thread panicked or could not be joined.
    VersionFailed {
        /// Index of the failing version.
        version: usize,
        /// Description of the failure.
        reason: String,
    },
    /// A follower diverged from the leader and no rewrite rule allowed it.
    UnresolvedDivergence {
        /// Index of the diverging follower.
        version: usize,
        /// System call the follower attempted.
        follower_sysno: u16,
        /// System call the leader executed at that point.
        leader_sysno: u16,
    },
    /// No live follower was available to promote after the leader crashed.
    NoFollowerToPromote,
    /// A record-replay log could not be decoded.
    CorruptLog(String),
    /// An elastic-fleet operation (attach, checkpoint, journal) failed.
    Fleet(String),
    /// The spill journal reported damage or an I/O failure.
    Journal(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoVersions => write!(f, "at least one version is required"),
            CoreError::Ring(err) => write!(f, "ring buffer error: {err}"),
            CoreError::Rule(reason) => write!(f, "rewrite rule error: {reason}"),
            CoreError::VersionFailed { version, reason } => {
                write!(f, "version {version} failed: {reason}")
            }
            CoreError::UnresolvedDivergence {
                version,
                follower_sysno,
                leader_sysno,
            } => write!(
                f,
                "follower {version} attempted syscall {follower_sysno} while the leader executed {leader_sysno} and no rewrite rule allowed the divergence"
            ),
            CoreError::NoFollowerToPromote => {
                write!(f, "leader crashed and no live follower is available to promote")
            }
            CoreError::CorruptLog(reason) => write!(f, "corrupt record-replay log: {reason}"),
            CoreError::Fleet(reason) => write!(f, "fleet operation failed: {reason}"),
            CoreError::Journal(reason) => write!(f, "journal error: {reason}"),
        }
    }
}

impl Error for CoreError {}

impl From<RingError> for CoreError {
    fn from(err: RingError) -> Self {
        CoreError::Ring(err)
    }
}

impl From<JournalError> for CoreError {
    fn from(err: JournalError) -> Self {
        CoreError::Journal(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let cases = vec![
            CoreError::NoVersions,
            CoreError::Ring(RingError::ZeroCapacity),
            CoreError::Rule("backward jump".into()),
            CoreError::VersionFailed {
                version: 2,
                reason: "panicked".into(),
            },
            CoreError::UnresolvedDivergence {
                version: 1,
                follower_sysno: 102,
                leader_sysno: 108,
            },
            CoreError::NoFollowerToPromote,
            CoreError::CorruptLog("truncated".into()),
            CoreError::Fleet("no spare ring slot available".into()),
            CoreError::Journal("frame checksum mismatch".into()),
        ];
        for case in cases {
            assert!(!case.to_string().is_empty());
        }
    }

    #[test]
    fn ring_errors_convert() {
        let err: CoreError = RingError::ZeroCapacity.into();
        assert!(matches!(err, CoreError::Ring(RingError::ZeroCapacity)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
