//! # VARAN — an efficient N-version execution framework (reproduction)
//!
//! This crate is the core of a from-scratch Rust reproduction of
//! *"Varan the Unbelievable: An Efficient N-version Execution Framework"*
//! (Hosek & Cadar, ASPLOS 2015).  It runs N versions of a program in
//! parallel: one **leader** interacts with the outside world and streams
//! every external event into a shared ring buffer; the **followers** replay
//! that stream, so all N versions stay in sync without lock-step execution
//! and without a central monitor on the hot path.
//!
//! The crate provides:
//!
//! * [`program`] — the [`VersionProgram`]/[`SyscallInterface`] traits that
//!   application versions are written against, plus a native executor.
//! * [`coordinator`] — the [`NvxSystem`] entry point, the coordinator's
//!   control loop and the zygote process spawner (§3.1 of the paper).
//! * [`monitor`] — the leader and follower monitors implementing the
//!   event-streaming architecture (§3.3).
//! * [`table`] — the per-version system call tables (§3.2).
//! * [`channel`] — the per-version data channel used to transfer file
//!   descriptors (§3.3.2).
//! * [`rules`] — BPF-based system-call sequence rewrite rules (§2.3, §3.4).
//! * [`sanitize`] — live sanitization support (§5.3).
//! * [`record_replay`] — the persistent-log record-replay clients (§5.4).
//! * [`fleet`] — the elastic follower fleet: runtime join/leave via kernel
//!   checkpoints and the spill-to-disk event journal.
//! * [`shard`] — the sharded data plane: the coordinator, followers and
//!   observers re-hosted on a multi-ring [`varan_ring::ShardSet`], with
//!   per-shard replay, divergence detection, consistent-cut checkpoints
//!   and failover.
//! * [`upgrade`] — zero-downtime live upgrades over the elastic fleet:
//!   canary → soak → promote → retire, with automatic rollback.
//! * [`costs`], [`stats`] — the monitor cost model and execution reports.
//!
//! # Example: run two versions of a program in parallel
//!
//! ```
//! use varan_core::coordinator::{run_nvx, NvxConfig};
//! use varan_core::program::{ProgramExit, SyscallInterface, VersionProgram};
//! use varan_kernel::Kernel;
//!
//! struct Hello;
//!
//! impl VersionProgram for Hello {
//!     fn name(&self) -> String {
//!         "hello".to_owned()
//!     }
//!     fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
//!         sys.write(1, b"hello from a version\n");
//!         sys.exit(0);
//!         ProgramExit::Exited(0)
//!     }
//! }
//!
//! # fn main() -> Result<(), varan_core::CoreError> {
//! let kernel = Kernel::new();
//! let report = run_nvx(
//!     &kernel,
//!     vec![Box::new(Hello), Box::new(Hello)],
//!     NvxConfig::default(),
//! )?;
//! assert!(report.all_clean());
//! assert_eq!(report.versions.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod channel;
pub mod context;
pub mod coordinator;
pub mod costs;
pub mod fleet;
pub mod monitor;
pub mod program;
pub mod record_replay;
pub mod rules;
pub mod sanitize;
pub mod shard;
pub mod stats;
pub mod table;
pub mod upgrade;

mod error;

pub use coordinator::{run_nvx, NvxConfig, NvxSystem, RunningNvx, Zygote};
pub use costs::MonitorCosts;
pub use error::CoreError;
pub use fleet::{FleetConfig, FleetController, FleetMember, StreamRecord, VersionMember};
pub use program::{DirectExecutor, ProgramExit, SyscallInterface, TimedRead, VersionProgram};
pub use rules::{RuleAction, RuleEngine, ScopedRules};
pub use sanitize::{SanitizedVersion, Sanitizer};
pub use shard::{
    shard_journal_digest, shard_of, ShardedConfig, ShardedNvx, ShardedReport,
};
pub use stats::{NvxReport, VersionStats};
pub use table::{HandlerAction, Role, SyscallTable};
pub use upgrade::{
    RollbackReason, StageOutcome, StageReport, UpgradeConfig, UpgradeOrchestrator, UpgradeReport,
    UpgradeStep,
};
