//! Shared state wired between the coordinator and the per-version monitors.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use varan_kernel::process::Pid;
use varan_ring::{Consumer, Event, RingBuffer, WaitStrategy};

use crate::channel::DataChannel;
use crate::error::CoreError;
use crate::stats::SharedCounters;

/// The set of ring buffers for one N-version execution: one ring per thread
/// tuple (§3.3.3), each with one consumer slot per follower plus any spare
/// slots provisioned for followers that join at runtime (the fleet).
#[derive(Debug)]
pub struct RingSet {
    rings: Vec<Arc<RingBuffer<Event>>>,
}

impl RingSet {
    /// Creates `tuples` rings of `capacity` slots with `consumers` follower
    /// slots each.
    ///
    /// # Errors
    ///
    /// Propagates ring-buffer construction errors (invalid capacity).
    pub fn new(
        tuples: usize,
        capacity: usize,
        consumers: usize,
        strategy: WaitStrategy,
    ) -> Result<Self, CoreError> {
        Self::with_spares(tuples, capacity, consumers, 0, strategy)
    }

    /// Like [`RingSet::new`] but provisions `spares` additional consumer
    /// slots per ring for runtime joiners.  Spare slots are **retired**
    /// immediately (they do not gate the producer) and the handles for the
    /// main ring (tuple 0) are returned so the fleet can hand them to
    /// joining followers, which re-activate them with
    /// [`varan_ring::Consumer::resume_at`].
    ///
    /// # Errors
    ///
    /// Propagates ring-buffer construction errors (invalid capacity).
    pub fn with_spares(
        tuples: usize,
        capacity: usize,
        consumers: usize,
        spares: usize,
        strategy: WaitStrategy,
    ) -> Result<Self, CoreError> {
        let mut rings = Vec::with_capacity(tuples);
        for _ in 0..tuples.max(1) {
            rings.push(Arc::new(RingBuffer::new(
                capacity,
                consumers + spares,
                strategy,
            )?));
        }
        Ok(RingSet { rings })
    }

    /// Claims the `spares` consumer slots above `consumers` on every ring,
    /// retires them, and returns the main ring's handles for the fleet's
    /// spare pool.  Must be called before any event is published (a
    /// still-active unclaimed spare slot would gate the producer at
    /// sequence 0).
    ///
    /// # Errors
    ///
    /// Propagates slot-claiming errors (out of range, already claimed).
    pub fn claim_spares(
        &self,
        consumers: usize,
        spares: usize,
    ) -> Result<Vec<varan_ring::Consumer<Event>>, CoreError> {
        let mut pool = Vec::with_capacity(spares);
        for (tuple, ring) in self.rings.iter().enumerate() {
            for slot in consumers..consumers + spares {
                let mut consumer = ring.consumer(slot)?;
                consumer.unsubscribe();
                if tuple == 0 {
                    pool.push(consumer);
                }
                // Non-main tuples: the claimed handle is dropped here, which
                // keeps the slot retired for the whole run (joiners consume
                // the main tuple only; see `fleet.rs`).
            }
        }
        Ok(pool)
    }

    /// The ring used by thread tuple `tid` (clamped to the last ring if the
    /// application spawns more threads than tuples were provisioned for).
    #[must_use]
    pub fn ring(&self, tid: usize) -> &Arc<RingBuffer<Event>> {
        let index = tid.min(self.rings.len() - 1);
        &self.rings[index]
    }

    /// Number of provisioned thread tuples.
    #[must_use]
    pub fn tuples(&self) -> usize {
        self.rings.len()
    }

    /// Total number of events published across all rings.
    #[must_use]
    pub fn total_published(&self) -> u64 {
        self.rings.iter().map(|ring| ring.published()).sum()
    }

    /// The largest backlog of consumer `slot` across all rings ("log
    /// distance" between the leader and that follower).
    #[must_use]
    pub fn max_backlog(&self, slot: usize) -> u64 {
        self.rings
            .iter()
            .filter_map(|ring| ring.backlog(slot))
            .max()
            .unwrap_or(0)
    }
}

/// The coordinator's handle to one follower, used by the leader for
/// descriptor transfers and by the failover logic.
#[derive(Debug, Clone)]
pub struct FollowerLink {
    /// Version index of the follower (fleet joiners get indices past the
    /// launched version count).
    pub index: usize,
    /// The follower's virtual process.
    pub pid: Pid,
    /// The follower's data channel.
    pub channel: DataChannel,
    /// Cleared when the follower crashes, is killed or is discarded.
    pub alive: Arc<AtomicBool>,
    /// The ring consumer slot the follower drains (used by the failover
    /// logic to rank candidates by backlog).
    pub slot: usize,
    /// Set while the follower is still replaying the spill journal (a
    /// joiner that has not yet reached live ring consumption).  A
    /// catching-up follower is skipped for promotion.
    pub catching_up: Arc<AtomicBool>,
    /// Whether this follower runs an application version and can take over
    /// as leader.  Observer joiners attached by the fleet are not
    /// promotable.
    pub promotable: bool,
    /// Whether descriptor transfers to this follower must preserve the
    /// leader's descriptor numbers ([`varan_kernel::Kernel::transfer_fd_identity`]).
    /// Upgrade members mirror the stream's numbering so the numbers their
    /// replayed application holds stay valid across a promotion.
    pub identity_fds: bool,
}

impl FollowerLink {
    /// Creates the link for launched follower `index` (slot `index - 1`),
    /// promotable and not catching up.
    #[must_use]
    pub fn for_version(index: usize, pid: Pid, channel: DataChannel) -> Self {
        FollowerLink {
            index,
            pid,
            channel,
            alive: Arc::new(AtomicBool::new(true)),
            slot: index.saturating_sub(1),
            catching_up: Arc::new(AtomicBool::new(false)),
            promotable: true,
            identity_fds: false,
        }
    }

    /// Returns `true` while the follower is still participating.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Returns `true` while the follower is still replaying the journal.
    #[must_use]
    pub fn is_catching_up(&self) -> bool {
        self.catching_up.load(Ordering::Acquire)
    }

    /// Marks the follower as discarded.
    pub fn discard(&self) {
        self.alive.store(false, Ordering::Release);
    }
}

/// Everything the current leader needs to execute a planned handover
/// (`crate::upgrade`): the ring slot it will occupy as a follower afterwards
/// and the identity of the successor it yields to.
#[derive(Debug)]
pub struct HandoverTicket {
    /// The (retired) consumer slot the demoted leader re-activates at the
    /// stream position where it stopped publishing.
    pub consumer: Consumer<Event>,
    /// Version index of the successor (the soaked upgrade candidate).
    pub successor_index: usize,
    /// The successor's promotion flag; set by the demoting leader once it
    /// has stopped publishing and registered its gate.
    pub successor_promoted: Arc<AtomicBool>,
    /// The execution's current-leader register, updated as part of the
    /// handover.
    pub current_leader: Arc<AtomicUsize>,
    /// The rewrite-rule registry the demoted leader resolves its divergence
    /// verdicts through (scoped rules for the retiree are installed by the
    /// orchestrator before the handover is requested).
    pub rules: Arc<crate::rules::ScopedRules>,
    /// Where the demoted leader's consumer slot is returned when it later
    /// retires or is promoted again.
    pub slot_pool: Arc<Mutex<Vec<Consumer<Event>>>>,
}

/// State machine of a planned handover request (see [`HandoverCell`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoverState {
    /// No handover pending.
    Idle,
    /// A ticket is posted; the leader has not yet picked it up.
    Requested,
    /// The leader is executing the demotion.
    InProgress,
    /// The leader has demoted itself and promoted the successor.
    Demoted,
    /// The leader refused the ticket (the successor died first) and
    /// continues leading; the ticket's slot went back to the spare pool.
    Aborted,
}

const HANDOVER_IDLE: u8 = 0;
const HANDOVER_REQUESTED: u8 = 1;
const HANDOVER_IN_PROGRESS: u8 = 2;
const HANDOVER_DEMOTED: u8 = 3;
const HANDOVER_ABORTED: u8 = 4;

/// The planned-handover mailbox of one version: the upgrade orchestrator
/// posts a [`HandoverTicket`], the version's monitor picks it up at its next
/// system-call boundary, demotes itself to a follower and acknowledges.
///
/// The cell is a tiny lock-free state machine so the orchestrator can
/// *cancel* a request that the leader has not begun executing (e.g. a
/// handover timed out because the leader is parked in a long blocking call
/// with no traffic): cancellation and pickup race through a single
/// compare-and-swap, so exactly one side wins.
#[derive(Debug, Default)]
pub struct HandoverCell {
    state: AtomicU8,
    ticket: Mutex<Option<HandoverTicket>>,
}

impl HandoverCell {
    /// Creates an idle cell.
    #[must_use]
    pub fn new() -> Self {
        HandoverCell::default()
    }

    /// Current state of the cell.
    #[must_use]
    pub fn state(&self) -> HandoverState {
        match self.state.load(Ordering::Acquire) {
            HANDOVER_REQUESTED => HandoverState::Requested,
            HANDOVER_IN_PROGRESS => HandoverState::InProgress,
            HANDOVER_DEMOTED => HandoverState::Demoted,
            HANDOVER_ABORTED => HandoverState::Aborted,
            _ => HandoverState::Idle,
        }
    }

    /// Cheap check used on the monitor's hot path.
    #[must_use]
    pub fn is_requested(&self) -> bool {
        self.state.load(Ordering::Acquire) == HANDOVER_REQUESTED
    }

    /// Posts a ticket.  Returns `false` (and drops nothing — the ticket is
    /// handed back) if a handover is already pending or executing.
    pub fn request(&self, ticket: HandoverTicket) -> Result<(), HandoverTicket> {
        let mut slot = self.ticket.lock();
        if self
            .state
            .compare_exchange(
                HANDOVER_IDLE,
                HANDOVER_REQUESTED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            return Err(ticket);
        }
        *slot = Some(ticket);
        Ok(())
    }

    /// Monitor side: claims a posted ticket.  Returns `None` if no request
    /// is pending (or it was cancelled first).
    #[must_use]
    pub fn begin(&self) -> Option<HandoverTicket> {
        if self
            .state
            .compare_exchange(
                HANDOVER_REQUESTED,
                HANDOVER_IN_PROGRESS,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            return None;
        }
        self.ticket.lock().take()
    }

    /// Monitor side: acknowledges that the demotion finished.
    pub fn complete(&self) {
        self.state.store(HANDOVER_DEMOTED, Ordering::Release);
    }

    /// Monitor side: refuses a claimed ticket (dead successor); the leader
    /// keeps leading.
    pub fn abort(&self) {
        self.state.store(HANDOVER_ABORTED, Ordering::Release);
    }

    /// Orchestrator side: cancels a request the leader has not begun.  On
    /// success the unclaimed ticket is returned (so its consumer slot can go
    /// back to the spare pool); `None` means the leader already started or
    /// finished the demotion.
    #[must_use]
    pub fn cancel(&self) -> Option<HandoverTicket> {
        let mut slot = self.ticket.lock();
        if self
            .state
            .compare_exchange(
                HANDOVER_REQUESTED,
                HANDOVER_IDLE,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            return None;
        }
        slot.take()
    }

    /// Orchestrator side: returns the cell to idle after observing
    /// [`HandoverState::Demoted`] or [`HandoverState::Aborted`], making the
    /// version eligible for a future handover (a rolled-back upgrade may
    /// re-promote and later re-demote the same version).
    pub fn reset(&self) {
        for terminal in [HANDOVER_DEMOTED, HANDOVER_ABORTED] {
            if self
                .state
                .compare_exchange(terminal, HANDOVER_IDLE, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }
}

/// The per-version context handed to a monitor.
#[derive(Debug, Clone)]
pub struct VersionContext {
    /// Version index (0 is the initially designated leader).
    pub index: usize,
    /// The version's virtual process.
    pub pid: Pid,
    /// Statistics counters.
    pub counters: SharedCounters,
    /// Data channel for descriptor transfers and control messages.
    pub channel: DataChannel,
    /// The variant's Lamport clock (shared by all of its threads, §3.3.3).
    pub clock: varan_ring::VariantClock,
    /// Set when the follower is killed by an unresolved divergence.
    pub killed: Arc<AtomicBool>,
    /// Set by the coordinator when this follower must become the leader.
    pub promoted: Arc<AtomicBool>,
    /// Planned-handover mailbox (set by the upgrade orchestrator when this
    /// version, as leader, must yield to a soaked candidate).
    pub handover: Arc<HandoverCell>,
    /// Telemetry registry this version's monitor reports into.  Defaults to
    /// the process-wide registry; launches that need isolated counters (the
    /// benches, exact-count tests) install their own via
    /// [`crate::coordinator::NvxConfig::with_obs`].
    pub obs: Arc<varan_obs::Registry>,
}

impl VersionContext {
    /// Creates the context for version `index` running as process `pid`,
    /// with fresh counters, channel, clock and flags.
    #[must_use]
    pub fn new(index: usize, pid: Pid) -> Self {
        VersionContext {
            index,
            pid,
            counters: Arc::new(crate::stats::VersionCounters::new()),
            channel: DataChannel::new(pid),
            clock: varan_ring::VariantClock::new(),
            killed: Arc::new(AtomicBool::new(false)),
            promoted: Arc::new(AtomicBool::new(false)),
            handover: Arc::new(HandoverCell::new()),
            obs: varan_obs::global_arc(),
        }
    }

    /// Redirects this context's telemetry into `obs`, consuming and
    /// returning the context.
    #[must_use]
    pub fn with_obs(mut self, obs: Arc<varan_obs::Registry>) -> Self {
        self.obs = obs;
        self
    }

    /// Returns `true` once this version has been promoted to leader.
    #[must_use]
    pub fn is_promoted(&self) -> bool {
        self.promoted.load(Ordering::Acquire)
    }

    /// Returns `true` once this version has been killed.
    #[must_use]
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::Acquire)
    }
}

/// A shared sampler for the leader–follower log distance (§5.3).
#[derive(Debug)]
pub struct LogDistanceSampler {
    samples: Mutex<Vec<u64>>,
    every: u64,
    counter: AtomicU64,
}

impl LogDistanceSampler {
    /// Creates a sampler that records one sample every `every` publishes.
    #[must_use]
    pub fn new(every: u64) -> Self {
        LogDistanceSampler {
            samples: Mutex::new(Vec::new()),
            every: every.max(1),
            counter: AtomicU64::new(0),
        }
    }

    /// Possibly records `distance`, depending on the sampling interval.
    pub fn observe(&self, distance: u64) {
        let count = self.counter.fetch_add(1, Ordering::Relaxed);
        if count % self.every == 0 {
            self.samples.lock().push(distance);
        }
    }

    /// The median of the recorded samples (0 when no samples were taken).
    #[must_use]
    pub fn median(&self) -> u64 {
        let mut samples = self.samples.lock().clone();
        if samples.is_empty() {
            return 0;
        }
        samples.sort_unstable();
        samples[samples.len() / 2]
    }

    /// The maximum recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.samples.lock().iter().copied().max().unwrap_or(0)
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.lock().len()
    }

    /// Returns `true` if no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.lock().is_empty()
    }
}

/// The followers' links, shared between the leader monitor (descriptor
/// transfers) and the coordinator (failover).
pub type SharedFollowers = Arc<RwLock<Vec<FollowerLink>>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_set_clamps_thread_indices() {
        let set = RingSet::new(2, 16, 1, WaitStrategy::Spin).unwrap();
        assert_eq!(set.tuples(), 2);
        // Index past the end falls back to the last ring instead of panicking.
        let ring = set.ring(10);
        assert_eq!(ring.capacity(), 16);
        assert_eq!(set.total_published(), 0);
    }

    #[test]
    fn ring_set_requires_valid_capacity() {
        assert!(RingSet::new(1, 3, 1, WaitStrategy::Spin).is_err());
    }

    #[test]
    fn follower_link_lifecycle() {
        let link = FollowerLink::for_version(1, 42, DataChannel::new(42));
        assert!(link.is_alive());
        assert!(!link.is_catching_up());
        assert!(link.promotable);
        assert_eq!(link.slot, 0);
        link.discard();
        assert!(!link.is_alive());
    }

    #[test]
    fn spare_slots_are_retired_and_claimable_once() {
        let set = RingSet::with_spares(2, 16, 0, 2, WaitStrategy::Spin).unwrap();
        let pool = set.claim_spares(0, 2).unwrap();
        assert_eq!(pool.len(), 2, "main-ring spare handles only");
        for consumer in &pool {
            assert!(!consumer.is_active(), "spares must not gate the producer");
        }
        // Publishing far past the capacity works: no spare gates the ring.
        let producer = set.ring(0).producer();
        for i in 0..64 {
            producer.publish(Event::checkpoint(i));
        }
        assert_eq!(set.ring(0).published(), 64);
        // Claiming the same slots again fails.
        assert!(set.claim_spares(1, 2).is_err());
    }

    #[test]
    fn handover_cell_pickup_and_cancel_race_resolves_once() {
        use std::sync::atomic::AtomicUsize;

        let ring = Arc::new(RingBuffer::<Event>::new(16, 1, WaitStrategy::Spin).unwrap());
        let make_ticket = |consumer| HandoverTicket {
            consumer,
            successor_index: 9,
            successor_promoted: Arc::new(AtomicBool::new(false)),
            current_leader: Arc::new(AtomicUsize::new(0)),
            rules: Arc::new(crate::rules::ScopedRules::default()),
            slot_pool: Arc::new(Mutex::new(Vec::new())),
        };

        let cell = HandoverCell::new();
        assert_eq!(cell.state(), HandoverState::Idle);
        assert!(cell.begin().is_none(), "nothing posted yet");

        let consumer = ring.consumer(0).unwrap();
        cell.request(make_ticket(consumer)).unwrap();
        assert!(cell.is_requested());

        // The leader claims the ticket; a late cancel must lose.
        let ticket = cell.begin().expect("posted");
        assert_eq!(ticket.successor_index, 9);
        assert!(cell.cancel().is_none(), "pickup already won");
        assert_eq!(cell.state(), HandoverState::InProgress);
        cell.complete();
        assert_eq!(cell.state(), HandoverState::Demoted);
        cell.reset();
        assert_eq!(cell.state(), HandoverState::Idle);

        // A cancelled request hands the ticket (and its slot) back.
        cell.request(make_ticket(ticket.consumer)).unwrap();
        let returned = cell.cancel().expect("cancel wins before pickup");
        assert_eq!(returned.successor_index, 9);
        assert_eq!(cell.state(), HandoverState::Idle);
        assert!(cell.begin().is_none());
    }

    #[test]
    fn sampler_reports_median_and_max() {
        let sampler = LogDistanceSampler::new(1);
        assert!(sampler.is_empty());
        for distance in [1, 9, 3, 7, 5] {
            sampler.observe(distance);
        }
        assert_eq!(sampler.len(), 5);
        assert_eq!(sampler.median(), 5);
        assert_eq!(sampler.max(), 9);
    }

    #[test]
    fn sampler_subsamples() {
        let sampler = LogDistanceSampler::new(10);
        for distance in 0..100 {
            sampler.observe(distance);
        }
        assert_eq!(sampler.len(), 10);
    }
}
