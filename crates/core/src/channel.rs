//! The per-version data channel (§3.3.2).
//!
//! Events travel through the shared ring buffer, but information that cannot
//! be transferred via shared memory — in particular open file descriptors —
//! travels over a per-version *data channel* (a UNIX domain socket pair in
//! the original system).  Whenever the leader obtains a new descriptor it
//! sends it to every follower, effectively duplicating the descriptor into
//! their processes; this is also what makes transparent leader replacement
//! possible, because a promoted follower already holds equivalents of every
//! descriptor the old leader was using.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use varan_kernel::process::Pid;

/// A descriptor transfer message: "the descriptor the leader calls
/// `leader_fd` is available in your process as `local_fd`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdTransfer {
    /// Descriptor number in the leader's table (the number the application
    /// sees, since followers replay the leader's results verbatim).
    pub leader_fd: i32,
    /// Descriptor number in the receiving follower's table.
    pub local_fd: i32,
}

/// Additional control messages carried by the data channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelMessage {
    /// A descriptor was duplicated into the receiving process.
    Fd(FdTransfer),
    /// The coordinator promotes the receiving follower to leader (§5.1).
    Promote,
    /// The coordinator discards the receiving follower.
    Discard,
}

#[derive(Debug, Default)]
struct ChannelInner {
    messages: Mutex<VecDeque<ChannelMessage>>,
}

/// One follower's data channel.  The coordinator/leader side pushes
/// messages; the follower's monitor drains them.
#[derive(Debug, Clone, Default)]
pub struct DataChannel {
    inner: Arc<ChannelInner>,
    peer: Pid,
}

impl DataChannel {
    /// Creates a channel whose receiving end belongs to process `peer`.
    #[must_use]
    pub fn new(peer: Pid) -> Self {
        DataChannel {
            inner: Arc::new(ChannelInner::default()),
            peer,
        }
    }

    /// The process on the receiving end.
    #[must_use]
    pub fn peer(&self) -> Pid {
        self.peer
    }

    /// Sends a message to the follower.
    pub fn send(&self, message: ChannelMessage) {
        self.inner.messages.lock().push_back(message);
    }

    /// Sends a descriptor transfer.
    pub fn send_fd(&self, leader_fd: i32, local_fd: i32) {
        self.send(ChannelMessage::Fd(FdTransfer {
            leader_fd,
            local_fd,
        }));
    }

    /// Receives the next message, if any.
    #[must_use]
    pub fn try_recv(&self) -> Option<ChannelMessage> {
        self.inner.messages.lock().pop_front()
    }

    /// Receives the next descriptor transfer, skipping over (and returning to
    /// the queue tail) any other control messages.
    #[must_use]
    pub fn recv_fd(&self) -> Option<FdTransfer> {
        let mut messages = self.inner.messages.lock();
        let position = messages
            .iter()
            .position(|message| matches!(message, ChannelMessage::Fd(_)))?;
        match messages.remove(position) {
            Some(ChannelMessage::Fd(transfer)) => Some(transfer),
            _ => None,
        }
    }

    /// Number of undelivered messages.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.inner.messages.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_transfers_are_delivered_in_order() {
        let channel = DataChannel::new(7);
        assert_eq!(channel.peer(), 7);
        channel.send_fd(5, 9);
        channel.send_fd(6, 10);
        assert_eq!(channel.pending(), 2);
        assert_eq!(
            channel.recv_fd(),
            Some(FdTransfer {
                leader_fd: 5,
                local_fd: 9
            })
        );
        assert_eq!(
            channel.recv_fd(),
            Some(FdTransfer {
                leader_fd: 6,
                local_fd: 10
            })
        );
        assert_eq!(channel.recv_fd(), None);
    }

    #[test]
    fn control_messages_are_not_consumed_by_fd_receives() {
        let channel = DataChannel::new(1);
        channel.send(ChannelMessage::Promote);
        channel.send_fd(3, 4);
        assert_eq!(
            channel.recv_fd(),
            Some(FdTransfer {
                leader_fd: 3,
                local_fd: 4
            })
        );
        assert_eq!(channel.try_recv(), Some(ChannelMessage::Promote));
        assert_eq!(channel.try_recv(), None);
    }

    #[test]
    fn clones_share_the_queue() {
        let channel = DataChannel::new(2);
        let sender = channel.clone();
        sender.send(ChannelMessage::Discard);
        assert_eq!(channel.try_recv(), Some(ChannelMessage::Discard));
    }
}
