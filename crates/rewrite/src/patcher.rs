//! Rewriting system-call sites into jumps: binary detouring via trampolines
//! (§3.2).
//!
//! A system-call instruction is only two bytes long but a `jmp rel32` needs
//! five, so the patcher must relocate the instructions following the site
//! into a per-site trampoline.  When relocation is impossible — because one
//! of the bytes that would be overwritten is a potential branch target — the
//! site is instead rewritten to a two-byte software interrupt, which the
//! monitor catches through a signal handler and redirects to the same
//! system-call entry point (the paper's `INT 0x0` fallback).
//!
//! The emitted layout mirrors the original system:
//!
//! ```text
//!  text segment                         trampoline area
//!  ┌──────────────────────────┐         ┌─────────────────────────────┐
//!  │ ...                      │         │ [entry thunk]               │
//!  │ jmp  site_trampoline ────┼────────▶│ call entry_point            │
//!  │ nop (padding)            │         │ <relocated instructions>    │
//!  │ ...                ◀─────┼─────────┼─ jmp  back_to_text          │
//!  └──────────────────────────┘         └─────────────────────────────┘
//! ```

use crate::decoder::{self, InstructionClass};
use crate::error::RewriteError;
use crate::scanner::{self, ScanReport, SyscallSite};
use crate::segment::CodeSegment;

/// Size, in bytes, of a `jmp rel32` / `call rel32` instruction.
const JMP_REL32_LEN: usize = 5;
/// Size of the synthetic entry thunk placed at the start of the trampoline
/// area when no external entry point is configured.
const ENTRY_THUNK_LEN: usize = 16;

/// Configuration of the patcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchConfig {
    /// Virtual address of the monitor's system-call entry point.  When
    /// `None`, a synthetic entry thunk is emitted at the start of the
    /// trampoline area and used as the target.
    pub entry_point: Option<u64>,
    /// Base virtual address of the trampoline area.  When `None`, the area is
    /// placed immediately after the text segment (16-byte aligned), which is
    /// where VARAN maps its per-segment trampoline pages.
    pub trampoline_base: Option<u64>,
    /// Maximum number of bytes of trampoline code that may be emitted.
    pub trampoline_capacity: usize,
    /// Whether sites that cannot be detoured may fall back to an interrupt.
    pub interrupt_fallback: bool,
    /// Interrupt vector used by the fallback (the paper uses `INT 0x0`).
    pub interrupt_vector: u8,
}

impl Default for PatchConfig {
    fn default() -> Self {
        PatchConfig {
            entry_point: None,
            trampoline_base: None,
            trampoline_capacity: 64 * 1024,
            interrupt_fallback: true,
            interrupt_vector: 0x00,
        }
    }
}

/// How a particular site was rewritten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchMethod {
    /// The site was overwritten with a `jmp rel32` to a trampoline.
    Detour {
        /// Offset of the site's trampoline inside the trampoline segment.
        trampoline_offset: usize,
        /// Number of original bytes overwritten at the site.
        covered: usize,
        /// Number of instruction bytes relocated into the trampoline.
        relocated: usize,
    },
    /// The site was overwritten with a 2-byte software interrupt.
    Interrupt {
        /// The interrupt vector emitted.
        vector: u8,
    },
    /// The site's instruction was absorbed into the trampoline of an earlier,
    /// overlapping site and rewritten there as a call to the entry point.
    Inlined {
        /// Offset of the absorbing trampoline inside the trampoline segment.
        trampoline_offset: usize,
    },
    /// The site could not be rewritten (only possible when
    /// [`PatchConfig::interrupt_fallback`] is disabled).
    Skipped,
}

/// The rewrite record for one system-call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Patch {
    /// The site that was rewritten.
    pub site: SyscallSite,
    /// How it was rewritten.
    pub method: PatchMethod,
}

/// Aggregate statistics about one rewrite pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// System-call sites found by the scanner.
    pub sites: usize,
    /// Sites rewritten with a detour.
    pub detours: usize,
    /// Sites rewritten with the interrupt fallback.
    pub interrupts: usize,
    /// Sites absorbed into an earlier trampoline.
    pub inlined: usize,
    /// Sites left untouched (fallback disabled).
    pub skipped: usize,
    /// Bytes of original code relocated into trampolines.
    pub relocated_bytes: usize,
    /// Padding bytes written into the text segment.
    pub nop_bytes: usize,
    /// Total bytes of trampoline code emitted (including the entry thunk).
    pub trampoline_bytes: usize,
}

/// The result of rewriting one code segment.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// The rewritten text segment (same base address as the input).
    pub patched: CodeSegment,
    /// The trampoline segment generated for this text segment.
    pub trampoline: CodeSegment,
    /// Per-site rewrite records, in ascending site order.
    pub patches: Vec<Patch>,
    /// Aggregate statistics.
    pub stats: PatchStats,
    /// Virtual address used as the system-call entry point.
    pub entry_point: u64,
}

impl RewriteOutcome {
    /// Re-scans the patched text segment and returns how many system-call
    /// instructions remain (zero unless sites were skipped).
    #[must_use]
    pub fn remaining_syscalls(&self) -> usize {
        scanner::scan_with_policy(&self.patched, scanner::ScanPolicy::SkipUnknown)
            .map(|report| report.site_count())
            .unwrap_or(usize::MAX)
    }

    /// Checks the structural invariants of the rewrite:
    /// the patched segment has the same length as the original, every
    /// detoured site starts with a `jmp rel32` into the trampoline area, and
    /// every interrupt site starts with the configured interrupt opcode.
    ///
    /// # Errors
    ///
    /// Returns a [`RewriteError::PermissionViolation`] describing the first
    /// violated invariant (reusing the error type's free-form reason).
    pub fn verify(&self) -> Result<(), RewriteError> {
        let code = self.patched.bytes();
        for patch in &self.patches {
            let offset = patch.site.offset;
            match patch.method {
                PatchMethod::Detour { .. } => {
                    if code[offset] != 0xE9 {
                        return Err(RewriteError::PermissionViolation {
                            reason: format!("detoured site {offset:#x} does not start with jmp"),
                        });
                    }
                    let instruction = decoder::decode(code, offset)?;
                    let target = instruction
                        .branch_target()
                        .map(|t| self.patched.base() + t as u64);
                    // Branch target resolution is segment-relative; convert to
                    // an absolute address before comparing with the trampoline.
                    let absolute = match instruction.rel_displacement {
                        Some(disp) => {
                            let next = self.patched.base() + instruction.end() as u64;
                            Some((next as i64 + i64::from(disp)) as u64)
                        }
                        None => target,
                    };
                    let inside = absolute
                        .map(|addr| {
                            addr >= self.trampoline.base() && addr < self.trampoline.end()
                        })
                        .unwrap_or(false);
                    if !inside {
                        return Err(RewriteError::PermissionViolation {
                            reason: format!(
                                "detour at {offset:#x} does not target the trampoline area"
                            ),
                        });
                    }
                }
                PatchMethod::Interrupt { vector } => {
                    if code[offset] != 0xCD || code[offset + 1] != vector {
                        return Err(RewriteError::PermissionViolation {
                            reason: format!("interrupt site {offset:#x} not rewritten"),
                        });
                    }
                }
                PatchMethod::Inlined { .. } | PatchMethod::Skipped => {}
            }
        }
        if self.patched.len() != self.patched.bytes().len() {
            return Err(RewriteError::PermissionViolation {
                reason: "patched segment length mismatch".into(),
            });
        }
        Ok(())
    }
}

/// The selective binary rewriter.
#[derive(Debug, Clone, Default)]
pub struct Patcher {
    config: PatchConfig,
}

impl Patcher {
    /// Creates a patcher with the given configuration.
    #[must_use]
    pub fn new(config: PatchConfig) -> Self {
        Patcher { config }
    }

    /// The configuration this patcher uses.
    #[must_use]
    pub fn config(&self) -> &PatchConfig {
        &self.config
    }

    /// Scans and rewrites `segment`, returning the patched segment, the
    /// generated trampolines and per-site records.
    ///
    /// # Errors
    ///
    /// Returns decoding errors from the scanner, or
    /// [`RewriteError::TrampolineExhausted`] /
    /// [`RewriteError::DisplacementOverflow`] if the trampoline area cannot
    /// hold the required detours.
    pub fn rewrite(&self, segment: &CodeSegment) -> Result<RewriteOutcome, RewriteError> {
        let report = scanner::scan(segment)?;
        self.rewrite_with_report(segment, &report)
    }

    /// Like [`Patcher::rewrite`] but reuses an existing scan report.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Patcher::rewrite`].
    pub fn rewrite_with_report(
        &self,
        segment: &CodeSegment,
        report: &ScanReport,
    ) -> Result<RewriteOutcome, RewriteError> {
        let trampoline_base = self
            .config
            .trampoline_base
            .unwrap_or_else(|| (segment.end() + 0xF) & !0xF);
        let mut trampoline: Vec<u8> = Vec::new();
        let entry_point = match self.config.entry_point {
            Some(address) => address,
            None => {
                // Synthetic entry thunk: a recognisable pad of `int3`.
                trampoline.extend_from_slice(&[0xCC; ENTRY_THUNK_LEN]);
                trampoline_base
            }
        };

        let mut patched = segment.bytes().to_vec();
        let mut patches = Vec::with_capacity(report.sites.len());
        let mut stats = PatchStats {
            sites: report.sites.len(),
            ..PatchStats::default()
        };
        // Sites already absorbed by an earlier trampoline: (offset, tramp_off).
        let mut inlined_sites: Vec<(usize, usize)> = Vec::new();

        for site in &report.sites {
            if let Some(&(_, trampoline_offset)) = inlined_sites
                .iter()
                .find(|(offset, _)| *offset == site.offset)
            {
                patches.push(Patch {
                    site: *site,
                    method: PatchMethod::Inlined { trampoline_offset },
                });
                stats.inlined += 1;
                continue;
            }
            match self.try_detour(
                segment,
                report,
                site,
                &mut patched,
                &mut trampoline,
                trampoline_base,
                entry_point,
                &mut inlined_sites,
            )? {
                Some((method, relocated, nops)) => {
                    stats.detours += 1;
                    stats.relocated_bytes += relocated;
                    stats.nop_bytes += nops;
                    patches.push(Patch {
                        site: *site,
                        method,
                    });
                }
                None => {
                    if self.config.interrupt_fallback {
                        patched[site.offset] = 0xCD;
                        patched[site.offset + 1] = self.config.interrupt_vector;
                        stats.interrupts += 1;
                        patches.push(Patch {
                            site: *site,
                            method: PatchMethod::Interrupt {
                                vector: self.config.interrupt_vector,
                            },
                        });
                    } else {
                        stats.skipped += 1;
                        patches.push(Patch {
                            site: *site,
                            method: PatchMethod::Skipped,
                        });
                    }
                }
            }
        }

        stats.trampoline_bytes = trampoline.len();
        Ok(RewriteOutcome {
            patched: CodeSegment::new(segment.base(), patched),
            trampoline: CodeSegment::new(trampoline_base, trampoline),
            patches,
            stats,
            entry_point,
        })
    }

    /// Attempts to detour `site`. Returns `Ok(None)` if the site must fall
    /// back to an interrupt, `Ok(Some(...))` on success.
    #[allow(clippy::too_many_arguments)]
    fn try_detour(
        &self,
        segment: &CodeSegment,
        report: &ScanReport,
        site: &SyscallSite,
        patched: &mut [u8],
        trampoline: &mut Vec<u8>,
        trampoline_base: u64,
        entry_point: u64,
        inlined_sites: &mut Vec<(usize, usize)>,
    ) -> Result<Option<(PatchMethod, usize, usize)>, RewriteError> {
        let code = segment.bytes();
        // Collect the instructions that the 5-byte jump will overwrite.
        let mut covered = 0usize;
        let mut instructions = Vec::new();
        let mut cursor = site.offset;
        while covered < JMP_REL32_LEN {
            if cursor >= code.len() {
                return Ok(None); // segment ends before we can cover 5 bytes
            }
            let instruction = match decoder::decode(code, cursor) {
                Ok(instruction) => instruction,
                Err(_) => return Ok(None),
            };
            // A later instruction that is itself a branch target means some
            // other code jumps into the middle of the region we would
            // overwrite; relocating it would break that jump.
            if cursor != site.offset && report.branch_targets.contains(&cursor) {
                return Ok(None);
            }
            covered += instruction.len;
            instructions.push(instruction);
            cursor += instruction.len;
        }

        // Relocated instructions are everything after the syscall itself.
        // Relative rel8 branches cannot be relocated safely (their range is
        // too small to reach back); rel32 branches get their displacement
        // fixed up below.
        for instruction in &instructions[1..] {
            if matches!(
                instruction.class,
                InstructionClass::JumpRel8 | InstructionClass::CondJumpRel8
            ) {
                return Ok(None);
            }
        }

        let trampoline_offset = trampoline.len();
        let trampoline_va = trampoline_base + trampoline_offset as u64;
        let site_va = segment.base() + site.offset as u64;

        // 1. call entry_point
        let mut thunk: Vec<u8> = Vec::new();
        let call_next = trampoline_va + JMP_REL32_LEN as u64;
        let call_disp = i64_to_i32(entry_point as i64 - call_next as i64)
            .ok_or(RewriteError::DisplacementOverflow {
                offset: site.offset,
            })?;
        thunk.push(0xE8);
        thunk.extend_from_slice(&call_disp.to_le_bytes());

        // 2. relocated instructions (with rel32 fixups).
        let mut relocated_bytes = 0usize;
        for instruction in &instructions[1..] {
            let old_bytes = &code[instruction.offset..instruction.end()];
            let new_offset_va = trampoline_va + thunk.len() as u64;
            if instruction.is_syscall() {
                // An overlapping syscall site: rewrite it, inside the
                // trampoline, as another call to the entry point.
                let next = new_offset_va + JMP_REL32_LEN as u64;
                let disp = i64_to_i32(entry_point as i64 - next as i64).ok_or(
                    RewriteError::DisplacementOverflow {
                        offset: instruction.offset,
                    },
                )?;
                thunk.push(0xE8);
                thunk.extend_from_slice(&disp.to_le_bytes());
                inlined_sites.push((instruction.offset, trampoline_offset));
            } else if let Some(disp) = instruction.rel_displacement {
                // rel32 branch: retarget it from its new location.
                let old_next_va = segment.base() + instruction.end() as u64;
                let target_va = old_next_va as i64 + i64::from(disp);
                let new_next_va = new_offset_va + instruction.len as u64;
                let new_disp = i64_to_i32(target_va - new_next_va as i64).ok_or(
                    RewriteError::DisplacementOverflow {
                        offset: instruction.offset,
                    },
                )?;
                let disp_pos = instruction.len - 4;
                thunk.extend_from_slice(&old_bytes[..disp_pos]);
                thunk.extend_from_slice(&new_disp.to_le_bytes());
            } else {
                thunk.extend_from_slice(old_bytes);
            }
            relocated_bytes += instruction.len;
        }

        // 3. jmp back to the first byte after the covered region.
        let resume_va = site_va + covered as u64;
        let jmp_back_next = trampoline_va + thunk.len() as u64 + JMP_REL32_LEN as u64;
        let back_disp = i64_to_i32(resume_va as i64 - jmp_back_next as i64).ok_or(
            RewriteError::DisplacementOverflow {
                offset: site.offset,
            },
        )?;
        thunk.push(0xE9);
        thunk.extend_from_slice(&back_disp.to_le_bytes());

        if trampoline.len() + thunk.len() > self.config.trampoline_capacity {
            return Err(RewriteError::TrampolineExhausted {
                capacity: self.config.trampoline_capacity,
            });
        }
        trampoline.extend_from_slice(&thunk);

        // 4. overwrite the site with `jmp trampoline` plus nop padding.
        let jmp_next = site_va + JMP_REL32_LEN as u64;
        let jmp_disp = i64_to_i32(trampoline_va as i64 - jmp_next as i64).ok_or(
            RewriteError::DisplacementOverflow {
                offset: site.offset,
            },
        )?;
        patched[site.offset] = 0xE9;
        patched[site.offset + 1..site.offset + 5].copy_from_slice(&jmp_disp.to_le_bytes());
        let nops = covered - JMP_REL32_LEN;
        for pad in 0..nops {
            patched[site.offset + JMP_REL32_LEN + pad] = 0x90;
        }

        Ok(Some((
            PatchMethod::Detour {
                trampoline_offset,
                covered,
                relocated: relocated_bytes,
            },
            relocated_bytes,
            nops,
        )))
    }
}

fn i64_to_i32(value: i64) -> Option<i32> {
    i32::try_from(value).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{synthetic_text_segment, Assembler};
    use crate::scanner::scan;

    fn segment_of(code: Vec<u8>) -> CodeSegment {
        CodeSegment::new(0x40_0000, code)
    }

    #[test]
    fn rewrites_every_site_in_a_synthetic_segment() {
        let segment = segment_of(synthetic_text_segment(6, 3));
        let before = scan(&segment).unwrap().site_count();
        assert_eq!(before, 18);
        let outcome = Patcher::new(PatchConfig::default()).rewrite(&segment).unwrap();
        assert_eq!(outcome.patches.len(), 18);
        assert_eq!(outcome.remaining_syscalls(), 0);
        outcome.verify().unwrap();
        assert_eq!(outcome.stats.sites, 18);
        assert_eq!(
            outcome.stats.detours + outcome.stats.interrupts + outcome.stats.inlined,
            18
        );
        assert!(outcome.stats.trampoline_bytes > 0);
    }

    #[test]
    fn patched_segment_preserves_length_and_base() {
        let segment = segment_of(synthetic_text_segment(2, 2));
        let outcome = Patcher::new(PatchConfig::default()).rewrite(&segment).unwrap();
        assert_eq!(outcome.patched.len(), segment.len());
        assert_eq!(outcome.patched.base(), segment.base());
    }

    #[test]
    fn falls_back_to_interrupt_when_branch_targets_block_relocation() {
        // A branch targets the instruction immediately after the syscall, so
        // the 5-byte detour would overwrite a jump destination.
        let mut asm = Assembler::new();
        let after = asm.label();
        asm.mov_eax_imm(1);
        asm.je(after); // jumps to the instruction after the syscall
        asm.syscall();
        asm.bind(after);
        asm.nop();
        asm.nop();
        asm.nop();
        asm.ret();
        let segment = segment_of(asm.finish());
        let outcome = Patcher::new(PatchConfig::default()).rewrite(&segment).unwrap();
        assert_eq!(outcome.stats.interrupts, 1);
        assert_eq!(outcome.stats.detours, 0);
        assert_eq!(outcome.remaining_syscalls(), 0);
        outcome.verify().unwrap();
        // The interrupt keeps the original 2-byte footprint.
        let site = outcome.patches[0].site.offset;
        assert_eq!(outcome.patched.bytes()[site], 0xCD);
        assert_eq!(outcome.patched.bytes()[site + 1], 0x00);
    }

    #[test]
    fn syscall_at_end_of_segment_falls_back() {
        let mut asm = Assembler::new();
        asm.mov_eax_imm(60);
        asm.syscall(); // nothing after it: cannot cover 5 bytes
        let segment = segment_of(asm.finish());
        let outcome = Patcher::new(PatchConfig::default()).rewrite(&segment).unwrap();
        assert_eq!(outcome.stats.interrupts, 1);
        assert_eq!(outcome.remaining_syscalls(), 0);
    }

    #[test]
    fn adjacent_syscalls_are_inlined_into_one_trampoline() {
        let mut asm = Assembler::new();
        asm.mov_eax_imm(0);
        asm.syscall();
        asm.syscall(); // absorbed into the first site's covered region
        asm.nop();
        asm.ret();
        let segment = segment_of(asm.finish());
        let outcome = Patcher::new(PatchConfig::default()).rewrite(&segment).unwrap();
        assert_eq!(outcome.stats.detours, 1);
        assert_eq!(outcome.stats.inlined, 1);
        assert_eq!(outcome.remaining_syscalls(), 0);
        assert!(matches!(
            outcome.patches[1].method,
            PatchMethod::Inlined { .. }
        ));
    }

    #[test]
    fn disabled_fallback_skips_unrelocatable_sites() {
        let mut asm = Assembler::new();
        asm.mov_eax_imm(60);
        asm.syscall();
        let segment = segment_of(asm.finish());
        let config = PatchConfig {
            interrupt_fallback: false,
            ..PatchConfig::default()
        };
        let outcome = Patcher::new(config).rewrite(&segment).unwrap();
        assert_eq!(outcome.stats.skipped, 1);
        assert_eq!(outcome.remaining_syscalls(), 1);
    }

    #[test]
    fn trampoline_exhaustion_is_reported() {
        let segment = segment_of(synthetic_text_segment(4, 4));
        let config = PatchConfig {
            trampoline_capacity: 32,
            ..PatchConfig::default()
        };
        let err = Patcher::new(config).rewrite(&segment).unwrap_err();
        assert!(matches!(err, RewriteError::TrampolineExhausted { .. }));
    }

    #[test]
    fn external_entry_point_is_used_verbatim() {
        let segment = segment_of(synthetic_text_segment(1, 1));
        let entry = segment.end() + 0x1000;
        let config = PatchConfig {
            entry_point: Some(entry),
            ..PatchConfig::default()
        };
        let outcome = Patcher::new(config).rewrite(&segment).unwrap();
        assert_eq!(outcome.entry_point, entry);
        // No synthetic entry thunk: trampoline starts with the first detour.
        assert_eq!(outcome.trampoline.bytes()[0], 0xE8);
    }

    #[test]
    fn far_away_entry_point_overflows_displacement() {
        let segment = segment_of(synthetic_text_segment(1, 1));
        let config = PatchConfig {
            entry_point: Some(0x7FFF_FFFF_F000),
            ..PatchConfig::default()
        };
        let err = Patcher::new(config).rewrite(&segment).unwrap_err();
        assert!(matches!(err, RewriteError::DisplacementOverflow { .. }));
    }

    #[test]
    fn relocated_rel32_branches_are_fixed_up() {
        // Build: syscall; jne back_label  -- the jne is relocated and must be
        // retargeted so that it still reaches `back_label`.
        let mut asm = Assembler::new();
        let back = asm.label();
        asm.bind(back);
        asm.nop();
        asm.mov_eax_imm(7);
        asm.syscall();
        asm.jne(back);
        asm.nop();
        asm.ret();
        let segment = segment_of(asm.finish());
        let outcome = Patcher::new(PatchConfig::default()).rewrite(&segment).unwrap();
        assert_eq!(outcome.stats.detours, 1);
        outcome.verify().unwrap();
        // Find the relocated jne (0F 85) inside the trampoline and check that
        // its displacement resolves to the original target address.
        let trampoline = outcome.trampoline.bytes();
        let mut offset = ENTRY_THUNK_LEN; // skip the entry thunk
        let mut found = false;
        while offset < trampoline.len() {
            let instruction = decoder::decode(trampoline, offset).unwrap();
            if instruction.class == InstructionClass::CondJumpRel32 {
                let next_va = outcome.trampoline.base() + instruction.end() as u64;
                let target =
                    (next_va as i64 + i64::from(instruction.rel_displacement.unwrap())) as u64;
                assert_eq!(target, segment.base(), "jne must still target `back`");
                found = true;
            }
            offset = instruction.end();
        }
        assert!(found, "relocated jne not found in trampoline");
    }

    #[test]
    fn stats_account_for_padding() {
        // syscall followed by a 5-byte instruction: covered = 7, padding = 2.
        let mut asm = Assembler::new();
        asm.syscall();
        asm.mov_eax_imm(1);
        asm.ret();
        let segment = segment_of(asm.finish());
        let outcome = Patcher::new(PatchConfig::default()).rewrite(&segment).unwrap();
        assert_eq!(outcome.stats.detours, 1);
        assert_eq!(outcome.stats.nop_bytes, 2);
        assert_eq!(outcome.stats.relocated_bytes, 5);
    }
}
