//! Scanning a code segment for system-call sites (§3.2).
//!
//! Whenever code is loaded into memory (or an existing mapping is made
//! executable), VARAN scans each code page to find the system-call
//! instructions to rewrite.  The scanner walks the segment with the length
//! decoder, recording:
//!
//! * every system-call site (`syscall` / `int 0x80`),
//! * every instruction boundary (needed by the patcher to relocate code), and
//! * every *potential branch target* — the destination of any relative jump
//!   or call inside the segment.  A site whose detour would overwrite a
//!   branch target cannot be safely detoured and falls back to an interrupt.

use std::collections::BTreeSet;

use crate::decoder::{self, Instruction, InstructionClass};
use crate::error::RewriteError;
use crate::segment::CodeSegment;

/// The encoding used at a system-call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallKind {
    /// The 2-byte x86-64 `syscall` instruction.
    Syscall,
    /// The 2-byte legacy `int 0x80` instruction.
    Int80,
}

/// One system-call instruction found in a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyscallSite {
    /// Offset of the first byte of the instruction, relative to the segment.
    pub offset: usize,
    /// Instruction length in bytes (always 2 for both supported encodings).
    pub len: usize,
    /// Which encoding was found.
    pub kind: SyscallKind,
}

/// How the scanner reacts to bytes it cannot decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanPolicy {
    /// Abort the scan with an error (default; matches the prototype, which
    /// only rewrites segments it fully understands).
    #[default]
    Strict,
    /// Skip a single byte and resume decoding at the next offset, BIRD-style.
    /// Data embedded in text sections is tolerated at the cost of potentially
    /// missing sites hidden behind undecodable bytes.
    SkipUnknown,
}

/// Result of scanning one code segment.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    /// Number of instructions decoded.
    pub instructions: usize,
    /// Offsets (relative to the segment) at which each instruction starts.
    pub boundaries: BTreeSet<usize>,
    /// System-call sites found, in ascending offset order.
    pub sites: Vec<SyscallSite>,
    /// Offsets that are the target of some relative branch within the segment.
    pub branch_targets: BTreeSet<usize>,
    /// Number of bytes skipped (only non-zero under [`ScanPolicy::SkipUnknown`]).
    pub skipped_bytes: usize,
}

impl ScanReport {
    /// Returns `true` if `offset` is a decoded instruction boundary.
    #[must_use]
    pub fn is_boundary(&self, offset: usize) -> bool {
        self.boundaries.contains(&offset)
    }

    /// Returns `true` if any branch targets a byte in `range`.
    #[must_use]
    pub fn has_branch_target_in(&self, range: std::ops::Range<usize>) -> bool {
        self.branch_targets.range(range).next().is_some()
    }

    /// Number of system-call sites found.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }
}

/// Scans `segment` with the default [`ScanPolicy::Strict`] policy.
///
/// # Errors
///
/// Propagates decode errors from the underlying [`decoder`].
pub fn scan(segment: &CodeSegment) -> Result<ScanReport, RewriteError> {
    scan_with_policy(segment, ScanPolicy::Strict)
}

/// Scans `segment` under the given policy.
///
/// # Errors
///
/// Under [`ScanPolicy::Strict`], returns the first decode error encountered.
/// Under [`ScanPolicy::SkipUnknown`], undecodable bytes are skipped and the
/// scan always succeeds.
pub fn scan_with_policy(
    segment: &CodeSegment,
    policy: ScanPolicy,
) -> Result<ScanReport, RewriteError> {
    let code = segment.bytes();
    let mut report = ScanReport::default();
    let mut offset = 0usize;
    while offset < code.len() {
        match decoder::decode(code, offset) {
            Ok(instruction) => {
                record(&mut report, &instruction);
                offset = instruction.end();
            }
            Err(error) => match policy {
                ScanPolicy::Strict => return Err(error),
                ScanPolicy::SkipUnknown => {
                    report.skipped_bytes += 1;
                    offset += 1;
                }
            },
        }
    }
    Ok(report)
}

fn record(report: &mut ScanReport, instruction: &Instruction) {
    report.instructions += 1;
    report.boundaries.insert(instruction.offset);
    match instruction.class {
        InstructionClass::Syscall => report.sites.push(SyscallSite {
            offset: instruction.offset,
            len: instruction.len,
            kind: SyscallKind::Syscall,
        }),
        InstructionClass::Int(0x80) => report.sites.push(SyscallSite {
            offset: instruction.offset,
            len: instruction.len,
            kind: SyscallKind::Int80,
        }),
        _ => {}
    }
    if instruction.is_relative_branch() {
        if let Some(target) = instruction.branch_target() {
            report.branch_targets.insert(target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{synthetic_text_segment, Assembler};

    fn segment_of(code: Vec<u8>) -> CodeSegment {
        CodeSegment::new(0x40_0000, code)
    }

    #[test]
    fn finds_every_syscall_site() {
        let segment = segment_of(synthetic_text_segment(5, 4));
        let report = scan(&segment).unwrap();
        assert_eq!(report.site_count(), 20);
        assert!(report.instructions > 20);
        // Sites are reported in ascending order and are 2 bytes long.
        for window in report.sites.windows(2) {
            assert!(window[0].offset < window[1].offset);
        }
        assert!(report.sites.iter().all(|site| site.len == 2));
    }

    #[test]
    fn distinguishes_syscall_from_int80() {
        let mut asm = Assembler::new();
        asm.syscall();
        asm.int80();
        asm.ret();
        let report = scan(&segment_of(asm.finish())).unwrap();
        assert_eq!(report.sites.len(), 2);
        assert_eq!(report.sites[0].kind, SyscallKind::Syscall);
        assert_eq!(report.sites[1].kind, SyscallKind::Int80);
    }

    #[test]
    fn collects_branch_targets() {
        let mut asm = Assembler::new();
        let target = asm.label();
        asm.mov_eax_imm(1); // offset 0, len 5
        asm.bind(target); // offset 5
        asm.nop();
        asm.jmp(target);
        asm.ret();
        let report = scan(&segment_of(asm.finish())).unwrap();
        assert!(report.branch_targets.contains(&5));
        assert!(report.has_branch_target_in(4..6));
        assert!(!report.has_branch_target_in(0..5));
    }

    #[test]
    fn strict_policy_propagates_errors() {
        // 0x06 is invalid in 64-bit mode.
        let segment = segment_of(vec![0x90, 0x06, 0x90]);
        assert!(scan(&segment).is_err());
    }

    #[test]
    fn skip_policy_resynchronises() {
        let mut code = vec![0x90, 0x06];
        let mut asm = Assembler::new();
        asm.mov_eax_imm(39);
        asm.syscall();
        asm.ret();
        code.extend_from_slice(&asm.finish());
        let report = scan_with_policy(&segment_of(code), ScanPolicy::SkipUnknown).unwrap();
        assert_eq!(report.skipped_bytes, 1);
        assert_eq!(report.site_count(), 1);
    }

    #[test]
    fn empty_segment_scans_cleanly() {
        let report = scan(&segment_of(Vec::new())).unwrap();
        assert_eq!(report.instructions, 0);
        assert_eq!(report.site_count(), 0);
    }

    #[test]
    fn boundaries_cover_every_instruction_start() {
        let mut asm = Assembler::new();
        asm.push_rbp(); // 0
        asm.mov_rbp_rsp(); // 1
        asm.mov_eax_imm(60); // 4
        asm.syscall(); // 9
        asm.leave(); // 11
        asm.ret(); // 12
        let report = scan(&segment_of(asm.finish())).unwrap();
        let expected: Vec<usize> = vec![0, 1, 4, 9, 11, 12];
        assert_eq!(report.boundaries.iter().copied().collect::<Vec<_>>(), expected);
        assert!(report.is_boundary(9));
        assert!(!report.is_boundary(10));
    }
}
