//! Virtual system call (vDSO) handling (§3.2.1).
//!
//! Certain Linux system calls — `clock_gettime`, `getcpu`, `gettimeofday` and
//! `time` — are implemented entirely in user space inside the vDSO segment,
//! so they never reach the kernel and cannot be intercepted by `ptrace`.
//! VARAN is, to the authors' knowledge, the first NVX system to handle them,
//! by binary rewriting: every exported vDSO function entry point is replaced
//! with a jump to dynamically generated stub code that calls the monitor's
//! system-call entry point, and a trampoline preserves the moved prologue so
//! the original function can still be invoked by the monitor itself.
//!
//! The kernel advertises the vDSO base address in the ELF auxiliary vector
//! under `AT_SYSINFO_EHDR`; [`locate_base`] models that lookup.

use crate::asm::{Assembler, SymbolTable};
use crate::decoder;
use crate::error::RewriteError;
use crate::segment::CodeSegment;

/// The auxiliary-vector tag carrying the vDSO base address.
pub const AT_SYSINFO_EHDR: u64 = 33;

/// Size of a `jmp rel32`.
const JMP_REL32_LEN: usize = 5;

/// The virtual system calls exported by the (synthetic) vDSO.
pub const VDSO_SYMBOLS: [&str; 4] = [
    "__vdso_clock_gettime",
    "__vdso_getcpu",
    "__vdso_gettimeofday",
    "__vdso_time",
];

/// Finds the vDSO base address in an auxiliary vector of `(tag, value)` pairs.
#[must_use]
pub fn locate_base(auxv: &[(u64, u64)]) -> Option<u64> {
    auxv.iter()
        .find(|(tag, _)| *tag == AT_SYSINFO_EHDR)
        .map(|(_, value)| *value)
}

/// A synthetic vDSO segment: machine code for the four exported functions
/// plus a symbol table, standing in for the kernel-provided mapping.
#[derive(Debug, Clone)]
pub struct Vdso {
    segment: CodeSegment,
    symbols: SymbolTable,
}

impl Vdso {
    /// Builds a synthetic vDSO mapped at `base`.
    ///
    /// Each exported function has a realistic prologue (`push rbp; mov
    /// rbp, rsp`), reads the TSC, does a little arithmetic and returns — the
    /// same shape as the real implementations, and enough to exercise
    /// prologue relocation.
    #[must_use]
    pub fn synthetic(base: u64) -> Self {
        let mut code = Vec::new();
        let mut symbols = SymbolTable::new();
        for (index, name) in VDSO_SYMBOLS.iter().enumerate() {
            symbols.define(name, code.len());
            let mut asm = Assembler::new();
            asm.push_rbp();
            asm.mov_rbp_rsp();
            asm.rdtsc();
            asm.add_eax_imm(index as u32 + 1);
            asm.store_eax_local();
            asm.load_eax_local();
            asm.leave();
            asm.ret();
            code.extend_from_slice(&asm.finish());
            while code.len() % 16 != 0 {
                code.push(0x90);
            }
        }
        Vdso {
            segment: CodeSegment::new(base, code),
            symbols,
        }
    }

    /// The vDSO code segment.
    #[must_use]
    pub fn segment(&self) -> &CodeSegment {
        &self.segment
    }

    /// The exported symbol table.
    #[must_use]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Virtual address of the named symbol.
    #[must_use]
    pub fn symbol_address(&self, name: &str) -> Option<u64> {
        self.symbols
            .lookup(name)
            .map(|offset| self.segment.base() + offset as u64)
    }
}

/// Rewrite record for one vDSO symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VdsoPatch {
    /// Symbol name.
    pub name: String,
    /// Offset of the function entry inside the vDSO segment.
    pub entry_offset: usize,
    /// Offset of the generated stub inside the stub segment.
    pub stub_offset: usize,
    /// Offset of the original-code trampoline inside the stub segment.
    pub trampoline_offset: usize,
    /// Number of original prologue bytes relocated into the trampoline.
    pub relocated: usize,
}

/// Result of rewriting a vDSO segment.
#[derive(Debug, Clone)]
pub struct VdsoRewriteOutcome {
    /// The patched vDSO segment (entry points replaced with jumps).
    pub patched: CodeSegment,
    /// The dynamically generated stub/trampoline segment.
    pub stubs: CodeSegment,
    /// Per-symbol rewrite records.
    pub patches: Vec<VdsoPatch>,
    /// Entry point the stubs call into.
    pub entry_point: u64,
}

impl VdsoRewriteOutcome {
    /// Virtual address of the trampoline that invokes the *original*
    /// implementation of `name` — this is how the monitor itself can keep
    /// using the fast vDSO path after rewriting.
    #[must_use]
    pub fn original_entry(&self, name: &str) -> Option<u64> {
        self.patches
            .iter()
            .find(|patch| patch.name == name)
            .map(|patch| self.stubs.base() + patch.trampoline_offset as u64)
    }
}

/// Rewrites every exported function of `vdso`.
///
/// `entry_point` is the virtual address of the monitor's system-call entry
/// handler (the same handler regular rewritten system calls jump to); the
/// stub segment is placed immediately after the vDSO mapping.
///
/// # Errors
///
/// Returns [`RewriteError::MissingVdsoSymbol`] if a required symbol is absent
/// and decoding/displacement errors if the prologue cannot be relocated.
pub fn rewrite_vdso(vdso: &Vdso, entry_point: u64) -> Result<VdsoRewriteOutcome, RewriteError> {
    let mut patched = vdso.segment().bytes().to_vec();
    let stub_base = (vdso.segment().end() + 0xF) & !0xF;
    let mut stubs: Vec<u8> = Vec::new();
    let mut patches = Vec::new();

    for name in VDSO_SYMBOLS {
        let entry_offset = vdso
            .symbols()
            .lookup(name)
            .ok_or_else(|| RewriteError::MissingVdsoSymbol(name.to_owned()))?;

        // Gather the prologue instructions that the 5-byte jump overwrites.
        let code = vdso.segment().bytes();
        let mut covered = 0usize;
        let mut cursor = entry_offset;
        let mut prologue = Vec::new();
        while covered < JMP_REL32_LEN {
            let instruction = decoder::decode(code, cursor)?;
            covered += instruction.len;
            prologue.push(instruction);
            cursor += instruction.len;
        }

        // Stub: call the monitor entry point, then return to the caller.
        let stub_offset = stubs.len();
        let stub_va = stub_base + stub_offset as u64;
        let call_disp = i32::try_from(entry_point as i64 - (stub_va + 5) as i64).map_err(|_| {
            RewriteError::DisplacementOverflow {
                offset: entry_offset,
            }
        })?;
        stubs.push(0xE8);
        stubs.extend_from_slice(&call_disp.to_le_bytes());
        stubs.push(0xC3); // ret

        // Trampoline: the relocated prologue followed by a jump back to the
        // remainder of the original function, so the original implementation
        // stays callable.
        let trampoline_offset = stubs.len();
        for instruction in &prologue {
            stubs.extend_from_slice(&code[instruction.offset..instruction.end()]);
        }
        let resume_va = vdso.segment().base() + (entry_offset + covered) as u64;
        let jmp_va = stub_base + stubs.len() as u64;
        let back_disp = i32::try_from(resume_va as i64 - (jmp_va + 5) as i64).map_err(|_| {
            RewriteError::DisplacementOverflow {
                offset: entry_offset,
            }
        })?;
        stubs.push(0xE9);
        stubs.extend_from_slice(&back_disp.to_le_bytes());

        // Patch the original entry point: jump to the stub, pad with nops.
        let entry_va = vdso.segment().base() + entry_offset as u64;
        let jmp_disp = i32::try_from(stub_va as i64 - (entry_va + 5) as i64).map_err(|_| {
            RewriteError::DisplacementOverflow {
                offset: entry_offset,
            }
        })?;
        patched[entry_offset] = 0xE9;
        patched[entry_offset + 1..entry_offset + 5].copy_from_slice(&jmp_disp.to_le_bytes());
        for pad in JMP_REL32_LEN..covered {
            patched[entry_offset + pad] = 0x90;
        }

        patches.push(VdsoPatch {
            name: name.to_owned(),
            entry_offset,
            stub_offset,
            trampoline_offset,
            relocated: covered,
        });
    }

    Ok(VdsoRewriteOutcome {
        patched: CodeSegment::new(vdso.segment().base(), patched),
        stubs: CodeSegment::new(stub_base, stubs),
        patches,
        entry_point,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner;

    const VDSO_BASE: u64 = 0x7FFF_F7FF_A000 & 0x7FFF_FFFF; // keep displacements in range

    #[test]
    fn synthetic_vdso_exports_all_symbols() {
        let vdso = Vdso::synthetic(VDSO_BASE);
        for name in VDSO_SYMBOLS {
            assert!(vdso.symbol_address(name).is_some(), "{name} missing");
        }
        assert_eq!(vdso.symbols().len(), 4);
        // All code decodes cleanly.
        let report = scanner::scan(vdso.segment()).unwrap();
        assert!(report.instructions > 0);
        assert_eq!(report.site_count(), 0, "vdso functions make no syscalls");
    }

    #[test]
    fn locate_base_reads_auxiliary_vector() {
        let auxv = [(3u64, 0x1000u64), (AT_SYSINFO_EHDR, 0xABCD_0000), (6, 4096)];
        assert_eq!(locate_base(&auxv), Some(0xABCD_0000));
        assert_eq!(locate_base(&auxv[..1]), None);
    }

    #[test]
    fn rewrites_every_symbol_entry() {
        let vdso = Vdso::synthetic(VDSO_BASE);
        let entry_point = vdso.segment().end() + 0x10_000;
        let outcome = rewrite_vdso(&vdso, entry_point).unwrap();
        assert_eq!(outcome.patches.len(), 4);
        for patch in &outcome.patches {
            // Entry now starts with a jmp rel32.
            assert_eq!(outcome.patched.bytes()[patch.entry_offset], 0xE9);
            assert!(patch.relocated >= JMP_REL32_LEN);
        }
        // Stubs segment starts with a call (to the entry point) per symbol.
        assert_eq!(outcome.stubs.bytes()[0], 0xE8);
    }

    #[test]
    fn patched_entry_jumps_to_its_stub() {
        let vdso = Vdso::synthetic(VDSO_BASE);
        let outcome = rewrite_vdso(&vdso, vdso.segment().end() + 0x1000).unwrap();
        for patch in &outcome.patches {
            let instruction =
                decoder::decode(outcome.patched.bytes(), patch.entry_offset).unwrap();
            let next_va = outcome.patched.base() + instruction.end() as u64;
            let target = (next_va as i64 + i64::from(instruction.rel_displacement.unwrap())) as u64;
            assert_eq!(target, outcome.stubs.base() + patch.stub_offset as u64);
        }
    }

    #[test]
    fn trampoline_preserves_the_original_prologue() {
        let vdso = Vdso::synthetic(VDSO_BASE);
        let outcome = rewrite_vdso(&vdso, vdso.segment().end() + 0x1000).unwrap();
        for patch in &outcome.patches {
            let original =
                &vdso.segment().bytes()[patch.entry_offset..patch.entry_offset + patch.relocated];
            let relocated = &outcome.stubs.bytes()
                [patch.trampoline_offset..patch.trampoline_offset + patch.relocated];
            assert_eq!(original, relocated, "prologue of {} altered", patch.name);
            assert!(outcome.original_entry(&patch.name).is_some());
        }
        assert!(outcome.original_entry("__vdso_missing").is_none());
    }

    #[test]
    fn far_entry_point_reports_overflow() {
        let vdso = Vdso::synthetic(0x1000);
        let err = rewrite_vdso(&vdso, 0x7FFF_FFFF_FFFF).unwrap_err();
        assert!(matches!(err, RewriteError::DisplacementOverflow { .. }));
    }
}
