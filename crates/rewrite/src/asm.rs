//! A miniature x86-64 assembler used to build synthetic text segments.
//!
//! The original VARAN rewrites the text segments of real ELF binaries.  In
//! this reproduction the rewriter is exercised on synthetic segments produced
//! by this assembler (see `DESIGN.md`): the encodings are genuine x86-64
//! machine code, so the decoder, scanner and patcher operate on exactly the
//! byte patterns they would see in real programs.

use std::collections::HashMap;

/// A pending label fixup.
#[derive(Debug, Clone, Copy)]
struct Fixup {
    /// Offset of the displacement field to patch.
    at: usize,
    /// Width of the displacement in bytes (1 or 4).
    width: u8,
    /// Offset of the end of the instruction (displacements are relative to it).
    next: usize,
    /// Label the displacement refers to.
    label: Label,
}

/// An opaque label handle returned by [`Assembler::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incremental x86-64 machine-code builder.
///
/// # Examples
///
/// ```
/// use varan_rewrite::asm::Assembler;
///
/// let mut asm = Assembler::new();
/// let top = asm.label();
/// asm.bind(top);
/// asm.mov_eax_imm(0);
/// asm.cmp_eax_imm(10);
/// asm.jne(top);
/// asm.syscall();
/// asm.ret();
/// let code = asm.finish();
/// assert!(!code.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    code: Vec<u8>,
    labels: Vec<Option<usize>>,
    fixups: Vec<Fixup>,
}

impl Assembler {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Current offset (where the next instruction will be emitted).
    #[must_use]
    pub fn offset(&self) -> usize {
        self.code.len()
    }

    /// Creates a new, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current offset.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.code.len());
    }

    fn emit(&mut self, bytes: &[u8]) {
        self.code.extend_from_slice(bytes);
    }

    /// `nop`
    pub fn nop(&mut self) {
        self.emit(&[0x90]);
    }

    /// Emits `count` single-byte nops.
    pub fn nops(&mut self, count: usize) {
        for _ in 0..count {
            self.nop();
        }
    }

    /// `mov eax, imm32`
    pub fn mov_eax_imm(&mut self, imm: u32) {
        self.emit(&[0xB8]);
        self.emit(&imm.to_le_bytes());
    }

    /// `mov edi, imm32`
    pub fn mov_edi_imm(&mut self, imm: u32) {
        self.emit(&[0xBF]);
        self.emit(&imm.to_le_bytes());
    }

    /// `mov esi, imm32`
    pub fn mov_esi_imm(&mut self, imm: u32) {
        self.emit(&[0xBE]);
        self.emit(&imm.to_le_bytes());
    }

    /// `mov edx, imm32`
    pub fn mov_edx_imm(&mut self, imm: u32) {
        self.emit(&[0xBA]);
        self.emit(&imm.to_le_bytes());
    }

    /// `movabs rax, imm64`
    pub fn mov_rax_imm64(&mut self, imm: u64) {
        self.emit(&[0x48, 0xB8]);
        self.emit(&imm.to_le_bytes());
    }

    /// `add eax, imm32`
    pub fn add_eax_imm(&mut self, imm: u32) {
        self.emit(&[0x05]);
        self.emit(&imm.to_le_bytes());
    }

    /// `add eax, ebx`
    pub fn add_eax_ebx(&mut self) {
        self.emit(&[0x01, 0xD8]);
    }

    /// `xor eax, eax`
    pub fn xor_eax_eax(&mut self) {
        self.emit(&[0x31, 0xC0]);
    }

    /// `cmp eax, imm32`
    pub fn cmp_eax_imm(&mut self, imm: u32) {
        self.emit(&[0x3D]);
        self.emit(&imm.to_le_bytes());
    }

    /// `push rbp`
    pub fn push_rbp(&mut self) {
        self.emit(&[0x55]);
    }

    /// `pop rbp`
    pub fn pop_rbp(&mut self) {
        self.emit(&[0x5D]);
    }

    /// `mov rbp, rsp`
    pub fn mov_rbp_rsp(&mut self) {
        self.emit(&[0x48, 0x89, 0xE5]);
    }

    /// `mov [rbp-8], eax` (disp8 ModRM form)
    pub fn store_eax_local(&mut self) {
        self.emit(&[0x89, 0x45, 0xF8]);
    }

    /// `mov eax, [rbp-8]` (disp8 ModRM form)
    pub fn load_eax_local(&mut self) {
        self.emit(&[0x8B, 0x45, 0xF8]);
    }

    /// `lea rax, [rip+disp32]` — a RIP-relative form common in real code.
    pub fn lea_rax_rip(&mut self, disp: i32) {
        self.emit(&[0x48, 0x8D, 0x05]);
        self.emit(&disp.to_le_bytes());
    }

    /// `rdtsc`
    pub fn rdtsc(&mut self) {
        self.emit(&[0x0F, 0x31]);
    }

    /// `syscall` (the x86-64 fast system call instruction).
    pub fn syscall(&mut self) {
        self.emit(&[0x0F, 0x05]);
    }

    /// `int 0x80` (the legacy 32-bit system call).
    pub fn int80(&mut self) {
        self.emit(&[0xCD, 0x80]);
    }

    /// `int3`
    pub fn int3(&mut self) {
        self.emit(&[0xCC]);
    }

    /// `ret`
    pub fn ret(&mut self) {
        self.emit(&[0xC3]);
    }

    /// `leave`
    pub fn leave(&mut self) {
        self.emit(&[0xC9]);
    }

    /// `jmp label` (rel32 form).
    pub fn jmp(&mut self, label: Label) {
        self.emit(&[0xE9]);
        self.emit_label_rel32(label);
    }

    /// `jmp rel8` with an explicit raw displacement (for edge-case tests).
    pub fn jmp_rel8_raw(&mut self, disp: i8) {
        self.emit(&[0xEB, disp as u8]);
    }

    /// `call label` (rel32 form).
    pub fn call(&mut self, label: Label) {
        self.emit(&[0xE8]);
        self.emit_label_rel32(label);
    }

    /// `jne label` (rel32 form).
    pub fn jne(&mut self, label: Label) {
        self.emit(&[0x0F, 0x85]);
        self.emit_label_rel32(label);
    }

    /// `je label` (rel32 form).
    pub fn je(&mut self, label: Label) {
        self.emit(&[0x0F, 0x84]);
        self.emit_label_rel32(label);
    }

    /// `jne label` using the short (rel8) form; the label must already be
    /// bound and within range.
    ///
    /// # Panics
    ///
    /// Panics if the label is unbound or the displacement does not fit in a
    /// signed byte.
    pub fn jne_short(&mut self, label: Label) {
        let target = self.labels[label.0].expect("short jumps require a bound label");
        self.emit(&[0x75]);
        let next = self.code.len() + 1;
        let disp = target as i64 - next as i64;
        assert!(
            (-128..=127).contains(&disp),
            "short jump displacement out of range"
        );
        self.emit(&[(disp as i8) as u8]);
    }

    fn emit_label_rel32(&mut self, label: Label) {
        let at = self.code.len();
        self.emit(&[0, 0, 0, 0]);
        self.fixups.push(Fixup {
            at,
            width: 4,
            next: self.code.len(),
            label,
        });
    }

    /// Finalises the code, resolving all label fixups.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        for fixup in &self.fixups {
            let target = self.labels[fixup.label.0].expect("unbound label referenced");
            let disp = target as i64 - fixup.next as i64;
            match fixup.width {
                4 => {
                    let bytes = (disp as i32).to_le_bytes();
                    self.code[fixup.at..fixup.at + 4].copy_from_slice(&bytes);
                }
                1 => {
                    self.code[fixup.at] = (disp as i8) as u8;
                }
                _ => unreachable!("unsupported fixup width"),
            }
        }
        self.code
    }
}

/// Describes one system-call invocation to embed in a synthetic function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallSlot {
    /// System call number loaded into `eax` before the `syscall` instruction.
    pub number: u32,
    /// If `true`, emit the legacy `int 0x80` form instead of `syscall`.
    pub legacy: bool,
}

/// Builds a realistic function body containing the given system calls,
/// interleaved with ALU work, loads/stores, a loop and a few branches.
///
/// The generated code mimics the instruction mix of compiled C around syscall
/// wrappers so that the scanner and patcher are exercised on representative
/// byte patterns.
#[must_use]
pub fn synthetic_function(slots: &[SyscallSlot], filler: usize) -> Vec<u8> {
    let mut asm = Assembler::new();
    asm.push_rbp();
    asm.mov_rbp_rsp();
    asm.xor_eax_eax();
    let loop_top = asm.label();
    asm.bind(loop_top);
    asm.add_eax_imm(1);
    asm.store_eax_local();
    for slot in slots {
        asm.load_eax_local();
        asm.mov_eax_imm(slot.number);
        asm.mov_edi_imm(0);
        if slot.legacy {
            asm.int80();
        } else {
            asm.syscall();
        }
        asm.store_eax_local();
        asm.nops(filler.min(8));
    }
    asm.load_eax_local();
    asm.cmp_eax_imm(100);
    asm.jne(loop_top);
    asm.leave();
    asm.ret();
    asm.finish()
}

/// Builds a whole synthetic "text segment": `functions` copies of
/// [`synthetic_function`], each containing `syscalls_per_function` syscall
/// sites with distinct system-call numbers.
#[must_use]
pub fn synthetic_text_segment(functions: usize, syscalls_per_function: usize) -> Vec<u8> {
    let mut code = Vec::new();
    let mut number = 0u32;
    for _ in 0..functions {
        let slots: Vec<SyscallSlot> = (0..syscalls_per_function)
            .map(|i| {
                number += 1;
                SyscallSlot {
                    number,
                    legacy: i % 5 == 4,
                }
            })
            .collect();
        code.extend_from_slice(&synthetic_function(&slots, 3));
        // Function alignment padding, as emitted by real compilers.
        while code.len() % 16 != 0 {
            code.push(0x90);
        }
    }
    code
}

/// A named entry in a synthetic symbol table (used by the vDSO model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolTable {
    symbols: HashMap<String, usize>,
}

impl Default for SymbolTable {
    fn default() -> Self {
        Self::new()
    }
}

impl SymbolTable {
    /// Creates an empty symbol table.
    #[must_use]
    pub fn new() -> Self {
        SymbolTable {
            symbols: HashMap::new(),
        }
    }

    /// Records `name` at `offset`.
    pub fn define(&mut self, name: &str, offset: usize) {
        self.symbols.insert(name.to_owned(), offset);
    }

    /// Looks up the offset of `name`.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<usize> {
        self.symbols.get(name).copied()
    }

    /// Iterates over `(name, offset)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> {
        self.symbols.iter().map(|(name, &offset)| (name.as_str(), offset))
    }

    /// Number of symbols defined.
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` if no symbols are defined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder;

    #[test]
    fn assembled_code_is_fully_decodable() {
        let code = synthetic_text_segment(4, 3);
        let mut offset = 0;
        while offset < code.len() {
            let instruction = decoder::decode(&code, offset).expect("decodable");
            offset = instruction.end();
        }
        assert_eq!(offset, code.len());
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut asm = Assembler::new();
        let start = asm.label();
        let end = asm.label();
        asm.bind(start);
        asm.mov_eax_imm(1);
        asm.je(end);
        asm.jmp(start);
        asm.bind(end);
        asm.ret();
        let code = asm.finish();
        // je target: the ret at the end.
        let je = decoder::decode(&code, 5).unwrap();
        assert_eq!(je.branch_target(), Some(code.len() - 1));
        // jmp target: offset 0.
        let jmp = decoder::decode(&code, 11).unwrap();
        assert_eq!(jmp.branch_target(), Some(0));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics_at_finish() {
        let mut asm = Assembler::new();
        let label = asm.label();
        asm.jmp(label);
        let _ = asm.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut asm = Assembler::new();
        let label = asm.label();
        asm.bind(label);
        asm.bind(label);
    }

    #[test]
    fn synthetic_function_contains_requested_syscalls() {
        let slots = [
            SyscallSlot {
                number: 1,
                legacy: false,
            },
            SyscallSlot {
                number: 2,
                legacy: true,
            },
        ];
        let code = synthetic_function(&slots, 2);
        let mut syscalls = 0;
        let mut offset = 0;
        while offset < code.len() {
            let instruction = decoder::decode(&code, offset).unwrap();
            if instruction.is_syscall() {
                syscalls += 1;
            }
            offset = instruction.end();
        }
        assert_eq!(syscalls, 2);
    }

    #[test]
    fn short_jumps_encode_correctly() {
        let mut asm = Assembler::new();
        let top = asm.label();
        asm.bind(top);
        asm.nop();
        asm.jne_short(top);
        let code = asm.finish();
        let jne = decoder::decode(&code, 1).unwrap();
        assert_eq!(jne.branch_target(), Some(0));
    }

    #[test]
    fn symbol_table_round_trips() {
        let mut table = SymbolTable::new();
        assert!(table.is_empty());
        table.define("time", 0x40);
        table.define("gettimeofday", 0x80);
        assert_eq!(table.lookup("time"), Some(0x40));
        assert_eq!(table.lookup("missing"), None);
        assert_eq!(table.len(), 2);
        assert_eq!(table.iter().count(), 2);
    }
}
