//! Selective binary rewriting for the VARAN N-version execution framework
//! reproduction (§3.2 of the paper).
//!
//! VARAN intercepts system calls without `ptrace` by rewriting, in place,
//! every system-call instruction of a loaded text segment into a jump to an
//! internal system-call entry point.  This crate implements that machinery:
//!
//! * [`decoder`] — an x86-64 instruction *length* decoder (prefixes, REX,
//!   ModRM/SIB, displacements, immediates) sufficient to walk a text segment
//!   instruction by instruction.
//! * [`scanner`] — walks a [`CodeSegment`] and reports every system-call site
//!   (`syscall`, `int 0x80`) together with the surrounding instruction
//!   boundaries and the set of potential branch targets.
//! * [`patcher`] — performs *binary detouring via trampolines*: each 2-byte
//!   system-call instruction is replaced by a 5-byte `jmp rel32` to a
//!   trampoline, relocating the neighbouring instructions; when relocation is
//!   unsafe (a relocated byte is a potential branch target) the site falls
//!   back to a 2-byte software interrupt, exactly as described in §3.2.
//! * [`vdso`] — rewriting of virtual system calls exported by a synthetic
//!   vDSO segment (§3.2.1): entry points are replaced by jumps to dynamically
//!   generated stubs, and trampolines preserve the original entry code.
//! * [`wxorx`] — the W⊕X discipline tracker the rewriter follows so that no
//!   segment is ever writable and executable at the same time.
//! * [`asm`] — a miniature x86-64 assembler used to generate realistic
//!   synthetic text segments for tests and benchmarks (the stand-in for real
//!   ELF executables; see `DESIGN.md`).
//!
//! The crate operates on owned byte buffers ([`CodeSegment`]) rather than live
//! process memory, which keeps the algorithms identical while remaining safe
//! and portable.
//!
//! # Example
//!
//! ```
//! use varan_rewrite::{asm::Assembler, patcher::{PatchConfig, Patcher}, CodeSegment};
//!
//! # fn main() -> Result<(), varan_rewrite::RewriteError> {
//! // Build a synthetic text segment containing two system calls.
//! let mut asm = Assembler::new();
//! asm.mov_eax_imm(1);      // __NR_write
//! asm.syscall();
//! asm.mov_eax_imm(60);     // __NR_exit
//! asm.syscall();
//! asm.ret();
//! let segment = CodeSegment::new(0x40_0000, asm.finish());
//!
//! // Rewrite every syscall into a jump to the monitor's entry point.
//! let patcher = Patcher::new(PatchConfig::default());
//! let outcome = patcher.rewrite(&segment)?;
//! assert_eq!(outcome.patches.len(), 2);
//! assert_eq!(outcome.remaining_syscalls(), 0, "no un-rewritten syscalls remain");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod asm;
pub mod decoder;
pub mod patcher;
pub mod scanner;
pub mod vdso;
pub mod wxorx;

mod error;
mod segment;

pub use error::RewriteError;
pub use segment::{CodeSegment, Permissions};
