//! Error type for the binary rewriting pipeline.

use std::error::Error;
use std::fmt;

/// Errors produced while scanning or rewriting a code segment.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RewriteError {
    /// An instruction could not be decoded at the given segment offset.
    UndecodableInstruction {
        /// Offset of the first undecodable byte, relative to the segment base.
        offset: usize,
        /// The opcode byte that could not be classified.
        opcode: u8,
    },
    /// An instruction appears to run past the end of the segment.
    TruncatedInstruction {
        /// Offset of the truncated instruction.
        offset: usize,
    },
    /// The trampoline area is full; no more detours can be emitted.
    TrampolineExhausted {
        /// Bytes of trampoline space configured.
        capacity: usize,
    },
    /// A jump displacement does not fit in the signed 32-bit field of
    /// `jmp rel32` (segment and trampoline too far apart).
    DisplacementOverflow {
        /// Offset of the patch site.
        offset: usize,
    },
    /// The segment violates the W⊕X discipline for the attempted operation.
    PermissionViolation {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A vDSO symbol required for rewriting was not found.
    MissingVdsoSymbol(String),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::UndecodableInstruction { offset, opcode } => write!(
                f,
                "undecodable instruction at offset {offset:#x} (opcode {opcode:#04x})"
            ),
            RewriteError::TruncatedInstruction { offset } => {
                write!(f, "instruction at offset {offset:#x} is truncated")
            }
            RewriteError::TrampolineExhausted { capacity } => {
                write!(f, "trampoline area of {capacity} bytes exhausted")
            }
            RewriteError::DisplacementOverflow { offset } => write!(
                f,
                "jump displacement at offset {offset:#x} does not fit in 32 bits"
            ),
            RewriteError::PermissionViolation { reason } => {
                write!(f, "w^x permission violation: {reason}")
            }
            RewriteError::MissingVdsoSymbol(name) => {
                write!(f, "vdso symbol `{name}` not found")
            }
        }
    }
}

impl Error for RewriteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases = vec![
            RewriteError::UndecodableInstruction {
                offset: 0x10,
                opcode: 0x0f,
            },
            RewriteError::TruncatedInstruction { offset: 0x20 },
            RewriteError::TrampolineExhausted { capacity: 64 },
            RewriteError::DisplacementOverflow { offset: 0x30 },
            RewriteError::PermissionViolation {
                reason: "segment mapped writable and executable".into(),
            },
            RewriteError::MissingVdsoSymbol("time".into()),
        ];
        for case in cases {
            assert!(!case.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RewriteError>();
    }
}
