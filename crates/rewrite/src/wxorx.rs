//! W⊕X discipline tracking (§3.2).
//!
//! To prevent attackers from injecting system calls into the program, the
//! binary rewriter follows a W⊕X discipline throughout execution: no segment
//! is ever mapped writable and executable at the same time.  This module
//! tracks the permissions of every segment the rewriter touches and exposes a
//! transactional helper that temporarily downgrades a text segment to
//! read/write while it is being patched.

use std::collections::HashMap;

use crate::error::RewriteError;
use crate::segment::Permissions;

/// Identifier of a tracked segment (e.g. its base address).
pub type SegmentId = u64;

/// A recorded permission transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The segment whose permissions changed.
    pub segment: SegmentId,
    /// Permissions before the change (`None` for the initial mapping).
    pub from: Option<Permissions>,
    /// Permissions after the change.
    pub to: Permissions,
}

/// Tracks segment permissions and enforces the W⊕X discipline.
///
/// # Examples
///
/// ```
/// use varan_rewrite::wxorx::WxorxTracker;
/// use varan_rewrite::Permissions;
///
/// # fn main() -> Result<(), varan_rewrite::RewriteError> {
/// let mut tracker = WxorxTracker::new();
/// tracker.map(0x40_0000, Permissions::RX)?;
/// // Patch the segment inside a transaction that never exposes RWX.
/// tracker.rewrite_transaction(0x40_0000, |_| Ok(()))?;
/// assert_eq!(tracker.permissions(0x40_0000), Some(Permissions::RX));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct WxorxTracker {
    segments: HashMap<SegmentId, Permissions>,
    transitions: Vec<Transition>,
    violations_rejected: u64,
}

impl WxorxTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        WxorxTracker::default()
    }

    /// Registers a new segment mapping with the given permissions.
    ///
    /// # Errors
    ///
    /// Returns [`RewriteError::PermissionViolation`] if the requested
    /// permissions are writable *and* executable.
    pub fn map(&mut self, segment: SegmentId, perms: Permissions) -> Result<(), RewriteError> {
        if perms.violates_wxorx() {
            self.violations_rejected += 1;
            return Err(RewriteError::PermissionViolation {
                reason: format!("mapping segment {segment:#x} as {perms} violates w^x"),
            });
        }
        self.transitions.push(Transition {
            segment,
            from: self.segments.get(&segment).copied(),
            to: perms,
        });
        self.segments.insert(segment, perms);
        Ok(())
    }

    /// Changes the permissions of an already mapped segment.
    ///
    /// # Errors
    ///
    /// Returns [`RewriteError::PermissionViolation`] if the segment is not
    /// mapped or the new permissions violate W⊕X.
    pub fn mprotect(
        &mut self,
        segment: SegmentId,
        perms: Permissions,
    ) -> Result<(), RewriteError> {
        let current = self.segments.get(&segment).copied().ok_or_else(|| {
            RewriteError::PermissionViolation {
                reason: format!("segment {segment:#x} is not mapped"),
            }
        })?;
        if perms.violates_wxorx() {
            self.violations_rejected += 1;
            return Err(RewriteError::PermissionViolation {
                reason: format!("mprotect of segment {segment:#x} to {perms} violates w^x"),
            });
        }
        self.transitions.push(Transition {
            segment,
            from: Some(current),
            to: perms,
        });
        self.segments.insert(segment, perms);
        Ok(())
    }

    /// Removes a segment from the tracker (munmap).
    pub fn unmap(&mut self, segment: SegmentId) {
        self.segments.remove(&segment);
    }

    /// Current permissions of `segment`, if mapped.
    #[must_use]
    pub fn permissions(&self, segment: SegmentId) -> Option<Permissions> {
        self.segments.get(&segment).copied()
    }

    /// All permission transitions recorded so far, in order.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Number of W⊕X violations that were rejected.
    #[must_use]
    pub fn violations_rejected(&self) -> u64 {
        self.violations_rejected
    }

    /// Returns `true` if no currently mapped segment is both writable and
    /// executable (this should always hold).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.segments.values().all(|perms| !perms.violates_wxorx())
    }

    /// Runs `patch` with `segment` temporarily remapped read/write, restoring
    /// the segment to read/execute afterwards — the sequence the rewriter
    /// performs for every text segment it patches.
    ///
    /// # Errors
    ///
    /// Propagates errors from the permission changes and from `patch`; the
    /// segment is restored to RX even when `patch` fails.
    pub fn rewrite_transaction<F>(
        &mut self,
        segment: SegmentId,
        patch: F,
    ) -> Result<(), RewriteError>
    where
        F: FnOnce(&mut Self) -> Result<(), RewriteError>,
    {
        self.mprotect(segment, Permissions::RW)?;
        let result = patch(self);
        self.mprotect(segment, Permissions::RX)?;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_rwx_mappings() {
        let mut tracker = WxorxTracker::new();
        assert!(tracker.map(0x1000, Permissions::RWX).is_err());
        assert!(tracker.map(0x1000, Permissions::RX).is_ok());
        assert!(tracker.mprotect(0x1000, Permissions::RWX).is_err());
        assert_eq!(tracker.violations_rejected(), 2);
        assert!(tracker.is_consistent());
    }

    #[test]
    fn mprotect_requires_existing_mapping() {
        let mut tracker = WxorxTracker::new();
        assert!(tracker.mprotect(0x2000, Permissions::RW).is_err());
    }

    #[test]
    fn transaction_restores_rx_on_success_and_failure() {
        let mut tracker = WxorxTracker::new();
        tracker.map(0x1000, Permissions::RX).unwrap();
        tracker.rewrite_transaction(0x1000, |_| Ok(())).unwrap();
        assert_eq!(tracker.permissions(0x1000), Some(Permissions::RX));

        let err = tracker
            .rewrite_transaction(0x1000, |_| {
                Err(RewriteError::PermissionViolation {
                    reason: "synthetic failure".into(),
                })
            })
            .unwrap_err();
        assert!(matches!(err, RewriteError::PermissionViolation { .. }));
        assert_eq!(tracker.permissions(0x1000), Some(Permissions::RX));
    }

    #[test]
    fn transitions_are_recorded_in_order() {
        let mut tracker = WxorxTracker::new();
        tracker.map(0x1000, Permissions::RX).unwrap();
        tracker.rewrite_transaction(0x1000, |_| Ok(())).unwrap();
        let kinds: Vec<Permissions> = tracker.transitions().iter().map(|t| t.to).collect();
        assert_eq!(
            kinds,
            vec![Permissions::RX, Permissions::RW, Permissions::RX]
        );
        assert_eq!(tracker.transitions()[0].from, None);
        assert_eq!(tracker.transitions()[1].from, Some(Permissions::RX));
    }

    #[test]
    fn unmap_forgets_the_segment() {
        let mut tracker = WxorxTracker::new();
        tracker.map(0x1000, Permissions::R).unwrap();
        tracker.unmap(0x1000);
        assert_eq!(tracker.permissions(0x1000), None);
    }
}
