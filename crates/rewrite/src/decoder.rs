//! x86-64 instruction length decoder.
//!
//! The binary rewriter does not need full semantic disassembly: to relocate
//! the instructions surrounding a system call it only needs to know where
//! every instruction *starts and ends*, and which instructions are
//! control-flow transfers (whose targets must not fall inside a detour).
//! This module implements exactly that — "a simple x86 disassembler" in the
//! paper's words (§3.2) — as a table-driven length decoder covering the
//! instruction forms produced by ordinary compiled code: legacy and REX
//! prefixes, one- and two-byte opcodes, ModRM/SIB addressing, displacements
//! and immediates.
//!
//! Unknown or 64-bit-invalid opcodes yield
//! [`RewriteError::UndecodableInstruction`], letting the caller decide whether
//! to abort or fall back to interrupt-based interception for that region.

use crate::error::RewriteError;

/// Maximum encodable length of an x86-64 instruction.
pub const MAX_INSTRUCTION_LEN: usize = 15;

/// Coarse classification of a decoded instruction, sufficient for the
/// rewriter's control-flow analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstructionClass {
    /// `syscall` (0F 05) — the x86-64 fast system call.
    Syscall,
    /// `int imm8` (CD xx); `Int(0x80)` is the legacy 32-bit system call.
    Int(u8),
    /// `int3` (CC) breakpoint.
    Int3,
    /// `jmp rel8` (EB).
    JumpRel8,
    /// `jmp rel32` (E9).
    JumpRel32,
    /// `call rel32` (E8).
    CallRel32,
    /// Conditional jump with an 8-bit displacement (70–7F, E0–E3).
    CondJumpRel8,
    /// Conditional jump with a 32-bit displacement (0F 80–8F).
    CondJumpRel32,
    /// `ret` / `ret imm16`.
    Ret,
    /// `nop` and multi-byte nops.
    Nop,
    /// Anything else.
    Other,
}

/// A decoded instruction: its position, length and classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Offset of the first byte, relative to the start of the decoded buffer.
    pub offset: usize,
    /// Total length in bytes, including prefixes.
    pub len: usize,
    /// Coarse classification.
    pub class: InstructionClass,
    /// Signed displacement of a relative branch, if this is one.
    pub rel_displacement: Option<i32>,
}

impl Instruction {
    /// Offset one past the last byte of the instruction.
    #[must_use]
    pub fn end(&self) -> usize {
        self.offset + self.len
    }

    /// Returns `true` if this instruction is a system call entry point
    /// (`syscall` or `int 0x80`).
    #[must_use]
    pub fn is_syscall(&self) -> bool {
        matches!(
            self.class,
            InstructionClass::Syscall | InstructionClass::Int(0x80)
        )
    }

    /// Returns `true` if this instruction is a relative control-flow transfer.
    #[must_use]
    pub fn is_relative_branch(&self) -> bool {
        self.rel_displacement.is_some()
    }

    /// The buffer-relative target of a relative branch, if representable.
    ///
    /// Returns `None` for non-branches and for branches whose target lies
    /// outside the decoded buffer (negative or overflowing offsets).
    #[must_use]
    pub fn branch_target(&self) -> Option<usize> {
        let disp = self.rel_displacement?;
        let next = self.end() as i64;
        let target = next + i64::from(disp);
        if target < 0 {
            None
        } else {
            Some(target as usize)
        }
    }
}

/// Immediate-operand encodings understood by the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Imm {
    None,
    /// One byte.
    I8,
    /// Two bytes.
    I16,
    /// Two or four bytes depending on the operand-size prefix ("z" form).
    Iz,
    /// Two, four or eight bytes depending on prefixes ("v" form, B8–BF movs).
    Iv,
    /// Eight-byte memory offset (A0–A3 moffs in 64-bit mode).
    Moffs,
    /// `enter`: imm16 followed by imm8.
    Enter,
}

/// Per-opcode decoding info: does it take ModRM, and what immediate follows.
#[derive(Debug, Clone, Copy)]
struct OpcodeInfo {
    modrm: bool,
    imm: Imm,
}

const fn info(modrm: bool, imm: Imm) -> Option<OpcodeInfo> {
    Some(OpcodeInfo { modrm, imm })
}

/// Returns decoding info for a one-byte opcode, or `None` if the opcode is
/// invalid in 64-bit mode / not supported.
fn one_byte_info(op: u8) -> Option<OpcodeInfo> {
    match op {
        // ALU r/m,r and r,r/m forms: 00-03, 08-0B, 10-13, ..., 38-3B.
        0x00..=0x03
        | 0x08..=0x0B
        | 0x10..=0x13
        | 0x18..=0x1B
        | 0x20..=0x23
        | 0x28..=0x2B
        | 0x30..=0x33
        | 0x38..=0x3B => info(true, Imm::None),
        // ALU al,imm8 forms.
        0x04 | 0x0C | 0x14 | 0x1C | 0x24 | 0x2C | 0x34 | 0x3C => info(false, Imm::I8),
        // ALU eax,imm32 forms.
        0x05 | 0x0D | 0x15 | 0x1D | 0x25 | 0x2D | 0x35 | 0x3D => info(false, Imm::Iz),
        // push/pop r64.
        0x50..=0x5F => info(false, Imm::None),
        // movsxd r64, r/m32.
        0x63 => info(true, Imm::None),
        // push imm32 / imul r,r/m,imm32 / push imm8 / imul r,r/m,imm8.
        0x68 => info(false, Imm::Iz),
        0x69 => info(true, Imm::Iz),
        0x6A => info(false, Imm::I8),
        0x6B => info(true, Imm::I8),
        // ins/outs string ops.
        0x6C..=0x6F => info(false, Imm::None),
        // jcc rel8.
        0x70..=0x7F => info(false, Imm::I8),
        // Immediate group 1.
        0x80 => info(true, Imm::I8),
        0x81 => info(true, Imm::Iz),
        0x83 => info(true, Imm::I8),
        // test/xchg/mov/lea/pop.
        0x84..=0x8F => info(true, Imm::None),
        // nop / xchg rAX / cwde / cdq / wait / pushf / popf / sahf / lahf.
        0x90..=0x99 | 0x9B..=0x9F => info(false, Imm::None),
        // mov al/eax <-> moffs (64-bit offset in long mode).
        0xA0..=0xA3 => info(false, Imm::Moffs),
        // movs/cmps.
        0xA4..=0xA7 => info(false, Imm::None),
        // test al,imm8 / test eax,imm32.
        0xA8 => info(false, Imm::I8),
        0xA9 => info(false, Imm::Iz),
        // stos/lods/scas.
        0xAA..=0xAF => info(false, Imm::None),
        // mov r8, imm8.
        0xB0..=0xB7 => info(false, Imm::I8),
        // mov r32/r64, imm32/imm64.
        0xB8..=0xBF => info(false, Imm::Iv),
        // Shift group with imm8.
        0xC0 | 0xC1 => info(true, Imm::I8),
        // ret imm16 / ret.
        0xC2 => info(false, Imm::I16),
        0xC3 => info(false, Imm::None),
        // mov r/m, imm.
        0xC6 => info(true, Imm::I8),
        0xC7 => info(true, Imm::Iz),
        // enter imm16, imm8 / leave.
        0xC8 => info(false, Imm::Enter),
        0xC9 => info(false, Imm::None),
        // far ret / int3 / int imm8 / iret.
        0xCA => info(false, Imm::I16),
        0xCB => info(false, Imm::None),
        0xCC => info(false, Imm::None),
        0xCD => info(false, Imm::I8),
        0xCF => info(false, Imm::None),
        // Shift group by 1/cl.
        0xD0..=0xD3 => info(true, Imm::None),
        // xlat.
        0xD7 => info(false, Imm::None),
        // x87 escape opcodes.
        0xD8..=0xDF => info(true, Imm::None),
        // loopne/loope/loop/jcxz rel8.
        0xE0..=0xE3 => info(false, Imm::I8),
        // in/out imm8.
        0xE4..=0xE7 => info(false, Imm::I8),
        // call rel32 / jmp rel32 / jmp rel8.
        0xE8 => info(false, Imm::Iz),
        0xE9 => info(false, Imm::Iz),
        0xEB => info(false, Imm::I8),
        // in/out dx.
        0xEC..=0xEF => info(false, Imm::None),
        // int1 / hlt / cmc.
        0xF1 | 0xF4 | 0xF5 => info(false, Imm::None),
        // Unary group 3 (test has an immediate, handled separately).
        0xF6 | 0xF7 => info(true, Imm::None),
        // clc..std.
        0xF8..=0xFD => info(false, Imm::None),
        // inc/dec group 4, group 5 (inc/dec/call/jmp/push r/m).
        0xFE | 0xFF => info(true, Imm::None),
        _ => None,
    }
}

/// Returns decoding info for a two-byte (`0F xx`) opcode.
fn two_byte_info(op: u8) -> Option<OpcodeInfo> {
    match op {
        // syscall / clts / sysret / invd / wbinvd / ud2.
        0x05 | 0x06 | 0x07 | 0x08 | 0x09 | 0x0B => info(false, Imm::None),
        // SSE moves and conversions, prefetch/nop hints.
        0x10..=0x17 | 0x18..=0x1F | 0x28..=0x2F => info(true, Imm::None),
        // mov to/from control and debug registers.
        0x20..=0x23 => info(true, Imm::None),
        // wrmsr / rdtsc / rdmsr / rdpmc / sysenter / sysexit.
        0x30..=0x35 => info(false, Imm::None),
        // cmovcc.
        0x40..=0x4F => info(true, Imm::None),
        // SSE arithmetic; 70-73 take an imm8.
        0x50..=0x6F => info(true, Imm::None),
        0x70..=0x73 => info(true, Imm::I8),
        0x74..=0x7F => info(true, Imm::None),
        // jcc rel32.
        0x80..=0x8F => info(false, Imm::Iz),
        // setcc.
        0x90..=0x9F => info(true, Imm::None),
        // push/pop fs/gs, cpuid, bt, shld.
        0xA0 | 0xA1 | 0xA2 | 0xA8 | 0xA9 | 0xAA => info(false, Imm::None),
        0xA3 | 0xA5 | 0xAB | 0xAD | 0xAE | 0xAF => info(true, Imm::None),
        0xA4 | 0xAC => info(true, Imm::I8),
        // cmpxchg, btr, movzx/movsx, bsf/bsr, btc.
        0xB0 | 0xB1 | 0xB3 | 0xB6 | 0xB7 | 0xBB..=0xBF => info(true, Imm::None),
        // Group 8: bt/bts/btr/btc r/m, imm8.
        0xBA => info(true, Imm::I8),
        // xadd, cmpps (imm8), movnti, pinsrw (imm8), pextrw (imm8), shufps (imm8), group 9.
        0xC0 | 0xC1 | 0xC3 | 0xC7 => info(true, Imm::None),
        0xC2 | 0xC4 | 0xC5 | 0xC6 => info(true, Imm::I8),
        // bswap.
        0xC8..=0xCF => info(false, Imm::None),
        // Remaining SSE/MMX blocks all take ModRM and no immediate.
        0xD0..=0xFE => info(true, Imm::None),
        _ => None,
    }
}

/// Decodes the instruction starting at `offset` inside `code`.
///
/// # Errors
///
/// Returns [`RewriteError::UndecodableInstruction`] for opcodes outside the
/// supported set and [`RewriteError::TruncatedInstruction`] if the
/// instruction would run past the end of `code`.
pub fn decode(code: &[u8], offset: usize) -> Result<Instruction, RewriteError> {
    let mut cursor = offset;
    let truncated = |offset| RewriteError::TruncatedInstruction { offset };
    let mut operand_size_16 = false;
    let mut rex_w = false;

    // Legacy prefixes (any number, in any order).
    loop {
        let byte = *code.get(cursor).ok_or(truncated(offset))?;
        match byte {
            0xF0 | 0xF2 | 0xF3 | 0x2E | 0x36 | 0x3E | 0x26 | 0x64 | 0x65 | 0x67 => cursor += 1,
            0x66 => {
                operand_size_16 = true;
                cursor += 1;
            }
            _ => break,
        }
        if cursor - offset > MAX_INSTRUCTION_LEN {
            return Err(RewriteError::UndecodableInstruction {
                offset,
                opcode: byte,
            });
        }
    }

    // REX prefix (at most one, immediately before the opcode).
    if let Some(&byte) = code.get(cursor) {
        if (0x40..=0x4F).contains(&byte) {
            rex_w = byte & 0x08 != 0;
            cursor += 1;
        }
    }

    let opcode = *code.get(cursor).ok_or(truncated(offset))?;
    cursor += 1;

    let (op_info, class, second_opcode) = if opcode == 0x0F {
        let second = *code.get(cursor).ok_or(truncated(offset))?;
        cursor += 1;
        let op_info = two_byte_info(second).ok_or(RewriteError::UndecodableInstruction {
            offset,
            opcode: second,
        })?;
        let class = match second {
            0x05 => InstructionClass::Syscall,
            0x80..=0x8F => InstructionClass::CondJumpRel32,
            0x1F => InstructionClass::Nop,
            _ => InstructionClass::Other,
        };
        (op_info, class, Some(second))
    } else {
        let op_info = one_byte_info(opcode).ok_or(RewriteError::UndecodableInstruction {
            offset,
            opcode,
        })?;
        let class = match opcode {
            0xCC => InstructionClass::Int3,
            0xCD => InstructionClass::Other, // refined after the immediate is read
            0xE8 => InstructionClass::CallRel32,
            0xE9 => InstructionClass::JumpRel32,
            0xEB => InstructionClass::JumpRel8,
            0x70..=0x7F | 0xE0..=0xE3 => InstructionClass::CondJumpRel8,
            0xC2 | 0xC3 | 0xCA | 0xCB => InstructionClass::Ret,
            0x90 => InstructionClass::Nop,
            _ => InstructionClass::Other,
        };
        (op_info, class, None)
    };

    // ModRM, SIB and displacement.
    let mut group3_imm = Imm::None;
    if op_info.modrm {
        let modrm = *code.get(cursor).ok_or(truncated(offset))?;
        cursor += 1;
        let modbits = modrm >> 6;
        let reg = (modrm >> 3) & 0x7;
        let rm = modrm & 0x7;
        if modbits != 0b11 && rm == 0b100 {
            // SIB byte present.
            let sib = *code.get(cursor).ok_or(truncated(offset))?;
            cursor += 1;
            let base = sib & 0x7;
            if modbits == 0b00 && base == 0b101 {
                cursor += 4; // disp32 with no base register
            }
        }
        match modbits {
            0b00 => {
                if rm == 0b101 {
                    cursor += 4; // RIP-relative disp32
                }
            }
            0b01 => cursor += 1,
            0b10 => cursor += 4,
            _ => {}
        }
        // Group 3 (F6/F7): the `test` forms (reg 0 and 1) carry an immediate.
        if second_opcode.is_none() && (opcode == 0xF6 || opcode == 0xF7) && reg <= 1 {
            group3_imm = if opcode == 0xF6 { Imm::I8 } else { Imm::Iz };
        }
    }

    // Immediate operand.
    let imm = if group3_imm != Imm::None {
        group3_imm
    } else {
        op_info.imm
    };
    let imm_len = match imm {
        Imm::None => 0,
        Imm::I8 => 1,
        Imm::I16 => 2,
        Imm::Iz => {
            if operand_size_16 {
                2
            } else {
                4
            }
        }
        Imm::Iv => {
            if rex_w {
                8
            } else if operand_size_16 {
                2
            } else {
                4
            }
        }
        Imm::Moffs => 8,
        Imm::Enter => 3,
    };
    if cursor + imm_len > code.len() {
        return Err(truncated(offset));
    }
    let imm_start = cursor;
    cursor += imm_len;

    let len = cursor - offset;
    if len > MAX_INSTRUCTION_LEN {
        return Err(RewriteError::UndecodableInstruction { offset, opcode });
    }

    // Refine the classification now that the immediate bytes are known.
    let mut class = class;
    let mut rel_displacement = None;
    match class {
        InstructionClass::JumpRel8 | InstructionClass::CondJumpRel8 => {
            rel_displacement = Some(i32::from(code[imm_start] as i8));
        }
        InstructionClass::JumpRel32
        | InstructionClass::CallRel32
        | InstructionClass::CondJumpRel32 => {
            let bytes = [
                code[imm_start],
                code[imm_start + 1],
                code[imm_start + 2],
                code[imm_start + 3],
            ];
            rel_displacement = Some(i32::from_le_bytes(bytes));
        }
        _ => {}
    }
    if second_opcode.is_none() && opcode == 0xCD {
        class = InstructionClass::Int(code[imm_start]);
    }

    Ok(Instruction {
        offset,
        len,
        class,
        rel_displacement,
    })
}

/// An iterator decoding successive instructions from a byte buffer.
///
/// Produced by [`iter`]; yields `Err` once and stops if an undecodable or
/// truncated instruction is encountered.
#[derive(Debug)]
pub struct Iter<'a> {
    code: &'a [u8],
    offset: usize,
    failed: bool,
}

/// Decodes `code` from `start` to the end, one instruction at a time.
#[must_use]
pub fn iter(code: &[u8], start: usize) -> Iter<'_> {
    Iter {
        code,
        offset: start,
        failed: false,
    }
}

impl<'a> Iterator for Iter<'a> {
    type Item = Result<Instruction, RewriteError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.offset >= self.code.len() {
            return None;
        }
        match decode(self.code, self.offset) {
            Ok(instruction) => {
                self.offset = instruction.end();
                Some(Ok(instruction))
            }
            Err(error) => {
                self.failed = true;
                Some(Err(error))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn len_of(bytes: &[u8]) -> usize {
        decode(bytes, 0).expect("decodable").len
    }

    #[test]
    fn decodes_simple_one_byte_instructions() {
        assert_eq!(len_of(&[0x90]), 1); // nop
        assert_eq!(len_of(&[0xC3]), 1); // ret
        assert_eq!(len_of(&[0x50]), 1); // push rax
        assert_eq!(len_of(&[0xCC]), 1); // int3
        assert_eq!(len_of(&[0xF4]), 1); // hlt
    }

    #[test]
    fn decodes_syscall_and_int80() {
        let syscall = decode(&[0x0F, 0x05], 0).unwrap();
        assert_eq!(syscall.len, 2);
        assert_eq!(syscall.class, InstructionClass::Syscall);
        assert!(syscall.is_syscall());

        let int80 = decode(&[0xCD, 0x80], 0).unwrap();
        assert_eq!(int80.len, 2);
        assert_eq!(int80.class, InstructionClass::Int(0x80));
        assert!(int80.is_syscall());

        let int1 = decode(&[0xCD, 0x01], 0).unwrap();
        assert!(!int1.is_syscall());
    }

    #[test]
    fn decodes_mov_immediates() {
        assert_eq!(len_of(&[0xB8, 1, 0, 0, 0]), 5); // mov eax, 1
        assert_eq!(len_of(&[0x48, 0xB8, 1, 2, 3, 4, 5, 6, 7, 8]), 10); // movabs rax, imm64
        assert_eq!(len_of(&[0x66, 0xB8, 1, 0]), 4); // mov ax, 1
        assert_eq!(len_of(&[0xB0, 0x7F]), 2); // mov al, 0x7f
    }

    #[test]
    fn decodes_modrm_and_sib_forms() {
        assert_eq!(len_of(&[0x89, 0xD8]), 2); // mov eax, ebx (reg-reg)
        assert_eq!(len_of(&[0x89, 0x45, 0x08]), 3); // mov [rbp+8], eax (disp8)
        assert_eq!(len_of(&[0x89, 0x85, 0x00, 0x01, 0x00, 0x00]), 6); // disp32
        assert_eq!(len_of(&[0x8B, 0x04, 0x25, 0x10, 0x00, 0x00, 0x00]), 7); // SIB, no base
        assert_eq!(len_of(&[0x48, 0x8B, 0x04, 0xC8]), 4); // mov rax, [rax+rcx*8]
        assert_eq!(len_of(&[0x8B, 0x05, 0x44, 0x33, 0x22, 0x11]), 6); // RIP-relative
    }

    #[test]
    fn decodes_group3_test_immediates() {
        assert_eq!(len_of(&[0xF7, 0xC0, 1, 0, 0, 0]), 6); // test eax, imm32
        assert_eq!(len_of(&[0xF6, 0xC1, 0x01]), 3); // test cl, imm8
        assert_eq!(len_of(&[0xF7, 0xD8]), 2); // neg eax (no immediate)
    }

    #[test]
    fn decodes_branches_with_targets() {
        let jmp = decode(&[0xEB, 0x10], 0).unwrap();
        assert_eq!(jmp.class, InstructionClass::JumpRel8);
        assert_eq!(jmp.branch_target(), Some(0x12));

        let call = decode(&[0xE8, 0x00, 0x01, 0x00, 0x00], 0).unwrap();
        assert_eq!(call.class, InstructionClass::CallRel32);
        assert_eq!(call.branch_target(), Some(0x105));

        let jcc = decode(&[0x0F, 0x84, 0x20, 0x00, 0x00, 0x00], 0).unwrap();
        assert_eq!(jcc.class, InstructionClass::CondJumpRel32);
        assert_eq!(jcc.branch_target(), Some(0x26));

        let backwards = decode(&[0x75, 0xFE], 0).unwrap(); // jnz -2 (to itself)
        assert_eq!(backwards.branch_target(), Some(0));

        let out_of_range = decode(&[0x75, 0x80], 0).unwrap(); // target before buffer
        assert_eq!(out_of_range.branch_target(), None);
    }

    #[test]
    fn decodes_two_byte_opcodes() {
        assert_eq!(len_of(&[0x0F, 0xB6, 0xC0]), 3); // movzx eax, al
        assert_eq!(len_of(&[0x0F, 0xAF, 0xC3]), 3); // imul eax, ebx
        assert_eq!(len_of(&[0x0F, 0x1F, 0x40, 0x00]), 4); // 4-byte nop
        assert_eq!(len_of(&[0x0F, 0xA2]), 2); // cpuid
        assert_eq!(len_of(&[0x0F, 0x31]), 2); // rdtsc
        assert_eq!(len_of(&[0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00]), 6); // 6-byte nop
    }

    #[test]
    fn rejects_invalid_opcodes() {
        assert!(matches!(
            decode(&[0x06], 0),
            Err(RewriteError::UndecodableInstruction { opcode: 0x06, .. })
        ));
        assert!(matches!(
            decode(&[0x0F, 0xFF, 0x00], 0),
            Err(RewriteError::UndecodableInstruction { opcode: 0xFF, .. })
        ));
    }

    #[test]
    fn rejects_truncated_instructions() {
        assert!(matches!(
            decode(&[0xB8, 0x01], 0),
            Err(RewriteError::TruncatedInstruction { .. })
        ));
        assert!(matches!(
            decode(&[0x0F], 0),
            Err(RewriteError::TruncatedInstruction { .. })
        ));
        assert!(matches!(
            decode(&[0x89], 0),
            Err(RewriteError::TruncatedInstruction { .. })
        ));
    }

    #[test]
    fn prefixes_are_counted_in_length() {
        // lock cmpxchg [rdx], ecx
        assert_eq!(len_of(&[0xF0, 0x0F, 0xB1, 0x0A]), 4);
        // rep movsb
        assert_eq!(len_of(&[0xF3, 0xA4]), 2);
        // fs-segment mov with REX.
        assert_eq!(len_of(&[0x64, 0x48, 0x8B, 0x04, 0x25, 0, 0, 0, 0]), 9);
    }

    #[test]
    fn iterator_walks_a_basic_block() {
        // mov eax, 1; syscall; ret
        let code = [0xB8, 1, 0, 0, 0, 0x0F, 0x05, 0xC3];
        let decoded: Vec<Instruction> = iter(&code, 0).collect::<Result<_, _>>().unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0].len, 5);
        assert_eq!(decoded[1].class, InstructionClass::Syscall);
        assert_eq!(decoded[2].class, InstructionClass::Ret);
        assert_eq!(decoded[2].end(), code.len());
    }

    #[test]
    fn iterator_stops_after_error() {
        let code = [0x90, 0x06, 0x90];
        let results: Vec<_> = iter(&code, 0).collect();
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }
}
