//! Code segments: the unit of loading and rewriting.

use std::fmt;

/// Memory permissions of a segment, used by the W⊕X tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Permissions {
    /// Segment may be read.
    pub read: bool,
    /// Segment may be written.
    pub write: bool,
    /// Segment may be executed.
    pub execute: bool,
}

impl Permissions {
    /// Read + execute (the normal state of a text segment).
    pub const RX: Permissions = Permissions {
        read: true,
        write: false,
        execute: true,
    };
    /// Read + write (the state while the rewriter patches a segment).
    pub const RW: Permissions = Permissions {
        read: true,
        write: true,
        execute: false,
    };
    /// Read only.
    pub const R: Permissions = Permissions {
        read: true,
        write: false,
        execute: false,
    };
    /// Read + write + execute — forbidden by the W⊕X discipline.
    pub const RWX: Permissions = Permissions {
        read: true,
        write: true,
        execute: true,
    };

    /// Returns `true` if these permissions violate the W⊕X discipline.
    #[must_use]
    pub fn violates_wxorx(self) -> bool {
        self.write && self.execute
    }
}

impl fmt::Display for Permissions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.execute { 'x' } else { '-' }
        )
    }
}

/// A contiguous region of executable code loaded at a (virtual) base address.
///
/// This is the reproduction's stand-in for an mmapped ELF text segment: the
/// scanner and patcher operate on these owned buffers (see `DESIGN.md`).
#[derive(Clone, PartialEq, Eq)]
pub struct CodeSegment {
    base: u64,
    bytes: Vec<u8>,
}

impl fmt::Debug for CodeSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CodeSegment")
            .field("base", &format_args!("{:#x}", self.base))
            .field("len", &self.bytes.len())
            .finish()
    }
}

impl CodeSegment {
    /// Creates a segment containing `bytes` loaded at virtual address `base`.
    #[must_use]
    pub fn new(base: u64, bytes: Vec<u8>) -> Self {
        CodeSegment { base, bytes }
    }

    /// The virtual address of the first byte.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The segment contents.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the segment contents (used by the patcher once the
    /// W⊕X tracker has granted write access).
    pub fn bytes_mut(&mut self) -> &mut Vec<u8> {
        &mut self.bytes
    }

    /// Length of the segment in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` if the segment contains no code.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Virtual address one past the end of the segment.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }

    /// Translates a virtual address into a segment offset, if it falls inside
    /// the segment.
    #[must_use]
    pub fn offset_of(&self, address: u64) -> Option<usize> {
        if address >= self.base && address < self.end() {
            Some((address - self.base) as usize)
        } else {
            None
        }
    }

    /// Translates a segment offset into a virtual address.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is past the end of the segment.
    #[must_use]
    pub fn address_of(&self, offset: usize) -> u64 {
        assert!(offset <= self.bytes.len(), "offset out of range");
        self.base + offset as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissions_display_like_proc_maps() {
        assert_eq!(Permissions::RX.to_string(), "r-x");
        assert_eq!(Permissions::RW.to_string(), "rw-");
        assert_eq!(Permissions::R.to_string(), "r--");
        assert_eq!(Permissions::RWX.to_string(), "rwx");
    }

    #[test]
    fn wxorx_violation_detection() {
        assert!(Permissions::RWX.violates_wxorx());
        assert!(!Permissions::RX.violates_wxorx());
        assert!(!Permissions::RW.violates_wxorx());
    }

    #[test]
    fn address_offset_round_trip() {
        let segment = CodeSegment::new(0x1000, vec![0x90; 16]);
        assert_eq!(segment.len(), 16);
        assert!(!segment.is_empty());
        assert_eq!(segment.end(), 0x1010);
        assert_eq!(segment.offset_of(0x1008), Some(8));
        assert_eq!(segment.offset_of(0x0fff), None);
        assert_eq!(segment.offset_of(0x1010), None);
        assert_eq!(segment.address_of(8), 0x1008);
    }

    #[test]
    #[should_panic(expected = "offset out of range")]
    fn address_of_out_of_range_panics() {
        let segment = CodeSegment::new(0x1000, vec![0x90; 4]);
        let _ = segment.address_of(5);
    }
}
