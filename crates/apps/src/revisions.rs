//! Multi-revision variants for the §5.1 and §5.2 experiments.
//!
//! Transparent failover (§5.1) runs eight consecutive Redis revisions, the
//! newest of which introduced a crash bug, and two consecutive Lighttpd
//! revisions around a crash bug.  Multi-revision execution (§5.2) runs
//! Lighttpd revision pairs whose system-call sequences differ (2435/2436,
//! 2523/2524, 2577/2578) and therefore need rewrite rules.  This module
//! builds those version sets and the matching [`RuleEngine`] configurations.

use varan_core::upgrade::UpgradeStep;
use varan_core::{RuleEngine, VersionProgram};
use varan_kernel::Sysno;

use crate::servers::httpd::{revs, HttpServer};
use crate::servers::kvstore::KvServer;
use crate::servers::ServerConfig;

/// The revision identifiers of the Redis range used in §5.1
/// (`9a22de8` … `7fb16ba`, the last one carrying the crash bug).
pub const REDIS_REVISIONS: [&str; 8] = [
    "9a22de8", "1fa3304", "2f925d4", "3be1bcd", "50e9ab1", "5f5b4c3", "6d36418", "7fb16ba",
];

/// Builds the eight consecutive Redis-like revisions of the failover
/// experiment.  When `buggy_leader` is true the *buggy* newest revision is
/// placed first (it becomes the leader); otherwise it is placed last (it runs
/// as a follower).
#[must_use]
pub fn redis_revision_set(config: &ServerConfig, buggy_leader: bool) -> Vec<Box<dyn VersionProgram>> {
    let mut versions: Vec<Box<dyn VersionProgram>> = Vec::new();
    let buggy: Box<dyn VersionProgram> = Box::new(
        KvServer::new(config.clone()).with_revision(REDIS_REVISIONS[7], true),
    );
    let healthy: Vec<Box<dyn VersionProgram>> = REDIS_REVISIONS[..7]
        .iter()
        .map(|revision| {
            Box::new(KvServer::new(config.clone()).with_revision(revision, false))
                as Box<dyn VersionProgram>
        })
        .collect();
    if buggy_leader {
        versions.push(buggy);
        versions.extend(healthy);
    } else {
        versions.extend(healthy);
        versions.push(buggy);
    }
    versions
}

/// Builds the §5.1 Redis revision range as a **live-upgrade chain** instead
/// of a boot-time version set: the oldest revision is returned as the
/// initial (launched) leader, and each successive revision becomes one
/// [`UpgradeStep`] for `varan_core::upgrade::UpgradeOrchestrator::run_chain`,
/// ordered oldest → newest.  The consecutive revisions have identical
/// system-call behaviour, so no rewrite rules are needed between hops; the
/// newest revision carries the `HMGET` crash bug and is expected to crash
/// while replaying history during its canary stage, exercising the
/// pipeline's automatic rollback.
#[must_use]
pub fn redis_upgrade_chain(config: &ServerConfig) -> (Box<dyn VersionProgram>, Vec<UpgradeStep>) {
    let initial: Box<dyn VersionProgram> = Box::new(
        KvServer::new(config.clone()).with_revision(REDIS_REVISIONS[0], false),
    );
    let steps = REDIS_REVISIONS[1..]
        .iter()
        .map(|revision| {
            let buggy = *revision == REDIS_REVISIONS[7];
            UpgradeStep::new(Box::new(
                KvServer::new(config.clone()).with_revision(revision, buggy),
            ))
        })
        .collect();
    (initial, steps)
}

/// Builds a Lighttpd-like server at the given revision.
#[must_use]
pub fn lighttpd_revision(revision: u32, config: &ServerConfig) -> HttpServer {
    HttpServer::lighttpd(config.clone()).with_revision(revision)
}

/// Builds the Lighttpd crash-bug pair used in §5.1 (revision 2438 introduced
/// a crash on a particular request).  `buggy_leader` selects which revision
/// leads.
#[must_use]
pub fn lighttpd_crash_pair(
    config: &ServerConfig,
    buggy_leader: bool,
) -> Vec<Box<dyn VersionProgram>> {
    let healthy: Box<dyn VersionProgram> =
        Box::new(lighttpd_revision(revs::REV_2437, config));
    let buggy: Box<dyn VersionProgram> = Box::new(lighttpd_revision(revs::REV_2438, config));
    if buggy_leader {
        vec![buggy, healthy]
    } else {
        vec![healthy, buggy]
    }
}

/// The three §5.2 revision pairs: (leader revision, follower revision).
pub const MULTI_REVISION_PAIRS: [(u32, u32); 3] = [
    (revs::REV_2435, revs::REV_2436),
    (revs::REV_2523, revs::REV_2524),
    (revs::REV_2577, revs::REV_2578),
];

/// Builds the rewrite rules needed to run `follower_rev` as a follower of
/// `leader_rev`, mirroring the filters of §5.2:
///
/// * 2435 → 2436: the follower's extra `getuid`/`getgid` checks (Listing 1);
/// * 2523 → 2524: the follower's extra `open`/`read`/`close` of
///   `/dev/urandom` at startup;
/// * 2577 → 2578: the follower's extra `fcntl` after `accept`.
///
/// # Errors
///
/// Propagates rule-assembly errors (none occur for the known pairs).
pub fn lighttpd_rules(leader_rev: u32, follower_rev: u32) -> Result<RuleEngine, varan_core::CoreError> {
    let mut engine = RuleEngine::new();
    if leader_rev < revs::REV_2436 && follower_rev >= revs::REV_2436 {
        engine = engine.with_listing_1()?;
    }
    if leader_rev < revs::REV_2524 && follower_rev >= revs::REV_2524 {
        // The follower opens and reads /dev/urandom while the leader goes
        // straight to opening the configuration file / serving requests.
        for (name, extra) in [
            ("lighttpd-2524-open-urandom", Sysno::Open),
            ("lighttpd-2524-read-urandom", Sysno::Read),
            ("lighttpd-2524-close-urandom", Sysno::Close),
        ] {
            engine.add_addition_rule(
                name,
                &format!(
                    "ld [0]\n jeq #{}, good\n ret #0\ngood: ret #0x7fff0000\n",
                    extra.number()
                ),
            )?;
        }
    }
    if leader_rev < revs::REV_2578 && follower_rev >= revs::REV_2578 {
        // The follower sets FD_CLOEXEC with an extra fcntl after accept.
        engine.allow_extra_call(
            "lighttpd-2578-fcntl-cloexec",
            Sysno::Fcntl.number(),
            Sysno::Read.number(),
        )?;
        engine.add_addition_rule(
            "lighttpd-2578-fcntl-any",
            &format!(
                "ld [0]\n jeq #{}, good\n ret #0\ngood: ret #0x7fff0000\n",
                Sysno::Fcntl.number()
            ),
        )?;
    }
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redis_revision_set_places_the_buggy_version() {
        let config = ServerConfig::on_port(6379).with_connections(4);
        let as_leader = redis_revision_set(&config, true);
        assert_eq!(as_leader.len(), 8);
        assert_eq!(as_leader[0].name(), "redis-7fb16ba");
        assert_eq!(as_leader[1].name(), "redis-9a22de8");

        let as_follower = redis_revision_set(&config, false);
        assert_eq!(as_follower[0].name(), "redis-9a22de8");
        assert_eq!(as_follower[7].name(), "redis-7fb16ba");
    }

    #[test]
    fn redis_upgrade_chain_orders_oldest_to_newest() {
        let config = ServerConfig::on_port(6380).with_connections(4);
        let (initial, steps) = redis_upgrade_chain(&config);
        assert_eq!(initial.name(), "redis-9a22de8");
        assert_eq!(steps.len(), 7);
        assert_eq!(steps[0].program.name(), "redis-1fa3304");
        assert_eq!(steps[6].program.name(), "redis-7fb16ba");
        // Identical-behaviour hops carry no rules.
        assert!(steps.iter().all(|step| step.candidate_rules.is_empty()));
    }

    #[test]
    fn lighttpd_crash_pair_orders_versions() {
        let config = ServerConfig::on_port(8081).with_connections(2);
        let pair = lighttpd_crash_pair(&config, true);
        assert_eq!(pair[0].name(), "lighttpd-r2438");
        assert_eq!(pair[1].name(), "lighttpd-r2437");
        let pair = lighttpd_crash_pair(&config, false);
        assert_eq!(pair[0].name(), "lighttpd-r2437");
    }

    #[test]
    fn rules_exist_for_every_multi_revision_pair() {
        for (leader, follower) in MULTI_REVISION_PAIRS {
            let engine = lighttpd_rules(leader, follower).unwrap();
            assert!(!engine.is_empty(), "pair {leader}/{follower} needs rules");
        }
        // Identical revisions need no rules.
        let engine = lighttpd_rules(revs::REV_2435, revs::REV_2435).unwrap();
        assert!(engine.is_empty());
    }

    #[test]
    fn listing_1_rules_cover_the_2436_divergence() {
        let engine = lighttpd_rules(revs::REV_2435, revs::REV_2436).unwrap();
        let request = varan_kernel::syscall::SyscallRequest::new(Sysno::Getuid, [0; 6]);
        let (action, _) = engine.evaluate(&request, &[u32::from(Sysno::Getegid.number())]);
        assert_eq!(action, varan_core::RuleAction::ExecuteExtra);
    }
}
