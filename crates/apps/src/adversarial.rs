//! Adversarial (misbehaving) client scripts.
//!
//! The load generators in [`clients`](crate::clients) model *well-behaved*
//! benchmark tools; real servers also face clients that stall, truncate,
//! vanish and lie about payload sizes.  Each script here inflicts one such
//! misbehaviour on a server over the virtual loopback network and reports
//! whether the server disposed of the connection in bounded time.  The
//! guided-exploration acceptance suite runs every script against all four
//! miniature servers under N-version execution: the servers must keep
//! serving well-behaved clients afterwards, the leader and its follower
//! must not diverge, and the poisoned connection must be reaped within the
//! configured read deadline.

use std::time::{Duration, Instant};

use varan_kernel::net::Endpoint;
use varan_kernel::Kernel;

use crate::clients::connect_retry;

/// The wire protocol an adversarial script speaks (which server it targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The HTTP servers ([`crate::servers::httpd`]).
    Http,
    /// The Redis-like store ([`crate::servers::kvstore`]).
    Kv,
    /// The Beanstalkd-like queue ([`crate::servers::queue`]).
    Queue,
    /// The Memcached-like cache ([`crate::servers::cache`]).
    Cache,
}

/// One kind of client misbehaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Drip-feeds a request one byte at a time and then stops mid-request,
    /// holding the connection open (the classic slowloris).
    Slowloris,
    /// Declares a payload length and sends fewer bytes, then goes quiet.
    PartialFrame,
    /// Sends half a request and disconnects immediately.
    MidRequestDisconnect,
    /// Declares a payload far beyond the server's acceptance limit.
    OversizedPayload,
}

/// All attacks, in a stable order (the acceptance suite iterates this).
pub const ALL_ATTACKS: [Attack; 4] = [
    Attack::Slowloris,
    Attack::PartialFrame,
    Attack::MidRequestDisconnect,
    Attack::OversizedPayload,
];

/// What an adversarial script observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// The misbehaviour inflicted.
    pub attack: Attack,
    /// The protocol spoken.
    pub protocol: Protocol,
    /// Whether the connection was established at all.
    pub connected: bool,
    /// Whether the server disposed of the connection (the client observed
    /// EOF or a write failure) before the reap deadline — trivially `true`
    /// for [`Attack::MidRequestDisconnect`], where the client closes first.
    pub reaped: bool,
    /// Bytes the script managed to send.
    pub bytes_sent: u64,
    /// Wall-clock time from connect to verdict, in microseconds.
    pub wall_micros: u64,
}

/// An incomplete request prefix for `protocol` — syntactically valid so far,
/// but missing its terminator, so a server must either wait or time out.
fn partial_request(protocol: Protocol) -> Vec<u8> {
    match protocol {
        Protocol::Http => b"GET /index.html HTTP/1.1\r\nHost: adversary\r\nX-Drip: ".to_vec(),
        Protocol::Kv => b"SET victim_key some_value_that_never_end".to_vec(),
        // Declares 64 payload bytes, delivers 3.
        Protocol::Queue => b"put 64\nabc".to_vec(),
        Protocol::Cache => b"set victim 64\r\nabc".to_vec(),
    }
}

/// A request declaring a payload far beyond any server's acceptance limit.
fn oversized_request(protocol: Protocol) -> Vec<u8> {
    const HUGE: usize = 8 * 1024 * 1024;
    match protocol {
        // No length framing in these protocols: an endless unterminated
        // line plays the same role (the reader's line cap must trip).
        Protocol::Http | Protocol::Kv => vec![b'A'; 16 * 1024],
        Protocol::Queue => format!("put {HUGE}\n").into_bytes(),
        Protocol::Cache => format!("set victim {HUGE}\r\n").into_bytes(),
    }
}

/// Waits until the server closes the connection (EOF) or `deadline`
/// elapses.  Returns `true` if the connection was reaped in time.
fn await_reap(endpoint: &Endpoint, deadline: Duration) -> bool {
    let end = Instant::now() + deadline;
    loop {
        let now = Instant::now();
        if now >= end {
            return false;
        }
        match endpoint.read_timeout(1024, end - now) {
            Ok(chunk) if chunk.is_empty() => return true, // EOF: reaped
            Ok(_) => {}                                   // a reply; keep draining
            Err(_) => return false,                       // timed out still open
        }
    }
}

/// Runs one adversarial script against the server listening on `port`.
///
/// `reap_deadline` is how long the script waits for the server to dispose
/// of the poisoned connection; it must comfortably exceed the server's
/// configured read deadline.
#[must_use]
pub fn run_attack(
    kernel: &Kernel,
    port: u16,
    protocol: Protocol,
    attack: Attack,
    reap_deadline: Duration,
) -> AttackOutcome {
    let started = Instant::now();
    let mut outcome = AttackOutcome {
        attack,
        protocol,
        connected: false,
        reaped: false,
        bytes_sent: 0,
        wall_micros: 0,
    };
    // The reap deadline doubles as the connect-retry budget: callers size
    // it to comfortably cover both the server's bind and its read deadline.
    let Some(endpoint) = connect_retry(kernel, port, reap_deadline) else {
        outcome.wall_micros = started.elapsed().as_micros() as u64;
        return outcome;
    };
    outcome.connected = true;
    match attack {
        Attack::Slowloris => {
            // One byte at a time with think-time between bytes, then
            // silence with the connection held open.
            for byte in partial_request(protocol) {
                if endpoint.write(&[byte]).is_err() {
                    break;
                }
                outcome.bytes_sent += 1;
                std::thread::sleep(Duration::from_micros(500));
            }
            outcome.reaped = await_reap(&endpoint, reap_deadline);
        }
        Attack::PartialFrame => {
            let prefix = partial_request(protocol);
            if endpoint.write(&prefix).is_ok() {
                outcome.bytes_sent = prefix.len() as u64;
            }
            outcome.reaped = await_reap(&endpoint, reap_deadline);
        }
        Attack::MidRequestDisconnect => {
            let prefix = partial_request(protocol);
            if endpoint.write(&prefix).is_ok() {
                outcome.bytes_sent = prefix.len() as u64;
            }
            endpoint.close();
            // The client closed first; the server merely has to notice.
            outcome.reaped = true;
        }
        Attack::OversizedPayload => {
            let request = oversized_request(protocol);
            if endpoint.write(&request).is_ok() {
                outcome.bytes_sent = request.len() as u64;
            }
            outcome.reaped = await_reap(&endpoint, reap_deadline);
        }
    }
    endpoint.close();
    outcome.wall_micros = started.elapsed().as_micros() as u64;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_requests_lack_their_terminators() {
        for protocol in [Protocol::Http, Protocol::Kv, Protocol::Queue, Protocol::Cache] {
            let prefix = partial_request(protocol);
            assert!(!prefix.is_empty());
            assert_ne!(prefix.last(), Some(&b'\n'), "{protocol:?} must stay incomplete");
        }
    }

    #[test]
    fn oversized_declarations_exceed_default_limits() {
        let queue = String::from_utf8(oversized_request(Protocol::Queue)).unwrap();
        let declared: usize = queue
            .split_whitespace()
            .nth(1)
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert!(declared > crate::servers::ServerConfig::default().max_request_bytes);
        let line = oversized_request(Protocol::Kv);
        assert!(line.len() > crate::servers::MAX_LINE_BYTES);
    }

    #[test]
    fn unconnected_attack_reports_failure() {
        let kernel = Kernel::new();
        let outcome = run_attack(
            &kernel,
            1, // nothing listens here
            Protocol::Kv,
            Attack::PartialFrame,
            Duration::from_millis(10),
        );
        assert!(!outcome.connected);
        assert!(!outcome.reaped);
    }

    #[test]
    fn attack_catalog_is_complete() {
        assert_eq!(ALL_ATTACKS.len(), 4);
    }
}
