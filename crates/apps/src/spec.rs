//! CPU-bound kernels standing in for SPEC CPU2000 and SPEC CPU2006.
//!
//! The paper uses the SPEC suites to show that VARAN's overhead on
//! CPU-intensive applications is small (11.3% on CPU2000, 14.2% on CPU2006 —
//! Table 2, Figures 7 and 8) because such programs perform few system calls.
//! The proprietary SPEC sources are not available, so each benchmark is
//! replaced by a deterministic compute kernel with the same *shape*: a long
//! stretch of pure computation bracketed by a handful of system calls (read
//! the input file, write the result), giving the same high
//! compute-to-syscall ratio that makes monitor overhead small.

use varan_core::{ProgramExit, SyscallInterface, VersionProgram};
use varan_kernel::fs::flags;

/// Which SPEC generation a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecSuite {
    /// SPEC CPU2000 (used to compare against Orchestra).
    Cpu2000,
    /// SPEC CPU2006 (used to compare against Mx).
    Cpu2006,
}

/// The benchmark names of the two suites, as listed in Figures 7 and 8.
pub const SPEC2000_BENCHMARKS: [&str; 12] = [
    "164.gzip",
    "175.vpr",
    "176.gcc",
    "181.mcf",
    "186.crafty",
    "197.parser",
    "252.eon",
    "253.perlbmk",
    "254.gap",
    "255.vortex",
    "256.bzip2",
    "300.twolf",
];

/// The SPEC CPU2006 benchmarks of Figure 8.
pub const SPEC2006_BENCHMARKS: [&str; 12] = [
    "400.perlbench",
    "401.bzip2",
    "403.gcc",
    "429.mcf",
    "445.gobmk",
    "456.hmmer",
    "458.sjeng",
    "462.libquantum",
    "464.h264ref",
    "471.omnetpp",
    "473.astar",
    "483.xalancbmk",
];

/// A single SPEC-like benchmark program.
#[derive(Debug, Clone)]
pub struct SpecProgram {
    name: String,
    suite: SpecSuite,
    /// Number of compute blocks executed between the input read and the
    /// output write.  Each block is several thousand arithmetic operations.
    work_units: u32,
    checksum: u64,
}

impl SpecProgram {
    /// Creates a benchmark named `name` from `suite` running `work_units`
    /// compute blocks.
    #[must_use]
    pub fn new(name: &str, suite: SpecSuite, work_units: u32) -> Self {
        SpecProgram {
            name: name.to_owned(),
            suite,
            work_units,
            checksum: 0,
        }
    }

    /// The suite this benchmark belongs to.
    #[must_use]
    pub fn suite(&self) -> SpecSuite {
        self.suite
    }

    /// The checksum computed by the last run (deterministic per input).
    #[must_use]
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// One compute block: integer mixing that the optimiser cannot remove,
    /// seeded by the benchmark name so different benchmarks do different
    /// work.
    fn compute_block(seed: u64, iterations: u32) -> u64 {
        let mut state = seed | 1;
        let mut accumulator = 0u64;
        for i in 0..iterations {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let mixed = (state >> 33) ^ state ^ u64::from(i);
            accumulator = accumulator.wrapping_add(mixed.rotate_left((i % 63) + 1));
        }
        accumulator
    }
}

impl VersionProgram for SpecProgram {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
        // Read the benchmark input (one open + a few reads).
        let input_path = format!("/data/{}.in", self.name);
        let fd = sys.open(&input_path, flags::O_RDONLY);
        let mut seed = 0x5EC0_5EC0u64;
        if fd >= 0 {
            let input = sys.read(fd as i32, 4096);
            for byte in &input {
                seed = seed.wrapping_mul(131).wrapping_add(u64::from(*byte));
            }
            sys.close(fd as i32);
        } else {
            for byte in self.name.bytes() {
                seed = seed.wrapping_mul(131).wrapping_add(u64::from(byte));
            }
        }

        // The long CPU-bound phase: no system calls at all.  Each unit both
        // performs real computation (below) and charges the cycle budget a
        // real SPEC work unit would consume, so that the compute-to-syscall
        // ratio matches the suite's character.
        sys.cpu_work(u64::from(self.work_units) * 400_000);
        let mut checksum = 0u64;
        for unit in 0..self.work_units {
            // Spread the per-unit seeds far apart (a simple XOR of the unit
            // index would collapse under the `| 1` inside the block).
            let block_seed = seed
                ^ u64::from(unit)
                    .wrapping_add(1)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            checksum = checksum
                .rotate_left(7)
                .wrapping_add(SpecProgram::compute_block(block_seed, 4096));
        }
        self.checksum = checksum;

        // Write the result (one open + write + close), as the reference
        // workloads write their output files.
        let output_path = format!("/tmp/{}.out", self.name.replace('/', "_"));
        let out = sys.open(&output_path, flags::O_WRONLY | flags::O_CREAT | flags::O_TRUNC);
        if out >= 0 {
            sys.write(out as i32, format!("{checksum:016x}\n").as_bytes());
            sys.close(out as i32);
        }
        sys.exit(0);
        ProgramExit::Exited(0)
    }
}

/// Builds the full SPEC CPU2000-like suite with the given work size.
#[must_use]
pub fn spec2000_suite(work_units: u32) -> Vec<SpecProgram> {
    SPEC2000_BENCHMARKS
        .iter()
        .map(|name| SpecProgram::new(name, SpecSuite::Cpu2000, work_units))
        .collect()
}

/// Builds the full SPEC CPU2006-like suite with the given work size.
#[must_use]
pub fn spec2006_suite(work_units: u32) -> Vec<SpecProgram> {
    SPEC2006_BENCHMARKS
        .iter()
        .map(|name| SpecProgram::new(name, SpecSuite::Cpu2006, work_units))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use varan_core::program::run_native;
    use varan_core::DirectExecutor;
    use varan_kernel::{Kernel, Sysno};

    #[test]
    fn suites_have_twelve_benchmarks_each() {
        assert_eq!(spec2000_suite(1).len(), 12);
        assert_eq!(spec2006_suite(1).len(), 12);
        assert!(spec2000_suite(1).iter().all(|b| b.suite() == SpecSuite::Cpu2000));
        assert!(spec2006_suite(1).iter().all(|b| b.suite() == SpecSuite::Cpu2006));
    }

    #[test]
    fn benchmarks_are_deterministic() {
        let kernel = Kernel::new();
        kernel
            .populate_file("/data/164.gzip.in", b"calgary corpus stand-in".to_vec())
            .unwrap();
        let mut first = SpecProgram::new("164.gzip", SpecSuite::Cpu2000, 4);
        let mut second = SpecProgram::new("164.gzip", SpecSuite::Cpu2000, 4);
        let mut sys = DirectExecutor::new(&kernel, "spec-a");
        first.run(&mut sys);
        let mut sys = DirectExecutor::new(&kernel, "spec-b");
        second.run(&mut sys);
        assert_eq!(first.checksum(), second.checksum());
        assert_ne!(first.checksum(), 0);
        // The output file holds the checksum.
        let output = kernel.read_file("/tmp/164.gzip.out").unwrap();
        assert!(String::from_utf8(output)
            .unwrap()
            .contains(&format!("{:016x}", first.checksum())));
    }

    #[test]
    fn different_benchmarks_compute_different_checksums() {
        let kernel = Kernel::new();
        let mut gzip = SpecProgram::new("164.gzip", SpecSuite::Cpu2000, 2);
        let mut mcf = SpecProgram::new("181.mcf", SpecSuite::Cpu2000, 2);
        let mut sys = DirectExecutor::new(&kernel, "spec");
        gzip.run(&mut sys);
        mcf.run(&mut sys);
        assert_ne!(gzip.checksum(), mcf.checksum());
    }

    #[test]
    fn syscall_footprint_is_small() {
        let kernel = Kernel::new();
        let mut program = SpecProgram::new("401.bzip2", SpecSuite::Cpu2006, 8);
        let (exit, cycles) = run_native(&kernel, &mut program);
        assert!(exit.is_clean());
        assert!(cycles > 0);
        // A SPEC-like run makes only a handful of system calls.
        assert!(kernel.stats().total_syscalls() < 12);
        assert!(kernel.stats().syscalls.get(&Sysno::Write).copied().unwrap_or(0) >= 1);
    }
}
