//! Miniature applications and workloads for evaluating the VARAN
//! N-version execution framework reproduction.
//!
//! The paper evaluates VARAN on real C10k servers (Beanstalkd, Lighttpd,
//! Memcached, Nginx, Redis), on the servers used by prior NVX systems
//! (Apache httpd, thttpd) and on the SPEC CPU2000/2006 suites.  Those
//! binaries are not available in this environment, so this crate provides
//! faithful miniature counterparts written against the virtual kernel's
//! system-call interface (see `DESIGN.md` for the substitution argument):
//! what matters to a system-call monitor is the *system-call footprint* of
//! the application — the mix of `accept`/`read`/`write`/`open`/`close`/
//! `time` calls, the payload sizes and the threading model — and these
//! programs reproduce exactly that.
//!
//! * [`servers`] — the server applications (key-value store, HTTP servers,
//!   work queue, object cache) with per-application threading models.
//! * [`clients`] — the load generators the paper drives them with
//!   (redis-benchmark, wrk/ApacheBench/http_load, memslap,
//!   beanstalkd-benchmark).
//! * [`adversarial`] — misbehaving clients (slowloris, partial frames,
//!   mid-request disconnects, oversized payloads) used to prove the
//!   servers reap bad connections in bounded time under NVX.
//! * [`spec`] — CPU-bound kernels standing in for SPEC CPU2000/2006.
//! * [`revisions`] — multi-revision variants used by the transparent
//!   failover (§5.1) and multi-revision execution (§5.2) experiments,
//!   including the crash-bug revisions and the revisions that add system
//!   calls (Lighttpd 2436/2524/2578).
//! * [`inventory`] — the Table 1 application inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod adversarial;
pub mod clients;
pub mod inventory;
pub mod revisions;
pub mod servers;
pub mod spec;

pub use inventory::{application_inventory, AppDescriptor, ThreadingModel};
