//! Client workload generators.
//!
//! These are the load generators the paper drives its servers with —
//! `redis-benchmark`, `wrk`, ApacheBench, `http_load`, `memslap` and
//! `beanstalkd-benchmark` — reimplemented against the virtual loopback
//! network.  They run on ordinary host threads *outside* the NVX system
//! (exactly like the separate client machine in the paper's testbed) and
//! report throughput and latency from the client's point of view, which is
//! how every overhead number in Figures 5 and 6 is defined.

use std::sync::Arc;
use std::time::{Duration, Instant};

use varan_kernel::net::Endpoint;
use varan_kernel::Kernel;

/// Latency statistics over a set of requests, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Maximum.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarises a set of individual latencies.
    #[must_use]
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let sum: f64 = samples.iter().sum();
        let index = |fraction: f64| {
            let position = ((samples.len() as f64 - 1.0) * fraction).round() as usize;
            samples[position.min(samples.len() - 1)]
        };
        LatencySummary {
            mean_us: sum / samples.len() as f64,
            p50_us: index(0.5),
            p99_us: index(0.99),
            max_us: *samples.last().expect("non-empty"),
        }
    }
}

/// What a load generator observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClientReport {
    /// Requests completed successfully.
    pub requests: u64,
    /// Requests that failed (connection refused, truncated reply, ...).
    pub errors: u64,
    /// Total response bytes received.
    pub bytes_received: u64,
    /// Latency summary across all successful requests.
    pub latency: LatencySummary,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
}

impl ClientReport {
    /// Requests per wall-clock second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.wall.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.requests as f64 / self.wall.as_secs_f64()
    }
}

/// Connects to `port`, retrying until the server is listening or `timeout`
/// elapses.
#[must_use]
pub fn connect_retry(kernel: &Kernel, port: u16, timeout: Duration) -> Option<Endpoint> {
    let deadline = Instant::now() + timeout;
    loop {
        match kernel.network().connect(port) {
            Ok(endpoint) => return Some(endpoint),
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(_) => return None,
        }
    }
}

/// Upper bound on waiting for one reply: a server that died without closing
/// its connections must fail the request, not hang the client (and with it
/// the whole benchmark harness). Shared with the scenario probes so every
/// consumer agrees on what counts as a dead service.
pub const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Reads from `endpoint` until `stop(&buffer)` holds, within an overall
/// `deadline`. Returns `Some(buffer)` only once `stop` is satisfied; EOF or
/// the deadline expiring first yields `None`, so a partial reply from a
/// dying server is a failure, never a success with a deadline-sized
/// "latency". Wakes precisely on data arrival (condvar, no polling).
pub fn read_until_satisfied(
    endpoint: &Endpoint,
    deadline: Duration,
    stop: impl Fn(&[u8]) -> bool,
) -> Option<Vec<u8>> {
    let end = Instant::now() + deadline;
    let mut buffer = Vec::new();
    loop {
        if stop(&buffer) {
            return Some(buffer);
        }
        let now = Instant::now();
        if now >= end {
            return None;
        }
        match endpoint.read_timeout(2048, end - now) {
            Ok(chunk) if chunk.is_empty() => return None, // EOF before satisfied
            Ok(chunk) => buffer.extend_from_slice(&chunk),
            Err(_) => return None, // timed out
        }
    }
}

/// Reads until the accumulated buffer contains `needle`. Returns `None` on
/// EOF, timeout, or `limit` bytes without the needle.
fn read_until(endpoint: &Endpoint, needle: &[u8], limit: usize) -> Option<Vec<u8>> {
    let buffer = read_until_satisfied(endpoint, CLIENT_READ_TIMEOUT, |buffer| {
        contains(buffer, needle) || buffer.len() >= limit
    })?;
    contains(&buffer, needle).then_some(buffer)
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    find(haystack, needle).is_some()
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() {
        return None;
    }
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// True once `buffer` holds a complete `RESERVED <id> <len>\r\n<payload>\r\n`
/// frame. The server writes the whole frame in one stream write, so the
/// read that finds "RESERVED" usually swallows the payload too — the stop
/// predicate must account for it rather than issuing a second read against
/// an already-drained stream.
fn reserved_frame_complete(buffer: &[u8]) -> bool {
    let Some(position) = find(buffer, b"RESERVED") else {
        return false;
    };
    let frame = &buffer[position..];
    let Some(header_end) = find(frame, b"\r\n") else {
        return false;
    };
    let header = String::from_utf8_lossy(&frame[..header_end]);
    let Some(payload_len) = header
        .split_whitespace()
        .nth(2)
        .and_then(|token| token.parse::<usize>().ok())
    else {
        return false;
    };
    frame.len() >= header_end + 2 + payload_len + 2
}

/// Reads one full HTTP response (headers plus `Content-Length` body).
fn read_http_response(endpoint: &Endpoint) -> Option<Vec<u8>> {
    // One overall deadline for the whole response, not per read: a server
    // trickling bytes without ever completing the header must still fail
    // the request in bounded time.
    let end = Instant::now() + CLIENT_READ_TIMEOUT;
    let mut buffer = Vec::new();
    loop {
        let text = String::from_utf8_lossy(&buffer).into_owned();
        if let Some(header_end) = text.find("\r\n\r\n") {
            let content_length = text
                .lines()
                .find_map(|line| line.strip_prefix("Content-Length: "))
                .and_then(|value| value.trim().parse::<usize>().ok())
                .unwrap_or(0);
            if buffer.len() >= header_end + 4 + content_length {
                return Some(buffer);
            }
        }
        let now = Instant::now();
        if now >= end {
            return None;
        }
        match endpoint.read_timeout(2048, end - now) {
            Ok(chunk) if chunk.is_empty() => {
                // EOF: only a close-delimited response — complete headers
                // with no Content-Length — is acceptable here. Truncated
                // headers, or a declared body the stream never delivered,
                // mean the server died mid-reply: a failed request.
                let text = String::from_utf8_lossy(&buffer).into_owned();
                let Some(header_end) = text.find("\r\n\r\n") else {
                    return None;
                };
                let declared = text
                    .lines()
                    .find_map(|line| line.strip_prefix("Content-Length: "))
                    .and_then(|value| value.trim().parse::<usize>().ok());
                return match declared {
                    Some(length) if buffer.len() < header_end + 4 + length => None,
                    _ => Some(buffer),
                };
            }
            Ok(chunk) => buffer.extend_from_slice(&chunk),
            Err(_) => return None,
        }
    }
}

fn run_workers<F>(threads: usize, worker: F) -> ClientReport
where
    F: Fn(usize) -> (u64, u64, u64, Vec<f64>) + Send + Sync + 'static,
{
    let started = Instant::now();
    let worker = Arc::new(worker);
    let mut handles = Vec::new();
    for index in 0..threads.max(1) {
        let worker = Arc::clone(&worker);
        handles.push(std::thread::spawn(move || worker(index)));
    }
    let mut requests = 0;
    let mut errors = 0;
    let mut bytes = 0;
    let mut samples = Vec::new();
    for handle in handles {
        if let Ok((r, e, b, mut s)) = handle.join() {
            requests += r;
            errors += e;
            bytes += b;
            samples.append(&mut s);
        } else {
            errors += 1;
        }
    }
    ClientReport {
        requests,
        errors,
        bytes_received: bytes,
        latency: LatencySummary::from_samples(samples),
        wall: started.elapsed(),
    }
}

/// `redis-benchmark`: `clients` connections each issuing
/// `requests_per_client` commands from a SET/GET/PING/INCR mix.
#[must_use]
pub fn redis_benchmark(
    kernel: &Kernel,
    port: u16,
    clients: usize,
    requests_per_client: u64,
) -> ClientReport {
    let kernel = kernel.clone();
    run_workers(clients, move |index| {
        let Some(endpoint) = connect_retry(&kernel, port, Duration::from_secs(10)) else {
            return (0, requests_per_client, 0, Vec::new());
        };
        let mut requests = 0;
        let mut errors = 0;
        let mut bytes = 0u64;
        let mut samples = Vec::new();
        for i in 0..requests_per_client {
            let command = match i % 4 {
                0 => format!("SET key:{index}:{i} value-{i}\n"),
                1 => format!("GET key:{index}:{i}\n"),
                2 => "PING\n".to_owned(),
                _ => format!("INCR counter:{index}\n"),
            };
            let started = Instant::now();
            if endpoint.write(command.as_bytes()).is_err() {
                errors += 1;
                continue;
            }
            let Some(reply) = read_until(&endpoint, b"\n", 1 << 16) else {
                errors += 1;
                continue;
            };
            samples.push(started.elapsed().as_secs_f64() * 1e6);
            bytes += reply.len() as u64;
            requests += 1;
        }
        endpoint.close();
        (requests, errors, bytes, samples)
    })
}

/// The single `HMGET` probe used by the transparent-failover experiment
/// (§5.1): sends one command and measures its latency in microseconds.
#[must_use]
pub fn redis_hmget_probe(kernel: &Kernel, port: u16, key: &str) -> Option<f64> {
    let endpoint = connect_retry(kernel, port, Duration::from_secs(10))?;
    let started = Instant::now();
    endpoint
        .write(format!("HMGET {key} field\n").as_bytes())
        .ok()?;
    let reply = read_until(&endpoint, b"\n", 1 << 12);
    endpoint.close();
    reply.map(|_| started.elapsed().as_secs_f64() * 1e6)
}

/// `wrk`: `connections` keep-alive connections each fetching `path`
/// `requests_per_connection` times.
#[must_use]
pub fn wrk(
    kernel: &Kernel,
    port: u16,
    connections: usize,
    requests_per_connection: u64,
    path: &str,
) -> ClientReport {
    let kernel = kernel.clone();
    let path = path.to_owned();
    run_workers(connections, move |_| {
        let Some(endpoint) = connect_retry(&kernel, port, Duration::from_secs(10)) else {
            return (0, requests_per_connection, 0, Vec::new());
        };
        let mut requests = 0;
        let mut errors = 0;
        let mut bytes = 0u64;
        let mut samples = Vec::new();
        for _ in 0..requests_per_connection {
            let started = Instant::now();
            let request = format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n");
            if endpoint.write(request.as_bytes()).is_err() {
                errors += 1;
                break;
            }
            match read_http_response(&endpoint) {
                Some(response) if contains(&response, b"HTTP/1.1") => {
                    bytes += response.len() as u64;
                    samples.push(started.elapsed().as_secs_f64() * 1e6);
                    requests += 1;
                }
                _ => errors += 1,
            }
        }
        endpoint.close();
        (requests, errors, bytes, samples)
    })
}

/// ApacheBench (`ab`): `requests` sequential fetches, one connection each.
#[must_use]
pub fn apache_bench(kernel: &Kernel, port: u16, requests: u64, path: &str) -> ClientReport {
    http_one_shot(kernel, port, 1, requests, path)
}

/// `http_load`: `parallel` concurrent fetchers, one connection per request.
#[must_use]
pub fn http_load(
    kernel: &Kernel,
    port: u16,
    parallel: usize,
    requests_per_fetcher: u64,
    path: &str,
) -> ClientReport {
    http_one_shot(kernel, port, parallel, requests_per_fetcher, path)
}

fn http_one_shot(
    kernel: &Kernel,
    port: u16,
    parallel: usize,
    requests_each: u64,
    path: &str,
) -> ClientReport {
    let kernel = kernel.clone();
    let path = path.to_owned();
    run_workers(parallel, move |_| {
        let mut requests = 0;
        let mut errors = 0;
        let mut bytes = 0u64;
        let mut samples = Vec::new();
        for _ in 0..requests_each {
            let started = Instant::now();
            let Some(endpoint) = connect_retry(&kernel, port, Duration::from_secs(10)) else {
                errors += 1;
                continue;
            };
            let request = format!("GET {path} HTTP/1.0\r\nHost: bench\r\n\r\n");
            if endpoint.write(request.as_bytes()).is_err() {
                errors += 1;
                continue;
            }
            match read_http_response(&endpoint) {
                Some(response) => {
                    bytes += response.len() as u64;
                    samples.push(started.elapsed().as_secs_f64() * 1e6);
                    requests += 1;
                }
                None => errors += 1,
            }
            endpoint.close();
        }
        (requests, errors, bytes, samples)
    })
}

/// `memslap`: loads `initial_load` key/value pairs, then performs `ops`
/// get-heavy operations, split across `connections` connections.
#[must_use]
pub fn memslap(
    kernel: &Kernel,
    port: u16,
    connections: usize,
    initial_load: u64,
    ops: u64,
) -> ClientReport {
    let kernel = kernel.clone();
    run_workers(connections, move |index| {
        let Some(endpoint) = connect_retry(&kernel, port, Duration::from_secs(10)) else {
            return (0, initial_load + ops, 0, Vec::new());
        };
        let mut requests = 0;
        let mut errors = 0;
        let mut bytes = 0u64;
        let mut samples = Vec::new();
        let per_conn_load = initial_load / connections.max(1) as u64;
        let per_conn_ops = ops / connections.max(1) as u64;
        for i in 0..per_conn_load {
            let started = Instant::now();
            let command = format!("set mem:{index}:{i} 32\r\n{:032}\r\n", i);
            if endpoint.write(command.as_bytes()).is_err() {
                errors += 1;
                continue;
            }
            match read_until(&endpoint, b"STORED\r\n", 1 << 12) {
                None => errors += 1,
                Some(reply) => {
                    bytes += reply.len() as u64;
                    samples.push(started.elapsed().as_secs_f64() * 1e6);
                    requests += 1;
                }
            }
        }
        for i in 0..per_conn_ops {
            let started = Instant::now();
            let key = format!("mem:{index}:{}", i % per_conn_load.max(1));
            if endpoint.write(format!("get {key}\r\n").as_bytes()).is_err() {
                errors += 1;
                continue;
            }
            match read_until(&endpoint, b"END\r\n", 1 << 14) {
                None => errors += 1,
                Some(reply) => {
                    bytes += reply.len() as u64;
                    samples.push(started.elapsed().as_secs_f64() * 1e6);
                    requests += 1;
                }
            }
        }
        endpoint.write(b"quit\r\n").ok();
        endpoint.close();
        (requests, errors, bytes, samples)
    })
}

/// `beanstalkd-benchmark`: `workers` connections each performing
/// `puts_per_worker` put/reserve/delete cycles with `payload` bytes of data.
#[must_use]
pub fn beanstalkd_benchmark(
    kernel: &Kernel,
    port: u16,
    workers: usize,
    puts_per_worker: u64,
    payload: usize,
) -> ClientReport {
    let kernel = kernel.clone();
    run_workers(workers, move |_| {
        let Some(endpoint) = connect_retry(&kernel, port, Duration::from_secs(10)) else {
            return (0, puts_per_worker, 0, Vec::new());
        };
        let mut requests = 0;
        let mut errors = 0;
        let mut bytes = 0u64;
        let mut samples = Vec::new();
        let body = vec![b'j'; payload];
        for _ in 0..puts_per_worker {
            let started = Instant::now();
            let mut frame = format!("put {}\n", body.len()).into_bytes();
            frame.extend_from_slice(&body);
            frame.push(b'\n');
            frame.extend_from_slice(b"reserve\n");
            if endpoint.write(&frame).is_err() {
                errors += 1;
                continue;
            }
            // The reply must hold the complete RESERVED frame including its
            // payload — the server writes it in one go, so reading only up
            // to "RESERVED" would leave nothing for a follow-up drain read.
            let Some(reply) =
                read_until_satisfied(&endpoint, CLIENT_READ_TIMEOUT, reserved_frame_complete)
            else {
                errors += 1;
                continue;
            };
            // Extract the job id from "INSERTED <id>" to delete it.
            let text = String::from_utf8_lossy(&reply).into_owned();
            let id: u64 = text
                .split_whitespace()
                .skip_while(|token| *token != "INSERTED")
                .nth(1)
                .and_then(|token| token.parse().ok())
                .unwrap_or(0);
            if endpoint.write(format!("delete {id}\n").as_bytes()).is_err() {
                errors += 1;
                continue;
            }
            let Some(deleted) = read_until(&endpoint, b"\r\n", 1 << 12) else {
                errors += 1;
                continue;
            };
            bytes += (reply.len() + deleted.len()) as u64;
            samples.push(started.elapsed().as_secs_f64() * 1e6);
            requests += 1;
        }
        endpoint.write(b"quit\n").ok();
        endpoint.close();
        (requests, errors, bytes, samples)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_statistics() {
        let summary = LatencySummary::from_samples(vec![1.0, 2.0, 3.0, 4.0, 100.0]);
        assert!((summary.mean_us - 22.0).abs() < 1e-9);
        assert!((summary.p50_us - 3.0).abs() < 1e-9);
        assert!((summary.max_us - 100.0).abs() < 1e-9);
        assert_eq!(LatencySummary::from_samples(Vec::new()), LatencySummary::default());
    }

    #[test]
    fn report_throughput_handles_zero_duration() {
        let report = ClientReport::default();
        assert_eq!(report.throughput(), 0.0);
    }

    #[test]
    fn connect_retry_gives_up_without_a_listener() {
        let kernel = Kernel::new();
        assert!(connect_retry(&kernel, 9999, Duration::from_millis(10)).is_none());
    }

    #[test]
    fn read_until_and_contains() {
        assert!(contains(b"hello world", b"lo w"));
        assert!(!contains(b"hello", b"xyz"));
        assert!(!contains(b"hello", b""));
    }

    #[test]
    fn http_response_reader_respects_content_length() {
        let kernel = Kernel::new();
        let listener = kernel.network().listen(9800, 4).unwrap();
        let client = kernel.network().connect(9800).unwrap();
        let server = listener.accept(true).unwrap();
        // Write the headers first and the body afterwards: the reader must
        // keep reading until the declared Content-Length has arrived.
        server
            .write(b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\n")
            .unwrap();
        server.write(b"hello").unwrap();
        let response = read_http_response(&client).unwrap();
        let text = String::from_utf8(response).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.ends_with("hello"));
    }
}
