//! The application inventory reproduced from Table 1 of the paper.

use serde::{Deserialize, Serialize};

/// Threading model of a server application (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadingModel {
    /// A single accept/serve loop.
    SingleThreaded,
    /// A pool of worker threads sharing the listening socket.
    MultiThreaded,
    /// Pre-forked worker processes (modelled with worker threads here).
    MultiProcess,
}

impl ThreadingModel {
    /// The label used in Table 1.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ThreadingModel::SingleThreaded => "single-threaded",
            ThreadingModel::MultiThreaded => "multi-threaded",
            ThreadingModel::MultiProcess => "multi-process",
        }
    }
}

/// One row of Table 1: a server application used in the evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppDescriptor {
    /// Application name as it appears in the paper.
    pub name: &'static str,
    /// Size in lines of code reported by the paper (via `cloc`).
    pub paper_loc: u32,
    /// Threading model reported by the paper.
    pub threading: ThreadingModel,
    /// The miniature counterpart in this repository.
    pub counterpart: &'static str,
    /// The client workload the paper drives it with.
    pub workload: &'static str,
}

/// Returns the Table 1 inventory: the five C10k servers and their miniature
/// counterparts in `varan_apps::servers`.
#[must_use]
pub fn application_inventory() -> Vec<AppDescriptor> {
    vec![
        AppDescriptor {
            name: "Beanstalkd",
            paper_loc: 6_365,
            threading: ThreadingModel::SingleThreaded,
            counterpart: "servers::queue::QueueServer",
            workload: "beanstalkd-benchmark (10 workers x 10,000 puts of 256 B)",
        },
        AppDescriptor {
            name: "Lighttpd",
            paper_loc: 38_590,
            threading: ThreadingModel::SingleThreaded,
            counterpart: "servers::httpd::HttpServer (single-threaded)",
            workload: "wrk (10 clients, 4 kB page)",
        },
        AppDescriptor {
            name: "Memcached",
            paper_loc: 9_779,
            threading: ThreadingModel::MultiThreaded,
            counterpart: "servers::cache::CacheServer",
            workload: "memslap (10,000 key pairs, 10,000 operations)",
        },
        AppDescriptor {
            name: "Nginx",
            paper_loc: 101_852,
            threading: ThreadingModel::MultiProcess,
            counterpart: "servers::httpd::HttpServer (worker pool)",
            workload: "wrk (10 clients, 4 kB page)",
        },
        AppDescriptor {
            name: "Redis",
            paper_loc: 34_625,
            threading: ThreadingModel::MultiThreaded,
            counterpart: "servers::kvstore::KvServer",
            workload: "redis-benchmark (50 clients, 10,000 requests)",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_table_1() {
        let inventory = application_inventory();
        assert_eq!(inventory.len(), 5);
        let lighttpd = inventory.iter().find(|app| app.name == "Lighttpd").unwrap();
        assert_eq!(lighttpd.paper_loc, 38_590);
        assert_eq!(lighttpd.threading, ThreadingModel::SingleThreaded);
        let nginx = inventory.iter().find(|app| app.name == "Nginx").unwrap();
        assert_eq!(nginx.threading, ThreadingModel::MultiProcess);
        let redis = inventory.iter().find(|app| app.name == "Redis").unwrap();
        assert_eq!(redis.paper_loc, 34_625);
    }

    #[test]
    fn threading_labels() {
        assert_eq!(ThreadingModel::SingleThreaded.label(), "single-threaded");
        assert_eq!(ThreadingModel::MultiThreaded.label(), "multi-threaded");
        assert_eq!(ThreadingModel::MultiProcess.label(), "multi-process");
    }
}
