//! A Memcached-like object cache.
//!
//! Memcached is the paper's multi-threaded benchmark: a pool of worker
//! threads shares the listening socket and each worker serves whole
//! connections.  Under VARAN each worker thread becomes its own thread tuple
//! with its own ring buffer, and the per-variant Lamport clock keeps the
//! followers' threads consuming events in a happens-before-consistent order
//! (§3.3.3).  The protocol is the memcached text protocol's `set`/`get`
//! subset, which is what the `memslap` workload exercises.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use varan_core::{ProgramExit, SyscallInterface, VersionProgram};

use super::{open_listener, ConnReader, ServerConfig};

/// The Memcached-like cache server.
#[derive(Debug, Clone)]
pub struct CacheServer {
    config: ServerConfig,
    revision: String,
}

type Store = Arc<Mutex<HashMap<String, Vec<u8>>>>;

impl CacheServer {
    /// Creates a cache server; the worker-thread count comes from `config`
    /// (clamped to at least two to preserve the multi-threaded model).
    #[must_use]
    pub fn new(config: ServerConfig) -> Self {
        let workers = config.worker_threads.max(2);
        CacheServer {
            config: ServerConfig {
                worker_threads: workers,
                ..config
            },
            revision: "1.4.17".to_owned(),
        }
    }

    /// Labels this instance as a particular release.
    #[must_use]
    pub fn with_revision(mut self, revision: &str) -> Self {
        self.revision = revision.to_owned();
        self
    }

    /// Number of worker threads this instance will start.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.config.worker_threads
    }

    fn serve_connection(
        store: &Store,
        config: &ServerConfig,
        sys: &mut dyn SyscallInterface,
        conn: i32,
    ) -> u64 {
        /// User-space cycles per operation (hashing the key, slab lookup).
        const COMPUTE_PER_OP: u64 = 4_000;
        let mut reader = ConnReader::new(conn).with_deadline(config.read_timeout_micros);
        let mut served = 0u64;
        while let Some(line) = reader.read_line(sys) {
            if line.is_empty() {
                continue;
            }
            sys.cpu_work(COMPUTE_PER_OP);
            let mut parts = line.split_whitespace();
            let command = parts.next().unwrap_or("");
            match command {
                "set" => {
                    let key = parts.next().unwrap_or("").to_owned();
                    let bytes: usize = parts.next().and_then(|n| n.parse().ok()).unwrap_or(0);
                    if bytes > config.max_request_bytes {
                        // Memcached's answer to an over-limit item; the
                        // unread payload makes the stream undecodable, so
                        // drop the connection after replying.
                        sys.write(conn, b"SERVER_ERROR object too large for cache\r\n");
                        break;
                    }
                    let Some(payload) = reader.read_exact(sys, bytes) else {
                        break;
                    };
                    // Consume the trailing CRLF, if present.
                    let _ = reader.read_exact(sys, 2);
                    store.lock().expect("cache store").insert(key, payload);
                    sys.write(conn, b"STORED\r\n");
                }
                "get" => {
                    let key = parts.next().unwrap_or("");
                    let value = store.lock().expect("cache store").get(key).cloned();
                    match value {
                        Some(value) => {
                            // Memcached sends the VALUE header, the datum and
                            // the END marker as separate writes; batch them.
                            let header =
                                format!("VALUE {key} 0 {}\r\n", value.len()).into_bytes();
                            super::send_response(
                                sys,
                                conn,
                                &[&header, &value, b"\r\nEND\r\n"],
                            );
                        }
                        None => {
                            sys.write(conn, b"END\r\n");
                        }
                    }
                }
                "delete" => {
                    let key = parts.next().unwrap_or("");
                    let removed = store.lock().expect("cache store").remove(key).is_some();
                    sys.write(
                        conn,
                        if removed { b"DELETED\r\n" } else { b"NOT_FOUND\r\n" },
                    );
                }
                "quit" => break,
                _ => {
                    sys.write(conn, b"ERROR\r\n");
                }
            }
            served += 1;
        }
        served
    }
}

impl VersionProgram for CacheServer {
    fn name(&self) -> String {
        format!("memcached-{}", self.revision)
    }

    fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
        let listener = open_listener(sys, &self.config);
        if listener < 0 {
            return ProgramExit::Exited(1);
        }
        let store: Store = Arc::new(Mutex::new(HashMap::new()));

        // One queue per worker and deterministic round-robin dispatch: the
        // same connection lands on the same worker index in every version, so
        // a follower's worker replays exactly the events its leader
        // counterpart produced (see §3.3.3 on per-thread-tuple rings).
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..self.config.worker_threads {
            let (sender, receiver) = std::sync::mpsc::channel::<i32>();
            senders.push(sender);
            let mut worker_sys = sys.spawn_thread();
            let store = Arc::clone(&store);
            let config = self.config.clone();
            handles.push(std::thread::spawn(move || {
                let mut served = 0u64;
                while let Ok(conn) = receiver.recv() {
                    served +=
                        CacheServer::serve_connection(&store, &config, worker_sys.as_mut(), conn);
                    worker_sys.close(conn);
                }
                served
            }));
        }

        for index in 0..self.config.max_connections {
            let conn = sys.accept(listener as i32);
            if conn < 0 {
                break;
            }
            let worker = (index as usize) % senders.len();
            if senders[worker].send(conn as i32).is_err() {
                break;
            }
        }
        drop(senders);
        for handle in handles {
            let _ = handle.join();
        }
        sys.close(listener as i32);
        sys.exit(0);
        ProgramExit::Exited(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varan_core::DirectExecutor;
    use varan_kernel::Kernel;

    #[test]
    fn multithreaded_set_get_round_trip() {
        let kernel = Kernel::new();
        let mut server = CacheServer::new(
            ServerConfig::on_port(8050)
                .with_connections(4)
                .with_workers(3),
        );
        assert_eq!(server.workers(), 3);
        assert_eq!(server.name(), "memcached-1.4.17");
        let client_kernel = kernel.clone();
        let driver = std::thread::spawn(move || {
            let mut transcripts = Vec::new();
            for i in 0..4 {
                loop {
                    if let Ok(endpoint) = client_kernel.network().connect(8050) {
                        let key = format!("key{i}");
                        endpoint
                            .write(format!("set {key} 5\r\nvalue\r\nget {key}\r\nget missing\r\nquit\r\n").as_bytes())
                            .unwrap();
                        let mut text = Vec::new();
                        loop {
                            let chunk = endpoint.read(512, true).unwrap();
                            if chunk.is_empty() {
                                break;
                            }
                            text.extend_from_slice(&chunk);
                            let seen = String::from_utf8_lossy(&text);
                            if seen.matches("END").count() >= 2 {
                                break;
                            }
                        }
                        endpoint.close();
                        transcripts.push(String::from_utf8(text).unwrap());
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            transcripts
        });
        let mut sys = DirectExecutor::new(&kernel, "cache-test");
        let exit = server.run(&mut sys);
        let transcripts = driver.join().unwrap();
        assert_eq!(exit, ProgramExit::Exited(0));
        assert_eq!(transcripts.len(), 4);
        for (i, transcript) in transcripts.iter().enumerate() {
            assert!(transcript.contains("STORED"), "transcript {i}: {transcript}");
            assert!(transcript.contains("VALUE"), "transcript {i}: {transcript}");
            assert!(transcript.contains("value"), "transcript {i}: {transcript}");
        }
    }

    #[test]
    fn delete_and_error_paths() {
        // Exercise the command handler through a real connection but with a
        // single worker, covering delete/NOT_FOUND/ERROR branches.
        let kernel = Kernel::new();
        let mut server = CacheServer::new(
            ServerConfig::on_port(8060).with_connections(1).with_workers(2),
        );
        let client_kernel = kernel.clone();
        let driver = std::thread::spawn(move || loop {
            if let Ok(endpoint) = client_kernel.network().connect(8060) {
                endpoint
                    .write(b"set k 3\r\nabc\r\ndelete k\r\ndelete k\r\nnonsense\r\nquit\r\n")
                    .unwrap();
                let mut text = Vec::new();
                loop {
                    let chunk = endpoint.read(512, true).unwrap();
                    if chunk.is_empty() {
                        break;
                    }
                    text.extend_from_slice(&chunk);
                    if String::from_utf8_lossy(&text).contains("ERROR") {
                        break;
                    }
                }
                endpoint.close();
                return String::from_utf8(text).unwrap();
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let mut sys = DirectExecutor::new(&kernel, "cache-test-2");
        server.run(&mut sys);
        let transcript = driver.join().unwrap();
        assert!(transcript.contains("STORED"));
        assert!(transcript.contains("DELETED"));
        assert!(transcript.contains("NOT_FOUND"));
        assert!(transcript.contains("ERROR"));
    }
}
