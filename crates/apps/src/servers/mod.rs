//! Miniature server applications.
//!
//! Each server is a [`VersionProgram`](varan_core::VersionProgram) written
//! against the virtual kernel's system-call interface, shaped to match the
//! system-call footprint of its real counterpart from Table 1 of the paper:
//!
//! | module | stands in for | threading |
//! |--------|---------------|-----------|
//! | [`kvstore`] | Redis | single command loop (optionally worker threads) |
//! | [`httpd`] | Lighttpd / Nginx / Apache httpd / thttpd | single-threaded or worker pool |
//! | [`queue`] | Beanstalkd | single-threaded, journalled |
//! | [`cache`] | Memcached | multi-threaded workers |
//!
//! All servers share the same lifecycle: bind a port, accept a configured
//! number of connections, serve every request on each connection until the
//! client closes it, then exit cleanly.  Crash-bug revisions return
//! [`ProgramExit::Crashed`](varan_core::ProgramExit) from the middle of a
//! request, which is what the transparent-failover experiments exploit.

pub mod cache;
pub mod httpd;
pub mod kvstore;
pub mod queue;

use varan_core::{SyscallInterface, TimedRead};

/// Configuration shared by every miniature server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// TCP port to listen on.
    pub port: u16,
    /// Number of client connections to accept before shutting down.
    pub max_connections: u64,
    /// Worker threads (1 = the single-threaded model).
    pub worker_threads: usize,
    /// Listen backlog.
    pub backlog: u32,
    /// Per-read deadline on connection reads, in microseconds (0 = wait
    /// forever, the historical behaviour).  With a deadline set, a client
    /// that stops sending mid-request — a slowloris drip or a truncated
    /// frame — has its connection reaped after this much quiet instead of
    /// pinning the worker forever.
    pub read_timeout_micros: u64,
    /// Largest declared request payload a server accepts.  A `put`/`set`
    /// announcing more than this is rejected *before* the payload is read,
    /// so an adversarial client cannot make the server buffer it.
    pub max_request_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 8080,
            max_connections: 64,
            worker_threads: 1,
            backlog: 128,
            read_timeout_micros: 0,
            max_request_bytes: 64 * 1024,
        }
    }
}

impl ServerConfig {
    /// Creates a configuration listening on `port`.
    #[must_use]
    pub fn on_port(port: u16) -> Self {
        ServerConfig {
            port,
            ..ServerConfig::default()
        }
    }

    /// Sets the number of connections to serve before exiting.
    #[must_use]
    pub fn with_connections(mut self, connections: u64) -> Self {
        self.max_connections = connections;
        self
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.worker_threads = workers.max(1);
        self
    }

    /// Sets the per-read deadline for connection reads (0 = wait forever).
    #[must_use]
    pub fn with_read_timeout_micros(mut self, micros: u64) -> Self {
        self.read_timeout_micros = micros;
        self
    }

    /// Sets the largest declared request payload accepted.
    #[must_use]
    pub fn with_max_request_bytes(mut self, bytes: usize) -> Self {
        self.max_request_bytes = bytes.max(1);
        self
    }
}

/// Longest request line a [`ConnReader`] buffers while looking for the
/// terminator.  A client pumping bytes without ever sending `\n` would
/// otherwise grow the buffer (and the server's memory) without bound; at
/// this cap the connection is dropped instead.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// A buffered reader over one connection descriptor, built on the raw `read`
/// system call (the servers' equivalent of their internal request buffers).
#[derive(Debug)]
pub struct ConnReader {
    fd: i32,
    buffer: Vec<u8>,
    eof: bool,
    timeout_micros: u64,
    timed_out: bool,
}

impl ConnReader {
    /// Creates a reader for descriptor `fd` with no read deadline.
    #[must_use]
    pub fn new(fd: i32) -> Self {
        ConnReader {
            fd,
            buffer: Vec::new(),
            eof: false,
            timeout_micros: 0,
            timed_out: false,
        }
    }

    /// Sets a per-read deadline in microseconds (0 = wait forever).  When a
    /// read times out the reader reports end-of-stream, so the serving loop
    /// falls through to its close path and the connection is reaped.
    #[must_use]
    pub fn with_deadline(mut self, timeout_micros: u64) -> Self {
        self.timeout_micros = timeout_micros;
        self
    }

    /// The underlying descriptor.
    #[must_use]
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Whether the stream ended because a read deadline elapsed rather than
    /// a clean peer close.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }

    fn fill(&mut self, sys: &mut dyn SyscallInterface) -> bool {
        if self.eof {
            return false;
        }
        if self.timeout_micros == 0 {
            let chunk = sys.read(self.fd, 512);
            if chunk.is_empty() {
                self.eof = true;
                return false;
            }
            self.buffer.extend_from_slice(&chunk);
            return true;
        }
        match sys.read_deadline(self.fd, 512, self.timeout_micros) {
            TimedRead::Data(chunk) => {
                self.buffer.extend_from_slice(&chunk);
                true
            }
            TimedRead::Eof => {
                self.eof = true;
                false
            }
            TimedRead::TimedOut => {
                self.eof = true;
                self.timed_out = true;
                false
            }
        }
    }

    /// Reads one `\n`-terminated line (the terminator and any preceding `\r`
    /// are stripped).  Returns `None` at end-of-stream, after a read
    /// deadline, or once an unterminated line exceeds [`MAX_LINE_BYTES`]
    /// (the connection is then treated as dead — a line that long is not a
    /// protocol any of these servers speak).
    pub fn read_line(&mut self, sys: &mut dyn SyscallInterface) -> Option<String> {
        loop {
            if let Some(position) = self.buffer.iter().position(|&byte| byte == b'\n') {
                let mut line: Vec<u8> = self.buffer.drain(..=position).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Some(String::from_utf8_lossy(&line).into_owned());
            }
            if self.buffer.len() > MAX_LINE_BYTES {
                self.eof = true;
                self.buffer.clear();
                return None;
            }
            if !self.fill(sys) {
                if self.buffer.is_empty() || self.timed_out {
                    return None;
                }
                let line = std::mem::take(&mut self.buffer);
                return Some(String::from_utf8_lossy(&line).into_owned());
            }
        }
    }

    /// Reads exactly `len` bytes of payload.  Returns `None` if the stream
    /// ends first.
    pub fn read_exact(&mut self, sys: &mut dyn SyscallInterface, len: usize) -> Option<Vec<u8>> {
        while self.buffer.len() < len {
            if !self.fill(sys) {
                return None;
            }
        }
        Some(self.buffer.drain(..len).collect())
    }
}

/// Largest single `write` a server issues when sending a response; larger
/// parts are split, as the real servers' socket buffers force them to be.
const WRITE_CHUNK: usize = 1024;

/// Sends a response assembled from `parts` (header, body, trailer, ...) as
/// one batch of `write` system calls via
/// [`SyscallInterface::syscall_batch`], so under N-version execution the
/// whole response enters the event ring through a single batched
/// reservation (`publish_batch`).  Parts larger than `WRITE_CHUNK` are
/// split.  Returns the total bytes written, or the first negative errno.
pub fn send_response(sys: &mut dyn SyscallInterface, fd: i32, parts: &[&[u8]]) -> i64 {
    let requests: Vec<varan_kernel::syscall::SyscallRequest> = parts
        .iter()
        .flat_map(|part| part.chunks(WRITE_CHUNK))
        .map(|chunk| varan_kernel::syscall::SyscallRequest::write(fd, chunk.to_vec()))
        .collect();
    if requests.is_empty() {
        return 0;
    }
    let mut total = 0i64;
    for outcome in sys.syscall_batch(&requests) {
        if outcome.result < 0 {
            return outcome.result;
        }
        total += outcome.result;
    }
    total
}

/// Binds, listens and returns the listening descriptor, or a negative errno.
pub fn open_listener(sys: &mut dyn SyscallInterface, config: &ServerConfig) -> i64 {
    let sock = sys.socket();
    if sock < 0 {
        return sock;
    }
    let bound = sys.bind(sock as i32, config.port);
    if bound < 0 {
        return bound;
    }
    let listening = sys.listen(sock as i32, config.backlog);
    if listening < 0 {
        return listening;
    }
    sock
}

#[cfg(test)]
mod tests {
    use super::*;
    use varan_core::DirectExecutor;
    use varan_kernel::Kernel;

    #[test]
    fn config_builders() {
        let config = ServerConfig::on_port(7000).with_connections(5).with_workers(0);
        assert_eq!(config.port, 7000);
        assert_eq!(config.max_connections, 5);
        assert_eq!(config.worker_threads, 1, "worker count is clamped to 1");
    }

    #[test]
    fn listener_setup_succeeds_once_per_port() {
        let kernel = Kernel::new();
        let mut sys = DirectExecutor::new(&kernel, "listener");
        let config = ServerConfig::on_port(7100);
        assert!(open_listener(&mut sys, &config) >= 0);
        // A second bind to the same port fails.
        assert!(open_listener(&mut sys, &config) < 0);
    }

    #[test]
    fn send_response_batches_and_chunks_writes() {
        let kernel = Kernel::new();
        let listener = kernel.network().listen(7400, 4).unwrap();
        let mut sys = DirectExecutor::new(&kernel, "vectored");
        let sock = sys.socket();
        let client = {
            let _ = sock;
            let config = ServerConfig::on_port(7450);
            let listen_fd = open_listener(&mut sys, &config);
            let client = kernel.network().connect(7450).unwrap();
            let conn = sys.accept(listen_fd as i32);
            let header = b"HDR\r\n".to_vec();
            let body = vec![b'b'; WRITE_CHUNK * 2 + 10];
            let written = send_response(&mut sys, conn as i32, &[&header, &body]);
            assert_eq!(written as usize, header.len() + body.len());
            client
        };
        drop(listener);
        let received = client.read(WRITE_CHUNK * 3, true).unwrap();
        assert!(received.starts_with(b"HDR\r\n"));
        assert_eq!(received.len(), 5 + WRITE_CHUNK * 2 + 10);
        assert_eq!(send_response(&mut sys, 0, &[]), 0);
    }

    #[test]
    fn conn_reader_parses_lines_and_payloads() {
        let kernel = Kernel::new();
        let listener = kernel.network().listen(7200, 4).unwrap();
        let client = kernel.network().connect(7200).unwrap();
        client.write(b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        client.write(b"BODY1234").unwrap();
        client.close();

        let mut sys = DirectExecutor::new(&kernel, "reader");
        let server_end = listener.accept(true).unwrap();
        // Install the endpoint into the process by accepting through the
        // syscall interface: simpler to read via a fresh connection instead.
        drop(server_end);
        let client2 = kernel.network().connect(7200).unwrap();
        client2.write(b"line one\r\nline two\nPAYLOAD").unwrap();
        client2.close();
        let sock = sys.socket();
        // Direct endpoint accept through syscalls:
        let accept_fd = {
            let _ = sock;
            // accept via the syscall interface on a listening socket we own
            let config = ServerConfig::on_port(7300);
            let listen_fd = open_listener(&mut sys, &config);
            let remote = kernel.network().connect(7300).unwrap();
            remote.write(b"alpha\r\nbeta\nGAMMA").unwrap();
            remote.close();
            sys.accept(listen_fd as i32)
        };
        let mut reader = ConnReader::new(accept_fd as i32);
        assert_eq!(reader.fd(), accept_fd as i32);
        assert_eq!(reader.read_line(&mut sys).as_deref(), Some("alpha"));
        assert_eq!(reader.read_line(&mut sys).as_deref(), Some("beta"));
        assert_eq!(reader.read_exact(&mut sys, 5).as_deref(), Some(&b"GAMMA"[..]));
        assert_eq!(reader.read_line(&mut sys), None);
        assert_eq!(reader.read_exact(&mut sys, 3), None);
    }
}
