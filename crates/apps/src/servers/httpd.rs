//! A static-file HTTP server standing in for Lighttpd, Nginx, Apache httpd
//! and thttpd.
//!
//! The HTTP servers dominate the paper's evaluation: Lighttpd and Nginx in
//! the C10k experiments (Figure 5), Apache httpd / thttpd / Lighttpd in the
//! comparison with prior NVX systems (Figure 6, Table 2), and consecutive
//! Lighttpd revisions in the multi-revision execution study (§5.2).  This
//! miniature server reproduces their system-call footprint — `accept`,
//! request `read`s, a user-privilege check, `stat`/`open`/`read` of the
//! requested file, response `write`s and `close` — and the *revision-specific
//! differences in that footprint* that §5.2 relies on:
//!
//! * revisions ≥ 2436 call `getuid`/`getgid` in addition to
//!   `geteuid`/`getegid` (the `issetugid()` change of Listing 1);
//! * revisions ≥ 2524 read `/dev/urandom` at startup for extra entropy;
//! * revisions ≥ 2578 set `FD_CLOEXEC` on accepted connections with an extra
//!   `fcntl`;
//! * revision 2438 (and any revision configured with
//!   [`HttpServer::with_crash_path`]) crashes on a particular request,
//!   reproducing the crash bug used in the failover experiment.

use varan_core::{ProgramExit, SyscallInterface, VersionProgram};
use varan_kernel::fs::flags;
use varan_kernel::signal::Signal;
use varan_kernel::syscall::{fcntl, SyscallRequest};
use varan_kernel::Sysno;

use super::{open_listener, ConnReader, ServerConfig};

/// Padding quantum for introspection responses: bodies are padded with
/// trailing newlines (whitespace, legal in both JSON and Prometheus text) to
/// a multiple of this, so the number of `write` system calls a response
/// takes is independent of the counter *values* being rendered.  Under
/// N-version execution every version renders its own snapshot — the values
/// differ by harmless timing skew — and divergence checking compares
/// syscall numbers per event, so the write count must not vary with digits.
const METRICS_PAD: usize = 16 * 1024;

/// Renders the live introspection body for `/varan/metrics` (JSON) or
/// `/varan/metrics.prom` (Prometheus text) from the process-wide telemetry
/// registry; `None` for every other path.
fn metrics_body(path: &str) -> Option<(&'static str, Vec<u8>)> {
    let registry = varan_obs::global();
    let (content_type, mut body) = match path {
        "/varan/metrics" => (
            "application/json",
            registry.snapshot().to_json().into_bytes(),
        ),
        "/varan/metrics.prom" => (
            "text/plain; version=0.0.4",
            registry.snapshot().to_prometheus().into_bytes(),
        ),
        _ => return None,
    };
    let padded = body.len().div_ceil(METRICS_PAD) * METRICS_PAD;
    body.resize(padded, b'\n');
    Some((content_type, body))
}

/// Well-known revision numbers from the paper's §5.2 feasibility study.
pub mod revs {
    /// Baseline revision using `geteuid()`/`getegid()`.
    pub const REV_2435: u32 = 2435;
    /// Adds `getuid`/`getgid` via `issetugid()` (Listing 1's divergence).
    pub const REV_2436: u32 = 2436;
    /// Revision before the crash bug.
    pub const REV_2437: u32 = 2437;
    /// Introduces a crash bug on a particular request.
    pub const REV_2438: u32 = 2438;
    /// Revision before the entropy change.
    pub const REV_2523: u32 = 2523;
    /// Reads `/dev/urandom` at startup for an extra source of entropy.
    pub const REV_2524: u32 = 2524;
    /// Revision before the close-on-exec change.
    pub const REV_2577: u32 = 2577;
    /// Sets `FD_CLOEXEC` on accepted descriptors with an extra `fcntl`.
    pub const REV_2578: u32 = 2578;
}

/// The HTTP server.
#[derive(Debug, Clone)]
pub struct HttpServer {
    config: ServerConfig,
    flavour: String,
    revision: u32,
    doc_root: String,
    crash_path: Option<String>,
    /// User-space cycles spent processing one request (URI parsing, header
    /// generation, logging).  Calibrated per flavour from the per-request CPU
    /// time of the real servers, which is what amortises the monitor's
    /// per-event cost differently across Figures 5 and 6.
    compute_per_request: u64,
}

impl HttpServer {
    /// Creates a Lighttpd-flavoured, single-threaded server at revision 2435.
    #[must_use]
    pub fn lighttpd(config: ServerConfig) -> Self {
        HttpServer {
            config,
            flavour: "lighttpd".to_owned(),
            revision: revs::REV_2435,
            doc_root: "/var/www".to_owned(),
            crash_path: None,
            compute_per_request: 150_000,
        }
    }

    /// Creates an Nginx-flavoured server with a worker pool.
    #[must_use]
    pub fn nginx(config: ServerConfig) -> Self {
        let workers = config.worker_threads.max(2);
        HttpServer {
            config: ServerConfig {
                worker_threads: workers,
                ..config
            },
            flavour: "nginx".to_owned(),
            revision: revs::REV_2435,
            doc_root: "/var/www".to_owned(),
            crash_path: None,
            compute_per_request: 90_000,
        }
    }

    /// Creates an Apache-httpd-flavoured single-threaded server.
    #[must_use]
    pub fn apache(config: ServerConfig) -> Self {
        HttpServer {
            flavour: "apache-httpd".to_owned(),
            compute_per_request: 620_000,
            ..HttpServer::lighttpd(config)
        }
    }

    /// Creates a thttpd-flavoured single-threaded server.
    #[must_use]
    pub fn thttpd(config: ServerConfig) -> Self {
        HttpServer {
            flavour: "thttpd".to_owned(),
            compute_per_request: 420_000,
            ..HttpServer::lighttpd(config)
        }
    }

    /// Overrides the per-request user-space compute budget.
    #[must_use]
    pub fn with_compute_per_request(mut self, cycles: u64) -> Self {
        self.compute_per_request = cycles;
        self
    }

    /// Sets the revision number, which controls the system-call footprint.
    #[must_use]
    pub fn with_revision(mut self, revision: u32) -> Self {
        self.revision = revision;
        if revision == revs::REV_2438 {
            self.crash_path = Some("/admin/status".to_owned());
        }
        self
    }

    /// Makes requests for `path` crash the server (the §5.1 crash bug).
    #[must_use]
    pub fn with_crash_path(mut self, path: &str) -> Self {
        self.crash_path = Some(path.to_owned());
        self
    }

    /// The revision this instance models.
    #[must_use]
    pub fn revision(&self) -> u32 {
        self.revision
    }

    /// The check performed before opening a file: the exact sequence of
    /// identity system calls depends on the revision (§5.2, Listing 1).
    fn check_user(&self, sys: &mut dyn SyscallInterface) {
        sys.syscall(&SyscallRequest::new(Sysno::Geteuid, [0; 6]));
        if self.revision >= revs::REV_2436 {
            sys.syscall(&SyscallRequest::new(Sysno::Getuid, [0; 6]));
        }
        sys.syscall(&SyscallRequest::new(Sysno::Getegid, [0; 6]));
        if self.revision >= revs::REV_2436 {
            sys.syscall(&SyscallRequest::new(Sysno::Getgid, [0; 6]));
        }
    }

    fn startup(&self, sys: &mut dyn SyscallInterface) {
        // Read the configuration file, as every real server does at startup.
        let config_fd = sys.open("/etc/hostname", flags::O_RDONLY);
        if config_fd >= 0 {
            let _ = sys.read(config_fd as i32, 256);
            sys.close(config_fd as i32);
        }
        if self.revision >= revs::REV_2524 {
            // Revision 2524: an additional read of /dev/urandom for entropy.
            let urandom = sys.open("/dev/urandom", flags::O_RDONLY);
            if urandom >= 0 {
                let _ = sys.read(urandom as i32, 16);
                sys.close(urandom as i32);
            }
        }
    }

    /// Serves every request on one connection.  Returns `Err(signal)` if the
    /// crash bug fired.
    fn serve_connection(
        &self,
        sys: &mut dyn SyscallInterface,
        conn: i32,
    ) -> Result<u64, Signal> {
        if self.revision >= revs::REV_2578 {
            sys.syscall(&SyscallRequest::fcntl(
                conn,
                fcntl::F_SETFD,
                fcntl::FD_CLOEXEC,
            ));
        }
        // Most header lines tolerated per request: a client streaming
        // headers forever must not pin the worker.
        const MAX_HEADER_LINES: usize = 64;
        let mut reader = ConnReader::new(conn).with_deadline(self.config.read_timeout_micros);
        let mut served = 0u64;
        loop {
            let request_line = match reader.read_line(sys) {
                Some(line) if !line.is_empty() => line,
                _ => break,
            };
            // Drain the header block (bounded).
            let mut header_lines = 0usize;
            let mut headers_complete = false;
            while let Some(header) = reader.read_line(sys) {
                if header.is_empty() {
                    headers_complete = true;
                    break;
                }
                header_lines += 1;
                if header_lines > MAX_HEADER_LINES {
                    break;
                }
            }
            if !headers_complete {
                // Truncated, timed-out or abusive header block: drop the
                // connection rather than guess at the request.
                break;
            }
            let path = request_line.split_whitespace().nth(1).unwrap_or("/").to_owned();
            if let Some(crash) = &self.crash_path {
                if path == *crash {
                    return Err(Signal::Sigsegv);
                }
            }
            // Request parsing, URI normalisation, response-header generation
            // and access logging all happen in user space.
            sys.cpu_work(self.compute_per_request);
            // Live introspection endpoint: served from the in-process
            // telemetry registry, no filesystem access.  The padded body
            // keeps the write count value-independent (see `METRICS_PAD`).
            if let Some((content_type, body)) = metrics_body(&path) {
                let header = format!(
                    "HTTP/1.1 200 OK\r\nServer: {}/{}\r\nContent-Type: {}\r\n\
                     Content-Length: {}\r\n\r\n",
                    self.flavour,
                    self.revision,
                    content_type,
                    body.len()
                )
                .into_bytes();
                super::send_response(sys, conn, &[&header, &body]);
                served += 1;
                continue;
            }
            // The privilege check is issued immediately before the open, as
            // in the Lighttpd revisions Listing 1 was written against.
            self.check_user(sys);
            let file_path = if path == "/" {
                format!("{}/index.html", self.doc_root)
            } else {
                format!("{}{}", self.doc_root, path)
            };
            let fd = sys.open(&file_path, flags::O_RDONLY);
            if fd >= 0 {
                let size = sys.syscall(&SyscallRequest::new(
                    Sysno::Fstat,
                    [fd as u64, 0, 0, 0, 0, 0],
                ))
                .result;
                let body = {
                    let body = sys.read(fd as i32, size.max(0) as usize);
                    sys.close(fd as i32);
                    body
                };
                let header = format!(
                    "HTTP/1.1 200 OK\r\nServer: {}/{}\r\nContent-Length: {}\r\n\r\n",
                    self.flavour,
                    self.revision,
                    body.len()
                )
                .into_bytes();
                // Header and body go out as one batched write sequence, the
                // miniature equivalent of the real servers' writev.
                super::send_response(sys, conn, &[&header, &body]);
            } else {
                let header = format!(
                    "HTTP/1.1 404 Not Found\r\nServer: {}/{}\r\nContent-Length: 0\r\n\r\n",
                    self.flavour, self.revision
                )
                .into_bytes();
                super::send_response(sys, conn, &[&header]);
            }
            served += 1;
        }
        Ok(served)
    }
}

impl VersionProgram for HttpServer {
    fn name(&self) -> String {
        format!("{}-r{}", self.flavour, self.revision)
    }

    fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
        self.startup(sys);
        let listener = open_listener(sys, &self.config);
        if listener < 0 {
            return ProgramExit::Exited(1);
        }

        if self.config.worker_threads <= 1 {
            // Single-threaded model (Lighttpd, Apache, thttpd).
            for _ in 0..self.config.max_connections {
                let conn = sys.accept(listener as i32);
                if conn < 0 {
                    break;
                }
                let result = self.serve_connection(sys, conn as i32);
                sys.close(conn as i32);
                if let Err(signal) = result {
                    return ProgramExit::Crashed(signal);
                }
            }
        } else {
            // Worker-pool model (Nginx): the master accepts and hands
            // connections to workers with deterministic round-robin dispatch,
            // so every version assigns the same connection to the same worker
            // index and the followers' per-thread rings line up (§3.3.3).
            let workers = self.config.worker_threads;
            let mut senders = Vec::new();
            let mut handles = Vec::new();
            for _ in 0..workers {
                let (sender, receiver) = std::sync::mpsc::channel::<i32>();
                senders.push(sender);
                let mut worker_sys = sys.spawn_thread();
                let server = self.clone();
                handles.push(std::thread::spawn(move || -> Result<u64, Signal> {
                    let mut served = 0u64;
                    while let Ok(conn) = receiver.recv() {
                        let result = server.serve_connection(worker_sys.as_mut(), conn);
                        worker_sys.close(conn);
                        served += result?;
                    }
                    Ok(served)
                }));
            }
            for index in 0..self.config.max_connections {
                let conn = sys.accept(listener as i32);
                if conn < 0 {
                    break;
                }
                let worker = (index as usize) % senders.len();
                if senders[worker].send(conn as i32).is_err() {
                    break;
                }
            }
            drop(senders);
            let mut crashed = None;
            for handle in handles {
                match handle.join() {
                    Ok(Err(signal)) => crashed = Some(signal),
                    Ok(Ok(_)) => {}
                    Err(_) => crashed = Some(Signal::Sigsegv),
                }
            }
            if let Some(signal) = crashed {
                return ProgramExit::Crashed(signal);
            }
        }

        sys.close(listener as i32);
        sys.exit(0);
        ProgramExit::Exited(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varan_core::DirectExecutor;
    use varan_kernel::Kernel;

    fn kernel_with_page() -> Kernel {
        let kernel = Kernel::new();
        kernel
            .populate_file("/var/www/index.html", vec![b'x'; 4096])
            .unwrap();
        kernel
            .populate_file("/var/www/small.html", b"<html>tiny</html>".to_vec())
            .unwrap();
        kernel
    }

    fn get(kernel: &Kernel, port: u16, path: &str) -> Vec<u8> {
        loop {
            if let Ok(endpoint) = kernel.network().connect(port) {
                endpoint
                    .write(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                    .unwrap();
                let mut response = Vec::new();
                loop {
                    // Stop once the whole response (headers + declared body)
                    // has arrived; the connection stays open for keep-alive.
                    let text = String::from_utf8_lossy(&response).into_owned();
                    if let Some(header_end) = text.find("\r\n\r\n") {
                        let content_length = text
                            .lines()
                            .find_map(|line| line.strip_prefix("Content-Length: "))
                            .and_then(|value| value.trim().parse::<usize>().ok())
                            .unwrap_or(0);
                        if response.len() >= header_end + 4 + content_length {
                            break;
                        }
                    }
                    let chunk = endpoint.read(1024, true).unwrap();
                    if chunk.is_empty() {
                        break;
                    }
                    response.extend_from_slice(&chunk);
                }
                endpoint.close();
                return response;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn serves_static_files_and_404s() {
        let kernel = kernel_with_page();
        let mut server =
            HttpServer::lighttpd(ServerConfig::on_port(7500).with_connections(2));
        let client_kernel = kernel.clone();
        let driver = std::thread::spawn(move || {
            let ok = get(&client_kernel, 7500, "/index.html");
            assert!(String::from_utf8_lossy(&ok).starts_with("HTTP/1.1 200 OK"));
            let missing = get(&client_kernel, 7500, "/nope.html");
            assert!(String::from_utf8_lossy(&missing).contains("404 Not Found"));
        });
        let mut sys = DirectExecutor::new(&kernel, "httpd-test");
        let exit = server.run(&mut sys);
        driver.join().unwrap();
        assert_eq!(exit, ProgramExit::Exited(0));
    }

    #[test]
    fn revision_2436_issues_the_extra_identity_calls() {
        let kernel = kernel_with_page();
        for (revision, expected_getuid) in [(revs::REV_2435, 0u64), (revs::REV_2436, 1u64)] {
            let kernel = kernel.clone();
            let mut server = HttpServer::lighttpd(
                ServerConfig::on_port(7600 + revision as u16).with_connections(1),
            )
            .with_revision(revision);
            let port = 7600 + revision as u16;
            let client_kernel = kernel.clone();
            let before = kernel.stats().syscalls.get(&Sysno::Getuid).copied().unwrap_or(0);
            let driver = std::thread::spawn(move || {
                let _ = get(&client_kernel, port, "/small.html");
            });
            let mut sys = DirectExecutor::new(&kernel, "rev-test");
            server.run(&mut sys);
            driver.join().unwrap();
            let after = kernel.stats().syscalls.get(&Sysno::Getuid).copied().unwrap_or(0);
            assert_eq!(after - before, expected_getuid, "revision {revision}");
        }
    }

    #[test]
    fn revision_2524_reads_urandom_and_2578_sets_cloexec() {
        let kernel = kernel_with_page();
        let mut server = HttpServer::lighttpd(
            ServerConfig::on_port(7700).with_connections(1),
        )
        .with_revision(revs::REV_2578);
        assert_eq!(server.revision(), revs::REV_2578);
        let client_kernel = kernel.clone();
        let driver = std::thread::spawn(move || {
            let _ = get(&client_kernel, 7700, "/small.html");
        });
        let mut sys = DirectExecutor::new(&kernel, "rev-test-2");
        server.run(&mut sys);
        driver.join().unwrap();
        let stats = kernel.stats();
        assert!(stats.syscalls.get(&Sysno::Fcntl).copied().unwrap_or(0) >= 1);
        // Revisions ≥ 2524 also read /dev/urandom at startup (open count
        // includes the config file, the urandom read and the served file).
        assert!(stats.syscalls.get(&Sysno::Open).copied().unwrap_or(0) >= 3);
    }

    #[test]
    fn crash_revision_dies_on_the_poisoned_request() {
        let kernel = kernel_with_page();
        let mut server = HttpServer::lighttpd(
            ServerConfig::on_port(7800).with_connections(2),
        )
        .with_revision(revs::REV_2438);
        let client_kernel = kernel.clone();
        let driver = std::thread::spawn(move || {
            loop {
                if let Ok(endpoint) = client_kernel.network().connect(7800) {
                    endpoint
                        .write(b"GET /admin/status HTTP/1.1\r\n\r\n")
                        .unwrap();
                    let _ = endpoint.read(64, true);
                    endpoint.close();
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        let mut sys = DirectExecutor::new(&kernel, "crash-test");
        let exit = server.run(&mut sys);
        driver.join().unwrap();
        assert_eq!(exit, ProgramExit::Crashed(Signal::Sigsegv));
    }

    #[test]
    fn metrics_endpoint_serves_padded_json_and_prometheus() {
        let kernel = kernel_with_page();
        let mut server =
            HttpServer::lighttpd(ServerConfig::on_port(7950).with_connections(2));
        let client_kernel = kernel.clone();
        let driver = std::thread::spawn(move || {
            let response = get(&client_kernel, 7950, "/varan/metrics");
            let text = String::from_utf8_lossy(&response).into_owned();
            assert!(text.starts_with("HTTP/1.1 200 OK"), "got: {text}");
            assert!(text.contains("application/json"));
            assert!(text.contains(varan_obs::SNAPSHOT_SCHEMA));
            // The padded body is a fixed multiple of the quantum, so the
            // response's write count cannot depend on counter digits.
            let content_length = text
                .lines()
                .find_map(|line| line.strip_prefix("Content-Length: "))
                .and_then(|value| value.trim().parse::<usize>().ok())
                .unwrap_or(0);
            assert_eq!(content_length % super::METRICS_PAD, 0);
            let response = get(&client_kernel, 7950, "/varan/metrics.prom");
            let text = String::from_utf8_lossy(&response).into_owned();
            assert!(text.contains("# TYPE varan_"), "got: {text}");
        });
        let mut sys = DirectExecutor::new(&kernel, "metrics-test");
        let exit = server.run(&mut sys);
        driver.join().unwrap();
        assert_eq!(exit, ProgramExit::Exited(0));
    }

    #[test]
    fn nginx_worker_pool_serves_connections() {
        let kernel = kernel_with_page();
        let mut server = HttpServer::nginx(
            ServerConfig::on_port(7900)
                .with_connections(4)
                .with_workers(2),
        );
        assert_eq!(server.name(), "nginx-r2435");
        let client_kernel = kernel.clone();
        let driver = std::thread::spawn(move || {
            for _ in 0..4 {
                let response = get(&client_kernel, 7900, "/small.html");
                assert!(String::from_utf8_lossy(&response).contains("200 OK"));
            }
        });
        let mut sys = DirectExecutor::new(&kernel, "nginx-test");
        let exit = server.run(&mut sys);
        driver.join().unwrap();
        assert_eq!(exit, ProgramExit::Exited(0));
    }
}
