//! A Redis-like in-memory key-value store.
//!
//! The miniature counterpart of the Redis server used throughout the paper's
//! evaluation (Figures 5, Table 2, and the §5.1/§5.3/§5.4 experiments).  It
//! speaks a newline-delimited text protocol over the virtual network,
//! keeps its data set in process memory and — like the real server the paper
//! reproduces a bug from — a specific revision crashes with a segmentation
//! fault when `HMGET` touches a missing key.

use std::collections::HashMap;

use varan_core::{ProgramExit, SyscallInterface, VersionProgram};
use varan_kernel::signal::Signal;

use super::{open_listener, ConnReader, ServerConfig};

/// User-space cycles a real Redis spends processing one command (parsing,
/// dictionary lookups, reply construction) — a few microseconds on the
/// paper's 3.5 GHz machine.
pub const COMPUTE_PER_COMMAND: u64 = 20_000;

/// The Redis-like server.
#[derive(Debug, Clone)]
pub struct KvServer {
    config: ServerConfig,
    revision: String,
    hmget_crash_bug: bool,
    strings: HashMap<String, String>,
    hashes: HashMap<String, HashMap<String, String>>,
}

impl KvServer {
    /// Creates a server for the given configuration (revision `"7fb16ba"`,
    /// no crash bug).
    #[must_use]
    pub fn new(config: ServerConfig) -> Self {
        KvServer {
            config,
            revision: "9a22de8".to_owned(),
            hmget_crash_bug: false,
            strings: HashMap::new(),
            hashes: HashMap::new(),
        }
    }

    /// Labels this instance as a particular revision and optionally plants
    /// the `HMGET` crash bug that revision 7fb16ba introduced.
    #[must_use]
    pub fn with_revision(mut self, revision: &str, hmget_crash_bug: bool) -> Self {
        self.revision = revision.to_owned();
        self.hmget_crash_bug = hmget_crash_bug;
        self
    }

    /// The revision label.
    #[must_use]
    pub fn revision(&self) -> &str {
        &self.revision
    }

    /// Returns `true` if this revision carries the crash bug.
    #[must_use]
    pub fn is_buggy(&self) -> bool {
        self.hmget_crash_bug
    }

    /// Handles one command line; `Err(signal)` means the server crashed.
    fn handle(&mut self, line: &str) -> Result<String, Signal> {
        let mut parts = line.split_whitespace();
        let command = parts.next().unwrap_or("").to_ascii_uppercase();
        let args: Vec<&str> = parts.collect();
        let reply = match command.as_str() {
            "PING" => "+PONG".to_owned(),
            "ECHO" => format!("+{}", args.join(" ")),
            "SET" if args.len() >= 2 => {
                self.strings.insert(args[0].to_owned(), args[1..].join(" "));
                "+OK".to_owned()
            }
            "GET" if args.len() == 1 => match self.strings.get(args[0]) {
                Some(value) => format!("${value}"),
                None => "$-1".to_owned(),
            },
            "DEL" if args.len() == 1 => {
                let removed = self.strings.remove(args[0]).is_some()
                    || self.hashes.remove(args[0]).is_some();
                format!(":{}", i32::from(removed))
            }
            "INCR" if args.len() == 1 => {
                let entry = self.strings.entry(args[0].to_owned()).or_insert_with(|| "0".into());
                let value: i64 = entry.parse().unwrap_or(0) + 1;
                *entry = value.to_string();
                format!(":{value}")
            }
            "HSET" if args.len() >= 3 => {
                let hash = self.hashes.entry(args[0].to_owned()).or_default();
                hash.insert(args[1].to_owned(), args[2..].join(" "));
                ":1".to_owned()
            }
            "HMGET" if !args.is_empty() => {
                let key = args[0];
                match self.hashes.get(key) {
                    Some(hash) => {
                        let values: Vec<String> = args[1..]
                            .iter()
                            .map(|field| hash.get(*field).cloned().unwrap_or_else(|| "-1".into()))
                            .collect();
                        format!("*{}", values.join(","))
                    }
                    None if self.hmget_crash_bug => {
                        // Revision 7fb16ba dereferences a null hash object.
                        return Err(Signal::Sigsegv);
                    }
                    None => "*-1".to_owned(),
                }
            }
            "" => "-ERR empty command".to_owned(),
            other => format!("-ERR unknown command '{other}'"),
        };
        Ok(reply)
    }
}

impl VersionProgram for KvServer {
    fn name(&self) -> String {
        format!("redis-{}", self.revision)
    }

    fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
        let listener = open_listener(sys, &self.config);
        if listener < 0 {
            return ProgramExit::Exited(1);
        }
        for _ in 0..self.config.max_connections {
            let conn = sys.accept(listener as i32);
            if conn < 0 {
                break;
            }
            let mut reader =
                ConnReader::new(conn as i32).with_deadline(self.config.read_timeout_micros);
            while let Some(line) = reader.read_line(sys) {
                if line.is_empty() {
                    continue;
                }
                // Redis consults the clock on every command (serverCron /
                // key-expiry logic): one cheap virtual system call.
                sys.time();
                // Command parsing and dictionary work happen in user space.
                sys.cpu_work(COMPUTE_PER_COMMAND);
                match self.handle(&line) {
                    Ok(reply) => {
                        let response = reply.into_bytes();
                        super::send_response(sys, conn as i32, &[&response, b"\n"]);
                    }
                    Err(signal) => return ProgramExit::Crashed(signal),
                }
            }
            sys.close(conn as i32);
        }
        sys.close(listener as i32);
        sys.exit(0);
        ProgramExit::Exited(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varan_core::DirectExecutor;
    use varan_kernel::Kernel;

    fn run_server_with_client<F>(server: &mut KvServer, client: F) -> ProgramExit
    where
        F: FnOnce(varan_kernel::net::Endpoint) + Send + 'static,
    {
        let kernel = Kernel::new();
        let port = server.config.port;
        let network = kernel.clone();
        let driver = std::thread::spawn(move || {
            // Wait for the listener, then run the client script.
            loop {
                if let Ok(endpoint) = network.network().connect(port) {
                    client(endpoint);
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        let mut sys = DirectExecutor::new(&kernel, "kv-test");
        let exit = server.run(&mut sys);
        driver.join().unwrap();
        exit
    }

    #[test]
    fn serves_basic_commands() {
        let mut server = KvServer::new(ServerConfig::on_port(7401).with_connections(1));
        let exit = run_server_with_client(&mut server, |endpoint| {
            endpoint.write(b"PING\nSET answer 42\nGET answer\nINCR counter\nGET missing\n").unwrap();
            let mut received = Vec::new();
            while !received.ends_with(b"$-1\n") {
                let chunk = endpoint.read(256, true).unwrap();
                if chunk.is_empty() {
                    break;
                }
                received.extend_from_slice(&chunk);
            }
            let text = String::from_utf8(received).unwrap();
            assert!(text.contains("+PONG"));
            assert!(text.contains("+OK"));
            assert!(text.contains("$42"));
            assert!(text.contains(":1"));
            endpoint.close();
        });
        assert_eq!(exit, ProgramExit::Exited(0));
    }

    #[test]
    fn hash_commands_round_trip() {
        let mut server = KvServer::new(ServerConfig::default());
        assert_eq!(server.handle("HSET user name petr").unwrap(), ":1");
        assert_eq!(server.handle("HMGET user name").unwrap(), "*petr");
        assert_eq!(server.handle("HMGET user missing").unwrap(), "*-1");
        assert_eq!(server.handle("HMGET nobody field").unwrap(), "*-1");
        assert_eq!(server.handle("DEL user").unwrap(), ":1");
        assert_eq!(server.handle("BOGUS").unwrap(), "-ERR unknown command 'BOGUS'");
    }

    #[test]
    fn buggy_revision_crashes_on_hmget_of_missing_key() {
        let mut healthy = KvServer::new(ServerConfig::default()).with_revision("9a22de8", false);
        assert_eq!(healthy.handle("HMGET ghost field").unwrap(), "*-1");

        let mut buggy = KvServer::new(ServerConfig::default()).with_revision("7fb16ba", true);
        assert!(buggy.is_buggy());
        assert_eq!(buggy.revision(), "7fb16ba");
        assert_eq!(buggy.handle("HMGET ghost field").unwrap_err(), Signal::Sigsegv);
        // Present keys are still fine.
        buggy.handle("HSET ghost field boo").unwrap();
        assert_eq!(buggy.handle("HMGET ghost field").unwrap(), "*boo");
    }

    #[test]
    fn crash_bug_terminates_the_server_mid_connection() {
        let mut server = KvServer::new(ServerConfig::on_port(7402).with_connections(3))
            .with_revision("7fb16ba", true);
        let exit = run_server_with_client(&mut server, |endpoint| {
            endpoint.write(b"SET a 1\nHMGET nothing here\n").unwrap();
            // The server dies before replying to HMGET; just drain.
            let _ = endpoint.read(64, true);
            endpoint.close();
        });
        assert_eq!(exit, ProgramExit::Crashed(Signal::Sigsegv));
    }
}
