//! A Beanstalkd-like work queue.
//!
//! Beanstalkd is the worst performer under VARAN in Figure 5 (52–77%
//! overhead) because every operation is tiny: a `put` is one short read, a
//! clock lookup, a journal write and a short reply, so the monitor's
//! per-event cost is never amortised.  This miniature counterpart has
//! exactly that footprint: `read` → `gettimeofday` → journal `write` →
//! response `write`, plus a journalled `delete` and a `reserve` that returns
//! the oldest job.

use std::collections::VecDeque;

use varan_core::{ProgramExit, SyscallInterface, VersionProgram};
use varan_kernel::fs::flags;
use varan_kernel::syscall::SyscallRequest;

use super::{open_listener, ConnReader, ServerConfig};

/// Path of the queue's journal file.
pub const JOURNAL_PATH: &str = "/data/beanstalkd.journal";

#[derive(Debug, Clone)]
struct Job {
    id: u64,
    payload: Vec<u8>,
}

/// The Beanstalkd-like work queue server.
#[derive(Debug, Clone)]
pub struct QueueServer {
    config: ServerConfig,
    revision: String,
    next_id: u64,
    ready: VecDeque<Job>,
    reserved: Vec<Job>,
}

impl QueueServer {
    /// Creates a queue server with the given configuration.
    #[must_use]
    pub fn new(config: ServerConfig) -> Self {
        QueueServer {
            config,
            revision: "157d88b".to_owned(),
            next_id: 1,
            ready: VecDeque::new(),
            reserved: Vec::new(),
        }
    }

    /// Labels this instance as a particular revision.
    #[must_use]
    pub fn with_revision(mut self, revision: &str) -> Self {
        self.revision = revision.to_owned();
        self
    }

    /// Number of jobs currently ready for reservation.
    #[must_use]
    pub fn ready_jobs(&self) -> usize {
        self.ready.len()
    }

    fn handle(
        &mut self,
        sys: &mut dyn SyscallInterface,
        journal_fd: i32,
        reader: &mut ConnReader,
        line: &str,
    ) -> Option<Vec<u8>> {
        // Beanstalkd timestamps every job operation.
        sys.syscall(&SyscallRequest::gettimeofday());
        // Each operation does very little user-space work (a linked-list
        // update), which is exactly why it is the worst performer under a
        // system-call monitor: nothing amortises the per-event cost.
        sys.cpu_work(1_000);
        let mut parts = line.split_whitespace();
        let command = parts.next().unwrap_or("");
        match command {
            "put" => {
                let bytes: usize = parts.next().and_then(|n| n.parse().ok()).unwrap_or(0);
                if bytes > self.config.max_request_bytes {
                    // Reject before reading a single payload byte, then drop
                    // the connection: the client's framing is now undecodable
                    // (we never consumed the oversized body).
                    super::send_response(sys, reader.fd(), &[b"JOB_TOO_BIG\r\n"]);
                    return None;
                }
                let mut payload = reader.read_exact(sys, bytes)?;
                // Consume the trailing newline after the payload, if present.
                if reader.read_exact(sys, 1).as_deref() != Some(b"\n") {
                    // Short frame: treat whatever we read as the payload.
                }
                payload.truncate(bytes);
                let id = self.next_id;
                self.next_id += 1;
                let entry = format!("put {id} {bytes}\n");
                sys.write(journal_fd, entry.as_bytes());
                self.ready.push_back(Job { id, payload });
                Some(format!("INSERTED {id}\r\n").into_bytes())
            }
            "reserve" => match self.ready.pop_front() {
                Some(job) => {
                    let mut reply =
                        format!("RESERVED {} {}\r\n", job.id, job.payload.len()).into_bytes();
                    reply.extend_from_slice(&job.payload);
                    reply.extend_from_slice(b"\r\n");
                    self.reserved.push(job);
                    Some(reply)
                }
                None => Some(b"TIMED_OUT\r\n".to_vec()),
            },
            "delete" => {
                let id: u64 = parts.next().and_then(|n| n.parse().ok()).unwrap_or(0);
                let before = self.reserved.len();
                self.reserved.retain(|job| job.id != id);
                let deleted = before != self.reserved.len();
                if deleted {
                    let entry = format!("delete {id}\n");
                    sys.write(journal_fd, entry.as_bytes());
                    Some(b"DELETED\r\n".to_vec())
                } else {
                    Some(b"NOT_FOUND\r\n".to_vec())
                }
            }
            "stats" => Some(
                format!(
                    "OK ready={} reserved={} next_id={}\r\n",
                    self.ready.len(),
                    self.reserved.len(),
                    self.next_id
                )
                .into_bytes(),
            ),
            "quit" => None,
            _ => Some(b"UNKNOWN_COMMAND\r\n".to_vec()),
        }
    }
}

impl VersionProgram for QueueServer {
    fn name(&self) -> String {
        format!("beanstalkd-{}", self.revision)
    }

    fn run(&mut self, sys: &mut dyn SyscallInterface) -> ProgramExit {
        let journal_fd = sys.open(
            JOURNAL_PATH,
            flags::O_WRONLY | flags::O_CREAT | flags::O_APPEND,
        ) as i32;
        let listener = open_listener(sys, &self.config);
        if listener < 0 {
            return ProgramExit::Exited(1);
        }
        for _ in 0..self.config.max_connections {
            let conn = sys.accept(listener as i32);
            if conn < 0 {
                break;
            }
            let mut reader =
                ConnReader::new(conn as i32).with_deadline(self.config.read_timeout_micros);
            while let Some(line) = reader.read_line(sys) {
                if line.is_empty() {
                    continue;
                }
                match self.handle(sys, journal_fd, &mut reader, &line) {
                    Some(reply) => {
                        super::send_response(sys, conn as i32, &[&reply]);
                    }
                    None => break,
                }
            }
            sys.close(conn as i32);
        }
        sys.close(listener as i32);
        if journal_fd >= 0 {
            sys.syscall(&SyscallRequest::new(
                varan_kernel::Sysno::Fsync,
                [journal_fd as u64, 0, 0, 0, 0, 0],
            ));
            sys.close(journal_fd);
        }
        sys.exit(0);
        ProgramExit::Exited(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varan_core::DirectExecutor;
    use varan_kernel::Kernel;

    #[test]
    fn put_reserve_delete_cycle() {
        let kernel = Kernel::new();
        let mut server = QueueServer::new(ServerConfig::on_port(7950).with_connections(1));
        assert_eq!(server.name(), "beanstalkd-157d88b");
        let client_kernel = kernel.clone();
        let driver = std::thread::spawn(move || {
            loop {
                if let Ok(endpoint) = client_kernel.network().connect(7950) {
                    endpoint.write(b"put 5\nhello\nreserve\ndelete 1\nstats\nquit\n").unwrap();
                    let mut text = Vec::new();
                    loop {
                        let chunk = endpoint.read(512, true).unwrap();
                        if chunk.is_empty() {
                            break;
                        }
                        text.extend_from_slice(&chunk);
                        if String::from_utf8_lossy(&text).contains("next_id") {
                            break;
                        }
                    }
                    endpoint.close();
                    return String::from_utf8(text).unwrap();
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        let mut sys = DirectExecutor::new(&kernel, "queue-test");
        let exit = server.run(&mut sys);
        let transcript = driver.join().unwrap();
        assert_eq!(exit, ProgramExit::Exited(0));
        assert!(transcript.contains("INSERTED 1"));
        assert!(transcript.contains("RESERVED 1 5"));
        assert!(transcript.contains("hello"));
        assert!(transcript.contains("DELETED"));
        assert!(transcript.contains("ready=0 reserved=0"));
        // The journal was written and survives on the virtual file system.
        let journal = kernel.read_file(JOURNAL_PATH).unwrap();
        let journal_text = String::from_utf8(journal).unwrap();
        assert!(journal_text.contains("put 1 5"));
        assert!(journal_text.contains("delete 1"));
    }

    #[test]
    fn reserve_on_empty_queue_times_out() {
        let mut server = QueueServer::new(ServerConfig::default());
        assert_eq!(server.ready_jobs(), 0);
        // Drive the handler directly (no network) for the edge cases.
        let kernel = Kernel::new();
        let mut sys = DirectExecutor::new(&kernel, "direct");
        let journal = sys.open(JOURNAL_PATH, flags::O_WRONLY | flags::O_CREAT) as i32;
        let mut reader = ConnReader::new(-1);
        let reply = server
            .handle(&mut sys, journal, &mut reader, "reserve")
            .unwrap();
        assert_eq!(reply, b"TIMED_OUT\r\n");
        let reply = server
            .handle(&mut sys, journal, &mut reader, "delete 99")
            .unwrap();
        assert_eq!(reply, b"NOT_FOUND\r\n");
        let reply = server
            .handle(&mut sys, journal, &mut reader, "bogus")
            .unwrap();
        assert_eq!(reply, b"UNKNOWN_COMMAND\r\n");
        assert!(server
            .handle(&mut sys, journal, &mut reader, "quit")
            .is_none());
    }
}
