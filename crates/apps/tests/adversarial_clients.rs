//! Adversarial-client acceptance suite: every misbehaving client script
//! against all four miniature servers, each running as a leader/follower
//! pair under N-version execution.
//!
//! The properties under test, per (server × attack) cell:
//!
//! 1. **No hang** — the NVX run finishes and every version exits cleanly;
//!    the poisoned connection cannot pin a worker forever.
//! 2. **No divergence** — the follower replays the leader's handling of
//!    the attack without a single killed divergence.
//! 3. **Reaped within deadline** — the adversarial client observes its
//!    connection being disposed of within the reap deadline (or closed it
//!    itself, for the mid-request disconnect).
//! 4. **Still serving** — a well-behaved client issued after the attack
//!    gets a correct reply.

use std::sync::atomic::{AtomicU16, Ordering};
use std::time::Duration;

use varan_apps::adversarial::{run_attack, Attack, Protocol, ALL_ATTACKS};
use varan_apps::clients::{connect_retry, read_until_satisfied, CLIENT_READ_TIMEOUT};
use varan_apps::servers::cache::CacheServer;
use varan_apps::servers::httpd::HttpServer;
use varan_apps::servers::kvstore::KvServer;
use varan_apps::servers::queue::QueueServer;
use varan_apps::servers::ServerConfig;
use varan_core::coordinator::{NvxConfig, NvxSystem};
use varan_core::VersionProgram;
use varan_kernel::Kernel;

static PORT: AtomicU16 = AtomicU16::new(27_000);

/// The server's per-read deadline: quiet connections are reaped after this.
const SERVER_READ_TIMEOUT_MICROS: u64 = 50_000;

/// How long the adversarial client waits for the reap — generous, because
/// it also covers server start-up.
const REAP_DEADLINE: Duration = Duration::from_secs(10);

#[derive(Debug, Clone, Copy)]
enum ServerKind {
    Kv,
    Httpd,
    Queue,
    Cache,
}

impl ServerKind {
    fn protocol(self) -> Protocol {
        match self {
            ServerKind::Kv => Protocol::Kv,
            ServerKind::Httpd => Protocol::Http,
            ServerKind::Queue => Protocol::Queue,
            ServerKind::Cache => Protocol::Cache,
        }
    }

    fn build(self, config: ServerConfig) -> Box<dyn VersionProgram> {
        match self {
            ServerKind::Kv => Box::new(KvServer::new(config)),
            ServerKind::Httpd => Box::new(HttpServer::lighttpd(config)),
            ServerKind::Queue => Box::new(QueueServer::new(config)),
            ServerKind::Cache => Box::new(CacheServer::new(config)),
        }
    }
}

/// Issues one well-behaved request and checks the reply, returning a
/// description of what went wrong (None = success).
fn legit_probe(kernel: &Kernel, port: u16, kind: ServerKind) -> Option<String> {
    let endpoint = connect_retry(kernel, port, CLIENT_READ_TIMEOUT)?;
    let (request, needle): (&[u8], &[u8]) = match kind {
        ServerKind::Kv => (b"PING\n", b"+PONG"),
        ServerKind::Httpd => (b"GET /index.html HTTP/1.1\r\nHost: probe\r\n\r\n", b"200 OK"),
        ServerKind::Queue => (b"stats\n", b"OK ready="),
        ServerKind::Cache => (b"get nothing\r\n", b"END\r\n"),
    };
    if endpoint.write(request).is_err() {
        return Some("write failed".to_owned());
    }
    let reply = read_until_satisfied(&endpoint, CLIENT_READ_TIMEOUT, |buffer| {
        buffer
            .windows(needle.len())
            .any(|window| window == needle)
    });
    // Let the line-oriented servers see EOF and move on.
    endpoint.close();
    match reply {
        Some(_) => None,
        None => Some(format!("no {:?} reply", String::from_utf8_lossy(needle))),
    }
}

fn run_case(kind: ServerKind, attack: Attack) {
    let kernel = Kernel::new();
    kernel
        .populate_file("/var/www/index.html", b"<html>up</html>".to_vec())
        .unwrap();
    let port = PORT.fetch_add(1, Ordering::Relaxed);
    // Two connections: the adversarial one, then the well-behaved probe.
    let config = ServerConfig::on_port(port)
        .with_connections(2)
        .with_read_timeout_micros(SERVER_READ_TIMEOUT_MICROS);
    let versions: Vec<Box<dyn VersionProgram>> =
        vec![kind.build(config.clone()), kind.build(config)];
    let running = NvxSystem::launch(&kernel, versions, NvxConfig::default())
        .unwrap_or_else(|error| panic!("{kind:?}/{attack:?}: launch failed: {error:?}"));

    let outcome = run_attack(&kernel, port, kind.protocol(), attack, REAP_DEADLINE);
    assert!(outcome.connected, "{kind:?}/{attack:?}: never connected");
    assert!(
        outcome.reaped,
        "{kind:?}/{attack:?}: connection not reaped within {REAP_DEADLINE:?} \
         (sent {} bytes)",
        outcome.bytes_sent
    );

    let probe_failure = legit_probe(&kernel, port, kind);
    assert!(
        probe_failure.is_none(),
        "{kind:?}/{attack:?}: server unusable after attack: {probe_failure:?}"
    );

    let report = running.wait();
    assert!(
        report.all_clean(),
        "{kind:?}/{attack:?}: dirty exits: {:?}",
        report.exits
    );
    for (index, version) in report.versions.iter().enumerate() {
        assert_eq!(
            version.divergences_killed, 0,
            "{kind:?}/{attack:?}: version {index} diverged"
        );
    }
}

fn run_all_attacks(kind: ServerKind) {
    for attack in ALL_ATTACKS {
        run_case(kind, attack);
    }
}

#[test]
fn kvstore_survives_every_adversarial_client() {
    run_all_attacks(ServerKind::Kv);
}

#[test]
fn httpd_survives_every_adversarial_client() {
    run_all_attacks(ServerKind::Httpd);
}

#[test]
fn queue_survives_every_adversarial_client() {
    run_all_attacks(ServerKind::Queue);
}

#[test]
fn cache_survives_every_adversarial_client() {
    run_all_attacks(ServerKind::Cache);
}
