//! Integration tests for the virtual kernel's system-call dispatcher.

use std::time::Duration;

use varan_kernel::fs::flags;
use varan_kernel::signal::Signal;
use varan_kernel::syscall::{fcntl, whence, SyscallRequest};
use varan_kernel::{Errno, Kernel, Sysno};

#[test]
fn identity_and_time_syscalls() {
    let kernel = Kernel::new();
    let pid = kernel.spawn_process("id");
    assert_eq!(kernel.syscall(pid, &SyscallRequest::getuid()).result, 1000);
    assert_eq!(
        kernel
            .syscall(pid, &SyscallRequest::new(Sysno::Getegid, [0; 6]))
            .result,
        1000
    );
    assert_eq!(
        kernel
            .syscall(pid, &SyscallRequest::new(Sysno::Getpid, [0; 6]))
            .result,
        i64::from(pid)
    );
    let time = kernel.syscall(pid, &SyscallRequest::time());
    assert!(time.result >= 1_426_464_000);
    let tod = kernel.syscall(pid, &SyscallRequest::gettimeofday());
    assert_eq!(tod.result, 0);
    assert_eq!(tod.payload_len(), 16);
    let cg = kernel.syscall(pid, &SyscallRequest::clock_gettime());
    assert_eq!(cg.payload_len(), 16);
}

#[test]
fn file_lifecycle_open_read_write_close() {
    let kernel = Kernel::new();
    let pid = kernel.spawn_process("filer");
    kernel
        .populate_file("/var/www/index.html", b"hello world".to_vec())
        .unwrap();

    let open = kernel.syscall(pid, &SyscallRequest::open_read("/var/www/index.html"));
    assert!(open.result >= 3);
    assert!(open.fd.is_some(), "open must flag an fd for transfer");
    let fd = open.result as i32;

    let read = kernel.syscall(pid, &SyscallRequest::read(fd, 5));
    assert_eq!(read.result, 5);
    assert_eq!(read.data.as_deref(), Some(&b"hello"[..]));

    // Offset advanced: the next read continues where the first stopped.
    let read = kernel.syscall(pid, &SyscallRequest::read(fd, 64));
    assert_eq!(read.data.as_deref(), Some(&b" world"[..]));

    // Seek back to the start and read again.
    let seek = kernel.syscall(pid, &SyscallRequest::lseek(fd, 0, whence::SEEK_SET));
    assert_eq!(seek.result, 0);
    let read = kernel.syscall(pid, &SyscallRequest::read(fd, 5));
    assert_eq!(read.data.as_deref(), Some(&b"hello"[..]));

    assert_eq!(kernel.syscall(pid, &SyscallRequest::close(fd)).result, 0);
    assert_eq!(
        kernel.syscall(pid, &SyscallRequest::read(fd, 1)).errno(),
        Some(Errno::EBADF)
    );
}

#[test]
fn open_creat_trunc_append_flags() {
    let kernel = Kernel::new();
    let pid = kernel.spawn_process("writer");
    let open = kernel.syscall(
        pid,
        &SyscallRequest::open("/tmp/log", flags::O_WRONLY | flags::O_CREAT | flags::O_APPEND),
    );
    let fd = open.result as i32;
    assert!(fd >= 3);
    kernel.syscall(pid, &SyscallRequest::write(fd, b"one ".to_vec()));
    kernel.syscall(pid, &SyscallRequest::write(fd, b"two".to_vec()));
    assert_eq!(kernel.read_file("/tmp/log").unwrap(), b"one two");

    // O_TRUNC clears the file.
    let open = kernel.syscall(
        pid,
        &SyscallRequest::open("/tmp/log", flags::O_WRONLY | flags::O_TRUNC),
    );
    assert!(open.result >= 0);
    assert_eq!(kernel.read_file("/tmp/log").unwrap(), b"");

    // Opening a missing file without O_CREAT fails.
    let missing = kernel.syscall(pid, &SyscallRequest::open_read("/tmp/missing"));
    assert_eq!(missing.errno(), Some(Errno::ENOENT));
}

#[test]
fn device_reads_match_the_microbenchmark_setup() {
    let kernel = Kernel::new();
    let pid = kernel.spawn_process("micro");
    // close(-1): cheap failing call.
    let close = kernel.syscall(pid, &SyscallRequest::close(-1));
    assert_eq!(close.errno(), Some(Errno::EBADF));

    // write(/dev/null, 512).
    let fd = kernel
        .syscall(pid, &SyscallRequest::open("/dev/null", flags::O_WRONLY))
        .result as i32;
    let write = kernel.syscall(pid, &SyscallRequest::write(fd, vec![0u8; 512]));
    assert_eq!(write.result, 512);

    // read(/dev/null, 512) returns EOF but is charged for the attempt.
    let read_fd = kernel
        .syscall(pid, &SyscallRequest::open_read("/dev/null"))
        .result as i32;
    let read = kernel.syscall(pid, &SyscallRequest::read(read_fd, 512));
    assert_eq!(read.result, 0);
    assert!(read.cost > 1000);

    // /dev/urandom returns random bytes; /dev/zero returns zeroes.
    let urandom = kernel
        .syscall(pid, &SyscallRequest::open_read("/dev/urandom"))
        .result as i32;
    let bytes = kernel.syscall(pid, &SyscallRequest::read(urandom, 16));
    assert_eq!(bytes.result, 16);
    let zero = kernel
        .syscall(pid, &SyscallRequest::open_read("/dev/zero"))
        .result as i32;
    assert_eq!(
        kernel.syscall(pid, &SyscallRequest::read(zero, 4)).data,
        Some(vec![0u8; 4])
    );

    // time() is the cheap virtual call.
    let time = kernel.syscall(pid, &SyscallRequest::time());
    assert_eq!(time.cost, 49);
}

#[test]
fn sockets_accept_and_exchange_data_across_threads() {
    let kernel = Kernel::new();
    let server_pid = kernel.spawn_process("server");
    let client_pid = kernel.spawn_process("client");

    // Server: socket/bind/listen.
    let sock = kernel.syscall(server_pid, &SyscallRequest::socket()).result as i32;
    assert_eq!(
        kernel.syscall(server_pid, &SyscallRequest::bind(sock, 8080)).result,
        0
    );
    assert_eq!(
        kernel
            .syscall(server_pid, &SyscallRequest::listen(sock, 128))
            .result,
        0
    );

    // Client connects from another thread and sends a request.
    let kernel_for_client = kernel.clone();
    let client = std::thread::spawn(move || {
        let fd = kernel_for_client
            .syscall(client_pid, &SyscallRequest::socket())
            .result as i32;
        assert_eq!(
            kernel_for_client
                .syscall(client_pid, &SyscallRequest::connect(fd, 8080))
                .result,
            0
        );
        kernel_for_client.syscall(client_pid, &SyscallRequest::write(fd, b"ping".to_vec()));
        let reply = kernel_for_client.syscall(client_pid, &SyscallRequest::read(fd, 16));
        assert_eq!(reply.data.as_deref(), Some(&b"pong"[..]));
        kernel_for_client.syscall(client_pid, &SyscallRequest::close(fd));
    });

    // Server accepts (blocking) and echoes.
    let accept = kernel.syscall(server_pid, &SyscallRequest::accept(sock));
    assert!(accept.result > 0);
    assert!(accept.fd.is_some());
    let conn = accept.result as i32;
    let request = kernel.syscall(server_pid, &SyscallRequest::read(conn, 16));
    assert_eq!(request.data.as_deref(), Some(&b"ping"[..]));
    kernel.syscall(server_pid, &SyscallRequest::write(conn, b"pong".to_vec()));
    client.join().unwrap();

    // Connecting to an unbound port is refused.
    let fd = kernel.syscall(client_pid, &SyscallRequest::socket()).result as i32;
    assert_eq!(
        kernel
            .syscall(client_pid, &SyscallRequest::connect(fd, 9999))
            .errno(),
        Some(Errno::ECONNREFUSED)
    );
    // Listening without bind is invalid.
    let unbound = kernel.syscall(client_pid, &SyscallRequest::socket()).result as i32;
    assert_eq!(
        kernel
            .syscall(client_pid, &SyscallRequest::listen(unbound, 4))
            .errno(),
        Some(Errno::EINVAL)
    );
}

#[test]
fn fd_transfer_duplicates_descriptors_between_processes() {
    let kernel = Kernel::new();
    let leader = kernel.spawn_process("leader");
    let follower = kernel.spawn_process("follower");
    kernel
        .populate_file("/data/shared.txt", b"shared contents".to_vec())
        .unwrap();
    let fd = kernel
        .syscall(leader, &SyscallRequest::open_read("/data/shared.txt"))
        .result as i32;

    let transferred = kernel.transfer_fd(leader, fd, follower).unwrap();
    let read = kernel.syscall(follower, &SyscallRequest::read(transferred, 6));
    assert_eq!(read.data.as_deref(), Some(&b"shared"[..]));

    assert_eq!(
        kernel.transfer_fd(leader, 999, follower).unwrap_err(),
        Errno::EBADF
    );
}

#[test]
fn identity_fd_transfer_preserves_the_source_number() {
    let kernel = Kernel::new();
    let leader = kernel.spawn_process("leader");
    let joiner = kernel.spawn_process("joiner");
    kernel
        .populate_file("/data/a.txt", b"aaaa".to_vec())
        .unwrap();
    kernel
        .populate_file("/data/b.txt", b"bbbb".to_vec())
        .unwrap();
    // Leader opens two files (fds 3 and 4); the joiner mirrors them at the
    // identical numbers, and its own next allocation lands above them.
    let a = kernel
        .syscall(leader, &SyscallRequest::open_read("/data/a.txt"))
        .result as i32;
    let b = kernel
        .syscall(leader, &SyscallRequest::open_read("/data/b.txt"))
        .result as i32;
    assert_eq!(kernel.transfer_fd_identity(leader, b, joiner).unwrap(), b);
    assert_eq!(kernel.transfer_fd_identity(leader, a, joiner).unwrap(), a);
    let read = kernel.syscall(joiner, &SyscallRequest::read(b, 4));
    assert_eq!(read.data.as_deref(), Some(&b"bbbb"[..]));
    let own = kernel
        .syscall(joiner, &SyscallRequest::open_read("/data/a.txt"))
        .result as i32;
    assert!(own > b, "future allocations stay above identity installs");

    // An occupied slot falls back to the lowest free number.
    let again = kernel.transfer_fd_identity(leader, a, joiner).unwrap();
    assert_ne!(again, a);
    assert_eq!(
        kernel.transfer_fd_identity(leader, 999, joiner).unwrap_err(),
        Errno::EBADF
    );
}

#[test]
fn fork_and_exit_lifecycle() {
    let kernel = Kernel::new();
    let parent = kernel.spawn_process("parent");
    let fork = kernel.syscall(parent, &SyscallRequest::fork());
    assert!(fork.result > i64::from(parent));
    let child = fork.result as u32;
    assert!(kernel.process_alive(child));

    let exit = kernel.syscall(child, &SyscallRequest::exit(3));
    assert_eq!(exit.result, 0);
    assert!(!kernel.process_alive(child));
    assert_eq!(kernel.exit_status(child), Some(3));
    assert!(kernel.process_alive(parent));
}

#[test]
fn signals_are_delivered_and_consumed() {
    let kernel = Kernel::new();
    let victim = kernel.spawn_process("victim");
    let killer = kernel.spawn_process("killer");
    let kill = kernel.syscall(
        killer,
        &SyscallRequest::new(Sysno::Kill, [u64::from(victim), 11, 0, 0, 0, 0]),
    );
    assert_eq!(kill.result, 0);
    assert_eq!(kernel.take_signal(victim), Some(Signal::Sigsegv));
    assert_eq!(kernel.take_signal(victim), None);
}

#[test]
fn console_writes_are_captured() {
    let kernel = Kernel::new();
    let pid = kernel.spawn_process("logger");
    kernel.syscall(pid, &SyscallRequest::write(1, b"starting up\n".to_vec()));
    kernel.syscall(pid, &SyscallRequest::write(2, b"warning\n".to_vec()));
    assert_eq!(kernel.console_output(pid), b"starting up\nwarning\n");
}

#[test]
fn fcntl_manages_descriptor_flags() {
    let kernel = Kernel::new();
    let pid = kernel.spawn_process("fcntl");
    let fd = kernel
        .syscall(pid, &SyscallRequest::open("/dev/null", flags::O_RDONLY))
        .result as i32;
    assert_eq!(
        kernel
            .syscall(pid, &SyscallRequest::fcntl(fd, fcntl::F_GETFD, 0))
            .result,
        0
    );
    kernel.syscall(
        pid,
        &SyscallRequest::fcntl(fd, fcntl::F_SETFD, fcntl::FD_CLOEXEC),
    );
    assert_eq!(
        kernel
            .syscall(pid, &SyscallRequest::fcntl(fd, fcntl::F_GETFD, 0))
            .result,
        1
    );
    // Unknown command.
    assert_eq!(
        kernel
            .syscall(pid, &SyscallRequest::fcntl(fd, 99, 0))
            .errno(),
        Some(Errno::EINVAL)
    );
}

#[test]
fn mmap_brk_and_getrandom_are_process_local() {
    let kernel = Kernel::new();
    let pid = kernel.spawn_process("mem");
    let first = kernel.syscall(pid, &SyscallRequest::mmap(8192)).result;
    let second = kernel.syscall(pid, &SyscallRequest::mmap(8192)).result;
    assert!(second > first);
    let brk = kernel.syscall(pid, &SyscallRequest::new(Sysno::Brk, [0; 6])).result;
    assert!(brk > 0);
    let random = kernel.syscall(pid, &SyscallRequest::getrandom(32));
    assert_eq!(random.result, 32);
    assert_eq!(random.payload_len(), 32);
}

#[test]
fn epoll_reports_ready_descriptors() {
    let kernel = Kernel::new();
    let pid = kernel.spawn_process("epoll-server");
    let sock = kernel.syscall(pid, &SyscallRequest::socket()).result as i32;
    kernel.syscall(pid, &SyscallRequest::bind(sock, 8200));
    kernel.syscall(pid, &SyscallRequest::listen(sock, 16));
    let epfd = kernel
        .syscall(pid, &SyscallRequest::new(Sysno::EpollCreate1, [0; 6]))
        .result as i32;
    kernel.syscall(
        pid,
        &SyscallRequest::new(Sysno::EpollCtl, [epfd as u64, 1, sock as u64, 0, 0, 0]),
    );
    // Nothing pending yet.
    let wait = kernel.syscall(
        pid,
        &SyscallRequest::new(Sysno::EpollWait, [epfd as u64, 0, 0, 0, 0, 0]),
    );
    assert_eq!(wait.result, 0);
    // A client connection makes the listener ready.
    let _client = kernel.network().connect(8200).unwrap();
    let wait = kernel.syscall(
        pid,
        &SyscallRequest::new(Sysno::EpollWait, [epfd as u64, 0, 0, 0, 0, 0]),
    );
    assert_eq!(wait.result, 1);
}

#[test]
fn nanosleep_advances_the_virtual_clock() {
    let kernel = Kernel::new();
    let pid = kernel.spawn_process("sleeper");
    let before = kernel.clock().cycles();
    let outcome = kernel.syscall(pid, &SyscallRequest::nanosleep(1_000)); // 1 ms
    assert_eq!(outcome.result, 0);
    let elapsed = kernel.clock().cycles() - before;
    assert!(elapsed >= kernel.cost_model().us_to_cycles(1_000.0));
}

#[test]
fn stats_track_syscall_counts_and_cycles() {
    let kernel = Kernel::new();
    let pid = kernel.spawn_process("stats");
    for _ in 0..10 {
        kernel.syscall(pid, &SyscallRequest::time());
    }
    kernel.syscall(pid, &SyscallRequest::close(-1));
    let stats = kernel.stats();
    assert_eq!(stats.syscalls.get(&Sysno::Time), Some(&10));
    assert_eq!(stats.syscalls.get(&Sysno::Close), Some(&1));
    assert_eq!(stats.total_syscalls(), 11);
    assert!(stats.total_cycles > 0);
    assert_eq!(stats.processes_spawned, 1);
}

#[test]
fn unknown_process_yields_enoent_not_panic() {
    let kernel = Kernel::new();
    let outcome = kernel.syscall(4242, &SyscallRequest::getuid());
    // Identity calls do not need the process table; fd-based ones do.
    assert!(outcome.result >= 0 || outcome.errno() == Some(Errno::ENOENT));
    let outcome = kernel.syscall(4242, &SyscallRequest::read(3, 10));
    assert_eq!(outcome.errno(), Some(Errno::ENOENT));
}

#[test]
fn pipes_move_bytes_within_a_process() {
    let kernel = Kernel::new();
    let pid = kernel.spawn_process("piper");
    let pipe = kernel.syscall(pid, &SyscallRequest::new(Sysno::Pipe, [0; 6]));
    assert_eq!(pipe.result, 0);
    let data = pipe.data.unwrap();
    let read_fd = i32::from_le_bytes(data[0..4].try_into().unwrap());
    let write_fd = i32::from_le_bytes(data[4..8].try_into().unwrap());
    kernel.syscall(pid, &SyscallRequest::write(write_fd, b"through the pipe".to_vec()));
    let read = kernel.syscall(pid, &SyscallRequest::read(read_fd, 7));
    assert_eq!(read.data.as_deref(), Some(&b"through"[..]));
}

#[test]
fn blocking_accept_wakes_when_a_client_arrives() {
    let kernel = Kernel::new();
    let pid = kernel.spawn_process("accepting");
    let sock = kernel.syscall(pid, &SyscallRequest::socket()).result as i32;
    kernel.syscall(pid, &SyscallRequest::bind(sock, 8300));
    kernel.syscall(pid, &SyscallRequest::listen(sock, 4));

    let kernel_bg = kernel.clone();
    let acceptor = std::thread::spawn(move || {
        kernel_bg.syscall(pid, &SyscallRequest::accept(sock)).result
    });
    std::thread::sleep(Duration::from_millis(20));
    let _client = kernel.network().connect(8300).unwrap();
    let accepted = acceptor.join().unwrap();
    assert!(accepted > 0);
}
