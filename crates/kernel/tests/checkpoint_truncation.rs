//! Exhaustive checkpoint-restore robustness under truncation: the decoder
//! must reject a checkpoint cut at **every** byte offset — not a sampled
//! subset — with a clean, offset-reporting error, never a panic and never
//! a silently wrong snapshot.  The seeded corruption (bit flips) reuses the
//! simulator's corruption injector ([`varan_kernel::Corruptor`]).

use std::collections::HashMap;

use varan_kernel::syscall::SyscallRequest;
use varan_kernel::{Corruptor, Kernel, KernelCheckpoint};

/// Builds a checkpoint exercising every descriptor-object arm: console,
/// files, a bound listener, a connected stream, a pipe pair and an epoll
/// set, plus VFS files, pending signals and a translation map.
fn rich_checkpoint() -> KernelCheckpoint {
    let kernel = Kernel::new();
    let pid = kernel.spawn_process("checkpointee");
    kernel.populate_file("/data.bin", vec![7u8; 96]).unwrap();
    kernel
        .populate_file("/nested-ish", b"second file".to_vec())
        .unwrap();

    let file = kernel.syscall(pid, &SyscallRequest::open_read("/data.bin"));
    assert!(file.result >= 0);
    let socket = kernel.syscall(pid, &SyscallRequest::socket());
    let socket_fd = socket.result as i32;
    assert!(kernel.syscall(pid, &SyscallRequest::bind(socket_fd, 4242)).result >= 0);
    assert!(kernel.syscall(pid, &SyscallRequest::listen(socket_fd, 8)).result >= 0);
    // A connected stream (client side lives in the same process).
    let client = kernel.syscall(pid, &SyscallRequest::socket());
    assert!(
        kernel
            .syscall(pid, &SyscallRequest::connect(client.result as i32, 4242))
            .result
            >= 0
    );
    assert!(kernel.syscall(pid, &SyscallRequest::accept(socket_fd)).result >= 0);
    assert!(kernel.syscall(pid, &SyscallRequest::new(varan_kernel::Sysno::Pipe, [0; 6])).result >= 0);
    assert!(
        kernel
            .syscall(
                pid,
                &SyscallRequest::new(varan_kernel::Sysno::EpollCreate1, [0; 6])
            )
            .result
            >= 0
    );
    kernel
        .deliver_signal(pid, varan_kernel::signal::Signal::Sigusr1)
        .unwrap();

    let translation: HashMap<i64, i32> = [(3, 3), (9, 5), (12, 7)].into_iter().collect();
    kernel.checkpoint(pid, 12_345, &translation).unwrap()
}

#[test]
fn decode_rejects_truncation_at_every_byte_offset() {
    let checkpoint = rich_checkpoint();
    let bytes = checkpoint.encode();
    assert!(bytes.len() > 200, "checkpoint is rich enough to matter");

    // The full encoding round-trips.
    let decoded = KernelCheckpoint::decode(&bytes).expect("full encoding decodes");
    assert_eq!(decoded.sequence, checkpoint.sequence);
    assert_eq!(decoded.process.fds.len(), checkpoint.process.fds.len());
    assert_eq!(decoded.fd_translation, checkpoint.fd_translation);

    // Every strict prefix must fail with a bounded, reported offset.
    for len in 0..bytes.len() {
        let err = KernelCheckpoint::decode(&bytes[..len]).unwrap_err();
        assert!(
            err.offset <= len,
            "truncation at {len}: reported offset {} past the input",
            err.offset
        );
    }

    // And every single-byte extension must fail too (trailing garbage).
    let mut extended = bytes.clone();
    extended.push(0);
    assert!(KernelCheckpoint::decode(&extended).is_err());
}

#[test]
fn seeded_bit_flips_never_panic_the_decoder() {
    let checkpoint = rich_checkpoint();
    let bytes = checkpoint.encode();
    let mut corruptor = Corruptor::new(0xC0DE);
    for _ in 0..2_000 {
        let mut flipped = bytes.clone();
        corruptor.flip_bit(&mut flipped);
        // Either a clean error or a decode; a length-field flip may also
        // shift framing into something that still parses — what is never
        // allowed is a panic or an out-of-bounds read.
        match KernelCheckpoint::decode(&flipped) {
            Ok(decoded) => {
                let _ = decoded.encode();
            }
            Err(err) => assert!(err.offset <= flipped.len()),
        }
    }
}

#[test]
fn truncated_checkpoints_cannot_be_restored_into_a_process() {
    let checkpoint = rich_checkpoint();
    let bytes = checkpoint.encode();
    let kernel = Kernel::new();
    let target = kernel.spawn_process("restore-target");
    // A decode failure is the only gate restore needs: every truncation is
    // rejected before any kernel state is touched.
    for len in [1, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
        assert!(KernelCheckpoint::decode(&bytes[..len]).is_err());
    }
    // The intact bytes restore fine into a fresh process.
    let decoded = KernelCheckpoint::decode(&bytes).unwrap();
    let fd_map = kernel.restore_process(&decoded, target).unwrap();
    assert!(!fd_map.is_empty());
}
