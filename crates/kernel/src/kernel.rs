//! The virtual kernel: state, process management and the syscall dispatcher.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::cost::{CostModel, Cycles};
use crate::errno::Errno;
use crate::fs::{flags, Node, Vfs};
use crate::net::Network;
use crate::process::{FdEntry, FdObject, Pid, Pipe, ProcessTable};
use crate::signal::Signal;
use crate::sim::{SimAction, SimDriver, SimPoint};
use crate::syscall::{fcntl, whence, SyscallOutcome, SyscallRequest};
use crate::sysno::Sysno;
use crate::time::{ClockSource, VirtualClock};

/// Aggregate kernel statistics, used by the evaluation harness.
#[derive(Debug, Clone, Default)]
pub struct KernelStats {
    /// Number of invocations per system call.
    pub syscalls: HashMap<Sysno, u64>,
    /// Total cycles charged for system-call execution.
    pub total_cycles: Cycles,
    /// Number of processes ever spawned.
    pub processes_spawned: u64,
}

impl KernelStats {
    /// Total number of system calls executed.
    #[must_use]
    pub fn total_syscalls(&self) -> u64 {
        self.syscalls.values().sum()
    }
}

#[derive(Debug)]
struct KernelInner {
    vfs: Mutex<Vfs>,
    net: Network,
    processes: Mutex<ProcessTable>,
    clock: Arc<VirtualClock>,
    cost: CostModel,
    rng: Mutex<SmallRng>,
    stats: Mutex<KernelStats>,
    /// Deterministic-simulation driver; consulted at syscall dispatch and
    /// descriptor transfers when `sim_enabled` is set.
    sim: RwLock<Option<Arc<dyn SimDriver>>>,
    /// Fast-path guard so production executions pay one relaxed load.
    sim_enabled: AtomicBool,
    /// Whether blocking waits should run on virtual time
    /// ([`ClockSource::Simulated`]) instead of the host clock.
    sim_time: AtomicBool,
}

/// The virtual kernel.  Cheap to clone (all clones share the same state).
///
/// See the crate-level documentation for an example.
#[derive(Clone)]
pub struct Kernel {
    inner: Arc<KernelInner>,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("processes", &self.inner.processes.lock().len())
            .field("cycles", &self.inner.clock.cycles())
            .finish()
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Creates a kernel with the default (Figure 4-calibrated) cost model and
    /// a fixed random seed.
    #[must_use]
    pub fn new() -> Self {
        Kernel::with_config(CostModel::default(), 0x5EED_0001)
    }

    /// Creates a kernel with an explicit cost model and random seed.
    #[must_use]
    pub fn with_config(cost: CostModel, seed: u64) -> Self {
        let clock = Arc::new(VirtualClock::new(cost.cycles_per_us));
        Kernel {
            inner: Arc::new(KernelInner {
                vfs: Mutex::new(Vfs::new()),
                net: Network::new(),
                processes: Mutex::new(ProcessTable::new()),
                clock,
                cost,
                rng: Mutex::new(SmallRng::seed_from_u64(seed)),
                stats: Mutex::new(KernelStats::default()),
                sim: RwLock::new(None),
                sim_enabled: AtomicBool::new(false),
                sim_time: AtomicBool::new(false),
            }),
        }
    }

    /// The virtual clock.
    #[must_use]
    pub fn clock(&self) -> &VirtualClock {
        &self.inner.clock
    }

    // ------------------------------------------------------------------
    // Deterministic simulation (see `crate::sim` and the `varan-sim` crate)
    // ------------------------------------------------------------------

    /// Installs a simulation driver: from now on every system-call dispatch
    /// and descriptor transfer consults it (and the monitor layers probe it
    /// at their own boundaries via [`Kernel::sim_probe`]).
    pub fn install_sim_driver(&self, driver: Arc<dyn SimDriver>) {
        *self.inner.sim.write() = Some(driver);
        self.inner.sim_enabled.store(true, Ordering::Release);
    }

    /// Removes the simulation driver; probes return to their no-op fast
    /// path.
    pub fn clear_sim_driver(&self) {
        self.inner.sim_enabled.store(false, Ordering::Release);
        *self.inner.sim.write() = None;
    }

    /// Switches every [`Kernel::wait_clock`] consumer — monitor poll loops,
    /// fleet catch-up waits, upgrade deadlines, endpoint read timeouts — to
    /// virtual time: waits advance the shared [`VirtualClock`] and yield
    /// instead of parking, so simulated runs never burn wall time.
    pub fn enable_sim_time(&self) {
        self.inner.sim_time.store(true, Ordering::Release);
        self.inner.net.set_clock(self.wait_clock());
    }

    /// The time source blocking waits in the layers above should use: wall
    /// time in production, virtual time once [`Kernel::enable_sim_time`]
    /// was called.
    #[must_use]
    pub fn wait_clock(&self) -> ClockSource {
        if self.inner.sim_time.load(Ordering::Acquire) {
            ClockSource::Simulated(Arc::clone(&self.inner.clock))
        } else {
            ClockSource::Wall
        }
    }

    /// Consults the installed simulation driver (no-op without one) and
    /// applies crash/delay actions inline; a returned errno is the caller's
    /// to surface as an operation failure.
    pub fn sim_probe(&self, pid: Pid, point: SimPoint<'_>) -> Option<Errno> {
        if !self.inner.sim_enabled.load(Ordering::Relaxed) {
            return None;
        }
        let action = {
            let driver = self.inner.sim.read();
            match driver.as_ref() {
                Some(driver) => driver.intercept(pid, point),
                None => SimAction::Continue,
            }
        };
        crate::sim::apply_generic(action, &self.inner.clock, "kernel probe")
    }

    /// The cost model in effect.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.cost
    }

    /// The loopback network namespace (used directly by client drivers and
    /// tests; applications go through the `socket`/`connect` system calls).
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.inner.net
    }

    /// Snapshot of the kernel statistics.
    #[must_use]
    pub fn stats(&self) -> KernelStats {
        self.inner.stats.lock().clone()
    }

    /// Charges `cycles` of user-space computation to the machine: advances
    /// the virtual clock and accounts the cycles in the kernel statistics.
    ///
    /// The virtual kernel only knows about system calls; applications use
    /// this to account for the CPU time they spend *between* system calls
    /// (request parsing, hashing, compression), which is what amortises the
    /// monitor's per-call overhead for compute-heavy workloads.
    pub fn charge_compute(&self, cycles: Cycles) {
        self.inner.clock.advance(cycles);
        self.inner.stats.lock().total_cycles += cycles;
    }

    // ------------------------------------------------------------------
    // Process management
    // ------------------------------------------------------------------

    /// Spawns a new process running `name` and returns its pid.
    pub fn spawn_process(&self, name: &str) -> Pid {
        let mut table = self.inner.processes.lock();
        self.inner.stats.lock().processes_spawned += 1;
        table.spawn(name, None)
    }

    /// Forks `parent` (duplicating its descriptor table).
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] if the parent does not exist.
    pub fn fork_process(&self, parent: Pid) -> Result<Pid, Errno> {
        let mut table = self.inner.processes.lock();
        self.inner.stats.lock().processes_spawned += 1;
        table.fork(parent)
    }

    /// Returns `true` while `pid` exists and has not exited.
    #[must_use]
    pub fn process_alive(&self, pid: Pid) -> bool {
        self.inner
            .processes
            .lock()
            .get(pid)
            .map(|process| !process.has_exited())
            .unwrap_or(false)
    }

    /// The exit status of `pid`, if it has exited.
    #[must_use]
    pub fn exit_status(&self, pid: Pid) -> Option<i32> {
        self.inner
            .processes
            .lock()
            .get(pid)
            .ok()
            .and_then(|process| process.exit_status)
    }

    /// Console output captured from `pid`'s writes to stdout/stderr.
    #[must_use]
    pub fn console_output(&self, pid: Pid) -> Vec<u8> {
        self.inner
            .processes
            .lock()
            .get(pid)
            .map(|process| process.console.clone())
            .unwrap_or_default()
    }

    /// Delivers `signal` to `pid`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] if the pid is unknown.
    pub fn deliver_signal(&self, pid: Pid, signal: Signal) -> Result<(), Errno> {
        let mut table = self.inner.processes.lock();
        table.get_mut(pid)?.deliver_signal(signal);
        Ok(())
    }

    /// Takes the oldest pending signal of `pid`, if any.
    #[must_use]
    pub fn take_signal(&self, pid: Pid) -> Option<Signal> {
        let mut table = self.inner.processes.lock();
        table.get_mut(pid).ok()?.pending_signals.pop()
    }

    /// Number of open descriptors in `pid`'s table.
    #[must_use]
    pub fn open_fds(&self, pid: Pid) -> usize {
        self.inner
            .processes
            .lock()
            .get(pid)
            .map(|process| process.fds.len())
            .unwrap_or(0)
    }

    /// Duplicates descriptor `src_fd` of `src_pid` into `dst_pid`'s table —
    /// the kernel-side effect of sending a descriptor over a UNIX domain
    /// socket with `SCM_RIGHTS`, which is how the data channel transfers
    /// descriptors to followers (§3.3.2).
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] / [`Errno::EBADF`] if either process or the
    /// descriptor is missing, and [`Errno::EMFILE`] if the destination table
    /// is full.
    pub fn transfer_fd(&self, src_pid: Pid, src_fd: i32, dst_pid: Pid) -> Result<i32, Errno> {
        if let Some(errno) = self.sim_probe(
            src_pid,
            SimPoint::FdTransfer {
                src: src_pid,
                dst: dst_pid,
                fd: src_fd,
            },
        ) {
            return Err(errno);
        }
        let mut table = self.inner.processes.lock();
        let entry = table.get(src_pid)?.fd(src_fd)?.clone();
        table.get_mut(dst_pid)?.install_fd(entry)
    }

    /// Like [`Kernel::transfer_fd`], but installs the duplicate at the
    /// *same* descriptor number it has in the source process, falling back
    /// to the lowest free number when that slot is taken.  Returns the
    /// number actually used.
    ///
    /// Identity placement is what lets a runtime-attached upgrade candidate
    /// mirror the leader's descriptor table exactly (the same way a
    /// checkpoint restore installs descriptors at identity numbers), so the
    /// numbers its application observed during replay stay valid after it
    /// is promoted to leader.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] / [`Errno::EBADF`] if either process or the
    /// descriptor is missing, and [`Errno::EMFILE`] if the destination table
    /// is full.
    pub fn transfer_fd_identity(
        &self,
        src_pid: Pid,
        src_fd: i32,
        dst_pid: Pid,
    ) -> Result<i32, Errno> {
        if let Some(errno) = self.sim_probe(
            src_pid,
            SimPoint::FdTransfer {
                src: src_pid,
                dst: dst_pid,
                fd: src_fd,
            },
        ) {
            return Err(errno);
        }
        let mut table = self.inner.processes.lock();
        let entry = table.get(src_pid)?.fd(src_fd)?.clone();
        let destination = table.get_mut(dst_pid)?;
        match destination.install_fd_at(src_fd, entry.clone()) {
            Ok(fd) => Ok(fd),
            Err(Errno::EEXIST) => destination.install_fd(entry),
            Err(errno) => Err(errno),
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint support (see `checkpoint.rs`)
    // ------------------------------------------------------------------

    /// Takes a serializable snapshot of process `pid`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] if the pid is unknown.
    pub(crate) fn snapshot_process(
        &self,
        pid: Pid,
    ) -> Result<crate::checkpoint::ProcessSnapshot, Errno> {
        let table = self.inner.processes.lock();
        Ok(table.get(pid)?.snapshot())
    }

    /// Locked access to the process table, for checkpoint restore and tests.
    #[must_use]
    pub fn processes_lock(&self) -> parking_lot::MutexGuard<'_, ProcessTable> {
        self.inner.processes.lock()
    }

    /// A snapshot of every VFS node (path → node), for checkpointing.
    #[must_use]
    pub fn vfs_entries(&self) -> Vec<(String, Node)> {
        self.inner.vfs.lock().entries()
    }

    /// Creates a directory in the VFS (checkpoint restore helper).
    ///
    /// # Errors
    ///
    /// Propagates VFS errors.
    pub fn vfs_mkdir(&self, path: &str) -> Result<(), Errno> {
        match self.inner.vfs.lock().mkdir(path) {
            Ok(()) | Err(Errno::EEXIST) => Ok(()),
            Err(errno) => Err(errno),
        }
    }

    // ------------------------------------------------------------------
    // Filesystem helpers (workload setup and assertions)
    // ------------------------------------------------------------------

    /// Creates (or replaces) a file in the VFS.
    ///
    /// # Errors
    ///
    /// Propagates VFS errors (missing parent directory, path is a directory).
    pub fn populate_file(&self, path: &str, data: Vec<u8>) -> Result<(), Errno> {
        self.inner.vfs.lock().create_file(path, data)
    }

    /// Reads a whole file from the VFS.
    ///
    /// # Errors
    ///
    /// Propagates VFS errors.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, Errno> {
        let vfs = self.inner.vfs.lock();
        let size = vfs.size(path)?;
        let mut rng = self.inner.rng.lock();
        vfs.read(path, 0, size, &mut rng)
    }

    /// Returns `true` if `path` exists in the VFS.
    #[must_use]
    pub fn file_exists(&self, path: &str) -> bool {
        self.inner.vfs.lock().exists(path)
    }

    // ------------------------------------------------------------------
    // The system-call dispatcher
    // ------------------------------------------------------------------

    /// Executes `request` on behalf of `pid` and returns its outcome.
    ///
    /// Unknown processes yield an `ENOENT` outcome rather than panicking, so
    /// a monitor can keep streaming events for versions that have crashed.
    pub fn syscall(&self, pid: Pid, request: &SyscallRequest) -> SyscallOutcome {
        let cost = self
            .inner
            .cost
            .native_cost(request.sysno, request.payload_len());
        // The simulation boundary: an installed driver may crash this
        // thread, stretch time or fail the call before it touches any
        // kernel state (one relaxed load when no driver is installed).
        let outcome = match self.sim_probe(pid, SimPoint::Syscall { request }) {
            Some(errno) => SyscallOutcome::err(request.sysno, errno, cost),
            None => self.dispatch(pid, request, cost),
        };
        self.inner.clock.advance(outcome.cost);
        if let Some(metrics) = varan_obs::hot() {
            metrics.syscalls_executed.add(1);
        }
        let mut stats = self.inner.stats.lock();
        *stats.syscalls.entry(request.sysno).or_insert(0) += 1;
        stats.total_cycles += outcome.cost;
        outcome
    }

    #[allow(clippy::too_many_lines)]
    fn dispatch(&self, pid: Pid, request: &SyscallRequest, cost: Cycles) -> SyscallOutcome {
        let sysno = request.sysno;
        let args = request.args;
        let err = |errno: Errno| SyscallOutcome::err(sysno, errno, cost);
        let ok = |result: i64| SyscallOutcome::ok(sysno, result, cost);

        match sysno {
            // ---- identity and time ------------------------------------
            Sysno::Getpid => ok(i64::from(pid)),
            Sysno::Getuid | Sysno::Geteuid => ok(1000),
            Sysno::Getgid | Sysno::Getegid => ok(1000),
            Sysno::Getcpu => ok(0),
            Sysno::Time => ok(self.inner.clock.unix_seconds() as i64),
            Sysno::Gettimeofday => {
                let (seconds, micros) = self.inner.clock.timeofday();
                let mut data = Vec::with_capacity(16);
                data.extend_from_slice(&seconds.to_le_bytes());
                data.extend_from_slice(&micros.to_le_bytes());
                ok(0).with_data(data)
            }
            Sysno::ClockGettime => {
                let (seconds, nanos) = self.inner.clock.monotonic();
                let mut data = Vec::with_capacity(16);
                data.extend_from_slice(&seconds.to_le_bytes());
                data.extend_from_slice(&nanos.to_le_bytes());
                ok(0).with_data(data)
            }
            Sysno::Nanosleep | Sysno::ClockNanosleep => {
                let micros = args[0];
                let sleep_cycles = self.inner.cost.us_to_cycles(micros as f64);
                SyscallOutcome::ok(sysno, 0, cost + sleep_cycles)
            }
            Sysno::Getrandom => {
                let len = args[1] as usize;
                let mut buffer = vec![0u8; len.min(1 << 20)];
                self.inner.rng.lock().fill_bytes(&mut buffer);
                let result = buffer.len() as i64;
                ok(result).with_data(buffer)
            }

            // ---- process-local memory and signal management -----------
            Sysno::Mmap => {
                let len = (args[1] as usize).max(4096) as u64;
                let mut table = self.inner.processes.lock();
                match table.get_mut(pid) {
                    Ok(process) => {
                        let address = process.next_mmap;
                        process.next_mmap += (len + 0xFFF) & !0xFFF;
                        ok(address as i64)
                    }
                    Err(errno) => err(errno),
                }
            }
            Sysno::Munmap | Sysno::Mprotect | Sysno::Ioctl | Sysno::RtSigaction
            | Sysno::Sigaltstack | Sysno::Fsync | Sysno::EpollCtl | Sysno::Shutdown
            | Sysno::Futex => self.simple_fd_aware(pid, request, cost),
            Sysno::Brk => {
                let mut table = self.inner.processes.lock();
                match table.get_mut(pid) {
                    Ok(process) => {
                        if args[0] != 0 {
                            process.brk = args[0];
                        }
                        ok(process.brk as i64)
                    }
                    Err(errno) => err(errno),
                }
            }
            Sysno::SetTidAddress => ok(i64::from(pid)),

            // ---- processes and threads --------------------------------
            Sysno::Fork => match self.fork_process(pid) {
                Ok(child) => ok(i64::from(child)),
                Err(errno) => err(errno),
            },
            Sysno::Clone => {
                let mut table = self.inner.processes.lock();
                match table.get_mut(pid) {
                    Ok(process) => {
                        let tid = process.spawn_thread();
                        ok(i64::from(tid))
                    }
                    Err(errno) => err(errno),
                }
            }
            Sysno::Exit | Sysno::ExitGroup => {
                let mut table = self.inner.processes.lock();
                match table.get_mut(pid) {
                    Ok(process) => {
                        process.exit_status = Some(args[0] as i32);
                        ok(0)
                    }
                    Err(errno) => err(errno),
                }
            }
            Sysno::Kill => {
                let target = args[0] as Pid;
                let signal = Signal::from_number(args[1] as u8).unwrap_or(Signal::Sigterm);
                match self.deliver_signal(target, signal) {
                    Ok(()) => ok(0),
                    Err(errno) => err(errno),
                }
            }

            // ---- filesystem -------------------------------------------
            Sysno::Open | Sysno::Openat => self.do_open(pid, request, cost),
            Sysno::Close => {
                let fd = args[0] as i32;
                let mut table = self.inner.processes.lock();
                match table.get_mut(pid) {
                    Ok(process) => match process.close_fd(fd) {
                        Ok(entry) => {
                            if let FdObject::Stream(endpoint) = &entry.object {
                                endpoint.close();
                            }
                            if let FdObject::Listener(listener) = &entry.object {
                                listener.close();
                            }
                            ok(0)
                        }
                        Err(errno) => err(errno),
                    },
                    Err(errno) => err(errno),
                }
            }
            Sysno::Stat => {
                let path = match request.path() {
                    Some(path) => path,
                    None => return err(Errno::EINVAL),
                };
                match self.inner.vfs.lock().size(&path) {
                    Ok(size) => ok(size as i64),
                    Err(errno) => err(errno),
                }
            }
            Sysno::Fstat => {
                let fd = args[0] as i32;
                let table = self.inner.processes.lock();
                let entry = match table.get(pid).and_then(|p| p.fd(fd)) {
                    Ok(entry) => entry.clone(),
                    Err(errno) => return err(errno),
                };
                drop(table);
                match entry.object {
                    FdObject::File { path, .. } => match self.inner.vfs.lock().size(&path) {
                        Ok(size) => ok(size as i64),
                        Err(errno) => err(errno),
                    },
                    _ => ok(0),
                }
            }
            Sysno::Lseek => self.do_lseek(pid, request, cost),
            Sysno::Unlink => {
                let path = match request.path() {
                    Some(path) => path,
                    None => return err(Errno::EINVAL),
                };
                match self.inner.vfs.lock().unlink(&path) {
                    Ok(()) => ok(0),
                    Err(errno) => err(errno),
                }
            }
            Sysno::Mkdir => {
                let path = match request.path() {
                    Some(path) => path,
                    None => return err(Errno::EINVAL),
                };
                match self.inner.vfs.lock().mkdir(&path) {
                    Ok(()) => ok(0),
                    Err(errno) => err(errno),
                }
            }
            Sysno::Getcwd => ok(1).with_data(b"/".to_vec()),
            Sysno::Getdents64 => {
                let fd = args[0] as i32;
                let table = self.inner.processes.lock();
                let entry = match table.get(pid).and_then(|p| p.fd(fd)) {
                    Ok(entry) => entry.clone(),
                    Err(errno) => return err(errno),
                };
                drop(table);
                match entry.object {
                    FdObject::File { path, .. } => match self.inner.vfs.lock().list_dir(&path) {
                        Ok(children) => {
                            let listing = children.join("\n").into_bytes();
                            ok(listing.len() as i64).with_data(listing)
                        }
                        Err(errno) => err(errno),
                    },
                    _ => err(Errno::ENOTDIR),
                }
            }

            // ---- descriptor I/O ---------------------------------------
            Sysno::Read | Sysno::Recvfrom => self.do_read(pid, request, cost),
            Sysno::Write | Sysno::Sendto => self.do_write(pid, request, cost),
            Sysno::Fcntl => self.do_fcntl(pid, request, cost),
            Sysno::Pipe => {
                let pipe = Arc::new(Pipe::default());
                let mut table = self.inner.processes.lock();
                match table.get_mut(pid) {
                    Ok(process) => {
                        let read_fd =
                            match process.install_fd(FdEntry::new(FdObject::PipeRead(Arc::clone(&pipe)))) {
                                Ok(fd) => fd,
                                Err(errno) => return err(errno),
                            };
                        let write_fd =
                            match process.install_fd(FdEntry::new(FdObject::PipeWrite(pipe))) {
                                Ok(fd) => fd,
                                Err(errno) => return err(errno),
                            };
                        let mut data = Vec::with_capacity(8);
                        data.extend_from_slice(&read_fd.to_le_bytes());
                        data.extend_from_slice(&write_fd.to_le_bytes());
                        ok(0).with_data(data).with_fd(read_fd)
                    }
                    Err(errno) => err(errno),
                }
            }

            // ---- sockets ----------------------------------------------
            Sysno::Socket => {
                let mut table = self.inner.processes.lock();
                match table.get_mut(pid) {
                    Ok(process) => match process.install_fd(FdEntry::new(FdObject::UnboundSocket { bound_port: None })) {
                        Ok(fd) => ok(i64::from(fd)).with_fd(fd),
                        Err(errno) => err(errno),
                    },
                    Err(errno) => err(errno),
                }
            }
            Sysno::Bind => {
                let fd = args[0] as i32;
                let port = args[1] as u16;
                let mut table = self.inner.processes.lock();
                match table.get_mut(pid) {
                    Ok(process) => match process.fd_mut(fd) {
                        Ok(entry) => {
                            if let FdObject::UnboundSocket { bound_port } = &mut entry.object {
                                *bound_port = Some(port);
                                ok(0)
                            } else {
                                err(Errno::EINVAL)
                            }
                        }
                        Err(errno) => err(errno),
                    },
                    Err(errno) => err(errno),
                }
            }
            Sysno::Listen => self.do_listen(pid, request, cost),
            Sysno::Accept | Sysno::Accept4 => self.do_accept(pid, request, cost),
            Sysno::Connect => self.do_connect(pid, request, cost),
            Sysno::EpollCreate1 => {
                let mut table = self.inner.processes.lock();
                match table.get_mut(pid) {
                    Ok(process) => {
                        match process.install_fd(FdEntry::new(FdObject::Epoll { watched: Vec::new() })) {
                            Ok(fd) => ok(i64::from(fd)).with_fd(fd),
                            Err(errno) => err(errno),
                        }
                    }
                    Err(errno) => err(errno),
                }
            }
            Sysno::EpollWait => self.do_epoll_wait(pid, request, cost),
        }
    }

    /// Trivially successful calls that only need the descriptor to exist.
    fn simple_fd_aware(
        &self,
        pid: Pid,
        request: &SyscallRequest,
        cost: Cycles,
    ) -> SyscallOutcome {
        let sysno = request.sysno;
        // futex/mprotect/... either take no fd or we accept any argument.
        match sysno {
            Sysno::Shutdown | Sysno::Fsync | Sysno::Ioctl | Sysno::EpollCtl => {
                let fd = request.args[0] as i32;
                let mut table = self.inner.processes.lock();
                let process = match table.get_mut(pid) {
                    Ok(process) => process,
                    Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
                };
                match process.fd_mut(fd) {
                    Ok(entry) => {
                        if sysno == Sysno::EpollCtl {
                            if let FdObject::Epoll { watched } = &mut entry.object {
                                watched.push(request.args[2] as i32);
                            }
                        }
                        if sysno == Sysno::Shutdown {
                            if let FdObject::Stream(endpoint) = &entry.object {
                                endpoint.close();
                            }
                        }
                        SyscallOutcome::ok(sysno, 0, cost)
                    }
                    Err(errno) => SyscallOutcome::err(sysno, errno, cost),
                }
            }
            _ => SyscallOutcome::ok(sysno, 0, cost),
        }
    }

    fn do_open(&self, pid: Pid, request: &SyscallRequest, cost: Cycles) -> SyscallOutcome {
        let sysno = request.sysno;
        let path = match request.path() {
            Some(path) => path,
            None => return SyscallOutcome::err(sysno, Errno::EINVAL, cost),
        };
        let open_flags = request.args[1];
        {
            let mut vfs = self.inner.vfs.lock();
            match vfs.lookup(&path) {
                Some(Node::Directory) if open_flags & flags::O_WRONLY != 0 => {
                    return SyscallOutcome::err(sysno, Errno::EISDIR, cost)
                }
                Some(_) => {
                    if open_flags & flags::O_TRUNC != 0 {
                        let _ = vfs.truncate(&path);
                    }
                }
                None => {
                    if open_flags & flags::O_CREAT != 0 {
                        if let Err(errno) = vfs.create_file(&path, Vec::new()) {
                            return SyscallOutcome::err(sysno, errno, cost);
                        }
                    } else {
                        return SyscallOutcome::err(sysno, Errno::ENOENT, cost);
                    }
                }
            }
        }
        let entry = FdEntry::new(FdObject::File {
            path,
            offset: 0,
            append: open_flags & flags::O_APPEND != 0,
        });
        let mut table = self.inner.processes.lock();
        match table.get_mut(pid) {
            Ok(process) => match process.install_fd(entry) {
                Ok(fd) => SyscallOutcome::ok(sysno, i64::from(fd), cost).with_fd(fd),
                Err(errno) => SyscallOutcome::err(sysno, errno, cost),
            },
            Err(errno) => SyscallOutcome::err(sysno, errno, cost),
        }
    }

    fn do_lseek(&self, pid: Pid, request: &SyscallRequest, cost: Cycles) -> SyscallOutcome {
        let sysno = request.sysno;
        let fd = request.args[0] as i32;
        let offset = request.args[1] as i64;
        let mode = request.args[2];
        let mut table = self.inner.processes.lock();
        let process = match table.get_mut(pid) {
            Ok(process) => process,
            Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
        };
        let entry = match process.fd_mut(fd) {
            Ok(entry) => entry,
            Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
        };
        if let FdObject::File {
            path,
            offset: current,
            ..
        } = &mut entry.object
        {
            let size = self.inner.vfs.lock().size(path).unwrap_or(0) as i64;
            let base = match mode {
                whence::SEEK_SET => 0,
                whence::SEEK_CUR => *current as i64,
                whence::SEEK_END => size,
                _ => return SyscallOutcome::err(sysno, Errno::EINVAL, cost),
            };
            let target = base + offset;
            if target < 0 {
                return SyscallOutcome::err(sysno, Errno::EINVAL, cost);
            }
            *current = target as u64;
            SyscallOutcome::ok(sysno, target, cost)
        } else {
            SyscallOutcome::err(sysno, Errno::EINVAL, cost)
        }
    }

    fn do_fcntl(&self, pid: Pid, request: &SyscallRequest, cost: Cycles) -> SyscallOutcome {
        let sysno = request.sysno;
        let fd = request.args[0] as i32;
        let cmd = request.args[1];
        let arg = request.args[2];
        let mut table = self.inner.processes.lock();
        let process = match table.get_mut(pid) {
            Ok(process) => process,
            Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
        };
        let entry = match process.fd_mut(fd) {
            Ok(entry) => entry,
            Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
        };
        match cmd {
            fcntl::F_GETFD => SyscallOutcome::ok(sysno, i64::from(entry.cloexec), cost),
            fcntl::F_SETFD => {
                entry.cloexec = arg & fcntl::FD_CLOEXEC != 0;
                SyscallOutcome::ok(sysno, 0, cost)
            }
            fcntl::F_GETFL => {
                SyscallOutcome::ok(sysno, if entry.nonblocking { flags::O_NONBLOCK as i64 } else { 0 }, cost)
            }
            fcntl::F_SETFL => {
                entry.nonblocking = arg & flags::O_NONBLOCK != 0;
                SyscallOutcome::ok(sysno, 0, cost)
            }
            _ => SyscallOutcome::err(sysno, Errno::EINVAL, cost),
        }
    }

    fn do_listen(&self, pid: Pid, request: &SyscallRequest, cost: Cycles) -> SyscallOutcome {
        let sysno = request.sysno;
        let fd = request.args[0] as i32;
        let backlog = request.args[1] as usize;
        let mut table = self.inner.processes.lock();
        let process = match table.get_mut(pid) {
            Ok(process) => process,
            Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
        };
        let entry = match process.fd_mut(fd) {
            Ok(entry) => entry,
            Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
        };
        // The port was recorded by bind(); listening on an unbound socket is
        // an error, as it would be on Linux (no ephemeral listeners here).
        let port = match entry.object {
            FdObject::UnboundSocket {
                bound_port: Some(port),
            } => port,
            FdObject::UnboundSocket { bound_port: None } => {
                return SyscallOutcome::err(sysno, Errno::EINVAL, cost)
            }
            _ => return SyscallOutcome::err(sysno, Errno::EINVAL, cost),
        };
        match self.inner.net.listen(port, backlog.max(16)) {
            Ok(listener) => {
                entry.object = FdObject::Listener(listener);
                // Flag the upgraded descriptor for transfer: monitors that
                // mirrored the plain socket created by socket() must receive
                // the listener object too, or a promoted follower would be
                // left accepting on a stale unbound-socket clone.
                SyscallOutcome::ok(sysno, 0, cost).with_fd(fd)
            }
            Err(errno) => SyscallOutcome::err(sysno, errno, cost),
        }
    }

    fn do_accept(&self, pid: Pid, request: &SyscallRequest, cost: Cycles) -> SyscallOutcome {
        let sysno = request.sysno;
        let fd = request.args[0] as i32;
        let (listener, nonblocking) = {
            let table = self.inner.processes.lock();
            let process = match table.get(pid) {
                Ok(process) => process,
                Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
            };
            match process.fd(fd) {
                Ok(entry) => match &entry.object {
                    FdObject::Listener(listener) => (Arc::clone(listener), entry.nonblocking),
                    _ => return SyscallOutcome::err(sysno, Errno::EINVAL, cost),
                },
                Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
            }
        };
        match listener.accept(!nonblocking) {
            Ok(endpoint) => {
                let mut table = self.inner.processes.lock();
                match table.get_mut(pid) {
                    Ok(process) => match process.install_fd(FdEntry::new(FdObject::Stream(endpoint))) {
                        Ok(new_fd) => SyscallOutcome::ok(sysno, i64::from(new_fd), cost).with_fd(new_fd),
                        Err(errno) => SyscallOutcome::err(sysno, errno, cost),
                    },
                    Err(errno) => SyscallOutcome::err(sysno, errno, cost),
                }
            }
            Err(errno) => SyscallOutcome::err(sysno, errno, cost),
        }
    }

    fn do_connect(&self, pid: Pid, request: &SyscallRequest, cost: Cycles) -> SyscallOutcome {
        let sysno = request.sysno;
        let fd = request.args[0] as i32;
        let port = request.args[1] as u16;
        match self.inner.net.connect(port) {
            Ok(endpoint) => {
                let mut table = self.inner.processes.lock();
                let process = match table.get_mut(pid) {
                    Ok(process) => process,
                    Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
                };
                match process.fd_mut(fd) {
                    Ok(entry) => {
                        entry.object = FdObject::Stream(endpoint);
                        SyscallOutcome::ok(sysno, 0, cost)
                    }
                    Err(errno) => SyscallOutcome::err(sysno, errno, cost),
                }
            }
            Err(errno) => SyscallOutcome::err(sysno, errno, cost),
        }
    }

    fn do_read(&self, pid: Pid, request: &SyscallRequest, cost: Cycles) -> SyscallOutcome {
        let sysno = request.sysno;
        let fd = request.args[0] as i32;
        let len = request.args[2] as usize;
        let (object, nonblocking) = {
            let table = self.inner.processes.lock();
            let process = match table.get(pid) {
                Ok(process) => process,
                Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
            };
            match process.fd(fd) {
                Ok(entry) => (entry.object.clone(), entry.nonblocking),
                Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
            }
        };
        match object {
            FdObject::Console => SyscallOutcome::ok(sysno, 0, cost),
            FdObject::File { path, offset, .. } => {
                let data = {
                    let vfs = self.inner.vfs.lock();
                    let mut rng = self.inner.rng.lock();
                    vfs.read(&path, offset as usize, len, &mut rng)
                };
                match data {
                    Ok(data) => {
                        let read = data.len();
                        // Devices do not advance the offset; files do.
                        let mut table = self.inner.processes.lock();
                        if let Ok(process) = table.get_mut(pid) {
                            if let Ok(entry) = process.fd_mut(fd) {
                                if let FdObject::File { offset, .. } = &mut entry.object {
                                    *offset += read as u64;
                                }
                            }
                        }
                        // Cost is charged for the requested transfer size, as
                        // in the Figure 4 calibration (read of 512 bytes from
                        // /dev/null costs 1486 cycles even though it hits EOF).
                        let cost = self.inner.cost.native_cost(sysno, len);
                        SyscallOutcome::ok(sysno, read as i64, cost).with_data(data)
                    }
                    Err(errno) => SyscallOutcome::err(sysno, errno, cost),
                }
            }
            FdObject::Stream(endpoint) => {
                // args[1] carries an optional deadline in microseconds
                // (SyscallRequest::read_timeout); 0 keeps the historical
                // block-forever semantics.  Timed reads let servers bound
                // how long a slow client can pin a worker without switching
                // the fd to nonblocking polling, which would distort the
                // syscall footprint that followers replay.
                let timeout_micros = request.args[1];
                let result = if nonblocking || timeout_micros == 0 {
                    endpoint.read(len, !nonblocking)
                } else {
                    endpoint.read_timeout(len, Duration::from_micros(timeout_micros))
                };
                match result {
                    Ok(data) => {
                        let cost = self.inner.cost.native_cost(sysno, data.len());
                        SyscallOutcome::ok(sysno, data.len() as i64, cost).with_data(data)
                    }
                    Err(errno) => SyscallOutcome::err(sysno, errno, cost),
                }
            }
            FdObject::PipeRead(pipe) => {
                let data = pipe.drain(len);
                SyscallOutcome::ok(sysno, data.len() as i64, cost).with_data(data)
            }
            FdObject::PipeWrite(_) | FdObject::Listener(_) | FdObject::UnboundSocket { .. }
            | FdObject::Epoll { .. } => SyscallOutcome::err(sysno, Errno::EINVAL, cost),
        }
    }

    fn do_write(&self, pid: Pid, request: &SyscallRequest, cost: Cycles) -> SyscallOutcome {
        let sysno = request.sysno;
        let fd = request.args[0] as i32;
        let payload = request.data.clone().unwrap_or_default();
        let object = {
            let table = self.inner.processes.lock();
            let process = match table.get(pid) {
                Ok(process) => process,
                Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
            };
            match process.fd(fd) {
                Ok(entry) => entry.object.clone(),
                Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
            }
        };
        match object {
            FdObject::Console => {
                let mut table = self.inner.processes.lock();
                if let Ok(process) = table.get_mut(pid) {
                    process.console.extend_from_slice(&payload);
                }
                SyscallOutcome::ok(sysno, payload.len() as i64, cost)
            }
            FdObject::File {
                path,
                offset,
                append,
            } => {
                let written = self
                    .inner
                    .vfs
                    .lock()
                    .write(&path, offset as usize, &payload, append);
                match written {
                    Ok(written) => {
                        let mut table = self.inner.processes.lock();
                        if let Ok(process) = table.get_mut(pid) {
                            if let Ok(entry) = process.fd_mut(fd) {
                                if let FdObject::File { offset, .. } = &mut entry.object {
                                    *offset += written as u64;
                                }
                            }
                        }
                        SyscallOutcome::ok(sysno, written as i64, cost)
                    }
                    Err(errno) => SyscallOutcome::err(sysno, errno, cost),
                }
            }
            FdObject::Stream(endpoint) => match endpoint.write(&payload) {
                Ok(written) => SyscallOutcome::ok(sysno, written as i64, cost),
                Err(errno) => SyscallOutcome::err(sysno, errno, cost),
            },
            FdObject::PipeWrite(pipe) => {
                pipe.push(&payload);
                SyscallOutcome::ok(sysno, payload.len() as i64, cost)
            }
            FdObject::PipeRead(_) | FdObject::Listener(_) | FdObject::UnboundSocket { .. }
            | FdObject::Epoll { .. } => SyscallOutcome::err(sysno, Errno::EINVAL, cost),
        }
    }

    fn do_epoll_wait(&self, pid: Pid, request: &SyscallRequest, cost: Cycles) -> SyscallOutcome {
        let sysno = request.sysno;
        let fd = request.args[0] as i32;
        let watched = {
            let table = self.inner.processes.lock();
            let process = match table.get(pid) {
                Ok(process) => process,
                Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
            };
            match process.fd(fd) {
                Ok(entry) => match &entry.object {
                    FdObject::Epoll { watched } => watched.clone(),
                    _ => return SyscallOutcome::err(sysno, Errno::EINVAL, cost),
                },
                Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
            }
        };
        let table = self.inner.processes.lock();
        let process = match table.get(pid) {
            Ok(process) => process,
            Err(errno) => return SyscallOutcome::err(sysno, errno, cost),
        };
        let mut ready = Vec::new();
        for watched_fd in watched {
            if let Ok(entry) = process.fd(watched_fd) {
                let is_ready = match &entry.object {
                    FdObject::Stream(endpoint) => {
                        endpoint.readable_bytes() > 0 || endpoint.peer_closed()
                    }
                    FdObject::Listener(listener) => listener.pending_connections() > 0,
                    FdObject::PipeRead(pipe) => !pipe.is_empty(),
                    _ => false,
                };
                if is_ready {
                    ready.extend_from_slice(&watched_fd.to_le_bytes());
                }
            }
        }
        let count = (ready.len() / 4) as i64;
        SyscallOutcome::ok(sysno, count, cost).with_data(ready)
    }
}
