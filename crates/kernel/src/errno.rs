//! Error numbers returned by the virtual kernel.
//!
//! System calls report failure the Linux way: a negative return value whose
//! magnitude is the errno.  [`Errno`] enumerates the values the virtual
//! kernel uses, plus `ERESTARTSYS`, which the monitor's system-call entry
//! point recognises when restarting interrupted calls during transparent
//! failover (§3.2, §5.1 of the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Error numbers used by the virtual kernel (Linux values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(i32)]
pub enum Errno {
    /// Operation not permitted.
    EPERM = 1,
    /// No such file or directory.
    ENOENT = 2,
    /// Interrupted system call.
    EINTR = 4,
    /// Bad file descriptor.
    EBADF = 9,
    /// Try again (non-blocking operation would block).
    EAGAIN = 11,
    /// Out of memory.
    ENOMEM = 12,
    /// Permission denied.
    EACCES = 13,
    /// File exists.
    EEXIST = 17,
    /// Not a directory.
    ENOTDIR = 20,
    /// Is a directory.
    EISDIR = 21,
    /// Invalid argument.
    EINVAL = 22,
    /// Too many open files.
    EMFILE = 24,
    /// No space left on device.
    ENOSPC = 28,
    /// Broken pipe.
    EPIPE = 32,
    /// Function not implemented.
    ENOSYS = 38,
    /// Address already in use.
    EADDRINUSE = 98,
    /// Connection reset by peer.
    ECONNRESET = 104,
    /// Transport endpoint is not connected.
    ENOTCONN = 107,
    /// Connection refused.
    ECONNREFUSED = 111,
    /// Restart the interrupted system call (kernel-internal).
    ERESTARTSYS = 512,
}

impl Errno {
    /// The negative return value carrying this errno.
    #[must_use]
    pub fn as_ret(self) -> i64 {
        -(self as i32 as i64)
    }

    /// Decodes a negative system-call result into an errno, if it is one.
    #[must_use]
    pub fn from_ret(value: i64) -> Option<Errno> {
        if value >= 0 {
            return None;
        }
        let code = (-value) as i32;
        Some(match code {
            1 => Errno::EPERM,
            2 => Errno::ENOENT,
            4 => Errno::EINTR,
            9 => Errno::EBADF,
            11 => Errno::EAGAIN,
            12 => Errno::ENOMEM,
            13 => Errno::EACCES,
            17 => Errno::EEXIST,
            20 => Errno::ENOTDIR,
            21 => Errno::EISDIR,
            22 => Errno::EINVAL,
            24 => Errno::EMFILE,
            28 => Errno::ENOSPC,
            32 => Errno::EPIPE,
            38 => Errno::ENOSYS,
            98 => Errno::EADDRINUSE,
            104 => Errno::ECONNRESET,
            107 => Errno::ENOTCONN,
            111 => Errno::ECONNREFUSED,
            512 => Errno::ERESTARTSYS,
            _ => return None,
        })
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ret_encoding_round_trips() {
        for errno in [
            Errno::EPERM,
            Errno::ENOENT,
            Errno::EBADF,
            Errno::EAGAIN,
            Errno::EINVAL,
            Errno::EPIPE,
            Errno::ECONNREFUSED,
            Errno::ERESTARTSYS,
        ] {
            let ret = errno.as_ret();
            assert!(ret < 0);
            assert_eq!(Errno::from_ret(ret), Some(errno));
        }
    }

    #[test]
    fn positive_values_are_not_errnos() {
        assert_eq!(Errno::from_ret(0), None);
        assert_eq!(Errno::from_ret(42), None);
        assert_eq!(Errno::from_ret(-99_999), None);
    }

    #[test]
    fn linux_numbering() {
        assert_eq!(Errno::ENOENT.as_ret(), -2);
        assert_eq!(Errno::EBADF.as_ret(), -9);
        assert_eq!(Errno::ERESTARTSYS.as_ret(), -512);
    }
}
