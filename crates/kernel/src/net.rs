//! The loopback network: listeners, connections and byte streams.
//!
//! The paper evaluates VARAN on C10k network servers driven by client load
//! generators over a 1 Gb link.  In this reproduction both sides live in one
//! process: servers and clients are threads, and this module provides the
//! TCP-like substrate between them — port-addressed listeners with accept
//! queues and bidirectional, flow-controlled byte streams.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::errno::Errno;
use crate::time::ClockSource;

/// Maximum number of bytes buffered in each direction of a connection before
/// writers block (a crude model of TCP flow control).
pub const STREAM_WINDOW: usize = 1 << 20;

#[derive(Debug, Default)]
struct StreamBuf {
    data: VecDeque<u8>,
    closed: bool,
}

#[derive(Debug)]
struct StreamHalf {
    buf: Mutex<StreamBuf>,
    readable: Condvar,
    writable: Condvar,
}

impl StreamHalf {
    fn new() -> Self {
        StreamHalf {
            buf: Mutex::new(StreamBuf::default()),
            readable: Condvar::new(),
            writable: Condvar::new(),
        }
    }

    fn write(&self, data: &[u8]) -> Result<usize, Errno> {
        let mut buf = self.buf.lock();
        if buf.closed {
            return Err(Errno::EPIPE);
        }
        while buf.data.len() + data.len() > STREAM_WINDOW {
            self.writable.wait(&mut buf);
            if buf.closed {
                return Err(Errno::EPIPE);
            }
        }
        buf.data.extend(data.iter().copied());
        self.readable.notify_all();
        Ok(data.len())
    }

    fn read(&self, len: usize, blocking: bool) -> Result<Vec<u8>, Errno> {
        self.read_impl(len, blocking, None)
    }

    fn read_deadline(&self, len: usize, timeout: Duration) -> Result<Vec<u8>, Errno> {
        self.read_impl(len, true, Some(std::time::Instant::now() + timeout))
    }

    fn read_impl(
        &self,
        len: usize,
        blocking: bool,
        deadline: Option<std::time::Instant>,
    ) -> Result<Vec<u8>, Errno> {
        let mut buf = self.buf.lock();
        loop {
            if !buf.data.is_empty() {
                let take = len.min(buf.data.len());
                let out: Vec<u8> = buf.data.drain(..take).collect();
                self.writable.notify_all();
                return Ok(out);
            }
            if buf.closed {
                return Ok(Vec::new()); // EOF
            }
            if !blocking {
                return Err(Errno::EAGAIN);
            }
            match deadline {
                None => self.readable.wait(&mut buf),
                Some(deadline) => {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return Err(Errno::EAGAIN);
                    }
                    self.readable.wait_for(&mut buf, deadline - now);
                }
            }
        }
    }

    /// Briefly parks on the readable condvar (bounded by `timeout`) when no
    /// data is buffered — the simulated read-timeout loop's anti-spin.
    fn wait_readable(&self, timeout: Duration) {
        let mut buf = self.buf.lock();
        if buf.data.is_empty() && !buf.closed {
            self.readable.wait_for(&mut buf, timeout);
        }
    }

    fn close(&self) {
        let mut buf = self.buf.lock();
        buf.closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }

    fn pending(&self) -> usize {
        self.buf.lock().data.len()
    }

    fn is_closed(&self) -> bool {
        self.buf.lock().closed
    }
}

/// A bidirectional connection between a client and a server endpoint.
#[derive(Debug)]
pub struct Connection {
    id: u64,
    client_to_server: StreamHalf,
    server_to_client: StreamHalf,
    /// The time source deadline reads measure against: wall time in
    /// production, the kernel's virtual clock under simulation (stamped at
    /// `connect` time from [`Network::set_clock`]).
    clock: ClockSource,
}

/// Which side of a [`Connection`] an [`Endpoint`] speaks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The side that called `connect`.
    Client,
    /// The side returned by `accept`.
    Server,
}

/// One side of an established connection; behaves like a connected socket.
#[derive(Clone)]
pub struct Endpoint {
    conn: Arc<Connection>,
    side: Side,
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("conn", &self.conn.id)
            .field("side", &self.side)
            .finish()
    }
}

impl Endpoint {
    /// Creates an endpoint whose connection is already closed on both sides:
    /// reads see end-of-stream, writes see `EPIPE`.  This is what a stream
    /// descriptor restores to from a kernel checkpoint — the live peer of a
    /// serialized connection cannot be resurrected, so the restored process
    /// observes exactly what it would had the peer vanished.
    #[must_use]
    pub fn disconnected() -> Endpoint {
        let connection = Connection {
            id: u64::MAX,
            client_to_server: StreamHalf::new(),
            server_to_client: StreamHalf::new(),
            clock: ClockSource::Wall,
        };
        connection.client_to_server.close();
        connection.server_to_client.close();
        Endpoint {
            conn: Arc::new(connection),
            side: Side::Client,
        }
    }

    /// Unique identifier of the underlying connection (same on both sides).
    #[must_use]
    pub fn connection_id(&self) -> u64 {
        self.conn.id
    }

    /// Which side this endpoint speaks for.
    #[must_use]
    pub fn side(&self) -> Side {
        self.side
    }

    fn outgoing(&self) -> &StreamHalf {
        match self.side {
            Side::Client => &self.conn.client_to_server,
            Side::Server => &self.conn.server_to_client,
        }
    }

    fn incoming(&self) -> &StreamHalf {
        match self.side {
            Side::Client => &self.conn.server_to_client,
            Side::Server => &self.conn.client_to_server,
        }
    }

    /// Sends `data` to the peer, blocking if the window is full.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::EPIPE`] if the peer has closed its receiving side.
    pub fn write(&self, data: &[u8]) -> Result<usize, Errno> {
        self.outgoing().write(data)
    }

    /// Receives up to `len` bytes.  An empty vector means end-of-stream.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::EAGAIN`] if `blocking` is false and no data is ready.
    pub fn read(&self, len: usize, blocking: bool) -> Result<Vec<u8>, Errno> {
        self.incoming().read(len, blocking)
    }

    /// Like a blocking [`Endpoint::read`], but gives up after `timeout`.
    ///
    /// The deadline is computed against the connection's [`ClockSource`]:
    /// under a wall clock it wakes precisely on data arrival or peer close
    /// (condvar, no polling); under a simulated clock the wait advances
    /// virtual time in quanta instead of parking, so a simulated client
    /// facing a dead peer exhausts a 10-second timeout in microseconds of
    /// wall time.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::EAGAIN`] if no data arrived within the timeout —
    /// the escape hatch for clients of a peer that died without closing
    /// its connections.
    pub fn read_timeout(&self, len: usize, timeout: Duration) -> Result<Vec<u8>, Errno> {
        match &self.conn.clock {
            ClockSource::Wall => self.incoming().read_deadline(len, timeout),
            simulated => {
                let deadline = simulated.deadline(timeout);
                let quantum = (timeout / 64).max(Duration::from_micros(50));
                loop {
                    match self.incoming().read(len, false) {
                        Err(Errno::EAGAIN) => {
                            if deadline.expired() {
                                return Err(Errno::EAGAIN);
                            }
                            // A short real parking bound keeps the loop off
                            // the CPU while the peer works; the virtual
                            // sleep is what actually consumes the timeout.
                            self.incoming().wait_readable(Duration::from_micros(200));
                            simulated.sleep(quantum);
                        }
                        other => return other,
                    }
                }
            }
        }
    }

    /// Number of bytes waiting to be read.
    #[must_use]
    pub fn readable_bytes(&self) -> usize {
        self.incoming().pending()
    }

    /// Closes this endpoint's sending direction (the peer sees EOF) and marks
    /// its receiving direction closed too.
    pub fn close(&self) {
        self.outgoing().close();
        self.incoming().close();
    }

    /// Returns `true` if the peer can no longer send to us.
    #[must_use]
    pub fn peer_closed(&self) -> bool {
        self.incoming().is_closed()
    }
}

/// A listening socket bound to a port.
#[derive(Debug)]
pub struct Listener {
    port: u16,
    backlog: usize,
    queue: Mutex<VecDeque<Endpoint>>,
    pending: Condvar,
    closed: AtomicBool,
    accepted: AtomicU64,
}

impl Listener {
    /// The port this listener is bound to.
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The backlog this listener was created with.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.backlog
    }

    /// Total connections accepted so far.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Accepts the next pending connection, blocking until one arrives or the
    /// listener is closed.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::EINVAL`] once the listener has been closed and its
    /// queue drained, and [`Errno::EAGAIN`] in non-blocking mode with an
    /// empty queue.
    pub fn accept(&self, blocking: bool) -> Result<Endpoint, Errno> {
        let mut queue = self.queue.lock();
        loop {
            if let Some(endpoint) = queue.pop_front() {
                self.accepted.fetch_add(1, Ordering::Relaxed);
                return Ok(endpoint);
            }
            if self.closed.load(Ordering::Acquire) {
                return Err(Errno::EINVAL);
            }
            if !blocking {
                return Err(Errno::EAGAIN);
            }
            self.pending.wait(&mut queue);
        }
    }

    /// Like [`Listener::accept`] but gives up after `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::EAGAIN`] on timeout and [`Errno::EINVAL`] if closed.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<Endpoint, Errno> {
        let mut queue = self.queue.lock();
        loop {
            if let Some(endpoint) = queue.pop_front() {
                self.accepted.fetch_add(1, Ordering::Relaxed);
                return Ok(endpoint);
            }
            if self.closed.load(Ordering::Acquire) {
                return Err(Errno::EINVAL);
            }
            if self.pending.wait_for(&mut queue, timeout).timed_out() && queue.is_empty() {
                return Err(Errno::EAGAIN);
            }
        }
    }

    /// Number of connections waiting to be accepted.
    #[must_use]
    pub fn pending_connections(&self) -> usize {
        self.queue.lock().len()
    }

    /// Stops accepting new connections and wakes blocked acceptors.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.pending.notify_all();
    }

    /// Returns `true` once the listener has been closed.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

/// The machine-wide network namespace: the set of bound ports.
#[derive(Debug, Default)]
pub struct Network {
    listeners: Mutex<HashMap<u16, Arc<Listener>>>,
    next_connection: AtomicU64,
    clock: Mutex<ClockSource>,
}

impl Network {
    /// Creates an empty network namespace.
    #[must_use]
    pub fn new() -> Self {
        Network::default()
    }

    /// Sets the time source stamped into new connections (their
    /// [`Endpoint::read_timeout`] deadlines measure against it).  Called by
    /// [`crate::Kernel::enable_sim_time`]; existing connections keep the
    /// source they were created with.
    pub fn set_clock(&self, clock: ClockSource) {
        *self.clock.lock() = clock;
    }

    /// Binds a listener to `port`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::EADDRINUSE`] if the port already has a live listener.
    pub fn listen(&self, port: u16, backlog: usize) -> Result<Arc<Listener>, Errno> {
        let mut listeners = self.listeners.lock();
        if let Some(existing) = listeners.get(&port) {
            if !existing.is_closed() {
                return Err(Errno::EADDRINUSE);
            }
        }
        let listener = Arc::new(Listener {
            port,
            backlog: backlog.max(1),
            queue: Mutex::new(VecDeque::new()),
            pending: Condvar::new(),
            closed: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
        });
        listeners.insert(port, Arc::clone(&listener));
        Ok(listener)
    }

    /// Looks up the live listener bound to `port`.
    #[must_use]
    pub fn listener(&self, port: u16) -> Option<Arc<Listener>> {
        self.listeners
            .lock()
            .get(&port)
            .filter(|listener| !listener.is_closed())
            .cloned()
    }

    /// Establishes a connection to the listener on `port` and returns the
    /// client-side endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ECONNREFUSED`] if no live listener is bound to the
    /// port or its backlog is full.
    pub fn connect(&self, port: u16) -> Result<Endpoint, Errno> {
        let listener = self.listener(port).ok_or(Errno::ECONNREFUSED)?;
        let id = self.next_connection.fetch_add(1, Ordering::Relaxed);
        let connection = Arc::new(Connection {
            id,
            client_to_server: StreamHalf::new(),
            server_to_client: StreamHalf::new(),
            clock: self.clock.lock().clone(),
        });
        let server_end = Endpoint {
            conn: Arc::clone(&connection),
            side: Side::Server,
        };
        let client_end = Endpoint {
            conn: connection,
            side: Side::Client,
        };
        {
            let mut queue = listener.queue.lock();
            if listener.is_closed() {
                return Err(Errno::ECONNREFUSED);
            }
            if queue.len() >= listener.backlog {
                return Err(Errno::ECONNREFUSED);
            }
            queue.push_back(server_end);
            listener.pending.notify_one();
        }
        Ok(client_end)
    }

    /// Snapshot of the net table for checkpointing: every live listener's
    /// `(port, backlog)`, sorted by port.
    #[must_use]
    pub fn live_listeners_snapshot(&self) -> Vec<(u16, usize)> {
        let mut ports: Vec<(u16, usize)> = self
            .listeners
            .lock()
            .values()
            .filter(|listener| !listener.is_closed())
            .map(|listener| (listener.port(), listener.backlog()))
            .collect();
        ports.sort_unstable();
        ports
    }

    /// Number of ports with live listeners.
    #[must_use]
    pub fn live_listeners(&self) -> usize {
        self.listeners
            .lock()
            .values()
            .filter(|listener| !listener.is_closed())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_requires_a_listener() {
        let net = Network::new();
        assert_eq!(net.connect(8080).unwrap_err(), Errno::ECONNREFUSED);
    }

    #[test]
    fn bytes_flow_both_ways() {
        let net = Network::new();
        let listener = net.listen(8080, 16).unwrap();
        let client = net.connect(8080).unwrap();
        let server = listener.accept(true).unwrap();

        client.write(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let request = server.read(1024, true).unwrap();
        assert_eq!(request, b"GET / HTTP/1.1\r\n\r\n");

        server.write(b"HTTP/1.1 200 OK\r\n\r\n").unwrap();
        let response = client.read(1024, true).unwrap();
        assert!(response.starts_with(b"HTTP/1.1 200"));
        assert_eq!(listener.accepted(), 1);
        assert_eq!(client.connection_id(), server.connection_id());
        assert_ne!(client.side(), server.side());
    }

    #[test]
    fn ports_cannot_be_double_bound() {
        let net = Network::new();
        let first = net.listen(9000, 4).unwrap();
        assert_eq!(net.listen(9000, 4).unwrap_err(), Errno::EADDRINUSE);
        first.close();
        // After closing, the port can be reused.
        assert!(net.listen(9000, 4).is_ok());
    }

    #[test]
    fn close_propagates_eof_and_epipe() {
        let net = Network::new();
        let listener = net.listen(8081, 4).unwrap();
        let client = net.connect(8081).unwrap();
        let server = listener.accept(true).unwrap();
        client.close();
        assert!(server.read(16, true).unwrap().is_empty(), "EOF after close");
        assert_eq!(server.write(b"late").unwrap_err(), Errno::EPIPE);
        assert!(server.peer_closed());
    }

    #[test]
    fn nonblocking_read_and_accept_return_eagain() {
        let net = Network::new();
        let listener = net.listen(8082, 4).unwrap();
        assert_eq!(listener.accept(false).unwrap_err(), Errno::EAGAIN);
        assert_eq!(
            listener.accept_timeout(Duration::from_millis(5)).unwrap_err(),
            Errno::EAGAIN
        );
        let client = net.connect(8082).unwrap();
        let server = listener.accept(true).unwrap();
        assert_eq!(server.read(8, false).unwrap_err(), Errno::EAGAIN);
        client.write(b"x").unwrap();
        assert_eq!(server.readable_bytes(), 1);
        assert_eq!(server.read(8, false).unwrap(), b"x");
    }

    #[test]
    fn backlog_limits_pending_connections() {
        let net = Network::new();
        let listener = net.listen(8083, 2).unwrap();
        let _a = net.connect(8083).unwrap();
        let _b = net.connect(8083).unwrap();
        assert_eq!(listener.pending_connections(), 2);
        assert_eq!(net.connect(8083).unwrap_err(), Errno::ECONNREFUSED);
    }

    #[test]
    fn closed_listener_rejects_connect_and_accept() {
        let net = Network::new();
        let listener = net.listen(8084, 4).unwrap();
        listener.close();
        assert_eq!(net.connect(8084).unwrap_err(), Errno::ECONNREFUSED);
        assert_eq!(listener.accept(true).unwrap_err(), Errno::EINVAL);
        assert_eq!(net.live_listeners(), 0);
    }

    #[test]
    fn simulated_read_timeout_burns_virtual_not_wall_time() {
        use crate::time::VirtualClock;

        let net = Network::new();
        let clock = Arc::new(VirtualClock::new(1_000));
        net.set_clock(ClockSource::Simulated(Arc::clone(&clock)));
        let listener = net.listen(8085, 4).unwrap();
        let client = net.connect(8085).unwrap();
        let _server = listener.accept(true).unwrap();

        // Nobody ever writes: a 10-virtual-second timeout must expire in
        // well under a wall second.
        let started = std::time::Instant::now();
        let err = client.read_timeout(16, Duration::from_secs(10)).unwrap_err();
        assert_eq!(err, Errno::EAGAIN);
        assert!(started.elapsed() < Duration::from_secs(2));
        assert!(clock.micros() >= 10_000_000, "timeout consumed virtual time");

        // Data already buffered is returned without consuming the timeout.
        let client2 = net.connect(8085).unwrap();
        let server2 = listener.accept(true).unwrap();
        server2.write(b"ok").unwrap();
        assert_eq!(client2.read_timeout(16, Duration::from_secs(10)).unwrap(), b"ok");
    }

    #[test]
    fn cross_thread_echo_server() {
        let net = Arc::new(Network::new());
        let listener = net.listen(8090, 64).unwrap();
        let server = std::thread::spawn(move || {
            let endpoint = listener.accept(true).unwrap();
            loop {
                let data = endpoint.read(256, true).unwrap();
                if data.is_empty() {
                    break;
                }
                endpoint.write(&data).unwrap();
            }
        });
        let client = net.connect(8090).unwrap();
        for i in 0..50u8 {
            let message = vec![i; 100];
            client.write(&message).unwrap();
            let mut echoed = Vec::new();
            while echoed.len() < 100 {
                echoed.extend(client.read(100 - echoed.len(), true).unwrap());
            }
            assert_eq!(echoed, message);
        }
        client.close();
        server.join().unwrap();
    }
}
