//! Deterministic-simulation hooks: the [`SimDriver`] interposition point at
//! the system-call dispatch boundary, plus the [`Corruptor`] used by
//! byte-level fault-injection tests.
//!
//! A deterministic simulation (see the `varan-sim` crate) wants to steer a
//! whole N-version execution from a single `u64` seed: perturb thread
//! interleavings, crash versions at chosen system-call boundaries, fail
//! descriptor transfers, stretch time for laggards.  The kernel is the one
//! chokepoint every external action already flows through, so the hook
//! lives here: when a driver is installed, [`crate::Kernel::syscall`] and
//! the descriptor-transfer paths consult it *before* acting and apply the
//! returned [`SimAction`].  Without a driver the probe is a single relaxed
//! atomic load — production executions pay nothing.
//!
//! The hook deliberately does not try to make the host scheduler
//! deterministic; it makes the *fault schedule* a pure function of the seed
//! and gives the driver a place to inject seeded yields and virtual-time
//! delays so distinct seeds explore distinct interleavings.  What a
//! simulation asserts on (and hashes into its reproducibility trace) are
//! the schedule-independent observables — see `varan-sim`'s crate docs.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::errno::Errno;
use crate::process::Pid;
use crate::syscall::SyscallRequest;

/// Where in the kernel (or the monitor layers above it) a [`SimDriver`] is
/// being consulted.
#[derive(Debug, Clone, Copy)]
pub enum SimPoint<'a> {
    /// Immediately before dispatching a system call.
    Syscall {
        /// The request about to be dispatched.
        request: &'a SyscallRequest,
    },
    /// Immediately before duplicating a descriptor into another process
    /// (the data-channel transfer of §3.3.2).
    FdTransfer {
        /// Process the descriptor is copied from.
        src: Pid,
        /// Process the descriptor is copied into.
        dst: Pid,
        /// The descriptor number in the source process.
        fd: i32,
    },
    /// A catching-up joiner just registered its ring gating sequence
    /// (within half a lap of the cursor) — probed by the follower monitor.
    GateRegistered,
    /// A catching-up joiner is about to switch from journal replay to live
    /// ring consumption — probed by the follower monitor.
    LiveSwitch,
}

/// What the driver wants done at a probed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimAction {
    /// Proceed normally.
    Continue,
    /// Panic on the calling thread with a recognizable message.  Version
    /// threads run under `catch_unwind`, so an injected crash surfaces to
    /// the coordinator exactly like a real one (§5.1 failover, upgrade
    /// rollback) — at a precisely chosen boundary.
    Crash,
    /// Fail the probed operation with this errno (syscalls return an error
    /// outcome; descriptor transfers report failure to the monitor).
    Fail(Errno),
    /// Advance the virtual clock by this many microseconds and yield the
    /// thread before proceeding — a seeded laggard.
    Delay(u64),
}

/// The driver interface a simulation harness implements.
///
/// Implementations must be cheap and must never block on work performed by
/// the probed thread itself (the probe runs inline on the syscall path).
pub trait SimDriver: Send + Sync {
    /// Consulted at every probed point; returns the action to apply.
    fn intercept(&self, pid: Pid, point: SimPoint<'_>) -> SimAction;
}

impl fmt::Debug for dyn SimDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SimDriver")
    }
}

/// The panic payload prefix used by [`SimAction::Crash`]; harnesses match
/// on it to distinguish injected crashes from real bugs.
pub const SIM_CRASH_MESSAGE: &str = "varan-sim: injected crash";

/// Applies a [`SimAction`] that is not operation-specific: panics for
/// `Crash`, delays for `Delay`, and returns the errno (if any) for the
/// caller to turn into an operation failure.
pub(crate) fn apply_generic(
    action: SimAction,
    clock: &crate::time::VirtualClock,
    what: &str,
) -> Option<Errno> {
    match action {
        SimAction::Continue => None,
        SimAction::Fail(errno) => Some(errno),
        SimAction::Crash => panic!("{SIM_CRASH_MESSAGE} at {what}"),
        SimAction::Delay(micros) => {
            clock.advance_micros(micros);
            std::thread::yield_now();
            None
        }
    }
}

/// Seeded byte-level corruption helpers, shared by the checkpoint
/// truncation tests (`crates/kernel/tests/`) and the simulator's journal
/// fault mode: one implementation of "damage these bytes reproducibly"
/// instead of ad-hoc copies per test.
#[derive(Debug, Clone)]
pub struct Corruptor {
    rng: SmallRng,
}

impl Corruptor {
    /// A corruptor whose decisions are a pure function of `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Corruptor {
            rng: SmallRng::seed_from_u64(seed ^ 0xC0_22_0B_7E_D0_0D_F0_0D),
        }
    }

    /// A seeded index in `0..bound` (0 when the bound is 0).
    pub fn pick(&mut self, bound: usize) -> usize {
        if bound == 0 {
            return 0;
        }
        (self.rng.next_u64() % bound as u64) as usize
    }

    /// Truncates `bytes` at a seeded offset strictly inside the buffer
    /// (never a no-op on non-empty input) and returns the new length.
    pub fn truncate(&mut self, bytes: &mut Vec<u8>) -> usize {
        let cut = self.pick(bytes.len());
        bytes.truncate(cut);
        cut
    }

    /// Flips one seeded bit in place; returns the affected byte offset
    /// (`None` on empty input).
    pub fn flip_bit(&mut self, bytes: &mut [u8]) -> Option<usize> {
        if bytes.is_empty() {
            return None;
        }
        let at = self.pick(bytes.len());
        let bit = self.pick(8) as u32;
        bytes[at] ^= 1 << bit;
        Some(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A driver that fails every `Getuid`, delays every `Time` by 1 ms and
    /// counts probes.
    struct TestDriver {
        probes: AtomicU64,
    }

    impl SimDriver for TestDriver {
        fn intercept(&self, _pid: Pid, point: SimPoint<'_>) -> SimAction {
            self.probes.fetch_add(1, Ordering::Relaxed);
            match point {
                SimPoint::Syscall { request } => match request.sysno {
                    crate::Sysno::Getuid => SimAction::Fail(Errno::ECONNRESET),
                    crate::Sysno::Time => SimAction::Delay(1_000),
                    _ => SimAction::Continue,
                },
                SimPoint::FdTransfer { .. } => SimAction::Fail(Errno::ECONNRESET),
                _ => SimAction::Continue,
            }
        }
    }

    #[test]
    fn installed_driver_intercepts_syscalls_and_transfers() {
        let kernel = Kernel::new();
        let pid = kernel.spawn_process("sim-test");
        let peer = kernel.spawn_process("sim-peer");

        // Without a driver everything behaves normally.
        assert_eq!(kernel.syscall(pid, &SyscallRequest::getuid()).result, 1000);

        let driver = Arc::new(TestDriver {
            probes: AtomicU64::new(0),
        });
        kernel.install_sim_driver(Arc::clone(&driver) as Arc<dyn SimDriver>);

        // Fail action surfaces as an errno outcome.
        let outcome = kernel.syscall(pid, &SyscallRequest::getuid());
        assert_eq!(outcome.errno(), Some(Errno::ECONNRESET));
        // Delay action advances the virtual clock.
        let before = kernel.clock().micros();
        let outcome = kernel.syscall(pid, &SyscallRequest::time());
        assert!(!outcome.is_error());
        assert!(kernel.clock().micros() >= before + 1_000);
        // Transfers consult the driver too.
        assert_eq!(kernel.transfer_fd(pid, 1, peer), Err(Errno::ECONNRESET));
        assert!(driver.probes.load(Ordering::Relaxed) >= 3);

        // Clearing restores the fast path.
        kernel.clear_sim_driver();
        assert_eq!(kernel.syscall(pid, &SyscallRequest::getuid()).result, 1000);
        assert!(kernel.transfer_fd(pid, 1, peer).is_ok());
    }

    #[test]
    fn crash_action_panics_with_the_sim_marker() {
        struct Crasher;
        impl SimDriver for Crasher {
            fn intercept(&self, _pid: Pid, point: SimPoint<'_>) -> SimAction {
                match point {
                    SimPoint::Syscall { .. } => SimAction::Crash,
                    _ => SimAction::Continue,
                }
            }
        }
        let kernel = Kernel::new();
        let pid = kernel.spawn_process("crash-test");
        kernel.install_sim_driver(Arc::new(Crasher));
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            kernel.syscall(pid, &SyscallRequest::getuid())
        }))
        .unwrap_err();
        let text = panic
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(text.contains(SIM_CRASH_MESSAGE), "got: {text}");
    }

    #[test]
    fn sim_time_switches_the_wait_clock() {
        let kernel = Kernel::new();
        assert!(!kernel.wait_clock().is_simulated());
        kernel.enable_sim_time();
        assert!(kernel.wait_clock().is_simulated());
        let before = kernel.clock().micros();
        kernel.wait_clock().sleep(std::time::Duration::from_secs(1));
        assert!(kernel.clock().micros() >= before + 1_000_000);
    }

    #[test]
    fn corruptor_is_seed_deterministic() {
        let mut a = Corruptor::new(42);
        let mut b = Corruptor::new(42);
        let mut bytes_a: Vec<u8> = (0..=255).collect();
        let mut bytes_b = bytes_a.clone();
        assert_eq!(a.pick(1000), b.pick(1000));
        assert_eq!(a.truncate(&mut bytes_a), b.truncate(&mut bytes_b));
        assert_eq!(bytes_a, bytes_b);
        assert_eq!(a.flip_bit(&mut bytes_a), b.flip_bit(&mut bytes_b));
        assert_eq!(bytes_a, bytes_b);
    }

    #[test]
    fn corruptor_truncate_always_shrinks_nonempty_input() {
        let mut corruptor = Corruptor::new(7);
        for round in 1..64 {
            let mut bytes = vec![0u8; round];
            let cut = corruptor.truncate(&mut bytes);
            assert!(cut < round);
            assert_eq!(bytes.len(), cut);
        }
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let mut corruptor = Corruptor::new(9);
        let original: Vec<u8> = (0..64).collect();
        let mut bytes = original.clone();
        let at = corruptor.flip_bit(&mut bytes).unwrap();
        let differing: Vec<usize> = (0..bytes.len())
            .filter(|&i| bytes[i] != original[i])
            .collect();
        assert_eq!(differing, vec![at]);
        assert_eq!((bytes[at] ^ original[at]).count_ones(), 1);
        assert_eq!(corruptor.flip_bit(&mut Vec::new().as_mut_slice()), None);
    }
}
