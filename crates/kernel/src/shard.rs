//! Connection/descriptor keying for the sharded data plane.
//!
//! The sharded ring set (`varan_ring::shard`) partitions the leader's event
//! stream into independent lanes; this module decides, **at syscall-capture
//! time**, which key a system call carries.  The rule is deliberately the
//! simplest one that both the leader and every follower can evaluate from
//! the *request alone*, before the call's result exists:
//!
//! * a syscall whose first argument register names a descriptor (read,
//!   write, close, accept, …) keys by that descriptor — so all traffic of
//!   one connection stays on one shard, in order;
//! * everything else (time, getpid, exit, open-by-path, socket, …) carries
//!   no key and lands on shard 0, the control shard.
//!
//! Keying off the request is what makes the connection→shard map identical
//! across versions: followers allocate descriptors deterministically
//! (lowest-free, like the leader), so the same program point names the same
//! descriptor number in every version and therefore maps to the same shard
//! — the property `tests/properties.rs` pins down.  Note that descriptor-
//! *creating* calls (open, socket, accept) key by their *input* (accept by
//! the listening socket), not by the created descriptor: the result is
//! unknowable before execution on the leader and before replay on a
//! follower.  The first call *on* the new descriptor is what moves the
//! connection onto its own shard.

use crate::syscall::SyscallRequest;
use crate::sysno::Sysno;

/// The shard key carried by `request`, if it names a descriptor.
///
/// Returns `Some(fd)` for calls whose first argument register is a
/// descriptor and `None` for key-less calls (which belong on the control
/// shard).  Pure and total: no kernel state is consulted, so the leader at
/// capture time and a follower at replay time always agree.
#[must_use]
pub fn connection_key(request: &SyscallRequest) -> Option<u64> {
    if names_descriptor(request.sysno) {
        Some(request.args[0])
    } else {
        None
    }
}

/// True if `sysno`'s first argument register is a file descriptor.
#[must_use]
pub fn names_descriptor(sysno: Sysno) -> bool {
    matches!(
        sysno,
        Sysno::Read
            | Sysno::Write
            | Sysno::Close
            | Sysno::Fstat
            | Sysno::Lseek
            | Sysno::Ioctl
            | Sysno::Sendto
            | Sysno::Recvfrom
            | Sysno::Shutdown
            | Sysno::Bind
            | Sysno::Listen
            | Sysno::Connect
            | Sysno::Accept
            | Sysno::Accept4
            | Sysno::Fcntl
            | Sysno::Fsync
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_calls_key_by_their_first_argument() {
        assert_eq!(connection_key(&SyscallRequest::read(7, 64)), Some(7));
        assert_eq!(
            connection_key(&SyscallRequest::write(9, b"x".to_vec())),
            Some(9)
        );
        assert_eq!(connection_key(&SyscallRequest::close(3)), Some(3));
        assert_eq!(connection_key(&SyscallRequest::accept(4)), Some(4));
    }

    #[test]
    fn keyless_calls_land_on_the_control_shard() {
        assert_eq!(connection_key(&SyscallRequest::time()), None);
        assert_eq!(connection_key(&SyscallRequest::socket()), None);
        assert_eq!(connection_key(&SyscallRequest::open("/tmp/x", 0)), None);
        assert_eq!(connection_key(&SyscallRequest::exit(0)), None);
    }

    #[test]
    fn keying_is_a_pure_function_of_the_request() {
        let request = SyscallRequest::read(42, 128);
        assert_eq!(connection_key(&request), connection_key(&request.clone()));
    }
}
