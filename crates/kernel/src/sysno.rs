//! System call numbers (x86-64 Linux values) and metadata.
//!
//! VARAN "has to be aware of the system call semantics, in order to transfer
//! the arguments and results of each system call" (§3.3); the prototype
//! implements 86 calls, on demand, as they were encountered across its
//! benchmarks.  This reproduction implements the subset its own benchmarks
//! exercise, under their real x86-64 numbers so that BPF rewrite rules can be
//! written against the same constants that appear in the paper (e.g.
//! `__NR_getuid == 102` in Listing 1).

use serde::{Deserialize, Serialize};

/// System calls understood by the virtual kernel, with their x86-64 numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u16)]
#[allow(missing_docs)] // the variants are the Linux system calls themselves
pub enum Sysno {
    Read = 0,
    Write = 1,
    Open = 2,
    Close = 3,
    Stat = 4,
    Fstat = 5,
    Lseek = 8,
    Mmap = 9,
    Mprotect = 10,
    Munmap = 11,
    Brk = 12,
    RtSigaction = 13,
    Ioctl = 16,
    Pipe = 22,
    Nanosleep = 35,
    Getpid = 39,
    Socket = 41,
    Connect = 42,
    Accept = 43,
    Sendto = 44,
    Recvfrom = 45,
    Shutdown = 48,
    Bind = 49,
    Listen = 50,
    Clone = 56,
    Fork = 57,
    Exit = 60,
    Kill = 62,
    Fcntl = 72,
    Fsync = 74,
    Getcwd = 79,
    Mkdir = 83,
    Unlink = 87,
    Gettimeofday = 96,
    Getuid = 102,
    Getgid = 104,
    Geteuid = 107,
    Getegid = 108,
    Sigaltstack = 131,
    Futex = 202,
    Getdents64 = 217,
    SetTidAddress = 218,
    ClockGettime = 228,
    ClockNanosleep = 230,
    ExitGroup = 231,
    EpollWait = 232,
    EpollCtl = 233,
    Openat = 257,
    Accept4 = 288,
    EpollCreate1 = 291,
    Getcpu = 309,
    Time = 201,
    Getrandom = 318,
}

impl Sysno {
    /// The raw x86-64 system call number.
    #[must_use]
    pub fn number(self) -> u16 {
        self as u16
    }

    /// Looks a system call up by its raw number.
    #[must_use]
    pub fn from_number(number: u16) -> Option<Sysno> {
        ALL_SYSCALLS.iter().copied().find(|s| s.number() == number)
    }

    /// The conventional `__NR_`-less name of the call (e.g. `"write"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Sysno::Read => "read",
            Sysno::Write => "write",
            Sysno::Open => "open",
            Sysno::Close => "close",
            Sysno::Stat => "stat",
            Sysno::Fstat => "fstat",
            Sysno::Lseek => "lseek",
            Sysno::Mmap => "mmap",
            Sysno::Mprotect => "mprotect",
            Sysno::Munmap => "munmap",
            Sysno::Brk => "brk",
            Sysno::RtSigaction => "rt_sigaction",
            Sysno::Ioctl => "ioctl",
            Sysno::Pipe => "pipe",
            Sysno::Nanosleep => "nanosleep",
            Sysno::Getpid => "getpid",
            Sysno::Socket => "socket",
            Sysno::Connect => "connect",
            Sysno::Accept => "accept",
            Sysno::Sendto => "sendto",
            Sysno::Recvfrom => "recvfrom",
            Sysno::Shutdown => "shutdown",
            Sysno::Bind => "bind",
            Sysno::Listen => "listen",
            Sysno::Clone => "clone",
            Sysno::Fork => "fork",
            Sysno::Exit => "exit",
            Sysno::Kill => "kill",
            Sysno::Fcntl => "fcntl",
            Sysno::Fsync => "fsync",
            Sysno::Getcwd => "getcwd",
            Sysno::Mkdir => "mkdir",
            Sysno::Unlink => "unlink",
            Sysno::Gettimeofday => "gettimeofday",
            Sysno::Getuid => "getuid",
            Sysno::Getgid => "getgid",
            Sysno::Geteuid => "geteuid",
            Sysno::Getegid => "getegid",
            Sysno::Sigaltstack => "sigaltstack",
            Sysno::Futex => "futex",
            Sysno::Getdents64 => "getdents64",
            Sysno::SetTidAddress => "set_tid_address",
            Sysno::ClockGettime => "clock_gettime",
            Sysno::ClockNanosleep => "clock_nanosleep",
            Sysno::ExitGroup => "exit_group",
            Sysno::EpollWait => "epoll_wait",
            Sysno::EpollCtl => "epoll_ctl",
            Sysno::Openat => "openat",
            Sysno::Accept4 => "accept4",
            Sysno::EpollCreate1 => "epoll_create1",
            Sysno::Getcpu => "getcpu",
            Sysno::Time => "time",
            Sysno::Getrandom => "getrandom",
        }
    }

    /// Returns `true` for calls that create a new file descriptor whose
    /// transfer to followers requires the data channel (§3.3.2).
    #[must_use]
    pub fn creates_fd(self) -> bool {
        matches!(
            self,
            Sysno::Open
                | Sysno::Openat
                | Sysno::Socket
                | Sysno::Accept
                | Sysno::Accept4
                | Sysno::Pipe
                | Sysno::EpollCreate1
        )
    }

    /// Returns `true` for calls that are local to the process and therefore
    /// executed by every version rather than replayed from the leader
    /// (e.g. `mmap`, §3.3).
    #[must_use]
    pub fn is_process_local(self) -> bool {
        matches!(
            self,
            Sysno::Mmap
                | Sysno::Munmap
                | Sysno::Mprotect
                | Sysno::Brk
                | Sysno::RtSigaction
                | Sysno::Sigaltstack
                | Sysno::SetTidAddress
                | Sysno::Futex
        )
    }

    /// Returns `true` for the virtual system calls accelerated through the
    /// vDSO (§3.2.1).
    #[must_use]
    pub fn is_virtual(self) -> bool {
        matches!(
            self,
            Sysno::ClockGettime | Sysno::Getcpu | Sysno::Gettimeofday | Sysno::Time
        )
    }

    /// Returns `true` for calls that terminate a task.
    #[must_use]
    pub fn is_exit(self) -> bool {
        matches!(self, Sysno::Exit | Sysno::ExitGroup)
    }

    /// Returns `true` for calls that create a new process or thread.
    #[must_use]
    pub fn is_fork(self) -> bool {
        matches!(self, Sysno::Fork | Sysno::Clone)
    }

    /// Returns `true` for calls that may block indefinitely waiting for
    /// external input (the calls around which followers take the waitlock,
    /// §3.3.1).
    #[must_use]
    pub fn may_block(self) -> bool {
        matches!(
            self,
            Sysno::Read
                | Sysno::Accept
                | Sysno::Accept4
                | Sysno::Recvfrom
                | Sysno::EpollWait
                | Sysno::Nanosleep
                | Sysno::ClockNanosleep
                | Sysno::Futex
        )
    }
}

/// Every system call implemented by the virtual kernel.
pub const ALL_SYSCALLS: &[Sysno] = &[
    Sysno::Read,
    Sysno::Write,
    Sysno::Open,
    Sysno::Close,
    Sysno::Stat,
    Sysno::Fstat,
    Sysno::Lseek,
    Sysno::Mmap,
    Sysno::Mprotect,
    Sysno::Munmap,
    Sysno::Brk,
    Sysno::RtSigaction,
    Sysno::Ioctl,
    Sysno::Pipe,
    Sysno::Nanosleep,
    Sysno::Getpid,
    Sysno::Socket,
    Sysno::Connect,
    Sysno::Accept,
    Sysno::Sendto,
    Sysno::Recvfrom,
    Sysno::Shutdown,
    Sysno::Bind,
    Sysno::Listen,
    Sysno::Clone,
    Sysno::Fork,
    Sysno::Exit,
    Sysno::Kill,
    Sysno::Fcntl,
    Sysno::Fsync,
    Sysno::Getcwd,
    Sysno::Mkdir,
    Sysno::Unlink,
    Sysno::Gettimeofday,
    Sysno::Getuid,
    Sysno::Getgid,
    Sysno::Geteuid,
    Sysno::Getegid,
    Sysno::Sigaltstack,
    Sysno::Futex,
    Sysno::Getdents64,
    Sysno::SetTidAddress,
    Sysno::ClockGettime,
    Sysno::ClockNanosleep,
    Sysno::ExitGroup,
    Sysno::EpollWait,
    Sysno::EpollCtl,
    Sysno::Openat,
    Sysno::Accept4,
    Sysno::EpollCreate1,
    Sysno::Getcpu,
    Sysno::Time,
    Sysno::Getrandom,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_match_the_x86_64_abi() {
        assert_eq!(Sysno::Read.number(), 0);
        assert_eq!(Sysno::Write.number(), 1);
        assert_eq!(Sysno::Open.number(), 2);
        assert_eq!(Sysno::Close.number(), 3);
        assert_eq!(Sysno::Getuid.number(), 102);
        assert_eq!(Sysno::Getgid.number(), 104);
        assert_eq!(Sysno::Geteuid.number(), 107);
        assert_eq!(Sysno::Getegid.number(), 108);
        assert_eq!(Sysno::Time.number(), 201);
        assert_eq!(Sysno::ExitGroup.number(), 231);
    }

    #[test]
    fn from_number_round_trips() {
        for &sysno in ALL_SYSCALLS {
            assert_eq!(Sysno::from_number(sysno.number()), Some(sysno));
            assert!(!sysno.name().is_empty());
        }
        assert_eq!(Sysno::from_number(9999), None);
    }

    #[test]
    fn classification_flags() {
        assert!(Sysno::Open.creates_fd());
        assert!(Sysno::Accept.creates_fd());
        assert!(!Sysno::Write.creates_fd());
        assert!(Sysno::Mmap.is_process_local());
        assert!(!Sysno::Open.is_process_local());
        assert!(Sysno::Time.is_virtual());
        assert!(Sysno::Gettimeofday.is_virtual());
        assert!(!Sysno::Read.is_virtual());
        assert!(Sysno::Exit.is_exit());
        assert!(Sysno::Fork.is_fork());
        assert!(Sysno::Accept.may_block());
        assert!(!Sysno::Close.may_block());
    }

    #[test]
    fn all_syscalls_have_unique_numbers() {
        let mut numbers: Vec<u16> = ALL_SYSCALLS.iter().map(|s| s.number()).collect();
        numbers.sort_unstable();
        let before = numbers.len();
        numbers.dedup();
        assert_eq!(numbers.len(), before);
        // The prototype implements 86 syscalls; this reproduction implements
        // the subset its own benchmarks exercise.
        assert!(before >= 50);
    }
}
