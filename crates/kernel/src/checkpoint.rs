//! Checkpoint/restore of virtual-kernel state.
//!
//! Elastic membership (followers joining a running N-version execution)
//! needs more than the event stream: a joiner must first acquire the
//! *state* the stream's future events will be interpreted against — open
//! descriptors, the files behind them, the listening sockets, pending
//! signals, and the descriptor-translation map its monitor will use.  A
//! [`KernelCheckpoint`] is a serializable snapshot of exactly that, taken
//! at an event-sequence boundary: `sequence` names the first event the
//! restored state has **not** observed, so a joiner restores the checkpoint
//! and replays the spill journal from `sequence` onwards.
//!
//! Two restore modes exist, because the virtual kernel is shared by every
//! version of a run:
//!
//! * [`Kernel::restore_process`] — live attach: installs the checkpointed
//!   descriptor table into a freshly spawned process *of the same kernel*,
//!   resolving listeners against the live network namespace (a restored
//!   listener shares the accept queue, exactly as a transferred descriptor
//!   would).  The shared fs/net tables are already live truth and are left
//!   untouched.
//! * [`Kernel::restore_filesystem`] + [`Kernel::restore_process`] on a
//!   **fresh** kernel — offline restore: rebuilds files, directories and
//!   listeners from the snapshot first (disaster recovery, or replaying a
//!   journal against a from-scratch kernel).
//!
//! Live stream connections cannot be resurrected from a serialized
//! snapshot (their peer is gone); they restore as disconnected endpoints —
//! reads see EOF, writes see `EPIPE` — which mirrors what a real process
//! would observe after its peer vanished.  Pipe contents are likewise not
//! persisted: a restored pipe is empty.

use std::collections::HashMap;
use std::fmt;

use crate::errno::Errno;
use crate::fs::Node;
use crate::kernel::Kernel;
use crate::net::Endpoint;
use crate::process::{FdEntry, FdObject, Pid};
use crate::signal::Signal;

/// Magic bytes opening every encoded checkpoint.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"VRNCKPT1";

/// Upper bound accepted for any single length field while decoding.
const MAX_FIELD: u64 = 1 << 30;

/// Error produced when an encoded checkpoint cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What was wrong.
    pub reason: &'static str,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt checkpoint at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for CheckpointError {}

/// Serializable form of one descriptor-table object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdObjectSnapshot {
    /// The process console (fds 0–2 and any duplicates).
    Console,
    /// An open VFS file.
    File {
        /// Path of the file.
        path: String,
        /// Read/write offset at checkpoint time.
        offset: u64,
        /// Whether writes append.
        append: bool,
    },
    /// A listening socket; restored by re-attaching to the live listener on
    /// `port` (or re-binding it during an offline restore).
    Listener {
        /// Bound port.
        port: u16,
        /// Backlog the listener was created with.
        backlog: u32,
    },
    /// A connected stream; restores as a disconnected endpoint.
    Stream,
    /// A socket created but not yet listening/connected.
    UnboundSocket {
        /// Port recorded by `bind`, if any.
        bound_port: Option<u16>,
    },
    /// The read end of a pipe (restored empty).
    PipeRead,
    /// The write end of a pipe (restored empty).
    PipeWrite,
    /// An epoll instance with its interest list.
    Epoll {
        /// Descriptors registered with `epoll_ctl`.
        watched: Vec<i32>,
    },
}

/// Serializable form of one descriptor-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdSnapshot {
    /// Descriptor number.
    pub fd: i32,
    /// Close-on-exec flag.
    pub cloexec: bool,
    /// Non-blocking flag.
    pub nonblocking: bool,
    /// The object behind the descriptor.
    pub object: FdObjectSnapshot,
}

/// Serializable form of one virtual process.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProcessSnapshot {
    /// Process name (the "binary" it runs).
    pub name: String,
    /// Next descriptor number the table would hand out.
    pub next_fd: i32,
    /// Program break.
    pub brk: u64,
    /// Next `mmap` address.
    pub next_mmap: u64,
    /// Number of threads the process had spawned.
    pub threads: u32,
    /// Pending (delivered but unconsumed) signal numbers, oldest first.
    pub pending_signals: Vec<u8>,
    /// The descriptor table.
    pub fds: Vec<FdSnapshot>,
}

/// One VFS node in a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSnapshot {
    /// Absolute path.
    pub path: String,
    /// The node at that path.
    pub node: Node,
}

/// A serializable snapshot of the virtual kernel's fs/net/process/signal
/// tables plus a per-version descriptor-translation map, taken at an
/// event-sequence boundary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KernelCheckpoint {
    /// First event sequence the snapshot has **not** observed: journal
    /// replay after restore starts here.
    pub sequence: u64,
    /// The checkpointed process (the leader, for fleet attach).
    pub process: ProcessSnapshot,
    /// Every VFS node (the fs table).
    pub files: Vec<FileSnapshot>,
    /// Ports with live listeners and their backlogs (the net table).
    pub listeners: Vec<(u16, u32)>,
    /// The checkpointed version's descriptor-translation map
    /// (leader descriptor number → descriptor number in that version).
    pub fd_translation: Vec<(i64, i32)>,
    /// Per-shard sequence anchors taken at a consistent cut of a sharded
    /// data plane: component `s` is the first event of shard `s` the
    /// snapshot has not observed, so per-shard journal replay after restore
    /// starts at `shard_cut[s]`.  For an unsharded plane this is the
    /// one-element vector `[sequence]` (and [`KernelCheckpoint::cut_vector`]
    /// normalises a default-constructed empty vector to that).
    pub shard_cut: Vec<u64>,
}

impl KernelCheckpoint {
    /// The consistent-cut vector this checkpoint was taken at, normalising
    /// checkpoints from an unsharded plane (or legacy encodings with no cut)
    /// to the one-element vector `[sequence]`.
    #[must_use]
    pub fn cut_vector(&self) -> Vec<u64> {
        if self.shard_cut.is_empty() {
            vec![self.sequence]
        } else {
            self.shard_cut.clone()
        }
    }
}

// ---------------------------------------------------------------------
// Binary encoding
// ---------------------------------------------------------------------

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn fail<T>(&self, reason: &'static str) -> Result<T, CheckpointError> {
        Err(CheckpointError {
            offset: self.at,
            reason,
        })
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .at
            .checked_add(len)
            .ok_or(CheckpointError {
                offset: self.at,
                reason: "length overflows",
            })?;
        let slice = self.bytes.get(self.at..end).ok_or(CheckpointError {
            offset: self.at,
            reason: "truncated",
        })?;
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn len(&mut self) -> Result<usize, CheckpointError> {
        let len = self.u64()?;
        if len > MAX_FIELD {
            return self.fail("length exceeds the 1 GiB bound");
        }
        Ok(len as usize)
    }

    fn bytes_field(&mut self) -> Result<Vec<u8>, CheckpointError> {
        let len = self.len()?;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, CheckpointError> {
        let bytes = self.bytes_field()?;
        String::from_utf8(bytes).map_err(|_| CheckpointError {
            offset: self.at,
            reason: "invalid utf-8 in string field",
        })
    }
}

fn encode_fd_object(out: &mut Vec<u8>, object: &FdObjectSnapshot) {
    match object {
        FdObjectSnapshot::Console => out.push(0),
        FdObjectSnapshot::File {
            path,
            offset,
            append,
        } => {
            out.push(1);
            put_bytes(out, path.as_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.push(u8::from(*append));
        }
        FdObjectSnapshot::Listener { port, backlog } => {
            out.push(2);
            out.extend_from_slice(&port.to_le_bytes());
            out.extend_from_slice(&backlog.to_le_bytes());
        }
        FdObjectSnapshot::Stream => out.push(3),
        FdObjectSnapshot::UnboundSocket { bound_port } => {
            out.push(4);
            match bound_port {
                Some(port) => {
                    out.push(1);
                    out.extend_from_slice(&port.to_le_bytes());
                }
                None => out.push(0),
            }
        }
        FdObjectSnapshot::PipeRead => out.push(5),
        FdObjectSnapshot::PipeWrite => out.push(6),
        FdObjectSnapshot::Epoll { watched } => {
            out.push(7);
            out.extend_from_slice(&(watched.len() as u64).to_le_bytes());
            for fd in watched {
                out.extend_from_slice(&fd.to_le_bytes());
            }
        }
    }
}

fn decode_fd_object(reader: &mut Reader<'_>) -> Result<FdObjectSnapshot, CheckpointError> {
    Ok(match reader.u8()? {
        0 => FdObjectSnapshot::Console,
        1 => FdObjectSnapshot::File {
            path: reader.string()?,
            offset: reader.u64()?,
            append: reader.u8()? != 0,
        },
        2 => FdObjectSnapshot::Listener {
            port: reader.u16()?,
            backlog: reader.u32()?,
        },
        3 => FdObjectSnapshot::Stream,
        4 => match reader.u8()? {
            0 => FdObjectSnapshot::UnboundSocket { bound_port: None },
            1 => FdObjectSnapshot::UnboundSocket {
                bound_port: Some(reader.u16()?),
            },
            _ => return reader.fail("invalid option tag for bound port"),
        },
        5 => FdObjectSnapshot::PipeRead,
        6 => FdObjectSnapshot::PipeWrite,
        7 => {
            let count = reader.len()?;
            let mut watched = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                watched.push(reader.u32()? as i32);
            }
            FdObjectSnapshot::Epoll { watched }
        }
        _ => return reader.fail("unknown descriptor-object tag"),
    })
}

fn encode_node(out: &mut Vec<u8>, node: &Node) {
    match node {
        Node::File(data) => {
            out.push(0);
            put_bytes(out, data);
        }
        Node::Directory => out.push(1),
        Node::DevNull => out.push(2),
        Node::DevZero => out.push(3),
        Node::DevUrandom => out.push(4),
    }
}

fn decode_node(reader: &mut Reader<'_>) -> Result<Node, CheckpointError> {
    Ok(match reader.u8()? {
        0 => Node::File(reader.bytes_field()?),
        1 => Node::Directory,
        2 => Node::DevNull,
        3 => Node::DevZero,
        4 => Node::DevUrandom,
        _ => return reader.fail("unknown vfs node tag"),
    })
}

impl KernelCheckpoint {
    /// Serialises the checkpoint into its binary form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(CHECKPOINT_MAGIC);
        out.extend_from_slice(&self.sequence.to_le_bytes());

        // Process table entry.
        put_bytes(&mut out, self.process.name.as_bytes());
        out.extend_from_slice(&self.process.next_fd.to_le_bytes());
        out.extend_from_slice(&self.process.brk.to_le_bytes());
        out.extend_from_slice(&self.process.next_mmap.to_le_bytes());
        out.extend_from_slice(&self.process.threads.to_le_bytes());
        put_bytes(&mut out, &self.process.pending_signals);
        out.extend_from_slice(&(self.process.fds.len() as u64).to_le_bytes());
        for fd in &self.process.fds {
            out.extend_from_slice(&fd.fd.to_le_bytes());
            out.push(u8::from(fd.cloexec));
            out.push(u8::from(fd.nonblocking));
            encode_fd_object(&mut out, &fd.object);
        }

        // Fs table.
        out.extend_from_slice(&(self.files.len() as u64).to_le_bytes());
        for file in &self.files {
            put_bytes(&mut out, file.path.as_bytes());
            encode_node(&mut out, &file.node);
        }

        // Net table.
        out.extend_from_slice(&(self.listeners.len() as u64).to_le_bytes());
        for (port, backlog) in &self.listeners {
            out.extend_from_slice(&port.to_le_bytes());
            out.extend_from_slice(&backlog.to_le_bytes());
        }

        // Descriptor-translation map.
        out.extend_from_slice(&(self.fd_translation.len() as u64).to_le_bytes());
        for (leader_fd, local_fd) in &self.fd_translation {
            out.extend_from_slice(&leader_fd.to_le_bytes());
            out.extend_from_slice(&local_fd.to_le_bytes());
        }

        // Per-shard consistent-cut vector.
        out.extend_from_slice(&(self.shard_cut.len() as u64).to_le_bytes());
        for component in &self.shard_cut {
            out.extend_from_slice(&component.to_le_bytes());
        }
        out
    }

    /// Decodes a checkpoint previously produced by [`KernelCheckpoint::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] with the failing offset if the bytes are
    /// truncated, carry invalid tags or lie about any length.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut reader = Reader { bytes, at: 0 };
        if reader.take(CHECKPOINT_MAGIC.len())? != CHECKPOINT_MAGIC {
            return Err(CheckpointError {
                offset: 0,
                reason: "missing checkpoint magic",
            });
        }
        let sequence = reader.u64()?;

        let name = reader.string()?;
        let next_fd = reader.u32()? as i32;
        let brk = reader.u64()?;
        let next_mmap = reader.u64()?;
        let threads = reader.u32()?;
        let pending_signals = reader.bytes_field()?;
        let fd_count = reader.len()?;
        let mut fds = Vec::with_capacity(fd_count.min(1 << 16));
        for _ in 0..fd_count {
            let fd = reader.u32()? as i32;
            let cloexec = reader.u8()? != 0;
            let nonblocking = reader.u8()? != 0;
            let object = decode_fd_object(&mut reader)?;
            fds.push(FdSnapshot {
                fd,
                cloexec,
                nonblocking,
                object,
            });
        }

        let file_count = reader.len()?;
        let mut files = Vec::with_capacity(file_count.min(1 << 16));
        for _ in 0..file_count {
            let path = reader.string()?;
            let node = decode_node(&mut reader)?;
            files.push(FileSnapshot { path, node });
        }

        let listener_count = reader.len()?;
        let mut listeners = Vec::with_capacity(listener_count.min(1 << 16));
        for _ in 0..listener_count {
            listeners.push((reader.u16()?, reader.u32()?));
        }

        let translation_count = reader.len()?;
        let mut fd_translation = Vec::with_capacity(translation_count.min(1 << 16));
        for _ in 0..translation_count {
            let leader_fd = reader.u64()? as i64;
            let local_fd = reader.u32()? as i32;
            fd_translation.push((leader_fd, local_fd));
        }

        // Per-shard consistent-cut vector.
        let cut_len = reader.len()?;
        let mut shard_cut = Vec::with_capacity(cut_len.min(1 << 10));
        for _ in 0..cut_len {
            shard_cut.push(reader.u64()?);
        }
        if reader.at != bytes.len() {
            return reader.fail("trailing bytes after checkpoint");
        }
        Ok(KernelCheckpoint {
            sequence,
            process: ProcessSnapshot {
                name,
                next_fd,
                brk,
                next_mmap,
                threads,
                pending_signals,
                fds,
            },
            files,
            listeners,
            fd_translation,
            shard_cut,
        })
    }
}

// ---------------------------------------------------------------------
// Taking and restoring checkpoints
// ---------------------------------------------------------------------

pub(crate) fn snapshot_fd_object(object: &FdObject) -> FdObjectSnapshot {
    match object {
        FdObject::Console => FdObjectSnapshot::Console,
        FdObject::File {
            path,
            offset,
            append,
        } => FdObjectSnapshot::File {
            path: path.clone(),
            offset: *offset,
            append: *append,
        },
        FdObject::Listener(listener) => FdObjectSnapshot::Listener {
            port: listener.port(),
            backlog: listener.backlog() as u32,
        },
        FdObject::Stream(_) => FdObjectSnapshot::Stream,
        FdObject::UnboundSocket { bound_port } => FdObjectSnapshot::UnboundSocket {
            bound_port: *bound_port,
        },
        FdObject::PipeRead(_) => FdObjectSnapshot::PipeRead,
        FdObject::PipeWrite(_) => FdObjectSnapshot::PipeWrite,
        FdObject::Epoll { watched } => FdObjectSnapshot::Epoll {
            watched: watched.clone(),
        },
    }
}

impl Kernel {
    /// Takes a checkpoint of this kernel's fs/net/signal tables and of
    /// process `pid`'s state, stamped with event `sequence` (the first event
    /// the snapshot has not observed) and carrying `fd_translation` as the
    /// checkpointed version's descriptor-translation map.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] if `pid` is unknown.
    pub fn checkpoint(
        &self,
        pid: Pid,
        sequence: u64,
        fd_translation: &HashMap<i64, i32>,
    ) -> Result<KernelCheckpoint, Errno> {
        let process = self.snapshot_process(pid)?;
        let files = self
            .vfs_entries()
            .into_iter()
            .map(|(path, node)| FileSnapshot { path, node })
            .collect();
        let listeners = self
            .network()
            .live_listeners_snapshot()
            .into_iter()
            .map(|(port, backlog)| (port, backlog as u32))
            .collect();
        let mut fd_translation: Vec<(i64, i32)> =
            fd_translation.iter().map(|(&k, &v)| (k, v)).collect();
        fd_translation.sort_unstable();
        Ok(KernelCheckpoint {
            sequence,
            process,
            files,
            listeners,
            fd_translation,
            shard_cut: vec![sequence],
        })
    }

    /// Takes a checkpoint at a **consistent cut** of a sharded data plane:
    /// `cut[s]` is the first event of shard `s` the snapshot has not
    /// observed (each shard's journal tail, read before the snapshot).  The
    /// scalar `sequence` is set to the control shard's component, keeping
    /// unsharded consumers of the checkpoint meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] if `pid` is unknown.
    pub fn checkpoint_at_cut(
        &self,
        pid: Pid,
        cut: &[u64],
        fd_translation: &HashMap<i64, i32>,
    ) -> Result<KernelCheckpoint, Errno> {
        let sequence = cut.first().copied().unwrap_or(0);
        let mut checkpoint = self.checkpoint(pid, sequence, fd_translation)?;
        checkpoint.shard_cut = cut.to_vec();
        Ok(checkpoint)
    }

    /// Restores a checkpointed process image into the (already spawned)
    /// process `target`: descriptor table, pending signals, break and mmap
    /// cursors.  Listeners re-attach to the live network namespace when the
    /// port is still bound (sharing the accept queue, as a transferred
    /// descriptor would) and are re-bound otherwise; streams restore as
    /// disconnected endpoints; pipes restore empty.
    ///
    /// Returns the joiner's descriptor-translation map: every checkpointed
    /// descriptor is installed *at its original number*, so the map is the
    /// identity over the snapshot's descriptors — exactly what a follower
    /// monitor needs to translate the leader's descriptor arguments.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] if `target` is unknown.
    pub fn restore_process(
        &self,
        checkpoint: &KernelCheckpoint,
        target: Pid,
    ) -> Result<HashMap<i64, i32>, Errno> {
        let mut entries = Vec::with_capacity(checkpoint.process.fds.len());
        let mut translation = HashMap::with_capacity(checkpoint.process.fds.len());
        for fd in &checkpoint.process.fds {
            let object = match &fd.object {
                FdObjectSnapshot::Console => FdObject::Console,
                FdObjectSnapshot::File {
                    path,
                    offset,
                    append,
                } => FdObject::File {
                    path: path.clone(),
                    offset: *offset,
                    append: *append,
                },
                FdObjectSnapshot::Listener { port, backlog } => {
                    let listener = match self.network().listener(*port) {
                        Some(live) => live,
                        None => self
                            .network()
                            .listen(*port, *backlog as usize)
                            .map_err(|_| Errno::EADDRINUSE)?,
                    };
                    FdObject::Listener(listener)
                }
                FdObjectSnapshot::Stream => FdObject::Stream(Endpoint::disconnected()),
                FdObjectSnapshot::UnboundSocket { bound_port } => FdObject::UnboundSocket {
                    bound_port: *bound_port,
                },
                FdObjectSnapshot::PipeRead => {
                    FdObject::PipeRead(std::sync::Arc::new(crate::process::Pipe::default()))
                }
                FdObjectSnapshot::PipeWrite => {
                    FdObject::PipeWrite(std::sync::Arc::new(crate::process::Pipe::default()))
                }
                FdObjectSnapshot::Epoll { watched } => FdObject::Epoll {
                    watched: watched.clone(),
                },
            };
            let mut entry = FdEntry::new(object);
            entry.cloexec = fd.cloexec;
            entry.nonblocking = fd.nonblocking;
            entries.push((fd.fd, entry));
            translation.insert(i64::from(fd.fd), fd.fd);
        }
        {
            let mut table = self.processes_lock();
            let process = table.get_mut(target)?;
            process.restore_fds(entries, checkpoint.process.next_fd);
            process.brk = checkpoint.process.brk;
            process.next_mmap = checkpoint.process.next_mmap;
            for signo in &checkpoint.process.pending_signals {
                if let Some(signal) = Signal::from_number(*signo) {
                    process.deliver_signal(signal);
                }
            }
        }
        Ok(translation)
    }

    /// Rebuilds the checkpointed fs and net tables into this kernel:
    /// missing files, directories, devices and listeners are created; paths
    /// that already exist are left untouched (the live tables are newer
    /// truth than the snapshot).  Use on a fresh kernel for a full offline
    /// restore.
    ///
    /// # Errors
    ///
    /// Propagates VFS errors for unrestorable paths.
    pub fn restore_filesystem(&self, checkpoint: &KernelCheckpoint) -> Result<(), Errno> {
        // Parents first: the snapshot is sorted by construction (BTreeMap
        // iteration order), but re-sort defensively for decoded inputs.
        let mut files = checkpoint.files.clone();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        for file in &files {
            if self.file_exists(&file.path) {
                continue;
            }
            match &file.node {
                Node::Directory => self.vfs_mkdir(&file.path)?,
                Node::File(data) => self.populate_file(&file.path, data.clone())?,
                // Devices exist in every fresh VFS; nothing to do for the
                // standard ones, and custom device paths are not supported.
                Node::DevNull | Node::DevZero | Node::DevUrandom => {}
            }
        }
        for (port, backlog) in &checkpoint.listeners {
            if self.network().listener(*port).is_none() {
                let _ = self.network().listen(*port, *backlog as usize);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscall::SyscallRequest;
    use crate::Sysno;

    fn populated_kernel() -> (Kernel, Pid) {
        let kernel = Kernel::new();
        kernel
            .populate_file("/var/www/index.html", b"<html>varan</html>".to_vec())
            .unwrap();
        let pid = kernel.spawn_process("server-v1");
        // open a file
        let open = kernel.syscall(pid, &SyscallRequest::open("/var/www/index.html", 0));
        assert!(open.result >= 0);
        // socket + bind + listen
        let sock = kernel.syscall(pid, &SyscallRequest::new(Sysno::Socket, [0; 6]));
        assert!(sock.result >= 0);
        let fd = sock.result as u64;
        kernel.syscall(pid, &SyscallRequest::new(Sysno::Bind, [fd, 6379, 0, 0, 0, 0]));
        let listen =
            kernel.syscall(pid, &SyscallRequest::new(Sysno::Listen, [fd, 16, 0, 0, 0, 0]));
        assert_eq!(listen.result, 0);
        kernel.deliver_signal(pid, Signal::Sigusr1).unwrap();
        (kernel, pid)
    }

    #[test]
    fn checkpoint_captures_all_four_tables() {
        let (kernel, pid) = populated_kernel();
        let translation: HashMap<i64, i32> = [(3i64, 3i32)].into_iter().collect();
        let checkpoint = kernel.checkpoint(pid, 42, &translation).unwrap();
        assert_eq!(checkpoint.sequence, 42);
        assert_eq!(checkpoint.process.name, "server-v1");
        assert!(checkpoint.process.fds.len() >= 5, "console x3 + file + listener");
        assert!(checkpoint
            .files
            .iter()
            .any(|f| f.path == "/var/www/index.html"));
        assert_eq!(checkpoint.listeners, vec![(6379, 16)]);
        assert_eq!(checkpoint.process.pending_signals, vec![Signal::Sigusr1.number()]);
        assert_eq!(checkpoint.fd_translation, vec![(3, 3)]);
        assert!(kernel.checkpoint(999, 0, &HashMap::new()).is_err());
    }

    #[test]
    fn encode_decode_round_trips() {
        let (kernel, pid) = populated_kernel();
        let checkpoint = kernel.checkpoint(pid, 7, &HashMap::new()).unwrap();
        let bytes = checkpoint.encode();
        let decoded = KernelCheckpoint::decode(&bytes).unwrap();
        assert_eq!(decoded, checkpoint);
    }

    #[test]
    fn decode_rejects_truncated_and_corrupt_bytes() {
        assert!(KernelCheckpoint::decode(b"junk").is_err());
        let (kernel, pid) = populated_kernel();
        let checkpoint = kernel.checkpoint(pid, 7, &HashMap::new()).unwrap();
        let bytes = checkpoint.encode();
        // Every truncation point must fail cleanly, never panic.
        for cut in [1, 8, 16, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(KernelCheckpoint::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Corrupt magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(KernelCheckpoint::decode(&bad).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(KernelCheckpoint::decode(&long).is_err());
        // A length field claiming more than the 1 GiB bound.
        let mut lying = bytes;
        lying[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(KernelCheckpoint::decode(&lying).is_err());
    }

    #[test]
    fn live_restore_shares_the_listener_and_translates_identically() {
        let (kernel, pid) = populated_kernel();
        let checkpoint = kernel.checkpoint(pid, 0, &HashMap::new()).unwrap();
        let joiner = kernel.spawn_process("joiner");
        let translation = kernel.restore_process(&checkpoint, joiner).unwrap();
        // Identity translation over every checkpointed descriptor.
        for fd in &checkpoint.process.fds {
            assert_eq!(translation.get(&i64::from(fd.fd)), Some(&fd.fd));
        }
        // The restored listener shares the live accept queue: a connection
        // made to the leader's port is acceptable through the joiner's fd.
        let _client = kernel.network().connect(6379).unwrap();
        let accept = kernel.syscall(joiner, &SyscallRequest::new(Sysno::Accept, [4, 0, 0, 0, 0, 0]));
        assert!(accept.result >= 0, "joiner accepts via restored listener: {accept:?}");
        // The restored file descriptor reads the same file.
        let read = kernel.syscall(joiner, &SyscallRequest::read(3, 5));
        assert_eq!(read.result, 5);
    }

    #[test]
    fn offline_restore_rebuilds_fs_and_net_on_a_fresh_kernel() {
        let (kernel, pid) = populated_kernel();
        let bytes = kernel.checkpoint(pid, 9, &HashMap::new()).unwrap().encode();

        let fresh = Kernel::new();
        let checkpoint = KernelCheckpoint::decode(&bytes).unwrap();
        fresh.restore_filesystem(&checkpoint).unwrap();
        assert_eq!(
            fresh.read_file("/var/www/index.html").unwrap(),
            b"<html>varan</html>".to_vec()
        );
        assert!(fresh.network().listener(6379).is_some());

        let pid = fresh.spawn_process(&checkpoint.process.name);
        fresh.restore_process(&checkpoint, pid).unwrap();
        let read = fresh.syscall(pid, &SyscallRequest::read(3, 6));
        assert_eq!(read.result, 6, "restored fd 3 reads the restored file");
        assert_eq!(fresh.take_signal(pid), Some(Signal::Sigusr1));
    }

    #[test]
    fn restored_streams_are_disconnected_not_dangling() {
        let (kernel, pid) = populated_kernel();
        // Give the leader a live stream fd.
        let listener = kernel.network().listen(7000, 4).unwrap();
        let _client = kernel.network().connect(7000).unwrap();
        let endpoint = listener.accept(true).unwrap();
        let stream_fd = {
            let mut table = kernel.processes_lock();
            table
                .get_mut(pid)
                .unwrap()
                .install_fd(FdEntry::new(FdObject::Stream(endpoint)))
                .unwrap()
        };
        let checkpoint = kernel.checkpoint(pid, 0, &HashMap::new()).unwrap();
        let joiner = kernel.spawn_process("joiner");
        kernel.restore_process(&checkpoint, joiner).unwrap();
        let read = kernel.syscall(joiner, &SyscallRequest::read(stream_fd, 8));
        // EOF (0), not a hang and not EBADF.
        assert_eq!(read.result, 0);
    }
}
