//! Checkpoint/restore of virtual-kernel state.
//!
//! Elastic membership (followers joining a running N-version execution)
//! needs more than the event stream: a joiner must first acquire the
//! *state* the stream's future events will be interpreted against — open
//! descriptors, the files behind them, the listening sockets, pending
//! signals, and the descriptor-translation map its monitor will use.  A
//! [`KernelCheckpoint`] is a serializable snapshot of exactly that, taken
//! at an event-sequence boundary: `sequence` names the first event the
//! restored state has **not** observed, so a joiner restores the checkpoint
//! and replays the spill journal from `sequence` onwards.
//!
//! Two restore modes exist, because the virtual kernel is shared by every
//! version of a run:
//!
//! * [`Kernel::restore_process`] — live attach: installs the checkpointed
//!   descriptor table into a freshly spawned process *of the same kernel*,
//!   resolving listeners against the live network namespace (a restored
//!   listener shares the accept queue, exactly as a transferred descriptor
//!   would).  The shared fs/net tables are already live truth and are left
//!   untouched.
//! * [`Kernel::restore_filesystem`] + [`Kernel::restore_process`] on a
//!   **fresh** kernel — offline restore: rebuilds files, directories and
//!   listeners from the snapshot first (disaster recovery, or replaying a
//!   journal against a from-scratch kernel).
//!
//! Live stream connections cannot be resurrected from a serialized
//! snapshot (their peer is gone); they restore as disconnected endpoints —
//! reads see EOF, writes see `EPIPE` — which mirrors what a real process
//! would observe after its peer vanished.  Pipe contents are likewise not
//! persisted: a restored pipe is empty.
//!
//! Checkpoints taken in a sequence can be stored incrementally: a
//! [`CheckpointDelta`] carries only the tables that changed since the
//! previous checkpoint, chained by the base checkpoint's CRC32C so a
//! corrupted or misordered link is refused rather than folded into a wrong
//! snapshot ([`KernelCheckpoint::delta_against`],
//! [`KernelCheckpoint::fold_chain`]; docs/DURABILITY.md).

use std::collections::HashMap;
use std::fmt;

use crate::errno::Errno;
use crate::fs::Node;
use crate::kernel::Kernel;
use crate::net::Endpoint;
use crate::process::{FdEntry, FdObject, Pid};
use crate::signal::Signal;

/// Magic bytes opening every encoded checkpoint.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"VRNCKPT1";

/// Magic bytes opening every encoded incremental checkpoint delta.
pub const DELTA_MAGIC: &[u8; 8] = b"VRNCKDL1";

/// Upper bound accepted for any single length field while decoding.
const MAX_FIELD: u64 = 1 << 30;

// ---------------------------------------------------------------------
// CRC32C (Castagnoli), byte-at-a-time.
//
// Deliberately a small private copy of `varan_ring::crc32c`: the delta
// chain's link checksums must not pull a data-plane dependency into the
// kernel crate (varan-ring depends on nothing of the kernel, and the
// kernel stays restorable without a ring).  The algorithm is pinned by
// its standard check value in the tests below, so the two copies cannot
// drift apart silently.
// ---------------------------------------------------------------------

const CRC_POLY: u32 = 0x82F6_3B78;

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc = CRC_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Error produced when an encoded checkpoint cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What was wrong.
    pub reason: &'static str,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt checkpoint at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for CheckpointError {}

/// Serializable form of one descriptor-table object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdObjectSnapshot {
    /// The process console (fds 0–2 and any duplicates).
    Console,
    /// An open VFS file.
    File {
        /// Path of the file.
        path: String,
        /// Read/write offset at checkpoint time.
        offset: u64,
        /// Whether writes append.
        append: bool,
    },
    /// A listening socket; restored by re-attaching to the live listener on
    /// `port` (or re-binding it during an offline restore).
    Listener {
        /// Bound port.
        port: u16,
        /// Backlog the listener was created with.
        backlog: u32,
    },
    /// A connected stream; restores as a disconnected endpoint.
    Stream,
    /// A socket created but not yet listening/connected.
    UnboundSocket {
        /// Port recorded by `bind`, if any.
        bound_port: Option<u16>,
    },
    /// The read end of a pipe (restored empty).
    PipeRead,
    /// The write end of a pipe (restored empty).
    PipeWrite,
    /// An epoll instance with its interest list.
    Epoll {
        /// Descriptors registered with `epoll_ctl`.
        watched: Vec<i32>,
    },
}

/// Serializable form of one descriptor-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdSnapshot {
    /// Descriptor number.
    pub fd: i32,
    /// Close-on-exec flag.
    pub cloexec: bool,
    /// Non-blocking flag.
    pub nonblocking: bool,
    /// The object behind the descriptor.
    pub object: FdObjectSnapshot,
}

/// Serializable form of one virtual process.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProcessSnapshot {
    /// Process name (the "binary" it runs).
    pub name: String,
    /// Next descriptor number the table would hand out.
    pub next_fd: i32,
    /// Program break.
    pub brk: u64,
    /// Next `mmap` address.
    pub next_mmap: u64,
    /// Number of threads the process had spawned.
    pub threads: u32,
    /// Pending (delivered but unconsumed) signal numbers, oldest first.
    pub pending_signals: Vec<u8>,
    /// The descriptor table.
    pub fds: Vec<FdSnapshot>,
}

/// One VFS node in a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSnapshot {
    /// Absolute path.
    pub path: String,
    /// The node at that path.
    pub node: Node,
}

/// A serializable snapshot of the virtual kernel's fs/net/process/signal
/// tables plus a per-version descriptor-translation map, taken at an
/// event-sequence boundary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KernelCheckpoint {
    /// First event sequence the snapshot has **not** observed: journal
    /// replay after restore starts here.
    pub sequence: u64,
    /// The checkpointed process (the leader, for fleet attach).
    pub process: ProcessSnapshot,
    /// Every VFS node (the fs table).
    pub files: Vec<FileSnapshot>,
    /// Ports with live listeners and their backlogs (the net table).
    pub listeners: Vec<(u16, u32)>,
    /// The checkpointed version's descriptor-translation map
    /// (leader descriptor number → descriptor number in that version).
    pub fd_translation: Vec<(i64, i32)>,
    /// Per-shard sequence anchors taken at a consistent cut of a sharded
    /// data plane: component `s` is the first event of shard `s` the
    /// snapshot has not observed, so per-shard journal replay after restore
    /// starts at `shard_cut[s]`.  For an unsharded plane this is the
    /// one-element vector `[sequence]` (and [`KernelCheckpoint::cut_vector`]
    /// normalises a default-constructed empty vector to that).
    pub shard_cut: Vec<u64>,
}

impl KernelCheckpoint {
    /// The consistent-cut vector this checkpoint was taken at, normalising
    /// checkpoints from an unsharded plane (or legacy encodings with no cut)
    /// to the one-element vector `[sequence]`.
    #[must_use]
    pub fn cut_vector(&self) -> Vec<u64> {
        if self.shard_cut.is_empty() {
            vec![self.sequence]
        } else {
            self.shard_cut.clone()
        }
    }
}

// ---------------------------------------------------------------------
// Binary encoding
// ---------------------------------------------------------------------

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn fail<T>(&self, reason: &'static str) -> Result<T, CheckpointError> {
        Err(CheckpointError {
            offset: self.at,
            reason,
        })
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .at
            .checked_add(len)
            .ok_or(CheckpointError {
                offset: self.at,
                reason: "length overflows",
            })?;
        let slice = self.bytes.get(self.at..end).ok_or(CheckpointError {
            offset: self.at,
            reason: "truncated",
        })?;
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn len(&mut self) -> Result<usize, CheckpointError> {
        let len = self.u64()?;
        if len > MAX_FIELD {
            return self.fail("length exceeds the 1 GiB bound");
        }
        Ok(len as usize)
    }

    fn bytes_field(&mut self) -> Result<Vec<u8>, CheckpointError> {
        let len = self.len()?;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, CheckpointError> {
        let bytes = self.bytes_field()?;
        String::from_utf8(bytes).map_err(|_| CheckpointError {
            offset: self.at,
            reason: "invalid utf-8 in string field",
        })
    }
}

fn encode_fd_object(out: &mut Vec<u8>, object: &FdObjectSnapshot) {
    match object {
        FdObjectSnapshot::Console => out.push(0),
        FdObjectSnapshot::File {
            path,
            offset,
            append,
        } => {
            out.push(1);
            put_bytes(out, path.as_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.push(u8::from(*append));
        }
        FdObjectSnapshot::Listener { port, backlog } => {
            out.push(2);
            out.extend_from_slice(&port.to_le_bytes());
            out.extend_from_slice(&backlog.to_le_bytes());
        }
        FdObjectSnapshot::Stream => out.push(3),
        FdObjectSnapshot::UnboundSocket { bound_port } => {
            out.push(4);
            match bound_port {
                Some(port) => {
                    out.push(1);
                    out.extend_from_slice(&port.to_le_bytes());
                }
                None => out.push(0),
            }
        }
        FdObjectSnapshot::PipeRead => out.push(5),
        FdObjectSnapshot::PipeWrite => out.push(6),
        FdObjectSnapshot::Epoll { watched } => {
            out.push(7);
            out.extend_from_slice(&(watched.len() as u64).to_le_bytes());
            for fd in watched {
                out.extend_from_slice(&fd.to_le_bytes());
            }
        }
    }
}

fn decode_fd_object(reader: &mut Reader<'_>) -> Result<FdObjectSnapshot, CheckpointError> {
    Ok(match reader.u8()? {
        0 => FdObjectSnapshot::Console,
        1 => FdObjectSnapshot::File {
            path: reader.string()?,
            offset: reader.u64()?,
            append: reader.u8()? != 0,
        },
        2 => FdObjectSnapshot::Listener {
            port: reader.u16()?,
            backlog: reader.u32()?,
        },
        3 => FdObjectSnapshot::Stream,
        4 => match reader.u8()? {
            0 => FdObjectSnapshot::UnboundSocket { bound_port: None },
            1 => FdObjectSnapshot::UnboundSocket {
                bound_port: Some(reader.u16()?),
            },
            _ => return reader.fail("invalid option tag for bound port"),
        },
        5 => FdObjectSnapshot::PipeRead,
        6 => FdObjectSnapshot::PipeWrite,
        7 => {
            let count = reader.len()?;
            let mut watched = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                watched.push(reader.u32()? as i32);
            }
            FdObjectSnapshot::Epoll { watched }
        }
        _ => return reader.fail("unknown descriptor-object tag"),
    })
}

fn encode_node(out: &mut Vec<u8>, node: &Node) {
    match node {
        Node::File(data) => {
            out.push(0);
            put_bytes(out, data);
        }
        Node::Directory => out.push(1),
        Node::DevNull => out.push(2),
        Node::DevZero => out.push(3),
        Node::DevUrandom => out.push(4),
    }
}

fn decode_node(reader: &mut Reader<'_>) -> Result<Node, CheckpointError> {
    Ok(match reader.u8()? {
        0 => Node::File(reader.bytes_field()?),
        1 => Node::Directory,
        2 => Node::DevNull,
        3 => Node::DevZero,
        4 => Node::DevUrandom,
        _ => return reader.fail("unknown vfs node tag"),
    })
}

fn encode_process(out: &mut Vec<u8>, process: &ProcessSnapshot) {
    put_bytes(out, process.name.as_bytes());
    out.extend_from_slice(&process.next_fd.to_le_bytes());
    out.extend_from_slice(&process.brk.to_le_bytes());
    out.extend_from_slice(&process.next_mmap.to_le_bytes());
    out.extend_from_slice(&process.threads.to_le_bytes());
    put_bytes(out, &process.pending_signals);
    out.extend_from_slice(&(process.fds.len() as u64).to_le_bytes());
    for fd in &process.fds {
        out.extend_from_slice(&fd.fd.to_le_bytes());
        out.push(u8::from(fd.cloexec));
        out.push(u8::from(fd.nonblocking));
        encode_fd_object(out, &fd.object);
    }
}

fn decode_process(reader: &mut Reader<'_>) -> Result<ProcessSnapshot, CheckpointError> {
    let name = reader.string()?;
    let next_fd = reader.u32()? as i32;
    let brk = reader.u64()?;
    let next_mmap = reader.u64()?;
    let threads = reader.u32()?;
    let pending_signals = reader.bytes_field()?;
    let fd_count = reader.len()?;
    let mut fds = Vec::with_capacity(fd_count.min(1 << 16));
    for _ in 0..fd_count {
        let fd = reader.u32()? as i32;
        let cloexec = reader.u8()? != 0;
        let nonblocking = reader.u8()? != 0;
        let object = decode_fd_object(reader)?;
        fds.push(FdSnapshot {
            fd,
            cloexec,
            nonblocking,
            object,
        });
    }
    Ok(ProcessSnapshot {
        name,
        next_fd,
        brk,
        next_mmap,
        threads,
        pending_signals,
        fds,
    })
}

fn encode_files(out: &mut Vec<u8>, files: &[FileSnapshot]) {
    out.extend_from_slice(&(files.len() as u64).to_le_bytes());
    for file in files {
        put_bytes(out, file.path.as_bytes());
        encode_node(out, &file.node);
    }
}

fn decode_files(reader: &mut Reader<'_>) -> Result<Vec<FileSnapshot>, CheckpointError> {
    let file_count = reader.len()?;
    let mut files = Vec::with_capacity(file_count.min(1 << 16));
    for _ in 0..file_count {
        let path = reader.string()?;
        let node = decode_node(reader)?;
        files.push(FileSnapshot { path, node });
    }
    Ok(files)
}

fn encode_listeners(out: &mut Vec<u8>, listeners: &[(u16, u32)]) {
    out.extend_from_slice(&(listeners.len() as u64).to_le_bytes());
    for (port, backlog) in listeners {
        out.extend_from_slice(&port.to_le_bytes());
        out.extend_from_slice(&backlog.to_le_bytes());
    }
}

fn decode_listeners(reader: &mut Reader<'_>) -> Result<Vec<(u16, u32)>, CheckpointError> {
    let listener_count = reader.len()?;
    let mut listeners = Vec::with_capacity(listener_count.min(1 << 16));
    for _ in 0..listener_count {
        listeners.push((reader.u16()?, reader.u32()?));
    }
    Ok(listeners)
}

fn encode_translation(out: &mut Vec<u8>, translation: &[(i64, i32)]) {
    out.extend_from_slice(&(translation.len() as u64).to_le_bytes());
    for (leader_fd, local_fd) in translation {
        out.extend_from_slice(&leader_fd.to_le_bytes());
        out.extend_from_slice(&local_fd.to_le_bytes());
    }
}

fn decode_translation(reader: &mut Reader<'_>) -> Result<Vec<(i64, i32)>, CheckpointError> {
    let translation_count = reader.len()?;
    let mut fd_translation = Vec::with_capacity(translation_count.min(1 << 16));
    for _ in 0..translation_count {
        let leader_fd = reader.u64()? as i64;
        let local_fd = reader.u32()? as i32;
        fd_translation.push((leader_fd, local_fd));
    }
    Ok(fd_translation)
}

fn encode_cut(out: &mut Vec<u8>, cut: &[u64]) {
    out.extend_from_slice(&(cut.len() as u64).to_le_bytes());
    for component in cut {
        out.extend_from_slice(&component.to_le_bytes());
    }
}

fn decode_cut(reader: &mut Reader<'_>) -> Result<Vec<u64>, CheckpointError> {
    let cut_len = reader.len()?;
    let mut shard_cut = Vec::with_capacity(cut_len.min(1 << 10));
    for _ in 0..cut_len {
        shard_cut.push(reader.u64()?);
    }
    Ok(shard_cut)
}

impl KernelCheckpoint {
    /// Serialises the checkpoint into its binary form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(CHECKPOINT_MAGIC);
        out.extend_from_slice(&self.sequence.to_le_bytes());
        encode_process(&mut out, &self.process);
        encode_files(&mut out, &self.files);
        encode_listeners(&mut out, &self.listeners);
        encode_translation(&mut out, &self.fd_translation);
        encode_cut(&mut out, &self.shard_cut);
        out
    }

    /// The checkpoint's CRC32C over its canonical encoding — the identity a
    /// [`CheckpointDelta`] chains against, so a delta can never be applied
    /// to a base that differs (even by one bit) from the snapshot it was
    /// computed from.
    #[must_use]
    pub fn checksum(&self) -> u32 {
        crc32c(&self.encode())
    }

    /// Decodes a checkpoint previously produced by [`KernelCheckpoint::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] with the failing offset if the bytes are
    /// truncated, carry invalid tags or lie about any length.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut reader = Reader { bytes, at: 0 };
        if reader.take(CHECKPOINT_MAGIC.len())? != CHECKPOINT_MAGIC {
            return Err(CheckpointError {
                offset: 0,
                reason: "missing checkpoint magic",
            });
        }
        let sequence = reader.u64()?;
        let process = decode_process(&mut reader)?;
        let files = decode_files(&mut reader)?;
        let listeners = decode_listeners(&mut reader)?;
        let fd_translation = decode_translation(&mut reader)?;
        let shard_cut = decode_cut(&mut reader)?;
        if reader.at != bytes.len() {
            return reader.fail("trailing bytes after checkpoint");
        }
        Ok(KernelCheckpoint {
            sequence,
            process,
            files,
            listeners,
            fd_translation,
            shard_cut,
        })
    }
}

// ---------------------------------------------------------------------
// Incremental checkpoints
// ---------------------------------------------------------------------

/// An incremental checkpoint: the tables that changed between a base
/// [`KernelCheckpoint`] and a later one, at table granularity.
///
/// Restore folds a base checkpoint plus a chain of deltas back into the
/// full snapshot ([`KernelCheckpoint::fold_chain`]).  Every link carries
/// the CRC32C of the exact base it was computed from, so a delta can never
/// be applied to a checkpoint that differs — even by one bit — from the
/// one it extends; corruption anywhere in the chain is detected instead of
/// silently producing a wrong snapshot (docs/DURABILITY.md).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointDelta {
    /// Event sequence of the checkpoint this delta produces when applied.
    pub sequence: u64,
    /// Event sequence of the base checkpoint the delta was computed from.
    pub base_sequence: u64,
    /// CRC32C of the base checkpoint's canonical encoding
    /// ([`KernelCheckpoint::checksum`]); [`KernelCheckpoint::apply_delta`]
    /// refuses the link if its actual base disagrees.
    pub base_checksum: u32,
    /// Replacement process table, or `None` if unchanged since the base.
    pub process: Option<ProcessSnapshot>,
    /// Replacement filesystem table, or `None` if unchanged.
    pub files: Option<Vec<FileSnapshot>>,
    /// Replacement listener table, or `None` if unchanged.
    pub listeners: Option<Vec<(u16, u32)>>,
    /// Replacement descriptor-translation map, or `None` if unchanged.
    pub fd_translation: Option<Vec<(i64, i32)>>,
    /// Replacement per-shard cut vector, or `None` if unchanged.
    pub shard_cut: Option<Vec<u64>>,
}

impl CheckpointDelta {
    /// True if the delta changes nothing except the sequence stamp.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.process.is_none()
            && self.files.is_none()
            && self.listeners.is_none()
            && self.fd_translation.is_none()
            && self.shard_cut.is_none()
    }

    /// Serialises the delta into its binary form: magic, sequence pair,
    /// base checksum, five tagged optional table sections, and a trailing
    /// CRC32C over everything before it.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        fn section<T>(out: &mut Vec<u8>, table: &Option<T>, encode: impl FnOnce(&mut Vec<u8>, &T)) {
            match table {
                None => out.push(0),
                Some(value) => {
                    out.push(1);
                    encode(out, value);
                }
            }
        }
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(DELTA_MAGIC);
        out.extend_from_slice(&self.sequence.to_le_bytes());
        out.extend_from_slice(&self.base_sequence.to_le_bytes());
        out.extend_from_slice(&self.base_checksum.to_le_bytes());
        section(&mut out, &self.process, encode_process);
        section(&mut out, &self.files, |out, files| encode_files(out, files));
        section(&mut out, &self.listeners, |out, listeners| {
            encode_listeners(out, listeners);
        });
        section(&mut out, &self.fd_translation, |out, translation| {
            encode_translation(out, translation);
        });
        section(&mut out, &self.shard_cut, |out, cut| encode_cut(out, cut));
        let crc = crc32c(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a delta previously produced by [`CheckpointDelta::encode`],
    /// verifying the trailing CRC before trusting any field.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] with the failing offset if the bytes are
    /// truncated, fail the integrity check, carry invalid tags or lie about
    /// any length.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        const CRC_LEN: usize = 4;
        if bytes.len() < DELTA_MAGIC.len() + CRC_LEN {
            return Err(CheckpointError {
                offset: bytes.len(),
                reason: "truncated checkpoint delta",
            });
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - CRC_LEN);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte slice"));
        if crc32c(body) != stored {
            return Err(CheckpointError {
                offset: body.len(),
                reason: "checkpoint delta checksum mismatch",
            });
        }
        let mut reader = Reader { bytes: body, at: 0 };
        if reader.take(DELTA_MAGIC.len())? != DELTA_MAGIC {
            return Err(CheckpointError {
                offset: 0,
                reason: "missing checkpoint delta magic",
            });
        }
        let sequence = reader.u64()?;
        let base_sequence = reader.u64()?;
        let base_checksum = reader.u32()?;
        fn section<T>(
            reader: &mut Reader<'_>,
            decode: impl FnOnce(&mut Reader<'_>) -> Result<T, CheckpointError>,
        ) -> Result<Option<T>, CheckpointError> {
            match reader.u8()? {
                0 => Ok(None),
                1 => Ok(Some(decode(reader)?)),
                _ => reader.fail("invalid delta section tag"),
            }
        }
        let process = section(&mut reader, decode_process)?;
        let files = section(&mut reader, decode_files)?;
        let listeners = section(&mut reader, decode_listeners)?;
        let fd_translation = section(&mut reader, decode_translation)?;
        let shard_cut = section(&mut reader, decode_cut)?;
        if reader.at != body.len() {
            return reader.fail("trailing bytes after checkpoint delta");
        }
        Ok(CheckpointDelta {
            sequence,
            base_sequence,
            base_checksum,
            process,
            files,
            listeners,
            fd_translation,
            shard_cut,
        })
    }
}

impl KernelCheckpoint {
    /// Computes the incremental checkpoint that turns `prev` into `self`:
    /// only tables that actually differ are carried, each as a whole
    /// (table-granularity diffing keeps the codec bounds-checkable and the
    /// restore fold trivially associative).
    #[must_use]
    pub fn delta_against(&self, prev: &KernelCheckpoint) -> CheckpointDelta {
        CheckpointDelta {
            sequence: self.sequence,
            base_sequence: prev.sequence,
            base_checksum: prev.checksum(),
            process: (self.process != prev.process).then(|| self.process.clone()),
            files: (self.files != prev.files).then(|| self.files.clone()),
            listeners: (self.listeners != prev.listeners).then(|| self.listeners.clone()),
            fd_translation: (self.fd_translation != prev.fd_translation)
                .then(|| self.fd_translation.clone()),
            shard_cut: (self.shard_cut != prev.shard_cut).then(|| self.shard_cut.clone()),
        }
    }

    /// Applies one delta link, producing the next checkpoint in the chain.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] if the delta was not computed against
    /// exactly this checkpoint: a sequence mismatch, or a base-checksum
    /// mismatch (the base was corrupted, or the chain links were reordered).
    pub fn apply_delta(&self, delta: &CheckpointDelta) -> Result<KernelCheckpoint, CheckpointError> {
        if delta.base_sequence != self.sequence {
            return Err(CheckpointError {
                offset: 0,
                reason: "delta base sequence does not match the checkpoint it is applied to",
            });
        }
        if delta.base_checksum != self.checksum() {
            return Err(CheckpointError {
                offset: 0,
                reason: "checksum-mismatched delta link",
            });
        }
        Ok(KernelCheckpoint {
            sequence: delta.sequence,
            process: delta.process.clone().unwrap_or_else(|| self.process.clone()),
            files: delta.files.clone().unwrap_or_else(|| self.files.clone()),
            listeners: delta
                .listeners
                .clone()
                .unwrap_or_else(|| self.listeners.clone()),
            fd_translation: delta
                .fd_translation
                .clone()
                .unwrap_or_else(|| self.fd_translation.clone()),
            shard_cut: delta
                .shard_cut
                .clone()
                .unwrap_or_else(|| self.shard_cut.clone()),
        })
    }

    /// Folds a base checkpoint and an ordered delta chain into the final
    /// checkpoint, verifying every link's base checksum along the way.
    ///
    /// # Errors
    ///
    /// Returns the first link's [`CheckpointError`] if any delta in the
    /// chain fails [`KernelCheckpoint::apply_delta`]'s identity checks.
    pub fn fold_chain(
        base: &KernelCheckpoint,
        deltas: &[CheckpointDelta],
    ) -> Result<KernelCheckpoint, CheckpointError> {
        let mut current = base.clone();
        for delta in deltas {
            current = current.apply_delta(delta)?;
        }
        Ok(current)
    }
}

// ---------------------------------------------------------------------
// Taking and restoring checkpoints
// ---------------------------------------------------------------------

pub(crate) fn snapshot_fd_object(object: &FdObject) -> FdObjectSnapshot {
    match object {
        FdObject::Console => FdObjectSnapshot::Console,
        FdObject::File {
            path,
            offset,
            append,
        } => FdObjectSnapshot::File {
            path: path.clone(),
            offset: *offset,
            append: *append,
        },
        FdObject::Listener(listener) => FdObjectSnapshot::Listener {
            port: listener.port(),
            backlog: listener.backlog() as u32,
        },
        FdObject::Stream(_) => FdObjectSnapshot::Stream,
        FdObject::UnboundSocket { bound_port } => FdObjectSnapshot::UnboundSocket {
            bound_port: *bound_port,
        },
        FdObject::PipeRead(_) => FdObjectSnapshot::PipeRead,
        FdObject::PipeWrite(_) => FdObjectSnapshot::PipeWrite,
        FdObject::Epoll { watched } => FdObjectSnapshot::Epoll {
            watched: watched.clone(),
        },
    }
}

impl Kernel {
    /// Takes a checkpoint of this kernel's fs/net/signal tables and of
    /// process `pid`'s state, stamped with event `sequence` (the first event
    /// the snapshot has not observed) and carrying `fd_translation` as the
    /// checkpointed version's descriptor-translation map.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] if `pid` is unknown.
    pub fn checkpoint(
        &self,
        pid: Pid,
        sequence: u64,
        fd_translation: &HashMap<i64, i32>,
    ) -> Result<KernelCheckpoint, Errno> {
        let process = self.snapshot_process(pid)?;
        let files = self
            .vfs_entries()
            .into_iter()
            .map(|(path, node)| FileSnapshot { path, node })
            .collect();
        let listeners = self
            .network()
            .live_listeners_snapshot()
            .into_iter()
            .map(|(port, backlog)| (port, backlog as u32))
            .collect();
        let mut fd_translation: Vec<(i64, i32)> =
            fd_translation.iter().map(|(&k, &v)| (k, v)).collect();
        fd_translation.sort_unstable();
        Ok(KernelCheckpoint {
            sequence,
            process,
            files,
            listeners,
            fd_translation,
            shard_cut: vec![sequence],
        })
    }

    /// Takes a checkpoint at a **consistent cut** of a sharded data plane:
    /// `cut[s]` is the first event of shard `s` the snapshot has not
    /// observed (each shard's journal tail, read before the snapshot).  The
    /// scalar `sequence` is set to the control shard's component, keeping
    /// unsharded consumers of the checkpoint meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] if `pid` is unknown.
    pub fn checkpoint_at_cut(
        &self,
        pid: Pid,
        cut: &[u64],
        fd_translation: &HashMap<i64, i32>,
    ) -> Result<KernelCheckpoint, Errno> {
        let sequence = cut.first().copied().unwrap_or(0);
        let mut checkpoint = self.checkpoint(pid, sequence, fd_translation)?;
        checkpoint.shard_cut = cut.to_vec();
        Ok(checkpoint)
    }

    /// Restores a checkpointed process image into the (already spawned)
    /// process `target`: descriptor table, pending signals, break and mmap
    /// cursors.  Listeners re-attach to the live network namespace when the
    /// port is still bound (sharing the accept queue, as a transferred
    /// descriptor would) and are re-bound otherwise; streams restore as
    /// disconnected endpoints; pipes restore empty.
    ///
    /// Returns the joiner's descriptor-translation map: every checkpointed
    /// descriptor is installed *at its original number*, so the map is the
    /// identity over the snapshot's descriptors — exactly what a follower
    /// monitor needs to translate the leader's descriptor arguments.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] if `target` is unknown.
    pub fn restore_process(
        &self,
        checkpoint: &KernelCheckpoint,
        target: Pid,
    ) -> Result<HashMap<i64, i32>, Errno> {
        let mut entries = Vec::with_capacity(checkpoint.process.fds.len());
        let mut translation = HashMap::with_capacity(checkpoint.process.fds.len());
        for fd in &checkpoint.process.fds {
            let object = match &fd.object {
                FdObjectSnapshot::Console => FdObject::Console,
                FdObjectSnapshot::File {
                    path,
                    offset,
                    append,
                } => FdObject::File {
                    path: path.clone(),
                    offset: *offset,
                    append: *append,
                },
                FdObjectSnapshot::Listener { port, backlog } => {
                    let listener = match self.network().listener(*port) {
                        Some(live) => live,
                        None => self
                            .network()
                            .listen(*port, *backlog as usize)
                            .map_err(|_| Errno::EADDRINUSE)?,
                    };
                    FdObject::Listener(listener)
                }
                FdObjectSnapshot::Stream => FdObject::Stream(Endpoint::disconnected()),
                FdObjectSnapshot::UnboundSocket { bound_port } => FdObject::UnboundSocket {
                    bound_port: *bound_port,
                },
                FdObjectSnapshot::PipeRead => {
                    FdObject::PipeRead(std::sync::Arc::new(crate::process::Pipe::default()))
                }
                FdObjectSnapshot::PipeWrite => {
                    FdObject::PipeWrite(std::sync::Arc::new(crate::process::Pipe::default()))
                }
                FdObjectSnapshot::Epoll { watched } => FdObject::Epoll {
                    watched: watched.clone(),
                },
            };
            let mut entry = FdEntry::new(object);
            entry.cloexec = fd.cloexec;
            entry.nonblocking = fd.nonblocking;
            entries.push((fd.fd, entry));
            translation.insert(i64::from(fd.fd), fd.fd);
        }
        {
            let mut table = self.processes_lock();
            let process = table.get_mut(target)?;
            process.restore_fds(entries, checkpoint.process.next_fd);
            process.brk = checkpoint.process.brk;
            process.next_mmap = checkpoint.process.next_mmap;
            for signo in &checkpoint.process.pending_signals {
                if let Some(signal) = Signal::from_number(*signo) {
                    process.deliver_signal(signal);
                }
            }
        }
        Ok(translation)
    }

    /// Rebuilds the checkpointed fs and net tables into this kernel:
    /// missing files, directories, devices and listeners are created; paths
    /// that already exist are left untouched (the live tables are newer
    /// truth than the snapshot).  Use on a fresh kernel for a full offline
    /// restore.
    ///
    /// # Errors
    ///
    /// Propagates VFS errors for unrestorable paths.
    pub fn restore_filesystem(&self, checkpoint: &KernelCheckpoint) -> Result<(), Errno> {
        // Parents first: the snapshot is sorted by construction (BTreeMap
        // iteration order), but re-sort defensively for decoded inputs.
        let mut files = checkpoint.files.clone();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        for file in &files {
            if self.file_exists(&file.path) {
                continue;
            }
            match &file.node {
                Node::Directory => self.vfs_mkdir(&file.path)?,
                Node::File(data) => self.populate_file(&file.path, data.clone())?,
                // Devices exist in every fresh VFS; nothing to do for the
                // standard ones, and custom device paths are not supported.
                Node::DevNull | Node::DevZero | Node::DevUrandom => {}
            }
        }
        for (port, backlog) in &checkpoint.listeners {
            if self.network().listener(*port).is_none() {
                let _ = self.network().listen(*port, *backlog as usize);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscall::SyscallRequest;
    use crate::Sysno;

    fn populated_kernel() -> (Kernel, Pid) {
        let kernel = Kernel::new();
        kernel
            .populate_file("/var/www/index.html", b"<html>varan</html>".to_vec())
            .unwrap();
        let pid = kernel.spawn_process("server-v1");
        // open a file
        let open = kernel.syscall(pid, &SyscallRequest::open("/var/www/index.html", 0));
        assert!(open.result >= 0);
        // socket + bind + listen
        let sock = kernel.syscall(pid, &SyscallRequest::new(Sysno::Socket, [0; 6]));
        assert!(sock.result >= 0);
        let fd = sock.result as u64;
        kernel.syscall(pid, &SyscallRequest::new(Sysno::Bind, [fd, 6379, 0, 0, 0, 0]));
        let listen =
            kernel.syscall(pid, &SyscallRequest::new(Sysno::Listen, [fd, 16, 0, 0, 0, 0]));
        assert_eq!(listen.result, 0);
        kernel.deliver_signal(pid, Signal::Sigusr1).unwrap();
        (kernel, pid)
    }

    #[test]
    fn checkpoint_captures_all_four_tables() {
        let (kernel, pid) = populated_kernel();
        let translation: HashMap<i64, i32> = [(3i64, 3i32)].into_iter().collect();
        let checkpoint = kernel.checkpoint(pid, 42, &translation).unwrap();
        assert_eq!(checkpoint.sequence, 42);
        assert_eq!(checkpoint.process.name, "server-v1");
        assert!(checkpoint.process.fds.len() >= 5, "console x3 + file + listener");
        assert!(checkpoint
            .files
            .iter()
            .any(|f| f.path == "/var/www/index.html"));
        assert_eq!(checkpoint.listeners, vec![(6379, 16)]);
        assert_eq!(checkpoint.process.pending_signals, vec![Signal::Sigusr1.number()]);
        assert_eq!(checkpoint.fd_translation, vec![(3, 3)]);
        assert!(kernel.checkpoint(999, 0, &HashMap::new()).is_err());
    }

    #[test]
    fn encode_decode_round_trips() {
        let (kernel, pid) = populated_kernel();
        let checkpoint = kernel.checkpoint(pid, 7, &HashMap::new()).unwrap();
        let bytes = checkpoint.encode();
        let decoded = KernelCheckpoint::decode(&bytes).unwrap();
        assert_eq!(decoded, checkpoint);
    }

    #[test]
    fn decode_rejects_truncated_and_corrupt_bytes() {
        assert!(KernelCheckpoint::decode(b"junk").is_err());
        let (kernel, pid) = populated_kernel();
        let checkpoint = kernel.checkpoint(pid, 7, &HashMap::new()).unwrap();
        let bytes = checkpoint.encode();
        // Every truncation point must fail cleanly, never panic.
        for cut in [1, 8, 16, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(KernelCheckpoint::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Corrupt magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(KernelCheckpoint::decode(&bad).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(KernelCheckpoint::decode(&long).is_err());
        // A length field claiming more than the 1 GiB bound.
        let mut lying = bytes;
        lying[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(KernelCheckpoint::decode(&lying).is_err());
    }

    #[test]
    fn live_restore_shares_the_listener_and_translates_identically() {
        let (kernel, pid) = populated_kernel();
        let checkpoint = kernel.checkpoint(pid, 0, &HashMap::new()).unwrap();
        let joiner = kernel.spawn_process("joiner");
        let translation = kernel.restore_process(&checkpoint, joiner).unwrap();
        // Identity translation over every checkpointed descriptor.
        for fd in &checkpoint.process.fds {
            assert_eq!(translation.get(&i64::from(fd.fd)), Some(&fd.fd));
        }
        // The restored listener shares the live accept queue: a connection
        // made to the leader's port is acceptable through the joiner's fd.
        let _client = kernel.network().connect(6379).unwrap();
        let accept = kernel.syscall(joiner, &SyscallRequest::new(Sysno::Accept, [4, 0, 0, 0, 0, 0]));
        assert!(accept.result >= 0, "joiner accepts via restored listener: {accept:?}");
        // The restored file descriptor reads the same file.
        let read = kernel.syscall(joiner, &SyscallRequest::read(3, 5));
        assert_eq!(read.result, 5);
    }

    #[test]
    fn offline_restore_rebuilds_fs_and_net_on_a_fresh_kernel() {
        let (kernel, pid) = populated_kernel();
        let bytes = kernel.checkpoint(pid, 9, &HashMap::new()).unwrap().encode();

        let fresh = Kernel::new();
        let checkpoint = KernelCheckpoint::decode(&bytes).unwrap();
        fresh.restore_filesystem(&checkpoint).unwrap();
        assert_eq!(
            fresh.read_file("/var/www/index.html").unwrap(),
            b"<html>varan</html>".to_vec()
        );
        assert!(fresh.network().listener(6379).is_some());

        let pid = fresh.spawn_process(&checkpoint.process.name);
        fresh.restore_process(&checkpoint, pid).unwrap();
        let read = fresh.syscall(pid, &SyscallRequest::read(3, 6));
        assert_eq!(read.result, 6, "restored fd 3 reads the restored file");
        assert_eq!(fresh.take_signal(pid), Some(Signal::Sigusr1));
    }

    #[test]
    fn restored_streams_are_disconnected_not_dangling() {
        let (kernel, pid) = populated_kernel();
        // Give the leader a live stream fd.
        let listener = kernel.network().listen(7000, 4).unwrap();
        let _client = kernel.network().connect(7000).unwrap();
        let endpoint = listener.accept(true).unwrap();
        let stream_fd = {
            let mut table = kernel.processes_lock();
            table
                .get_mut(pid)
                .unwrap()
                .install_fd(FdEntry::new(FdObject::Stream(endpoint)))
                .unwrap()
        };
        let checkpoint = kernel.checkpoint(pid, 0, &HashMap::new()).unwrap();
        let joiner = kernel.spawn_process("joiner");
        kernel.restore_process(&checkpoint, joiner).unwrap();
        let read = kernel.syscall(joiner, &SyscallRequest::read(stream_fd, 8));
        // EOF (0), not a hang and not EBADF.
        assert_eq!(read.result, 0);
    }

    #[test]
    fn private_crc_copy_matches_the_published_check_value() {
        // Pins this module's private CRC32C to the standard catalogue check
        // value, so it can never silently diverge from varan_ring::crc32c.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn delta_carries_only_changed_tables() {
        let (kernel, pid) = populated_kernel();
        let base = kernel.checkpoint(pid, 10, &HashMap::new()).unwrap();
        // Mutate only the fs table between checkpoints.
        kernel.populate_file("/tmp/app.log", b"line".to_vec()).unwrap();
        let next = kernel.checkpoint(pid, 20, &HashMap::new()).unwrap();
        let delta = next.delta_against(&base);
        assert_eq!(delta.sequence, 20);
        assert_eq!(delta.base_sequence, 10);
        assert_eq!(delta.base_checksum, base.checksum());
        assert!(delta.files.is_some(), "fs table changed");
        assert!(delta.process.is_none(), "process table unchanged");
        assert!(delta.listeners.is_none());
        assert!(delta.fd_translation.is_none());
        // The cut vector is stamped with the sequence, so it always changes
        // between checkpoints at different sequences.
        assert!(delta.shard_cut.is_some());
        assert!(!delta.is_empty());
        assert_eq!(base.apply_delta(&delta).unwrap(), next);
    }

    #[test]
    fn delta_encode_decode_round_trips_and_rejects_damage() {
        let (kernel, pid) = populated_kernel();
        let base = kernel.checkpoint(pid, 1, &HashMap::new()).unwrap();
        kernel.populate_file("/etc/config", b"v2".to_vec()).unwrap();
        let next = kernel.checkpoint(pid, 2, &HashMap::new()).unwrap();
        let delta = next.delta_against(&base);
        let bytes = delta.encode();
        assert_eq!(CheckpointDelta::decode(&bytes).unwrap(), delta);

        // Every truncation fails cleanly.
        for cut in [0, 1, 8, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(CheckpointDelta::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Any single corrupted byte is caught by the trailing CRC.
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(CheckpointDelta::decode(&bad).is_err(), "flip at {at} undetected");
        }
        // Trailing garbage moves the CRC out of place.
        let mut long = bytes.clone();
        long.push(0);
        assert!(CheckpointDelta::decode(&long).is_err());
    }

    #[test]
    fn apply_delta_refuses_mismatched_links() {
        let (kernel, pid) = populated_kernel();
        let base = kernel.checkpoint(pid, 1, &HashMap::new()).unwrap();
        kernel.populate_file("/a", b"x".to_vec()).unwrap();
        let next = kernel.checkpoint(pid, 2, &HashMap::new()).unwrap();
        let delta = next.delta_against(&base);

        // Wrong base sequence: the link is not for this checkpoint.
        let mut wrong_seq = delta.clone();
        wrong_seq.base_sequence = 999;
        let err = base.apply_delta(&wrong_seq).unwrap_err();
        assert!(err.reason.contains("base sequence"), "{}", err.reason);

        // A base that differs by one bit from the recorded checksum.
        let mut tampered_base = base.clone();
        tampered_base.process.brk ^= 1;
        let err = tampered_base.apply_delta(&delta).unwrap_err();
        assert_eq!(err.reason, "checksum-mismatched delta link");

        // The honest base still applies.
        assert_eq!(base.apply_delta(&delta).unwrap(), next);
    }

    #[test]
    fn folding_a_chain_reproduces_the_full_checkpoint() {
        let (kernel, pid) = populated_kernel();
        let translation: HashMap<i64, i32> = [(3i64, 3i32)].into_iter().collect();
        let c1 = kernel.checkpoint(pid, 100, &HashMap::new()).unwrap();
        kernel.populate_file("/data/1", b"one".to_vec()).unwrap();
        let c2 = kernel.checkpoint(pid, 200, &HashMap::new()).unwrap();
        kernel.populate_file("/data/2", b"two".to_vec()).unwrap();
        kernel.deliver_signal(pid, Signal::Sigusr1).unwrap();
        let c3 = kernel.checkpoint(pid, 300, &translation).unwrap();

        let d2 = c2.delta_against(&c1);
        let d3 = c3.delta_against(&c2);
        let folded = KernelCheckpoint::fold_chain(&c1, &[d2.clone(), d3.clone()]).unwrap();
        assert_eq!(folded, c3);
        assert_eq!(folded.checksum(), c3.checksum());
        assert_eq!(folded.encode(), c3.encode());

        // Reordering the chain breaks the checksum links.
        assert!(KernelCheckpoint::fold_chain(&c1, &[d3, d2]).is_err());
    }

    #[test]
    fn empty_delta_round_trips_and_applies() {
        let (kernel, pid) = populated_kernel();
        let base = kernel.checkpoint(pid, 5, &HashMap::new()).unwrap();
        // Same sequence, nothing mutated: every table section is omitted.
        let same = kernel.checkpoint(pid, 5, &HashMap::new()).unwrap();
        let delta = same.delta_against(&base);
        assert!(delta.is_empty());
        let bytes = delta.encode();
        assert_eq!(CheckpointDelta::decode(&bytes).unwrap(), delta);
        assert_eq!(base.apply_delta(&delta).unwrap(), base);
    }
}
