//! Signal numbers and per-process pending sets.
//!
//! Signals play two roles in VARAN: they are one of the event kinds streamed
//! from the leader to the followers (§2.2), and the `SIGSEGV` handler
//! installed in every version is how the coordinator learns that a version
//! crashed during transparent failover (§5.1).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Signal numbers used by the virtual kernel (Linux values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Signal {
    /// Interactive interrupt.
    Sigint = 2,
    /// Kill (cannot be handled).
    Sigkill = 9,
    /// User-defined signal 1.
    Sigusr1 = 10,
    /// Invalid memory reference — the crash signal used by failover.
    Sigsegv = 11,
    /// Broken pipe.
    Sigpipe = 13,
    /// Termination request.
    Sigterm = 15,
    /// Child status changed.
    Sigchld = 17,
    /// Bad system call (seccomp's `SECCOMP_RET_TRAP` delivers this).
    Sigsys = 31,
}

impl Signal {
    /// The signal's number.
    #[must_use]
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Looks a signal up by number.
    #[must_use]
    pub fn from_number(number: u8) -> Option<Signal> {
        Some(match number {
            2 => Signal::Sigint,
            9 => Signal::Sigkill,
            10 => Signal::Sigusr1,
            11 => Signal::Sigsegv,
            13 => Signal::Sigpipe,
            15 => Signal::Sigterm,
            17 => Signal::Sigchld,
            31 => Signal::Sigsys,
            _ => return None,
        })
    }

    /// Returns `true` if the default disposition of this signal terminates
    /// the process.
    #[must_use]
    pub fn is_fatal(self) -> bool {
        !matches!(self, Signal::Sigchld | Signal::Sigusr1)
    }
}

/// A FIFO of signals delivered to a process but not yet consumed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PendingSignals {
    queue: VecDeque<Signal>,
}

impl PendingSignals {
    /// Creates an empty pending set.
    #[must_use]
    pub fn new() -> Self {
        PendingSignals::default()
    }

    /// Queues a signal for delivery.
    pub fn push(&mut self, signal: Signal) {
        self.queue.push_back(signal);
    }

    /// Dequeues the oldest pending signal.
    pub fn pop(&mut self) -> Option<Signal> {
        self.queue.pop_front()
    }

    /// Returns `true` if no signals are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of pending signals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if `signal` is pending.
    #[must_use]
    pub fn contains(&self, signal: Signal) -> bool {
        self.queue.contains(&signal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_match_linux() {
        assert_eq!(Signal::Sigsegv.number(), 11);
        assert_eq!(Signal::Sigkill.number(), 9);
        assert_eq!(Signal::Sigsys.number(), 31);
        assert_eq!(Signal::from_number(11), Some(Signal::Sigsegv));
        assert_eq!(Signal::from_number(250), None);
    }

    #[test]
    fn fatality_classification() {
        assert!(Signal::Sigsegv.is_fatal());
        assert!(Signal::Sigkill.is_fatal());
        assert!(!Signal::Sigchld.is_fatal());
        assert!(!Signal::Sigusr1.is_fatal());
    }

    #[test]
    fn pending_queue_is_fifo() {
        let mut pending = PendingSignals::new();
        assert!(pending.is_empty());
        pending.push(Signal::Sigusr1);
        pending.push(Signal::Sigsegv);
        assert_eq!(pending.len(), 2);
        assert!(pending.contains(Signal::Sigsegv));
        assert_eq!(pending.pop(), Some(Signal::Sigusr1));
        assert_eq!(pending.pop(), Some(Signal::Sigsegv));
        assert_eq!(pending.pop(), None);
    }
}
