//! The virtual monotonic clock.
//!
//! The simulated machine needs a notion of time that is (a) deterministic and
//! (b) advanced by the cost model rather than by the host's wall clock, so
//! that experiments are reproducible.  The clock counts cycles; helpers
//! convert to seconds/microseconds for the `time`, `gettimeofday` and
//! `clock_gettime` system calls.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cost::Cycles;

/// Epoch offset reported by the clock, so that `time()` returns a plausible
/// Unix timestamp instead of a small number (2015-03-16, the week the paper
/// was presented at ASPLOS).
pub const EPOCH_SECONDS: u64 = 1_426_464_000;

/// A shared, monotonically increasing cycle counter.
#[derive(Debug, Default)]
pub struct VirtualClock {
    cycles: AtomicU64,
    cycles_per_us: u64,
}

impl VirtualClock {
    /// Creates a clock for a machine running at `cycles_per_us` cycles per
    /// microsecond (3500 for the paper's 3.5 GHz Xeon).
    #[must_use]
    pub fn new(cycles_per_us: u64) -> Self {
        VirtualClock {
            cycles: AtomicU64::new(0),
            cycles_per_us: cycles_per_us.max(1),
        }
    }

    /// Current cycle count.
    #[must_use]
    pub fn cycles(&self) -> Cycles {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Advances the clock by `cycles` and returns the new value.
    pub fn advance(&self, cycles: Cycles) -> Cycles {
        self.cycles.fetch_add(cycles, Ordering::Relaxed) + cycles
    }

    /// Current time in whole microseconds since boot.
    #[must_use]
    pub fn micros(&self) -> u64 {
        self.cycles() / self.cycles_per_us
    }

    /// Current Unix timestamp in seconds (epoch-offset plus elapsed time),
    /// which is what the `time` system call returns.
    #[must_use]
    pub fn unix_seconds(&self) -> u64 {
        EPOCH_SECONDS + self.micros() / 1_000_000
    }

    /// `(seconds, microseconds)` pair as returned by `gettimeofday`.
    #[must_use]
    pub fn timeofday(&self) -> (u64, u64) {
        let micros = self.micros();
        (EPOCH_SECONDS + micros / 1_000_000, micros % 1_000_000)
    }

    /// `(seconds, nanoseconds)` pair as returned by `clock_gettime` with a
    /// monotonic clock id.
    #[must_use]
    pub fn monotonic(&self) -> (u64, u64) {
        let nanos = self.micros() * 1_000 + (self.cycles() % self.cycles_per_us) * 1_000
            / self.cycles_per_us;
        (nanos / 1_000_000_000, nanos % 1_000_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let clock = VirtualClock::new(3_500);
        assert_eq!(clock.cycles(), 0);
        assert_eq!(clock.advance(7_000), 7_000);
        assert_eq!(clock.cycles(), 7_000);
        assert_eq!(clock.micros(), 2);
    }

    #[test]
    fn unix_time_starts_at_epoch_offset() {
        let clock = VirtualClock::new(3_500);
        assert_eq!(clock.unix_seconds(), EPOCH_SECONDS);
        clock.advance(3_500 * 1_000_000 * 3); // three simulated seconds
        assert_eq!(clock.unix_seconds(), EPOCH_SECONDS + 3);
    }

    #[test]
    fn timeofday_carries_microseconds() {
        let clock = VirtualClock::new(1_000);
        clock.advance(1_500_000); // 1.5 ms -> 1500 us
        let (seconds, micros) = clock.timeofday();
        assert_eq!(seconds, EPOCH_SECONDS);
        assert_eq!(micros, 1_500);
    }

    #[test]
    fn monotonic_reports_nanoseconds() {
        let clock = VirtualClock::new(1_000);
        clock.advance(2_000_000_000); // 2 s worth of cycles at 1 GHz
        let (seconds, nanos) = clock.monotonic();
        assert_eq!(seconds, 2);
        assert!(nanos < 1_000_000_000);
    }

    #[test]
    fn zero_frequency_is_clamped() {
        let clock = VirtualClock::new(0);
        clock.advance(10);
        assert_eq!(clock.micros(), 10);
    }
}
