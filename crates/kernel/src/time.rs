//! The virtual monotonic clock.
//!
//! The simulated machine needs a notion of time that is (a) deterministic and
//! (b) advanced by the cost model rather than by the host's wall clock, so
//! that experiments are reproducible.  The clock counts cycles; helpers
//! convert to seconds/microseconds for the `time`, `gettimeofday` and
//! `clock_gettime` system calls.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crate::cost::Cycles;

/// Epoch offset reported by the clock, so that `time()` returns a plausible
/// Unix timestamp instead of a small number (2015-03-16, the week the paper
/// was presented at ASPLOS).
pub const EPOCH_SECONDS: u64 = 1_426_464_000;

/// A shared, monotonically increasing cycle counter.
#[derive(Debug, Default)]
pub struct VirtualClock {
    cycles: AtomicU64,
    cycles_per_us: u64,
}

impl VirtualClock {
    /// Creates a clock for a machine running at `cycles_per_us` cycles per
    /// microsecond (3500 for the paper's 3.5 GHz Xeon).
    #[must_use]
    pub fn new(cycles_per_us: u64) -> Self {
        VirtualClock {
            cycles: AtomicU64::new(0),
            cycles_per_us: cycles_per_us.max(1),
        }
    }

    /// Current cycle count.
    #[must_use]
    pub fn cycles(&self) -> Cycles {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Advances the clock by `cycles` and returns the new value.
    pub fn advance(&self, cycles: Cycles) -> Cycles {
        self.cycles.fetch_add(cycles, Ordering::Relaxed) + cycles
    }

    /// Current time in whole microseconds since boot.
    #[must_use]
    pub fn micros(&self) -> u64 {
        self.cycles() / self.cycles_per_us
    }

    /// Current Unix timestamp in seconds (epoch-offset plus elapsed time),
    /// which is what the `time` system call returns.
    #[must_use]
    pub fn unix_seconds(&self) -> u64 {
        EPOCH_SECONDS + self.micros() / 1_000_000
    }

    /// `(seconds, microseconds)` pair as returned by `gettimeofday`.
    #[must_use]
    pub fn timeofday(&self) -> (u64, u64) {
        let micros = self.micros();
        (EPOCH_SECONDS + micros / 1_000_000, micros % 1_000_000)
    }

    /// `(seconds, nanoseconds)` pair as returned by `clock_gettime` with a
    /// monotonic clock id.
    #[must_use]
    pub fn monotonic(&self) -> (u64, u64) {
        let nanos = self.micros() * 1_000 + (self.cycles() % self.cycles_per_us) * 1_000
            / self.cycles_per_us;
        (nanos / 1_000_000_000, nanos % 1_000_000_000)
    }

    /// Advances the clock by `micros` microseconds worth of cycles.
    pub fn advance_micros(&self, micros: u64) {
        self.advance(micros.saturating_mul(self.cycles_per_us));
    }
}

/// The wall-clock anchor for [`ClockSource::Wall`]: a process-wide start
/// instant so `now()` can be expressed as a plain [`Duration`].
fn wall_anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Where blocking waits, poll backoffs and timeout deadlines get their
/// notion of time.
///
/// Production executions use [`ClockSource::Wall`]: `sleep` is
/// `std::thread::sleep`, `now` is host-monotonic, and every timeout means
/// real seconds.  A deterministic simulation uses
/// [`ClockSource::Simulated`]: `sleep(d)` *advances the shared
/// [`VirtualClock`] by `d`* and yields the OS thread instead of parking it,
/// so a 60-second catch-up timeout costs microseconds of wall time while
/// remaining a meaningful bound in simulated time.  Code that waits through
/// a `ClockSource` works identically under both — which is what lets the
/// fleet, upgrade and monitor layers run a 10,000-interleaving sweep in
/// seconds (see `varan-sim`).
#[derive(Clone, Debug, Default)]
pub enum ClockSource {
    /// Host wall-clock time (`Instant` + `thread::sleep`).
    #[default]
    Wall,
    /// Virtual time: waits advance the shared clock and yield.
    Simulated(Arc<VirtualClock>),
}

impl ClockSource {
    /// Returns `true` for a simulated source.
    #[must_use]
    pub fn is_simulated(&self) -> bool {
        matches!(self, ClockSource::Simulated(_))
    }

    /// Monotonic "time since start" in this source's domain.
    #[must_use]
    pub fn now(&self) -> Duration {
        match self {
            ClockSource::Wall => wall_anchor().elapsed(),
            ClockSource::Simulated(clock) => Duration::from_micros(clock.micros()),
        }
    }

    /// Sleeps for `duration` — really (wall) or by advancing the virtual
    /// clock and yielding the thread (simulated).
    pub fn sleep(&self, duration: Duration) {
        match self {
            ClockSource::Wall => std::thread::sleep(duration),
            ClockSource::Simulated(clock) => {
                clock.advance_micros((duration.as_micros() as u64).max(1));
                std::thread::yield_now();
            }
        }
    }

    /// Starts a stopwatch in this source's domain.
    #[must_use]
    pub fn start(&self) -> SimInstant {
        SimInstant {
            source: self.clone(),
            at: self.now(),
        }
    }

    /// Creates a deadline `timeout` from now in this source's domain.
    #[must_use]
    pub fn deadline(&self, timeout: Duration) -> SimDeadline {
        SimDeadline {
            source: self.clone(),
            at: self.now().saturating_add(timeout),
        }
    }

    /// This clock as a telemetry timestamp source: [`ClockSource::now`] in
    /// nanoseconds.  Installed into a [`varan_obs::Registry`] it stamps
    /// trace events with virtual nanoseconds under simulation and wall
    /// nanoseconds in production — the same timeline every other wait in
    /// the system runs on.
    #[must_use]
    pub fn obs_clock(&self) -> varan_obs::ClockFn {
        let clock = self.clone();
        Arc::new(move || clock.now().as_nanos() as u64)
    }

    /// Installs this clock as `registry`'s trace timestamp source
    /// (convenience for [`ClockSource::obs_clock`]).
    pub fn install_obs_clock(&self, registry: &varan_obs::Registry) {
        registry.install_clock(self.obs_clock());
    }
}

/// A point in [`ClockSource`] time, for elapsed-time measurements that must
/// work under both wall and simulated clocks.
#[derive(Clone, Debug)]
pub struct SimInstant {
    source: ClockSource,
    at: Duration,
}

impl SimInstant {
    /// Time elapsed since this instant, in the source's domain.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.source.now().saturating_sub(self.at)
    }
}

/// A deadline in [`ClockSource`] time.
#[derive(Clone, Debug)]
pub struct SimDeadline {
    source: ClockSource,
    at: Duration,
}

impl SimDeadline {
    /// Returns `true` once the deadline has passed.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.source.now() >= self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let clock = VirtualClock::new(3_500);
        assert_eq!(clock.cycles(), 0);
        assert_eq!(clock.advance(7_000), 7_000);
        assert_eq!(clock.cycles(), 7_000);
        assert_eq!(clock.micros(), 2);
    }

    #[test]
    fn unix_time_starts_at_epoch_offset() {
        let clock = VirtualClock::new(3_500);
        assert_eq!(clock.unix_seconds(), EPOCH_SECONDS);
        clock.advance(3_500 * 1_000_000 * 3); // three simulated seconds
        assert_eq!(clock.unix_seconds(), EPOCH_SECONDS + 3);
    }

    #[test]
    fn timeofday_carries_microseconds() {
        let clock = VirtualClock::new(1_000);
        clock.advance(1_500_000); // 1.5 ms -> 1500 us
        let (seconds, micros) = clock.timeofday();
        assert_eq!(seconds, EPOCH_SECONDS);
        assert_eq!(micros, 1_500);
    }

    #[test]
    fn monotonic_reports_nanoseconds() {
        let clock = VirtualClock::new(1_000);
        clock.advance(2_000_000_000); // 2 s worth of cycles at 1 GHz
        let (seconds, nanos) = clock.monotonic();
        assert_eq!(seconds, 2);
        assert!(nanos < 1_000_000_000);
    }

    #[test]
    fn zero_frequency_is_clamped() {
        let clock = VirtualClock::new(0);
        clock.advance(10);
        assert_eq!(clock.micros(), 10);
    }

    #[test]
    fn simulated_sleep_advances_virtual_time_not_wall_time(){
        let clock = Arc::new(VirtualClock::new(1_000));
        let source = ClockSource::Simulated(Arc::clone(&clock));
        assert!(source.is_simulated());
        let stopwatch = source.start();
        let wall = Instant::now();
        source.sleep(Duration::from_secs(30));
        assert!(wall.elapsed() < Duration::from_secs(5), "must not really sleep");
        assert_eq!(clock.micros(), 30_000_000);
        assert_eq!(stopwatch.elapsed(), Duration::from_secs(30));
    }

    #[test]
    fn simulated_deadline_expires_with_the_virtual_clock() {
        let clock = Arc::new(VirtualClock::new(1_000));
        let source = ClockSource::Simulated(Arc::clone(&clock));
        let deadline = source.deadline(Duration::from_millis(10));
        assert!(!deadline.expired());
        clock.advance_micros(9_999);
        assert!(!deadline.expired());
        clock.advance_micros(2);
        assert!(deadline.expired());
    }

    #[test]
    fn wall_source_measures_real_time() {
        let source = ClockSource::Wall;
        assert!(!source.is_simulated());
        let stopwatch = source.start();
        let deadline = source.deadline(Duration::from_millis(2));
        assert!(!deadline.expired());
        source.sleep(Duration::from_millis(3));
        assert!(deadline.expired());
        assert!(stopwatch.elapsed() >= Duration::from_millis(3));
    }
}
