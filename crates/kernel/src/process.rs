//! Processes, threads and file-descriptor tables.
//!
//! Versions run by the monitor each get their own virtual process with its
//! own descriptor table — which is exactly what makes the file-descriptor
//! transfer mechanism of §3.3.2 necessary: when the leader opens a file or
//! accepts a connection, the resulting descriptor must be duplicated into
//! every follower's table so that a follower can take over seamlessly if the
//! leader crashes.

use std::collections::HashMap;
use std::sync::Arc;

use crate::errno::Errno;
use crate::net::{Endpoint, Listener};
use crate::signal::{PendingSignals, Signal};

/// Process identifier.
pub type Pid = u32;
/// Thread identifier (process-local index).
pub type Tid = u32;

/// Maximum number of open descriptors per process.
pub const MAX_FDS: usize = 1024;

/// A shared pipe buffer (created by the `pipe` system call).
#[derive(Debug, Default)]
pub struct Pipe {
    buffer: parking_lot::Mutex<Vec<u8>>,
}

impl Pipe {
    /// Appends data to the pipe.
    pub fn push(&self, data: &[u8]) {
        self.buffer.lock().extend_from_slice(data);
    }

    /// Drains up to `len` bytes from the pipe.
    pub fn drain(&self, len: usize) -> Vec<u8> {
        let mut buffer = self.buffer.lock();
        let take = len.min(buffer.len());
        buffer.drain(..take).collect()
    }

    /// Bytes currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buffer.lock().len()
    }

    /// Returns `true` if the pipe holds no data.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a file descriptor refers to.
#[derive(Debug, Clone)]
pub enum FdObject {
    /// The process's console (pre-opened as fds 0–2); writes are collected
    /// for inspection by tests.
    Console,
    /// An open file in the VFS, with its own offset.
    File {
        /// Path of the file.
        path: String,
        /// Current read/write offset.
        offset: u64,
        /// Whether writes append.
        append: bool,
    },
    /// A bound, listening socket.
    Listener(Arc<Listener>),
    /// A connected stream socket.
    Stream(Endpoint),
    /// A socket created by `socket` but not yet listening/connected; `bind`
    /// records the port here until `listen` turns it into a listener.
    UnboundSocket {
        /// Port recorded by `bind`, if any.
        bound_port: Option<u16>,
    },
    /// The read end of a pipe.
    PipeRead(Arc<Pipe>),
    /// The write end of a pipe.
    PipeWrite(Arc<Pipe>),
    /// An epoll instance (interest list is kept in the entry).
    Epoll {
        /// Descriptors registered with `epoll_ctl`.
        watched: Vec<i32>,
    },
}

/// A descriptor-table entry.
#[derive(Debug, Clone)]
pub struct FdEntry {
    /// The object the descriptor refers to.
    pub object: FdObject,
    /// Close-on-exec flag (set by `fcntl(F_SETFD, FD_CLOEXEC)`).
    pub cloexec: bool,
    /// Non-blocking flag.
    pub nonblocking: bool,
}

impl FdEntry {
    /// Creates a blocking entry with default flags.
    #[must_use]
    pub fn new(object: FdObject) -> Self {
        FdEntry {
            object,
            cloexec: false,
            nonblocking: false,
        }
    }
}

/// The state of one virtual process.
#[derive(Debug)]
pub struct ProcessState {
    /// Process identifier.
    pub pid: Pid,
    /// Parent process, if any.
    pub parent: Option<Pid>,
    /// Human-readable name (the "binary" it runs).
    pub name: String,
    /// Open file descriptors.
    pub fds: HashMap<i32, FdEntry>,
    next_fd: i32,
    /// Thread identifiers belonging to this process.
    pub threads: Vec<Tid>,
    /// Exit status once the process has exited.
    pub exit_status: Option<i32>,
    /// Signals delivered but not yet consumed.
    pub pending_signals: PendingSignals,
    /// Console output captured from writes to fds 1 and 2.
    pub console: Vec<u8>,
    /// Current program break (for `brk`).
    pub brk: u64,
    /// Next address handed out by `mmap`.
    pub next_mmap: u64,
}

impl ProcessState {
    fn new(pid: Pid, parent: Option<Pid>, name: &str) -> Self {
        let mut fds = HashMap::new();
        for fd in 0..3 {
            fds.insert(fd, FdEntry::new(FdObject::Console));
        }
        ProcessState {
            pid,
            parent,
            name: name.to_owned(),
            fds,
            next_fd: 3,
            threads: vec![0],
            exit_status: None,
            pending_signals: PendingSignals::new(),
            console: Vec::new(),
            brk: 0x0060_0000,
            next_mmap: 0x7f00_0000_0000,
        }
    }

    /// Allocates the lowest free descriptor number and installs `entry`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::EMFILE`] when the table is full.
    pub fn install_fd(&mut self, entry: FdEntry) -> Result<i32, Errno> {
        if self.fds.len() >= MAX_FDS {
            return Err(Errno::EMFILE);
        }
        let fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(fd, entry);
        Ok(fd)
    }

    /// Installs `entry` at the specific descriptor number `at` (a `dup2`
    /// into a known-free slot), keeping future allocations above it.  Used
    /// by identity-preserving descriptor transfers: a runtime-attached
    /// upgrade candidate mirrors the leader's descriptor numbering so its
    /// own post-promotion allocations can never collide with a number the
    /// replayed application already holds.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::EMFILE`] when the table is full, [`Errno::EBADF`]
    /// for a negative number and [`Errno::EEXIST`] when `at` is occupied.
    pub fn install_fd_at(&mut self, at: i32, entry: FdEntry) -> Result<i32, Errno> {
        if self.fds.len() >= MAX_FDS {
            return Err(Errno::EMFILE);
        }
        if at < 0 {
            return Err(Errno::EBADF);
        }
        if self.fds.contains_key(&at) {
            return Err(Errno::EEXIST);
        }
        self.fds.insert(at, entry);
        self.next_fd = self.next_fd.max(at + 1);
        Ok(at)
    }

    /// Looks up a descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::EBADF`] if the descriptor is not open.
    pub fn fd(&self, fd: i32) -> Result<&FdEntry, Errno> {
        self.fds.get(&fd).ok_or(Errno::EBADF)
    }

    /// Mutable descriptor lookup.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::EBADF`] if the descriptor is not open.
    pub fn fd_mut(&mut self, fd: i32) -> Result<&mut FdEntry, Errno> {
        self.fds.get_mut(&fd).ok_or(Errno::EBADF)
    }

    /// Closes a descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::EBADF`] if the descriptor is not open.
    pub fn close_fd(&mut self, fd: i32) -> Result<FdEntry, Errno> {
        self.fds.remove(&fd).ok_or(Errno::EBADF)
    }

    /// Takes a serializable snapshot of this process for a kernel
    /// checkpoint (see `checkpoint.rs`).
    #[must_use]
    pub fn snapshot(&self) -> crate::checkpoint::ProcessSnapshot {
        let mut fds: Vec<crate::checkpoint::FdSnapshot> = self
            .fds
            .iter()
            .map(|(&fd, entry)| crate::checkpoint::FdSnapshot {
                fd,
                cloexec: entry.cloexec,
                nonblocking: entry.nonblocking,
                object: crate::checkpoint::snapshot_fd_object(&entry.object),
            })
            .collect();
        fds.sort_by_key(|snapshot| snapshot.fd);
        let mut pending = self.pending_signals.clone();
        let mut pending_signals = Vec::with_capacity(pending.len());
        while let Some(signal) = pending.pop() {
            pending_signals.push(signal.number());
        }
        crate::checkpoint::ProcessSnapshot {
            name: self.name.clone(),
            next_fd: self.next_fd,
            brk: self.brk,
            next_mmap: self.next_mmap,
            threads: self.threads.len() as u32,
            pending_signals,
            fds,
        }
    }

    /// Replaces the descriptor table wholesale with `entries` (each at its
    /// stated descriptor number) and sets the allocation cursor; used by
    /// checkpoint restore so a restored process sees the leader's exact
    /// descriptor numbering.
    pub fn restore_fds(&mut self, entries: Vec<(i32, FdEntry)>, next_fd: i32) {
        self.fds = entries.into_iter().collect();
        self.next_fd = next_fd.max(3);
    }

    /// Registers a new thread and returns its identifier.
    pub fn spawn_thread(&mut self) -> Tid {
        let tid = self.threads.len() as Tid;
        self.threads.push(tid);
        tid
    }

    /// Returns `true` once the process has exited.
    #[must_use]
    pub fn has_exited(&self) -> bool {
        self.exit_status.is_some()
    }

    /// Delivers a signal to this process.
    pub fn deliver_signal(&mut self, signal: Signal) {
        self.pending_signals.push(signal);
    }
}

/// The table of all live (and exited-but-not-reaped) processes.
#[derive(Debug, Default)]
pub struct ProcessTable {
    next_pid: Pid,
    processes: HashMap<Pid, ProcessState>,
}

impl ProcessTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        ProcessTable {
            next_pid: 1,
            processes: HashMap::new(),
        }
    }

    /// Creates a new process running `name` and returns its pid.
    pub fn spawn(&mut self, name: &str, parent: Option<Pid>) -> Pid {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.processes.insert(pid, ProcessState::new(pid, parent, name));
        pid
    }

    /// Forks `parent`, duplicating its descriptor table, and returns the
    /// child's pid.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] if the parent does not exist.
    pub fn fork(&mut self, parent: Pid) -> Result<Pid, Errno> {
        let (name, fds, next_fd, brk, next_mmap) = {
            let parent_state = self.processes.get(&parent).ok_or(Errno::ENOENT)?;
            (
                parent_state.name.clone(),
                parent_state.fds.clone(),
                parent_state.next_fd,
                parent_state.brk,
                parent_state.next_mmap,
            )
        };
        let pid = self.next_pid;
        self.next_pid += 1;
        let mut child = ProcessState::new(pid, Some(parent), &name);
        child.fds = fds;
        child.next_fd = next_fd;
        child.brk = brk;
        child.next_mmap = next_mmap;
        self.processes.insert(pid, child);
        Ok(pid)
    }

    /// Immutable access to a process.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] if the pid is unknown.
    pub fn get(&self, pid: Pid) -> Result<&ProcessState, Errno> {
        self.processes.get(&pid).ok_or(Errno::ENOENT)
    }

    /// Mutable access to a process.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] if the pid is unknown.
    pub fn get_mut(&mut self, pid: Pid) -> Result<&mut ProcessState, Errno> {
        self.processes.get_mut(&pid).ok_or(Errno::ENOENT)
    }

    /// Removes a process from the table entirely.
    pub fn remove(&mut self, pid: Pid) -> Option<ProcessState> {
        self.processes.remove(&pid)
    }

    /// Number of processes in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Returns `true` if no processes exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Iterates over all pids.
    pub fn pids(&self) -> impl Iterator<Item = Pid> + '_ {
        self.processes.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processes_start_with_standard_fds() {
        let mut table = ProcessTable::new();
        let pid = table.spawn("redis", None);
        let process = table.get(pid).unwrap();
        assert_eq!(process.fds.len(), 3);
        assert!(matches!(process.fd(0).unwrap().object, FdObject::Console));
        assert!(process.fd(3).is_err());
        assert_eq!(process.threads.len(), 1);
        assert!(!process.has_exited());
    }

    #[test]
    fn fd_allocation_is_sequential() {
        let mut table = ProcessTable::new();
        let pid = table.spawn("app", None);
        let process = table.get_mut(pid).unwrap();
        let a = process.install_fd(FdEntry::new(FdObject::UnboundSocket { bound_port: None })).unwrap();
        let b = process.install_fd(FdEntry::new(FdObject::UnboundSocket { bound_port: None })).unwrap();
        assert_eq!((a, b), (3, 4));
        process.close_fd(a).unwrap();
        assert!(process.fd(a).is_err());
        assert_eq!(process.close_fd(a).unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn fd_table_has_a_limit() {
        let mut table = ProcessTable::new();
        let pid = table.spawn("greedy", None);
        let process = table.get_mut(pid).unwrap();
        for _ in 0..(MAX_FDS - 3) {
            process.install_fd(FdEntry::new(FdObject::UnboundSocket { bound_port: None })).unwrap();
        }
        assert_eq!(
            process
                .install_fd(FdEntry::new(FdObject::UnboundSocket { bound_port: None }))
                .unwrap_err(),
            Errno::EMFILE
        );
    }

    #[test]
    fn fork_duplicates_the_descriptor_table() {
        let mut table = ProcessTable::new();
        let parent = table.spawn("nginx", None);
        let fd = {
            let state = table.get_mut(parent).unwrap();
            state
                .install_fd(FdEntry::new(FdObject::File {
                    path: "/var/www/index.html".into(),
                    offset: 0,
                    append: false,
                }))
                .unwrap()
        };
        let child = table.fork(parent).unwrap();
        let child_state = table.get(child).unwrap();
        assert_eq!(child_state.parent, Some(parent));
        assert!(matches!(
            child_state.fd(fd).unwrap().object,
            FdObject::File { .. }
        ));
        assert_eq!(child_state.name, "nginx");
        assert!(table.fork(999).is_err());
    }

    #[test]
    fn pids_are_unique_and_removable() {
        let mut table = ProcessTable::new();
        let a = table.spawn("a", None);
        let b = table.spawn("b", None);
        assert_ne!(a, b);
        assert_eq!(table.len(), 2);
        assert!(table.remove(a).is_some());
        assert!(table.get(a).is_err());
        assert_eq!(table.pids().count(), 1);
        assert!(!table.is_empty());
    }

    #[test]
    fn signals_are_queued_per_process() {
        let mut table = ProcessTable::new();
        let pid = table.spawn("victim", None);
        let process = table.get_mut(pid).unwrap();
        process.deliver_signal(Signal::Sigsegv);
        assert!(process.pending_signals.contains(Signal::Sigsegv));
        assert_eq!(process.pending_signals.pop(), Some(Signal::Sigsegv));
    }

    #[test]
    fn threads_get_sequential_tids() {
        let mut table = ProcessTable::new();
        let pid = table.spawn("memcached", None);
        let process = table.get_mut(pid).unwrap();
        assert_eq!(process.spawn_thread(), 1);
        assert_eq!(process.spawn_thread(), 2);
        assert_eq!(process.threads.len(), 3);
    }

    #[test]
    fn pipes_buffer_bytes() {
        let pipe = Pipe::default();
        assert!(pipe.is_empty());
        pipe.push(b"abcdef");
        assert_eq!(pipe.len(), 6);
        assert_eq!(pipe.drain(4), b"abcd");
        assert_eq!(pipe.drain(10), b"ef");
        assert!(pipe.is_empty());
    }
}
