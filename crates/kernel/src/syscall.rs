//! The system-call ABI: requests, outcomes and descriptor-transfer records.
//!
//! Applications in `varan-apps` issue [`SyscallRequest`]s; the kernel (or a
//! monitor interposing on it) answers with a [`SyscallOutcome`].  The shape
//! of these types mirrors what VARAN must move between versions: six by-value
//! arguments, an optional byte payload (the buffer written or read), the
//! result, and — for calls that create descriptors — a record of the new
//! descriptor so the monitor knows it must be transferred over the data
//! channel (§3.3.2).

use serde::{Deserialize, Serialize};

use crate::cost::Cycles;
use crate::errno::Errno;
use crate::fs::flags;
use crate::sysno::Sysno;

/// `lseek` whence values.
pub mod whence {
    /// Seek from the start of the file.
    pub const SEEK_SET: u64 = 0;
    /// Seek from the current offset.
    pub const SEEK_CUR: u64 = 1;
    /// Seek from the end of the file.
    pub const SEEK_END: u64 = 2;
}

/// `fcntl` command values.
pub mod fcntl {
    /// Get the close-on-exec flag.
    pub const F_GETFD: u64 = 1;
    /// Set the close-on-exec flag.
    pub const F_SETFD: u64 = 2;
    /// Get the file status flags.
    pub const F_GETFL: u64 = 3;
    /// Set the file status flags.
    pub const F_SETFL: u64 = 4;
    /// The close-on-exec flag value.
    pub const FD_CLOEXEC: u64 = 1;
}

/// A system call as issued by an application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyscallRequest {
    /// Which system call.
    pub sysno: Sysno,
    /// The six register arguments (unused ones are zero).
    pub args: [u64; 6],
    /// Optional byte payload (e.g. the buffer passed to `write`, or the path
    /// passed to `open`).
    pub data: Option<Vec<u8>>,
}

impl SyscallRequest {
    /// Creates a request with explicit arguments and no payload.
    #[must_use]
    pub fn new(sysno: Sysno, args: [u64; 6]) -> Self {
        SyscallRequest {
            sysno,
            args,
            data: None,
        }
    }

    /// Attaches a byte payload, consuming and returning the request.
    #[must_use]
    pub fn with_data(mut self, data: Vec<u8>) -> Self {
        self.data = Some(data);
        self
    }

    /// Number of payload bytes attached to the request.
    #[must_use]
    pub fn payload_len(&self) -> usize {
        self.data.as_ref().map(Vec::len).unwrap_or(0)
    }

    /// `read(fd, len)`.
    #[must_use]
    pub fn read(fd: i32, len: usize) -> Self {
        SyscallRequest::new(Sysno::Read, [fd as u64, 0, len as u64, 0, 0, 0])
    }

    /// `read(fd, len)` on a stream with a deadline: blocks until data, EOF
    /// or `timeout_micros` of virtual-or-wall time, whichever comes first
    /// (`EAGAIN` on timeout).  `timeout_micros == 0` blocks forever, same as
    /// [`read`](Self::read).  Non-stream fds ignore the deadline.
    #[must_use]
    pub fn read_timeout(fd: i32, len: usize, timeout_micros: u64) -> Self {
        SyscallRequest::new(Sysno::Read, [fd as u64, timeout_micros, len as u64, 0, 0, 0])
    }

    /// `write(fd, data)`.
    #[must_use]
    pub fn write(fd: i32, data: Vec<u8>) -> Self {
        SyscallRequest::new(Sysno::Write, [fd as u64, 0, data.len() as u64, 0, 0, 0])
            .with_data(data)
    }

    /// `open(path, flags)`.
    #[must_use]
    pub fn open(path: &str, open_flags: u64) -> Self {
        SyscallRequest::new(Sysno::Open, [0, open_flags, 0, 0, 0, 0])
            .with_data(path.as_bytes().to_vec())
    }

    /// `open(path, O_RDONLY)`.
    #[must_use]
    pub fn open_read(path: &str) -> Self {
        SyscallRequest::open(path, flags::O_RDONLY)
    }

    /// `close(fd)`.
    #[must_use]
    pub fn close(fd: i32) -> Self {
        SyscallRequest::new(Sysno::Close, [fd as u64, 0, 0, 0, 0, 0])
    }

    /// `stat(path)` — the outcome's result is the file size.
    #[must_use]
    pub fn stat(path: &str) -> Self {
        SyscallRequest::new(Sysno::Stat, [0; 6]).with_data(path.as_bytes().to_vec())
    }

    /// `lseek(fd, offset, whence)`.
    #[must_use]
    pub fn lseek(fd: i32, offset: i64, whence: u64) -> Self {
        SyscallRequest::new(Sysno::Lseek, [fd as u64, offset as u64, whence, 0, 0, 0])
    }

    /// `socket()`.
    #[must_use]
    pub fn socket() -> Self {
        SyscallRequest::new(Sysno::Socket, [2 /* AF_INET */, 1 /* SOCK_STREAM */, 0, 0, 0, 0])
    }

    /// `bind(fd, port)`.
    #[must_use]
    pub fn bind(fd: i32, port: u16) -> Self {
        SyscallRequest::new(Sysno::Bind, [fd as u64, u64::from(port), 0, 0, 0, 0])
    }

    /// `listen(fd, backlog)`.
    #[must_use]
    pub fn listen(fd: i32, backlog: u32) -> Self {
        SyscallRequest::new(Sysno::Listen, [fd as u64, u64::from(backlog), 0, 0, 0, 0])
    }

    /// `accept(fd)`.
    #[must_use]
    pub fn accept(fd: i32) -> Self {
        SyscallRequest::new(Sysno::Accept, [fd as u64, 0, 0, 0, 0, 0])
    }

    /// `connect(fd, port)`.
    #[must_use]
    pub fn connect(fd: i32, port: u16) -> Self {
        SyscallRequest::new(Sysno::Connect, [fd as u64, u64::from(port), 0, 0, 0, 0])
    }

    /// `fcntl(fd, cmd, arg)`.
    #[must_use]
    pub fn fcntl(fd: i32, cmd: u64, arg: u64) -> Self {
        SyscallRequest::new(Sysno::Fcntl, [fd as u64, cmd, arg, 0, 0, 0])
    }

    /// `getuid()` (and friends, via [`SyscallRequest::new`]).
    #[must_use]
    pub fn getuid() -> Self {
        SyscallRequest::new(Sysno::Getuid, [0; 6])
    }

    /// `time(NULL)`.
    #[must_use]
    pub fn time() -> Self {
        SyscallRequest::new(Sysno::Time, [0; 6])
    }

    /// `gettimeofday()`.
    #[must_use]
    pub fn gettimeofday() -> Self {
        SyscallRequest::new(Sysno::Gettimeofday, [0; 6])
    }

    /// `clock_gettime(CLOCK_MONOTONIC)`.
    #[must_use]
    pub fn clock_gettime() -> Self {
        SyscallRequest::new(Sysno::ClockGettime, [1, 0, 0, 0, 0, 0])
    }

    /// `fork()`.
    #[must_use]
    pub fn fork() -> Self {
        SyscallRequest::new(Sysno::Fork, [0; 6])
    }

    /// `exit_group(status)`.
    #[must_use]
    pub fn exit(status: i32) -> Self {
        SyscallRequest::new(Sysno::ExitGroup, [status as u64, 0, 0, 0, 0, 0])
    }

    /// `getrandom(len)`.
    #[must_use]
    pub fn getrandom(len: usize) -> Self {
        SyscallRequest::new(Sysno::Getrandom, [0, len as u64, 0, 0, 0, 0])
    }

    /// `nanosleep(micros)`.
    #[must_use]
    pub fn nanosleep(micros: u64) -> Self {
        SyscallRequest::new(Sysno::Nanosleep, [micros, 0, 0, 0, 0, 0])
    }

    /// `mmap(len)`.
    #[must_use]
    pub fn mmap(len: usize) -> Self {
        SyscallRequest::new(Sysno::Mmap, [0, len as u64, 0, 0, 0, 0])
    }

    /// `unlink(path)`.
    #[must_use]
    pub fn unlink(path: &str) -> Self {
        SyscallRequest::new(Sysno::Unlink, [0; 6]).with_data(path.as_bytes().to_vec())
    }

    /// `mkdir(path)`.
    #[must_use]
    pub fn mkdir(path: &str) -> Self {
        SyscallRequest::new(Sysno::Mkdir, [0; 6]).with_data(path.as_bytes().to_vec())
    }

    /// The payload interpreted as a path (for `open`, `stat`, ...).
    #[must_use]
    pub fn path(&self) -> Option<String> {
        self.data
            .as_ref()
            .map(|bytes| String::from_utf8_lossy(bytes).into_owned())
    }
}

/// Description of a descriptor created by a system call, used by the monitor
/// to drive the data-channel transfer to followers (§3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdInfo {
    /// The descriptor number in the process that executed the call.
    pub fd: i32,
}

/// The kernel's (or monitor's) answer to a [`SyscallRequest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyscallOutcome {
    /// Which system call this answers.
    pub sysno: Sysno,
    /// The return value (negative values carry an [`Errno`]).
    pub result: i64,
    /// Bytes returned to the caller (e.g. the buffer filled by `read`).
    pub data: Option<Vec<u8>>,
    /// Set when the call created a descriptor that must be transferred.
    pub fd: Option<FdInfo>,
    /// Cycles charged for the call (native execution cost).
    pub cost: Cycles,
}

impl SyscallOutcome {
    /// Creates a successful outcome with no payload.
    #[must_use]
    pub fn ok(sysno: Sysno, result: i64, cost: Cycles) -> Self {
        SyscallOutcome {
            sysno,
            result,
            data: None,
            fd: None,
            cost,
        }
    }

    /// Creates a failed outcome carrying `errno`.
    #[must_use]
    pub fn err(sysno: Sysno, errno: Errno, cost: Cycles) -> Self {
        SyscallOutcome {
            sysno,
            result: errno.as_ret(),
            data: None,
            fd: None,
            cost,
        }
    }

    /// Attaches returned bytes, consuming and returning the outcome.
    #[must_use]
    pub fn with_data(mut self, data: Vec<u8>) -> Self {
        self.data = Some(data);
        self
    }

    /// Flags a created descriptor, consuming and returning the outcome.
    #[must_use]
    pub fn with_fd(mut self, fd: i32) -> Self {
        self.fd = Some(FdInfo { fd });
        self
    }

    /// Returns `true` if the result indicates failure.
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.result < 0
    }

    /// The errno carried by a failed result, if any.
    #[must_use]
    pub fn errno(&self) -> Option<Errno> {
        Errno::from_ret(self.result)
    }

    /// Number of payload bytes carried by the outcome.
    #[must_use]
    pub fn payload_len(&self) -> usize {
        self.data.as_ref().map(Vec::len).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_arguments() {
        let read = SyscallRequest::read(5, 512);
        assert_eq!(read.sysno, Sysno::Read);
        assert_eq!(read.args[0], 5);
        assert_eq!(read.args[2], 512);
        assert_eq!(read.payload_len(), 0);

        let write = SyscallRequest::write(1, b"abc".to_vec());
        assert_eq!(write.args[2], 3);
        assert_eq!(write.payload_len(), 3);

        let open = SyscallRequest::open_read("/dev/null");
        assert_eq!(open.path().as_deref(), Some("/dev/null"));

        let exit = SyscallRequest::exit(7);
        assert_eq!(exit.sysno, Sysno::ExitGroup);
        assert_eq!(exit.args[0], 7);
    }

    #[test]
    fn outcome_error_helpers() {
        let ok = SyscallOutcome::ok(Sysno::Close, 0, 100);
        assert!(!ok.is_error());
        assert_eq!(ok.errno(), None);

        let err = SyscallOutcome::err(Sysno::Open, Errno::ENOENT, 100);
        assert!(err.is_error());
        assert_eq!(err.errno(), Some(Errno::ENOENT));
        assert_eq!(err.result, -2);
    }

    #[test]
    fn outcome_builders_compose() {
        let outcome = SyscallOutcome::ok(Sysno::Accept, 7, 2500)
            .with_fd(7)
            .with_data(vec![1, 2, 3]);
        assert_eq!(outcome.fd, Some(FdInfo { fd: 7 }));
        assert_eq!(outcome.payload_len(), 3);
        assert_eq!(outcome.cost, 2500);
    }

    #[test]
    fn requests_and_outcomes_are_cloneable_value_types() {
        let request = SyscallRequest::write(3, b"payload".to_vec());
        assert_eq!(request.clone(), request);
        let outcome = SyscallOutcome::ok(Sysno::Write, 7, 1430);
        assert_eq!(outcome.clone(), outcome);
    }
}
