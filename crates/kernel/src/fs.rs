//! The in-memory virtual file system.
//!
//! The VFS provides what the paper's benchmarks touch: regular files (web
//! roots, configuration files, the queue journal), directories, and the
//! character devices used by the micro-benchmarks and by Lighttpd revision
//! 2524 (`/dev/null`, `/dev/zero`, `/dev/urandom`).  It is deliberately
//! simple — a path-keyed map of nodes — because the monitors interpose on the
//! system-call layer above it, not on its internals.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::RngCore;

use crate::errno::Errno;

/// The kinds of nodes a path can resolve to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A regular file with contents.
    File(Vec<u8>),
    /// A directory.
    Directory,
    /// `/dev/null`: reads return EOF, writes are discarded.
    DevNull,
    /// `/dev/zero`: reads return zero bytes, writes are discarded.
    DevZero,
    /// `/dev/urandom`: reads return pseudo-random bytes.
    DevUrandom,
}

impl Node {
    /// Returns `true` for device nodes.
    #[must_use]
    pub fn is_device(&self) -> bool {
        matches!(self, Node::DevNull | Node::DevZero | Node::DevUrandom)
    }

    /// Size reported by `stat` (devices and directories report zero).
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Node::File(data) => data.len(),
            _ => 0,
        }
    }
}

/// Flags accepted by `open` (subset of the Linux values).
pub mod flags {
    /// Open read-only.
    pub const O_RDONLY: u64 = 0o0;
    /// Open write-only.
    pub const O_WRONLY: u64 = 0o1;
    /// Open read-write.
    pub const O_RDWR: u64 = 0o2;
    /// Create the file if it does not exist.
    pub const O_CREAT: u64 = 0o100;
    /// Truncate the file on open.
    pub const O_TRUNC: u64 = 0o1000;
    /// Append on every write.
    pub const O_APPEND: u64 = 0o2000;
    /// Non-blocking mode.
    pub const O_NONBLOCK: u64 = 0o4000;
}

/// The in-memory file system tree.
#[derive(Debug, Clone)]
pub struct Vfs {
    nodes: BTreeMap<String, Node>,
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// Creates a VFS pre-populated with the standard directories and devices.
    #[must_use]
    pub fn new() -> Self {
        let mut nodes = BTreeMap::new();
        for dir in ["/", "/dev", "/tmp", "/etc", "/var", "/var/www", "/data"] {
            nodes.insert(dir.to_owned(), Node::Directory);
        }
        nodes.insert("/dev/null".to_owned(), Node::DevNull);
        nodes.insert("/dev/zero".to_owned(), Node::DevZero);
        nodes.insert("/dev/urandom".to_owned(), Node::DevUrandom);
        nodes.insert(
            "/etc/hostname".to_owned(),
            Node::File(b"varan-testbed\n".to_vec()),
        );
        Vfs { nodes }
    }

    fn parent_exists(&self, path: &str) -> bool {
        match path.rfind('/') {
            Some(0) => true,
            Some(index) => matches!(self.nodes.get(&path[..index]), Some(Node::Directory)),
            None => false,
        }
    }

    /// Looks up the node at `path`.
    #[must_use]
    pub fn lookup(&self, path: &str) -> Option<&Node> {
        self.nodes.get(path)
    }

    /// A snapshot of every node (path → node), in path order; the fs table
    /// of a kernel checkpoint.
    #[must_use]
    pub fn entries(&self) -> Vec<(String, Node)> {
        self.nodes
            .iter()
            .map(|(path, node)| (path.clone(), node.clone()))
            .collect()
    }

    /// Returns `true` if `path` exists.
    #[must_use]
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(path)
    }

    /// Creates (or replaces) a regular file with the given contents.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] if the parent directory does not exist and
    /// [`Errno::EISDIR`] if the path names an existing directory.
    pub fn create_file(&mut self, path: &str, data: Vec<u8>) -> Result<(), Errno> {
        if matches!(self.nodes.get(path), Some(Node::Directory)) {
            return Err(Errno::EISDIR);
        }
        if !self.parent_exists(path) {
            return Err(Errno::ENOENT);
        }
        self.nodes.insert(path.to_owned(), Node::File(data));
        Ok(())
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::EEXIST`] if the path already exists and
    /// [`Errno::ENOENT`] if the parent is missing.
    pub fn mkdir(&mut self, path: &str) -> Result<(), Errno> {
        if self.nodes.contains_key(path) {
            return Err(Errno::EEXIST);
        }
        if !self.parent_exists(path) {
            return Err(Errno::ENOENT);
        }
        self.nodes.insert(path.to_owned(), Node::Directory);
        Ok(())
    }

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] if the path is missing and
    /// [`Errno::EISDIR`] for directories.
    pub fn unlink(&mut self, path: &str) -> Result<(), Errno> {
        match self.nodes.get(path) {
            None => Err(Errno::ENOENT),
            Some(Node::Directory) => Err(Errno::EISDIR),
            Some(_) => {
                self.nodes.remove(path);
                Ok(())
            }
        }
    }

    /// Reads up to `len` bytes from `path` starting at `offset`.
    ///
    /// Device semantics: `/dev/null` returns EOF, `/dev/zero` returns zeroes,
    /// `/dev/urandom` returns bytes from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] for missing paths and [`Errno::EISDIR`] for
    /// directories.
    pub fn read(
        &self,
        path: &str,
        offset: usize,
        len: usize,
        rng: &mut SmallRng,
    ) -> Result<Vec<u8>, Errno> {
        match self.nodes.get(path) {
            None => Err(Errno::ENOENT),
            Some(Node::Directory) => Err(Errno::EISDIR),
            Some(Node::DevNull) => Ok(Vec::new()),
            Some(Node::DevZero) => Ok(vec![0u8; len]),
            Some(Node::DevUrandom) => {
                let mut buffer = vec![0u8; len];
                rng.fill_bytes(&mut buffer);
                Ok(buffer)
            }
            Some(Node::File(data)) => {
                if offset >= data.len() {
                    return Ok(Vec::new());
                }
                let end = (offset + len).min(data.len());
                Ok(data[offset..end].to_vec())
            }
        }
    }

    /// Writes `data` to `path` at `offset` (or at the end when `append`).
    /// Returns the number of bytes written.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] for missing paths and [`Errno::EISDIR`] for
    /// directories.
    pub fn write(
        &mut self,
        path: &str,
        offset: usize,
        data: &[u8],
        append: bool,
    ) -> Result<usize, Errno> {
        match self.nodes.get_mut(path) {
            None => Err(Errno::ENOENT),
            Some(Node::Directory) => Err(Errno::EISDIR),
            Some(Node::DevNull) | Some(Node::DevZero) | Some(Node::DevUrandom) => Ok(data.len()),
            Some(Node::File(contents)) => {
                let start = if append { contents.len() } else { offset };
                if start + data.len() > contents.len() {
                    contents.resize(start + data.len(), 0);
                }
                contents[start..start + data.len()].copy_from_slice(data);
                Ok(data.len())
            }
        }
    }

    /// Truncates a regular file to zero length.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] for missing paths; devices are ignored.
    pub fn truncate(&mut self, path: &str) -> Result<(), Errno> {
        match self.nodes.get_mut(path) {
            None => Err(Errno::ENOENT),
            Some(Node::File(contents)) => {
                contents.clear();
                Ok(())
            }
            Some(_) => Ok(()),
        }
    }

    /// Size of the node at `path` as reported by `stat`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] if the path does not exist.
    pub fn size(&self, path: &str) -> Result<usize, Errno> {
        self.nodes.get(path).map(Node::size).ok_or(Errno::ENOENT)
    }

    /// Lists the direct children of a directory.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::ENOENT`] for missing paths and [`Errno::ENOTDIR`] for
    /// non-directories.
    pub fn list_dir(&self, path: &str) -> Result<Vec<String>, Errno> {
        match self.nodes.get(path) {
            None => return Err(Errno::ENOENT),
            Some(Node::Directory) => {}
            Some(_) => return Err(Errno::ENOTDIR),
        }
        let prefix = if path == "/" {
            "/".to_owned()
        } else {
            format!("{path}/")
        };
        Ok(self
            .nodes
            .keys()
            .filter(|candidate| {
                candidate.starts_with(&prefix)
                    && candidate.len() > prefix.len()
                    && !candidate[prefix.len()..].contains('/')
            })
            .cloned()
            .collect())
    }

    /// Total number of nodes (used by tests).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn standard_layout_exists() {
        let vfs = Vfs::new();
        assert!(vfs.exists("/dev/null"));
        assert!(vfs.exists("/dev/urandom"));
        assert!(vfs.exists("/tmp"));
        assert!(matches!(vfs.lookup("/dev/zero"), Some(Node::DevZero)));
        assert!(vfs.lookup("/dev/null").unwrap().is_device());
    }

    #[test]
    fn file_read_write_round_trip() {
        let mut vfs = Vfs::new();
        vfs.create_file("/var/www/index.html", b"<html>hello</html>".to_vec())
            .unwrap();
        let data = vfs.read("/var/www/index.html", 0, 1024, &mut rng()).unwrap();
        assert_eq!(data, b"<html>hello</html>");
        // Partial read with offset.
        let tail = vfs.read("/var/www/index.html", 6, 5, &mut rng()).unwrap();
        assert_eq!(tail, b"hello");
        // Overwrite part of the file.
        vfs.write("/var/www/index.html", 6, b"world", false).unwrap();
        let data = vfs.read("/var/www/index.html", 0, 1024, &mut rng()).unwrap();
        assert_eq!(data, b"<html>world</html>");
        assert_eq!(vfs.size("/var/www/index.html").unwrap(), 18);
    }

    #[test]
    fn append_extends_the_file() {
        let mut vfs = Vfs::new();
        vfs.create_file("/data/journal", b"a".to_vec()).unwrap();
        vfs.write("/data/journal", 0, b"bc", true).unwrap();
        assert_eq!(vfs.read("/data/journal", 0, 10, &mut rng()).unwrap(), b"abc");
    }

    #[test]
    fn device_semantics() {
        let mut vfs = Vfs::new();
        assert!(vfs.read("/dev/null", 0, 128, &mut rng()).unwrap().is_empty());
        assert_eq!(vfs.read("/dev/zero", 0, 4, &mut rng()).unwrap(), vec![0; 4]);
        let random = vfs.read("/dev/urandom", 0, 16, &mut rng()).unwrap();
        assert_eq!(random.len(), 16);
        assert_ne!(random, vec![0; 16]);
        // Writes to devices succeed and are discarded.
        assert_eq!(vfs.write("/dev/null", 0, b"discard", false).unwrap(), 7);
    }

    #[test]
    fn urandom_is_deterministic_per_seed() {
        let vfs = Vfs::new();
        let a = vfs.read("/dev/urandom", 0, 8, &mut rng()).unwrap();
        let b = vfs.read("/dev/urandom", 0, 8, &mut rng()).unwrap();
        assert_eq!(a, b, "same seed, same bytes");
    }

    #[test]
    fn missing_paths_and_directories_error() {
        let mut vfs = Vfs::new();
        assert_eq!(
            vfs.read("/missing", 0, 1, &mut rng()).unwrap_err(),
            Errno::ENOENT
        );
        assert_eq!(vfs.write("/missing", 0, b"x", false).unwrap_err(), Errno::ENOENT);
        assert_eq!(vfs.read("/tmp", 0, 1, &mut rng()).unwrap_err(), Errno::EISDIR);
        assert_eq!(
            vfs.create_file("/nodir/file", Vec::new()).unwrap_err(),
            Errno::ENOENT
        );
        assert_eq!(vfs.create_file("/tmp", Vec::new()).unwrap_err(), Errno::EISDIR);
        assert_eq!(vfs.unlink("/tmp").unwrap_err(), Errno::EISDIR);
        assert_eq!(vfs.unlink("/nope").unwrap_err(), Errno::ENOENT);
        assert_eq!(vfs.size("/nope").unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn mkdir_and_listing() {
        let mut vfs = Vfs::new();
        vfs.mkdir("/var/www/static").unwrap();
        assert_eq!(vfs.mkdir("/var/www/static").unwrap_err(), Errno::EEXIST);
        assert_eq!(vfs.mkdir("/a/b").unwrap_err(), Errno::ENOENT);
        vfs.create_file("/var/www/index.html", Vec::new()).unwrap();
        let mut children = vfs.list_dir("/var/www").unwrap();
        children.sort();
        assert_eq!(children, vec!["/var/www/index.html", "/var/www/static"]);
        assert_eq!(vfs.list_dir("/dev/null").unwrap_err(), Errno::ENOTDIR);
    }

    #[test]
    fn unlink_removes_files() {
        let mut vfs = Vfs::new();
        vfs.create_file("/tmp/scratch", b"x".to_vec()).unwrap();
        vfs.unlink("/tmp/scratch").unwrap();
        assert!(!vfs.exists("/tmp/scratch"));
    }

    #[test]
    fn truncate_clears_contents() {
        let mut vfs = Vfs::new();
        vfs.create_file("/tmp/log", b"contents".to_vec()).unwrap();
        vfs.truncate("/tmp/log").unwrap();
        assert_eq!(vfs.size("/tmp/log").unwrap(), 0);
        assert_eq!(vfs.truncate("/absent").unwrap_err(), Errno::ENOENT);
    }
}
