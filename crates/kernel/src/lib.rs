//! Virtual operating-system substrate for the VARAN N-version execution
//! framework reproduction.
//!
//! The original VARAN runs real Linux binaries on a real kernel.  This crate
//! is the reproduction's stand-in for that environment (see `DESIGN.md`): a
//! deterministic, thread-safe virtual kernel exposing an x86-64-style system
//! call ABI, against which the miniature applications in `varan-apps` are
//! written and upon which the monitors in `varan-core` and `varan-baselines`
//! interpose.  It provides:
//!
//! * [`sysno`] — the system-call numbers (x86-64 values) and names.
//! * [`syscall`] — the [`SyscallRequest`] / [`SyscallOutcome`] ABI: arguments
//!   by value, payloads by buffer, file-descriptor results flagged for
//!   transfer, and a per-call cycle cost.
//! * [`fs`] — an in-memory VFS with regular files, directories and the
//!   devices the paper's benchmarks touch (`/dev/null`, `/dev/zero`,
//!   `/dev/urandom`).
//! * [`net`] — a loopback TCP-like network: listeners, connections and byte
//!   streams, enough to host the C10k server benchmarks.
//! * [`process`] — processes, threads and per-process file-descriptor tables.
//! * [`signal`] — signal numbers and per-process pending sets (used by the
//!   failover experiments).
//! * [`time`] — the virtual monotonic clock, advanced by the cost model.
//! * [`cost`] — the cycle cost model, calibrated to the native measurements
//!   in Figure 4 of the paper so that relative costs are preserved.
//! * [`kernel`] — the [`Kernel`] object tying everything together and the
//!   syscall dispatcher.
//! * [`checkpoint`] — serializable snapshots of the fs/net/process/signal
//!   tables (plus the per-version descriptor-translation map), the substrate
//!   for followers joining a running execution at an event boundary, and
//!   checksum-chained incremental deltas between successive snapshots
//!   (docs/DURABILITY.md).
//! * [`sim`] — the deterministic-simulation interposition point: a
//!   [`sim::SimDriver`] installed on the kernel is consulted at every
//!   system-call dispatch and descriptor transfer, letting a seeded harness
//!   (the `varan-sim` crate) crash versions, fail transfers and stretch
//!   time at precisely chosen boundaries.
//!
//! # Example
//!
//! ```
//! use varan_kernel::{Kernel, syscall::SyscallRequest, sysno::Sysno};
//!
//! let kernel = Kernel::new();
//! let pid = kernel.spawn_process("demo");
//! // write(1, "hello") — fd 1 is the process's pre-opened console sink.
//! let outcome = kernel.syscall(pid, &SyscallRequest::write(1, b"hello".to_vec()));
//! assert_eq!(outcome.result, 5);
//! assert!(outcome.cost > 0);
//! // close(-1) — the paper's micro-benchmark no-op syscall.
//! let outcome = kernel.syscall(pid, &SyscallRequest::new(Sysno::Close, [u64::MAX, 0, 0, 0, 0, 0]));
//! assert!(outcome.result < 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod checkpoint;
pub mod cost;
pub mod fs;
pub mod kernel;
pub mod net;
pub mod process;
pub mod shard;
pub mod signal;
pub mod sim;
pub mod syscall;
pub mod sysno;
pub mod time;

mod errno;

pub use checkpoint::{CheckpointDelta, CheckpointError, KernelCheckpoint};
pub use errno::Errno;
pub use kernel::Kernel;
pub use shard::{connection_key, names_descriptor};
pub use sim::{Corruptor, SimAction, SimDriver, SimPoint};
pub use syscall::{FdInfo, SyscallOutcome, SyscallRequest};
pub use sysno::Sysno;
pub use time::{ClockSource, SimDeadline, SimInstant, VirtualClock};
