//! The cycle cost model.
//!
//! The reproduction's kernel is a simulator, so "how long did this take" is
//! answered with a deterministic cost model rather than a wall clock.  The
//! model is calibrated to the *native* column of Figure 4 in the paper
//! (measured on a 3.50 GHz Xeon E3-1280): `close(-1)` costs 1261 cycles,
//! `write(/dev/null, 512)` 1430, `read(/dev/null, 512)` 1486,
//! `open("/dev/null")` 2583 and the vDSO-backed `time(NULL)` 49 cycles.
//! Monitors add their own costs (interception, recording, replaying) on top;
//! what matters for reproducing the evaluation is that the *relative* cost
//! structure of the substrate matches the paper's testbed.

use serde::{Deserialize, Serialize};

use crate::sysno::Sysno;

/// Cycle counts used throughout the simulation.
pub type Cycles = u64;

/// Calibrated cost model for native system-call execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of an inexpensive no-op system call (`close(-1)` in Figure 4).
    pub trivial_syscall: Cycles,
    /// Cost of a `write` of [`CostModel::reference_io_size`] bytes.
    pub write_512: Cycles,
    /// Cost of a `read` of [`CostModel::reference_io_size`] bytes.
    pub read_512: Cycles,
    /// Cost of an `open` that allocates a new file descriptor.
    pub open: Cycles,
    /// Cost of a virtual (vDSO) system call such as `time`.
    pub vsyscall: Cycles,
    /// Extra cycles per byte of payload copied in or out of the kernel.
    pub per_byte: Cycles,
    /// Cost of a fork/clone.
    pub fork: Cycles,
    /// Cost of blocking and being woken (scheduler round trip).
    pub block_resume: Cycles,
    /// Reference payload size the `*_512` costs were calibrated at.
    pub reference_io_size: usize,
    /// CPU frequency in cycles per microsecond (3.5 GHz machine → 3500).
    pub cycles_per_us: Cycles,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            trivial_syscall: 1261,
            write_512: 1430,
            read_512: 1486,
            open: 2583,
            vsyscall: 49,
            per_byte: 0, // derived below for the reference size
            fork: 60_000,
            block_resume: 6_000,
            reference_io_size: 512,
            cycles_per_us: 3_500,
        }
    }
}

impl CostModel {
    /// Creates the default, Figure 4-calibrated model.
    #[must_use]
    pub fn new() -> Self {
        CostModel::default()
    }

    /// Marginal cost per payload byte implied by the calibration
    /// (the difference between a 512-byte write and a trivial call, spread
    /// over 512 bytes).
    #[must_use]
    pub fn copy_cost(&self, bytes: usize) -> Cycles {
        if self.reference_io_size == 0 {
            return self.per_byte * bytes as Cycles;
        }
        let marginal = self
            .write_512
            .saturating_sub(self.trivial_syscall)
            .max(self.per_byte * self.reference_io_size as Cycles);
        (marginal * bytes as Cycles) / self.reference_io_size as Cycles
    }

    /// Native cost of executing `sysno` with a payload of `bytes` bytes.
    #[must_use]
    pub fn native_cost(&self, sysno: Sysno, bytes: usize) -> Cycles {
        match sysno {
            Sysno::Close
            | Sysno::Getuid
            | Sysno::Getgid
            | Sysno::Geteuid
            | Sysno::Getegid
            | Sysno::Getpid
            | Sysno::Fcntl
            | Sysno::Lseek
            | Sysno::Kill
            | Sysno::Shutdown
            | Sysno::SetTidAddress
            | Sysno::Sigaltstack
            | Sysno::RtSigaction
            | Sysno::Ioctl
            | Sysno::EpollCtl => self.trivial_syscall,
            Sysno::Write | Sysno::Sendto | Sysno::Fsync => {
                self.trivial_syscall + self.copy_cost(bytes)
            }
            Sysno::Read | Sysno::Recvfrom | Sysno::Getdents64 | Sysno::Getrandom | Sysno::Getcwd => {
                // Reads are calibrated slightly above writes (1486 vs 1430).
                self.trivial_syscall
                    + self.copy_cost(bytes)
                    + self.read_512.saturating_sub(self.write_512)
            }
            Sysno::Open | Sysno::Openat | Sysno::Socket | Sysno::Accept | Sysno::Accept4
            | Sysno::Pipe | Sysno::EpollCreate1 => self.open,
            Sysno::Stat | Sysno::Fstat | Sysno::Mkdir | Sysno::Unlink | Sysno::Connect
            | Sysno::Bind | Sysno::Listen | Sysno::EpollWait | Sysno::Futex
            | Sysno::Nanosleep | Sysno::ClockNanosleep | Sysno::Mmap | Sysno::Munmap
            | Sysno::Mprotect | Sysno::Brk => self.trivial_syscall + self.trivial_syscall / 4,
            Sysno::ClockGettime | Sysno::Getcpu | Sysno::Gettimeofday | Sysno::Time => {
                self.vsyscall
            }
            Sysno::Fork | Sysno::Clone => self.fork,
            Sysno::Exit | Sysno::ExitGroup => self.trivial_syscall,
        }
    }

    /// Converts a cycle count into microseconds of simulated time.
    #[must_use]
    pub fn cycles_to_us(&self, cycles: Cycles) -> f64 {
        cycles as f64 / self.cycles_per_us as f64
    }

    /// Converts microseconds of simulated time into cycles.
    #[must_use]
    pub fn us_to_cycles(&self, us: f64) -> Cycles {
        (us * self.cycles_per_us as f64).round() as Cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_4_native_calibration() {
        let model = CostModel::new();
        assert_eq!(model.native_cost(Sysno::Close, 0), 1261);
        assert_eq!(model.native_cost(Sysno::Write, 512), 1430);
        assert_eq!(model.native_cost(Sysno::Read, 512), 1486);
        assert_eq!(model.native_cost(Sysno::Open, 0), 2583);
        assert_eq!(model.native_cost(Sysno::Time, 0), 49);
    }

    #[test]
    fn io_cost_scales_with_payload() {
        let model = CostModel::new();
        assert!(model.native_cost(Sysno::Write, 4096) > model.native_cost(Sysno::Write, 512));
        assert!(model.native_cost(Sysno::Read, 0) < model.native_cost(Sysno::Read, 512));
        assert_eq!(model.copy_cost(0), 0);
    }

    #[test]
    fn virtual_calls_are_two_orders_cheaper() {
        let model = CostModel::new();
        assert!(model.native_cost(Sysno::Time, 0) * 20 < model.native_cost(Sysno::Close, 0));
        assert_eq!(
            model.native_cost(Sysno::Gettimeofday, 0),
            model.native_cost(Sysno::ClockGettime, 0)
        );
    }

    #[test]
    fn time_conversions_round_trip() {
        let model = CostModel::new();
        assert_eq!(model.us_to_cycles(1.0), 3_500);
        let us = model.cycles_to_us(7_000);
        assert!((us - 2.0).abs() < 1e-9);
    }

    #[test]
    fn every_syscall_has_a_cost() {
        let model = CostModel::new();
        for &sysno in crate::sysno::ALL_SYSCALLS {
            assert!(model.native_cost(sysno, 64) > 0, "{sysno:?} has zero cost");
        }
    }
}
