//! The paper's discarded first communication design, kept as an ablation
//! baseline (§3.3.1).
//!
//! Before settling on the Disruptor-style shared ring, VARAN used a separate
//! shared queue per follower with the coordinator acting as an *event pump*:
//! it read events from the leader's queue and dispatched a copy into every
//! follower's queue.  That works at low system-call rates but the pump quickly
//! becomes a bottleneck.  The `ablation_event_pump` benchmark compares this
//! design against [`crate::RingBuffer`].

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// A bounded multi-producer/multi-consumer FIFO queue used by the event-pump
/// baseline.
///
/// Unlike the Disruptor ring this queue requires a lock on every operation,
/// and the pump must copy each event once per follower.
pub struct PumpQueue<T> {
    inner: Arc<QueueInner<T>>,
}

struct QueueInner<T> {
    capacity: usize,
    queue: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Clone for PumpQueue<T> {
    fn clone(&self) -> Self {
        PumpQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for PumpQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PumpQueue")
            .field("capacity", &self.inner.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> PumpQueue<T> {
    /// Creates a queue holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        PumpQueue {
            inner: Arc::new(QueueInner {
                capacity,
                queue: Mutex::new(VecDeque::with_capacity(capacity)),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
            }),
        }
    }

    /// Number of events currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Returns `true` if no events are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `value`, blocking while the queue is full.
    pub fn push(&self, value: T) {
        let mut queue = self.inner.queue.lock();
        while queue.len() >= self.inner.capacity {
            self.inner.not_full.wait(&mut queue);
        }
        queue.push_back(value);
        self.inner.not_empty.notify_one();
    }

    /// Dequeues the oldest event, blocking while the queue is empty.
    pub fn pop(&self) -> T {
        let mut queue = self.inner.queue.lock();
        while queue.is_empty() {
            self.inner.not_empty.wait(&mut queue);
        }
        let value = queue.pop_front().expect("queue is non-empty");
        self.inner.not_full.notify_one();
        value
    }

    /// Dequeues the oldest event without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut queue = self.inner.queue.lock();
        let value = queue.pop_front();
        if value.is_some() {
            self.inner.not_full.notify_one();
        }
        value
    }

    /// Dequeues up to `max` events into `out` under a single lock
    /// acquisition, returning how many were appended.  The batched
    /// counterpart of [`PumpQueue::try_pop`], so the pump baseline pays one
    /// lock per burst rather than one per event.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut queue = self.inner.queue.lock();
        let take = queue.len().min(max);
        out.reserve(take);
        for _ in 0..take {
            out.push(queue.pop_front().expect("len checked"));
        }
        if take > 0 {
            self.inner.not_full.notify_all();
        }
        take
    }

    /// Enqueues every value in `values` under as few lock acquisitions as
    /// possible, blocking whenever the queue is full.
    pub fn push_slice(&self, values: &[T])
    where
        T: Clone,
    {
        let mut queue = self.inner.queue.lock();
        for value in values {
            while queue.len() >= self.inner.capacity {
                self.inner.not_full.wait(&mut queue);
            }
            queue.push_back(value.clone());
            self.inner.not_empty.notify_one();
        }
    }

    /// Dequeues the oldest event, giving up after `timeout`.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.inner.queue.lock();
        while queue.is_empty() {
            let remaining = deadline.checked_duration_since(Instant::now())?;
            if self
                .inner
                .not_empty
                .wait_for(&mut queue, remaining)
                .timed_out()
                && queue.is_empty()
            {
                return None;
            }
        }
        let value = queue.pop_front();
        if value.is_some() {
            self.inner.not_full.notify_one();
        }
        value
    }
}

/// The central event pump: reads events from the leader's queue and dispatches
/// a copy into every follower queue.
#[derive(Debug)]
pub struct EventPump<T> {
    leader: PumpQueue<T>,
    followers: Vec<PumpQueue<T>>,
    dispatched: u64,
}

impl<T: Clone> EventPump<T> {
    /// Creates a pump connecting `leader` to `followers`.
    #[must_use]
    pub fn new(leader: PumpQueue<T>, followers: Vec<PumpQueue<T>>) -> Self {
        EventPump {
            leader,
            followers,
            dispatched: 0,
        }
    }

    /// The leader-side queue the pump drains.
    #[must_use]
    pub fn leader_queue(&self) -> &PumpQueue<T> {
        &self.leader
    }

    /// The follower-side queues the pump fills.
    #[must_use]
    pub fn follower_queues(&self) -> &[PumpQueue<T>] {
        &self.followers
    }

    /// Number of events dispatched so far.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Moves at most one event from the leader queue to every follower queue.
    ///
    /// Returns `true` if an event was dispatched.
    pub fn pump_once(&mut self) -> bool {
        match self.leader.try_pop() {
            Some(event) => {
                for follower in &self.followers {
                    follower.push(event.clone());
                }
                self.dispatched += 1;
                true
            }
            None => false,
        }
    }

    /// Drains the leader queue until it is empty, returning the number of
    /// events dispatched.  Works in batches: one lock on the leader queue
    /// per burst and one lock per follower queue per burst, instead of one
    /// of each per event.
    pub fn pump_until_empty(&mut self) -> u64 {
        let mut moved = 0;
        let mut batch = Vec::new();
        loop {
            batch.clear();
            if self.leader.pop_batch(&mut batch, usize::MAX) == 0 {
                return moved;
            }
            for follower in &self.followers {
                follower.push_slice(&batch);
            }
            let n = batch.len() as u64;
            self.dispatched += n;
            moved += n;
        }
    }

    /// Pumps exactly `count` events, blocking for each one.
    pub fn pump_exact(&mut self, count: u64) {
        for _ in 0..count {
            let event = self.leader.pop();
            for follower in &self.followers {
                follower.push(event.clone());
            }
            self.dispatched += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn queue_is_fifo() {
        let queue = PumpQueue::new(4);
        queue.push(1);
        queue.push(2);
        queue.push(3);
        assert_eq!(queue.pop(), 1);
        assert_eq!(queue.pop(), 2);
        assert_eq!(queue.pop(), 3);
        assert!(queue.try_pop().is_none());
    }

    #[test]
    fn pop_timeout_times_out() {
        let queue: PumpQueue<u32> = PumpQueue::new(1);
        assert!(queue.pop_timeout(Duration::from_millis(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = PumpQueue::<u32>::new(0);
    }

    #[test]
    fn push_blocks_until_space() {
        let queue = PumpQueue::new(1);
        queue.push(1u32);
        let writer = queue.clone();
        let handle = std::thread::spawn(move || writer.push(2));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(queue.pop(), 1);
        handle.join().unwrap();
        assert_eq!(queue.pop(), 2);
    }

    #[test]
    fn pump_copies_to_every_follower() {
        let leader = PumpQueue::new(16);
        let followers: Vec<PumpQueue<Event>> = (0..3).map(|_| PumpQueue::new(16)).collect();
        let mut pump = EventPump::new(leader.clone(), followers.clone());
        for i in 0..5 {
            leader.push(Event::checkpoint(i));
        }
        assert_eq!(pump.pump_until_empty(), 5);
        assert_eq!(pump.dispatched(), 5);
        for follower in &followers {
            let mut ids = Vec::new();
            while let Some(event) = follower.try_pop() {
                ids.push(event.args()[0]);
            }
            assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn pop_batch_and_push_slice_round_trip() {
        let queue = PumpQueue::new(8);
        queue.push_slice(&[1u32, 2, 3, 4, 5]);
        let mut out = Vec::new();
        assert_eq!(queue.pop_batch(&mut out, 3), 3);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(queue.pop_batch(&mut out, usize::MAX), 2);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(queue.pop_batch(&mut out, usize::MAX), 0);
    }

    #[test]
    fn push_slice_blocks_until_space() {
        let queue = PumpQueue::new(2);
        let writer = queue.clone();
        let handle = std::thread::spawn(move || writer.push_slice(&[1u32, 2, 3, 4]));
        let mut seen = Vec::new();
        while seen.len() < 4 {
            if let Some(v) = queue.pop_timeout(Duration::from_secs(5)) {
                seen.push(v);
            }
        }
        handle.join().unwrap();
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }

    #[test]
    fn pump_exact_blocks_for_events() {
        let leader = PumpQueue::new(4);
        let follower = PumpQueue::new(4);
        let mut pump = EventPump::new(leader.clone(), vec![follower.clone()]);
        let handle = std::thread::spawn(move || pump.pump_exact(1));
        std::thread::sleep(Duration::from_millis(10));
        leader.push(Event::exit(0));
        handle.join().unwrap();
        assert_eq!(follower.pop().kind(), crate::EventKind::Exit);
    }
}
