//! Error type for the event-streaming primitives.

use std::error::Error;
use std::fmt;

/// Errors produced by the ring buffer, pool allocator and related primitives.
///
/// # Examples
///
/// ```
/// use varan_ring::{RingBuffer, RingError, Event, WaitStrategy};
///
/// let err = RingBuffer::<Event>::new(3, 1, WaitStrategy::Spin).unwrap_err();
/// assert!(matches!(err, RingError::CapacityNotPowerOfTwo(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RingError {
    /// The requested ring capacity is not a power of two.
    CapacityNotPowerOfTwo(usize),
    /// The requested ring capacity is zero.
    ZeroCapacity,
    /// A consumer index was out of range for the ring.
    InvalidConsumer {
        /// The requested consumer slot.
        index: usize,
        /// The number of consumer slots the ring was created with.
        consumers: usize,
    },
    /// The consumer slot was already claimed by another follower.
    ConsumerAlreadyClaimed(usize),
    /// The shared-memory pool ran out of backing space.
    OutOfSharedMemory {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes still available in the pool when the request failed.
        available: usize,
    },
    /// An allocation request exceeded the largest bucket size.
    AllocationTooLarge {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// The largest chunk size supported by the pool.
        max_chunk: usize,
    },
    /// A shared region handle did not belong to the pool it was returned to.
    ForeignRegion,
    /// A shared region was freed twice.
    DoubleFree,
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::CapacityNotPowerOfTwo(n) => {
                write!(f, "ring capacity {n} is not a power of two")
            }
            RingError::ZeroCapacity => write!(f, "ring capacity must be non-zero"),
            RingError::InvalidConsumer { index, consumers } => write!(
                f,
                "consumer index {index} out of range for ring with {consumers} consumer slots"
            ),
            RingError::ConsumerAlreadyClaimed(index) => {
                write!(f, "consumer slot {index} already claimed")
            }
            RingError::OutOfSharedMemory {
                requested,
                available,
            } => write!(
                f,
                "shared memory pool exhausted: requested {requested} bytes, {available} available"
            ),
            RingError::AllocationTooLarge {
                requested,
                max_chunk,
            } => write!(
                f,
                "allocation of {requested} bytes exceeds largest bucket chunk of {max_chunk} bytes"
            ),
            RingError::ForeignRegion => write!(f, "shared region does not belong to this pool"),
            RingError::DoubleFree => write!(f, "shared region was already freed"),
        }
    }
}

impl Error for RingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let cases: Vec<RingError> = vec![
            RingError::CapacityNotPowerOfTwo(7),
            RingError::ZeroCapacity,
            RingError::InvalidConsumer {
                index: 4,
                consumers: 2,
            },
            RingError::ConsumerAlreadyClaimed(1),
            RingError::OutOfSharedMemory {
                requested: 128,
                available: 64,
            },
            RingError::AllocationTooLarge {
                requested: 1 << 30,
                max_chunk: 4096,
            },
            RingError::ForeignRegion,
            RingError::DoubleFree,
        ];
        for case in cases {
            let text = case.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
            assert!(!text.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RingError>();
    }
}
