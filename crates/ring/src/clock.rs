//! Lamport logical clocks for ordering events across ring buffers (§3.3.3).
//!
//! Multi-threaded applications use one ring buffer per thread tuple.  To keep
//! followers from replaying events in an order that violates the leader's
//! happens-before relation, every variant owns a single logical clock shared
//! by all of its threads: the leader increments it when publishing an event
//! and stamps the event with the new value; a follower thread only consumes an
//! event when its own variant clock has caught up with the event's timestamp.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Result of comparing an event timestamp against a variant clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockOrdering {
    /// The event is the next one in the variant's happens-before order and may
    /// be consumed now.
    Ready,
    /// Some earlier event has not been consumed yet; the caller must wait.
    NotYet,
    /// The event's timestamp is in the past (already consumed); consuming it
    /// again would indicate a protocol error.
    Stale,
}

/// A shared atomic Lamport clock (one per variant, shared by its threads).
///
/// # Examples
///
/// ```
/// use varan_ring::{ClockOrdering, LamportClock};
///
/// let leader = LamportClock::new();
/// let follower = LamportClock::new();
///
/// // Leader stamps two events.
/// let t1 = leader.tick();
/// let t2 = leader.tick();
/// assert!(t1 < t2);
///
/// // Follower must consume them in order.
/// assert_eq!(follower.check(t2), ClockOrdering::NotYet);
/// assert_eq!(follower.check(t1), ClockOrdering::Ready);
/// follower.advance(t1);
/// assert_eq!(follower.check(t2), ClockOrdering::Ready);
/// ```
#[derive(Debug, Default)]
pub struct LamportClock {
    value: AtomicU64,
}

impl LamportClock {
    /// Creates a clock starting at zero (no events stamped or consumed yet).
    #[must_use]
    pub fn new() -> Self {
        LamportClock {
            value: AtomicU64::new(0),
        }
    }

    /// Current clock value: the number of events stamped (leader side) or
    /// consumed (follower side) so far.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// Leader side: increments the clock and returns the timestamp to attach
    /// to the event being published.
    pub fn tick(&self) -> u64 {
        self.value.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Follower side: classifies an event timestamp against this clock.
    #[must_use]
    pub fn check(&self, timestamp: u64) -> ClockOrdering {
        let current = self.value();
        if timestamp == current + 1 {
            ClockOrdering::Ready
        } else if timestamp > current + 1 {
            ClockOrdering::NotYet
        } else {
            ClockOrdering::Stale
        }
    }

    /// Follower side: records that the event stamped `timestamp` has been
    /// consumed.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if events are consumed out of order, which
    /// would indicate a violation of the happens-before enforcement.
    pub fn advance(&self, timestamp: u64) {
        let previous = self.value.swap(timestamp, Ordering::AcqRel);
        debug_assert!(
            timestamp == previous + 1,
            "variant clock advanced out of order: {previous} -> {timestamp}"
        );
    }

    /// Observes an external timestamp, advancing the clock to at least that
    /// value (classic Lamport `max(local, remote)` merge).  Used when a
    /// variant joins mid-stream, e.g. a freshly promoted leader.
    pub fn observe(&self, timestamp: u64) {
        let mut current = self.value();
        while timestamp > current {
            match self.value.compare_exchange(
                current,
                timestamp,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }
}

/// A cloneable handle to a variant's shared clock.
///
/// The leader's threads and a follower's threads each share one
/// `VariantClock` (named `T` and `T'` in Figure 3 of the paper).
#[derive(Debug, Clone, Default)]
pub struct VariantClock {
    inner: Arc<LamportClock>,
}

impl VariantClock {
    /// Creates a fresh variant clock starting at zero.
    #[must_use]
    pub fn new() -> Self {
        VariantClock {
            inner: Arc::new(LamportClock::new()),
        }
    }

    /// Access the underlying [`LamportClock`].
    #[must_use]
    pub fn clock(&self) -> &LamportClock {
        &self.inner
    }

    /// Leader side: stamp a new event.
    pub fn tick(&self) -> u64 {
        self.inner.tick()
    }

    /// Follower side: classify an event timestamp.
    #[must_use]
    pub fn check(&self, timestamp: u64) -> ClockOrdering {
        self.inner.check(timestamp)
    }

    /// Follower side: record consumption of an event.
    pub fn advance(&self, timestamp: u64) {
        self.inner.advance(timestamp);
    }

    /// Merge with an externally observed timestamp.
    pub fn observe(&self, timestamp: u64) {
        self.inner.observe(timestamp);
    }

    /// Current clock value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.inner.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_monotonic() {
        let clock = LamportClock::new();
        let a = clock.tick();
        let b = clock.tick();
        let c = clock.tick();
        assert!(a < b && b < c);
        assert_eq!(clock.value(), 3);
    }

    #[test]
    fn check_classifies_ready_notyet_stale() {
        let clock = LamportClock::new();
        assert_eq!(clock.check(1), ClockOrdering::Ready);
        assert_eq!(clock.check(2), ClockOrdering::NotYet);
        clock.advance(1);
        assert_eq!(clock.check(1), ClockOrdering::Stale);
        assert_eq!(clock.check(2), ClockOrdering::Ready);
    }

    #[test]
    fn observe_never_moves_backwards() {
        let clock = LamportClock::new();
        clock.observe(10);
        assert_eq!(clock.value(), 10);
        clock.observe(5);
        assert_eq!(clock.value(), 10);
        clock.observe(12);
        assert_eq!(clock.value(), 12);
    }

    #[test]
    fn shared_handles_see_each_others_updates() {
        let variant = VariantClock::new();
        let other = variant.clone();
        variant.tick();
        assert_eq!(other.value(), 1);
    }

    #[test]
    fn concurrent_ticks_produce_unique_timestamps() {
        let clock = std::sync::Arc::new(LamportClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let clock = std::sync::Arc::clone(&clock);
            handles.push(std::thread::spawn(move || {
                (0..250).map(|_| clock.tick()).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000, "timestamps must be unique");
        assert_eq!(clock.value(), 1000);
    }
}
