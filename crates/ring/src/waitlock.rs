//! The *waitlock*: a blocking-wait primitive for followers (§3.3.1).
//!
//! Followers normally busy-wait on the ring buffer.  When the leader is stuck
//! in a long blocking system call (e.g. `accept` on an idle server) busy
//! waiting wastes a core per follower, so followers acquire a waitlock and
//! sleep until the leader wakes up and notifies them.  The original
//! implementation combines C11 atomics with Linux futexes; this reproduction
//! uses an atomic generation counter plus a condition variable, which has the
//! same semantics (wait-until-notified with no lost wakeups).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A notification primitive with futex-like semantics.
///
/// `wait` blocks until `notify` (or `notify_all`) is called *after* the
/// waiter started waiting; notifications are never lost because waiters
/// capture the generation counter before blocking.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use varan_ring::WaitLock;
///
/// let lock = Arc::new(WaitLock::new());
/// let waiter = Arc::clone(&lock);
/// let handle = std::thread::spawn(move || waiter.wait_timeout(Duration::from_secs(5)));
/// std::thread::sleep(Duration::from_millis(10));
/// lock.notify_all();
/// assert!(handle.join().unwrap(), "waiter should have been woken");
/// ```
#[derive(Debug)]
pub struct WaitLock {
    generation: AtomicU64,
    mutex: Mutex<()>,
    condvar: Condvar,
    waiters: AtomicU64,
    wakeups: AtomicU64,
}

impl Default for WaitLock {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitLock {
    /// Creates a new waitlock with no pending notifications.
    #[must_use]
    pub fn new() -> Self {
        WaitLock {
            generation: AtomicU64::new(0),
            mutex: Mutex::new(()),
            condvar: Condvar::new(),
            waiters: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
        }
    }

    /// Current generation; increases by one for every notification.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Blocks the calling thread until the next notification.
    pub fn wait(&self) {
        let target = self.generation();
        // The waiter count must be visible before the generation re-check
        // under the mutex: a notifier bumps the generation first and only
        // then consults the count, so either it sees this waiter (and takes
        // the mutex to wake it) or this waiter sees the new generation (and
        // never blocks). This store-buffer (Dekker) pattern requires *every*
        // access involved to participate in the SeqCst total order — the
        // generation re-checks below use SeqCst loads, not the Acquire load
        // of `generation()`.
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.mutex.lock();
        while self.generation.load(Ordering::SeqCst) == target {
            self.condvar.wait(&mut guard);
        }
        drop(guard);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Blocks until the next notification or until `timeout` elapses.
    ///
    /// Returns `true` if a notification was received, `false` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let target = self.generation();
        // See `wait` for the ordering argument (SeqCst loads required).
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.mutex.lock();
        let mut woken = true;
        while self.generation.load(Ordering::SeqCst) == target {
            if self.condvar.wait_for(&mut guard, timeout).timed_out() {
                woken = self.generation.load(Ordering::SeqCst) != target;
                break;
            }
        }
        drop(guard);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        woken
    }

    /// Wakes every thread currently blocked in [`WaitLock::wait`].
    ///
    /// When nobody is waiting this is mutex-free: one atomic bump of the
    /// generation and one atomic load of the waiter count — the leader pays
    /// no lock for notifying followers that are all busy-spinning on the
    /// ring (§3.3.1's locking discipline).
    pub fn notify_all(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            // The mutex pairs the wakeup with the waiter's generation
            // re-check: a waiter holding the mutex has either blocked (and
            // will be notified) or already seen the new generation.
            let _guard = self.mutex.lock();
            self.condvar.notify_all();
        }
    }

    /// Wakes a single blocked thread (all callers observe the new generation,
    /// so at most one spurious extra thread may also wake, as with futexes).
    ///
    /// Mutex-free when nobody is waiting, like [`WaitLock::notify_all`].
    pub fn notify_one(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _guard = self.mutex.lock();
            self.condvar.notify_one();
        }
    }

    /// Number of threads currently blocked (approximate, for diagnostics).
    #[must_use]
    pub fn waiters(&self) -> u64 {
        self.waiters.load(Ordering::Relaxed)
    }

    /// Total number of notifications issued so far.
    #[must_use]
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn notification_before_wait_is_not_lost_for_new_generation() {
        let lock = WaitLock::new();
        assert_eq!(lock.generation(), 0);
        lock.notify_all();
        assert_eq!(lock.generation(), 1);
        // A wait started after the notification must block until the next one,
        // so a timed wait should time out.
        assert!(!lock.wait_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn wait_timeout_times_out_without_notification() {
        let lock = WaitLock::new();
        assert!(!lock.wait_timeout(Duration::from_millis(5)));
    }

    #[test]
    fn notify_wakes_multiple_waiters() {
        let lock = Arc::new(WaitLock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let waiter = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                waiter.wait_timeout(Duration::from_secs(5))
            }));
        }
        // Give the waiters a moment to block, then wake them all.
        std::thread::sleep(Duration::from_millis(20));
        lock.notify_all();
        for handle in handles {
            assert!(handle.join().unwrap());
        }
        assert_eq!(lock.wakeups(), 1);
    }

    #[test]
    fn notify_one_advances_generation() {
        let lock = WaitLock::new();
        lock.notify_one();
        lock.notify_one();
        assert_eq!(lock.generation(), 2);
        assert_eq!(lock.wakeups(), 2);
    }
}
