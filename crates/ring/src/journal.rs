//! The spill-to-disk event journal: a segmented, append-only, disk-backed
//! log of the leader's event stream.
//!
//! The in-memory ring buffer (§3.3.1) is deliberately tiny — one lap of
//! events — which is exactly why a *late-joining* or *lagging* follower can
//! never be served from it: by the time the follower attaches, the slots it
//! needs have been recycled.  The journal solves this by having the producer
//! spill every published event to an append-only log on disk.  Followers that
//! are catching up read the journal at their own pace without ever gating
//! the leader's ring space; only once a follower is within one ring lap of
//! the cursor does it register a gating sequence and switch to live ring
//! consumption (see `varan_core::fleet`).
//!
//! # Checkpoint-anchored retention
//!
//! The journal cannot grow forever.  Retention is anchored at the **oldest
//! live checkpoint**: a joiner restores a kernel checkpoint taken at event
//! sequence `S` and then replays the journal from `S`, so every segment
//! whose events all precede the oldest checkpoint any live (or future)
//! joiner could restore from is dead weight and is deleted by
//! [`EventJournal::set_anchor`].  Whole segments are the retention unit —
//! a segment is only removed once *every* record in it lies below the
//! anchor — so a reader positioned at or above the anchor always finds a
//! contiguous record stream from its position to the tail.
//!
//! # On-disk format
//!
//! One format serves both this journal and the record-replay log
//! (`varan_core::record_replay` encodes its `RecordLog` as a single segment
//! with first-sequence 0): a segment file is the [`SEGMENT_MAGIC`] header,
//! the little-endian `u64` sequence number of its first record, then a run
//! of frames.  Each frame is a fixed 71-byte header (kind, sysno, tid,
//! clock, result, six argument registers, payload length) followed by the
//! payload bytes.  Decoding validates every length against the remaining
//! input, so a truncated or corrupt file yields [`JournalError`] — or, for
//! the *final* segment of a journal that died mid-append, a clean
//! truncation to the last whole frame ([`decode_segment_lossy`]).

use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::{Event, EventKind, EVENT_INLINE_ARGS};

/// Magic bytes opening every journal segment (and every record-replay log).
pub const SEGMENT_MAGIC: &[u8; 8] = b"VRNJSEG1";

/// Number of argument registers preserved per record (the full x86-64
/// system-call register set, not just the [`EVENT_INLINE_ARGS`] an in-ring
/// event keeps inline).
pub const JOURNAL_ARGS: usize = 6;

/// Fixed size of a frame before its payload bytes.
const FRAME_HEADER: usize = 1 + 2 + 4 + 8 + 8 + 8 * JOURNAL_ARGS + 8;

/// Payload-length marker meaning "no payload" (distinct from an empty one).
const NO_PAYLOAD: u64 = u64::MAX;

/// Upper bound accepted for a single payload while decoding; anything larger
/// is treated as corruption rather than attempted as an allocation.
const MAX_PAYLOAD: u64 = 1 << 30;

/// Errors produced while encoding, decoding or persisting journal data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JournalError {
    /// The bytes do not start with [`SEGMENT_MAGIC`].
    BadMagic,
    /// The input ended in the middle of a header or frame.
    Truncated {
        /// Byte offset at which the input ran out.
        offset: usize,
    },
    /// A frame carried a field that cannot be valid (unknown event kind,
    /// absurd payload length).
    Corrupt {
        /// Byte offset of the offending frame.
        offset: usize,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// An I/O error while reading or writing segment files.
    Io(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::BadMagic => write!(f, "journal segment: missing magic header"),
            JournalError::Truncated { offset } => {
                write!(f, "journal segment truncated at byte {offset}")
            }
            JournalError::Corrupt { offset, reason } => {
                write!(f, "journal segment corrupt at byte {offset}: {reason}")
            }
            JournalError::Io(err) => write!(f, "journal i/o error: {err}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(err: std::io::Error) -> Self {
        JournalError::Io(err.to_string())
    }
}

/// One event as persisted in the journal: the ring event's fields plus the
/// two argument registers and the out-of-line payload that do not fit in a
/// 64-byte ring slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalRecord {
    /// The kind of external action ([`EventKind`] as its `u8` value).
    pub kind: EventKind,
    /// System call (or signal) number.
    pub sysno: u16,
    /// Producing thread index within the variant.
    pub tid: u32,
    /// Lamport timestamp attached by the producing variant.
    pub clock: u64,
    /// Result the leader observed.
    pub result: i64,
    /// All six argument registers.
    pub args: [u64; JOURNAL_ARGS],
    /// Out-of-line payload, materialised inline on disk.
    pub payload: Option<Vec<u8>>,
}

impl JournalRecord {
    /// Builds a record from an in-ring event and its copied-out payload.
    /// The two argument registers an event does not keep inline are zero.
    #[must_use]
    pub fn from_event(event: &Event, payload: Option<Vec<u8>>) -> Self {
        let mut args = [0u64; JOURNAL_ARGS];
        args[..EVENT_INLINE_ARGS].copy_from_slice(event.args());
        JournalRecord {
            kind: event.kind(),
            sysno: event.sysno(),
            tid: event.tid(),
            clock: event.clock(),
            result: event.result(),
            args,
            payload,
        }
    }

    /// Reconstructs the in-ring view of this record (the payload, which
    /// would live in the shared pool, is returned separately by the caller
    /// holding this record).
    #[must_use]
    pub fn to_event(&self) -> Event {
        Event::syscall(self.sysno, &self.args[..EVENT_INLINE_ARGS], self.result)
            .with_kind(self.kind)
            .with_tid(self.tid)
            .with_clock(self.clock)
    }

    /// Appends this record's frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.kind as u8);
        out.extend_from_slice(&self.sysno.to_le_bytes());
        out.extend_from_slice(&self.tid.to_le_bytes());
        out.extend_from_slice(&self.clock.to_le_bytes());
        out.extend_from_slice(&self.result.to_le_bytes());
        for arg in self.args {
            out.extend_from_slice(&arg.to_le_bytes());
        }
        match &self.payload {
            Some(payload) => {
                out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                out.extend_from_slice(payload);
            }
            None => out.extend_from_slice(&NO_PAYLOAD.to_le_bytes()),
        }
    }

    /// Decodes one frame starting at `*cursor`, advancing the cursor past it.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Truncated`] if the input ends inside the
    /// frame and [`JournalError::Corrupt`] for invalid field values; the
    /// cursor is left unspecified on error.
    pub fn decode_from(bytes: &[u8], cursor: &mut usize) -> Result<Self, JournalError> {
        let start = *cursor;
        let header = bytes
            .get(start..start.saturating_add(FRAME_HEADER))
            .ok_or(JournalError::Truncated { offset: start })?;
        let take8 = |at: usize| -> u64 {
            u64::from_le_bytes(header[at..at + 8].try_into().expect("8 bytes"))
        };
        let kind = EventKind::from_u8(header[0]).ok_or(JournalError::Corrupt {
            offset: start,
            reason: "unknown event kind",
        })?;
        let sysno = u16::from_le_bytes(header[1..3].try_into().expect("2 bytes"));
        let tid = u32::from_le_bytes(header[3..7].try_into().expect("4 bytes"));
        let clock = take8(7);
        let result = take8(15) as i64;
        let mut args = [0u64; JOURNAL_ARGS];
        for (i, arg) in args.iter_mut().enumerate() {
            *arg = take8(23 + 8 * i);
        }
        let payload_len = take8(23 + 8 * JOURNAL_ARGS);
        let mut at = start + FRAME_HEADER;
        let payload = if payload_len == NO_PAYLOAD {
            None
        } else {
            if payload_len > MAX_PAYLOAD {
                return Err(JournalError::Corrupt {
                    offset: start,
                    reason: "payload length exceeds the 1 GiB bound",
                });
            }
            let end = at
                .checked_add(payload_len as usize)
                .ok_or(JournalError::Corrupt {
                    offset: start,
                    reason: "payload length overflows",
                })?;
            let payload = bytes
                .get(at..end)
                .ok_or(JournalError::Truncated { offset: at })?
                .to_vec();
            at = end;
            Some(payload)
        };
        *cursor = at;
        Ok(JournalRecord {
            kind,
            sysno,
            tid,
            clock,
            result,
            args,
            payload,
        })
    }
}

/// Encodes a whole segment: magic, first-record sequence, frames.
#[must_use]
pub fn encode_segment(first_seq: u64, records: &[JournalRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + records.len() * (FRAME_HEADER + 16));
    out.extend_from_slice(SEGMENT_MAGIC);
    out.extend_from_slice(&first_seq.to_le_bytes());
    for record in records {
        record.encode_into(&mut out);
    }
    out
}

/// Decodes a segment strictly: every byte must belong to a whole frame.
///
/// # Errors
///
/// Returns [`JournalError`] for a missing header, a truncated frame or any
/// invalid field — this is the right mode for a log that claims to be
/// complete, like a saved record-replay log.
pub fn decode_segment(bytes: &[u8]) -> Result<(u64, Vec<JournalRecord>), JournalError> {
    let (first_seq, records, truncated_at) = decode_segment_lossy(bytes)?;
    if let Some(offset) = truncated_at {
        return Err(JournalError::Truncated { offset });
    }
    Ok((first_seq, records))
}

/// Decodes a segment, tolerating a torn final frame: returns every whole
/// frame plus the byte offset of the torn tail, if any.  Used when opening
/// a journal directory whose writer may have died mid-append.
///
/// # Errors
///
/// Still returns [`JournalError`] if the magic header itself is missing or
/// a *non-final* portion is corrupt (an unknown kind or absurd length is
/// corruption, not tearing).
pub fn decode_segment_lossy(
    bytes: &[u8],
) -> Result<(u64, Vec<JournalRecord>, Option<usize>), JournalError> {
    if bytes.len() < SEGMENT_MAGIC.len() + 8 || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let first_seq = u64::from_le_bytes(
        bytes[SEGMENT_MAGIC.len()..SEGMENT_MAGIC.len() + 8]
            .try_into()
            .expect("8 bytes"),
    );
    let mut cursor = SEGMENT_MAGIC.len() + 8;
    let mut records = Vec::new();
    while cursor < bytes.len() {
        let frame_start = cursor;
        match JournalRecord::decode_from(bytes, &mut cursor) {
            Ok(record) => records.push(record),
            Err(JournalError::Truncated { .. }) => {
                return Ok((first_seq, records, Some(frame_start)))
            }
            Err(err) => return Err(err),
        }
    }
    Ok((first_seq, records, None))
}

/// Test-only fault injection on the journal's disk writes.
///
/// The deterministic simulator (`varan-sim`) uses this to model the ways a
/// real log dies: torn final frames (the writer crashed mid-`write`), short
/// writes (the filesystem accepted a prefix), flipped bits (media
/// corruption).  The hook sees the encoded frame *about to reach the file*
/// and may mutate or truncate it; the in-memory tail is deliberately left
/// intact — exactly the state of a writer that believed its append
/// succeeded — so dropping and reopening the journal exercises the real
/// recovery path ([`EventJournal::open`]'s lossy tail decode).
///
/// Production executions never construct one: the only cost on the append
/// path is an `Option` check.
pub trait JournalFaults: Send {
    /// Called with frame `seq`'s encoded bytes before they are written to
    /// the active segment file; mutate (or truncate) them to inject the
    /// fault.
    fn on_append(&mut self, seq: u64, frame: &mut Vec<u8>);
}

impl fmt::Debug for dyn JournalFaults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JournalFaults")
    }
}

/// Configuration of an [`EventJournal`].
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Records per segment before rotating to a new file.
    pub segment_records: usize,
    /// Shard index owning this journal, if it belongs to a sharded data
    /// plane.  A sharded journal names its segments `seg-<shard>-<seq>.vrj`
    /// instead of `seg-<seq>.vrj`, so any number of shard journals can share
    /// one directory while each scans, rotates and retires only its own
    /// files.
    pub shard: Option<u32>,
}

impl JournalConfig {
    /// A journal rooted at `dir` with the default segment size.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalConfig {
            dir: dir.into(),
            segment_records: 4096,
            shard: None,
        }
    }

    /// Overrides the records-per-segment rotation threshold.
    #[must_use]
    pub fn with_segment_records(mut self, records: usize) -> Self {
        self.segment_records = records.max(1);
        self
    }

    /// Marks this journal as shard `shard` of a sharded data plane (see
    /// [`JournalConfig::shard`]).
    #[must_use]
    pub fn with_shard(mut self, shard: u32) -> Self {
        self.shard = Some(shard);
        self
    }

    /// The filename prefix of this journal's segments.
    #[must_use]
    pub fn segment_prefix(&self) -> String {
        match self.shard {
            Some(shard) => format!("seg-{shard}-"),
            None => "seg-".to_owned(),
        }
    }
}

/// A sealed (fully written, rotated-away-from) segment.
#[derive(Debug)]
struct SealedSegment {
    first_seq: u64,
    len: u64,
    path: PathBuf,
}

#[derive(Debug)]
struct JournalInner {
    sealed: VecDeque<SealedSegment>,
    /// The active segment's records, kept in memory so readers can serve
    /// the tail without re-reading a file the writer still appends to.
    /// `Arc`-wrapped so a reader's batch copy under the lock is a run of
    /// pointer clones; the payload bytes are only cloned outside the lock.
    active: Vec<Arc<JournalRecord>>,
    active_first: u64,
    /// Buffered writer for the active segment: appends cost a memcpy, not a
    /// syscall (readers never look at the active *file* — they read the
    /// in-memory copy above — so buffering does not delay visibility; the
    /// buffer is flushed on rotation and on drop, and a torn tail from a
    /// crash is what `open`'s recovery truncates away).
    active_file: BufWriter<File>,
    next_seq: u64,
    anchor: u64,
    /// Test-only write-fault injection; `None` in production.
    faults: Option<Box<dyn JournalFaults>>,
}

impl Drop for JournalInner {
    fn drop(&mut self) {
        let _ = self.active_file.flush();
    }
}

/// The disk-backed event journal: one writer (the leader's monitor), any
/// number of readers (joining followers), segmented files with
/// checkpoint-anchored retention.
///
/// All operations take a short internal lock; the writer's append is a
/// memory push plus one buffered file write, so the leader's publish path
/// never waits on a reader (readers never hold the lock across I/O on the
/// active segment — its tail is served from memory).
pub struct EventJournal {
    config: JournalConfig,
    inner: Mutex<JournalInner>,
}

impl fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("EventJournal")
            .field("dir", &self.config.dir)
            .field("segments", &(inner.sealed.len() + 1))
            .field("next_seq", &inner.next_seq)
            .field("anchor", &inner.anchor)
            .finish()
    }
}

fn segment_path(dir: &Path, prefix: &str, first_seq: u64) -> PathBuf {
    dir.join(format!("{prefix}{first_seq:020}.vrj"))
}

/// True if `name` is one of this journal's segment files: the prefix, then
/// exactly 20 ASCII digits, then `.vrj`.  The digit check keeps sharded and
/// unsharded journals sharing a directory out of each other's scans (an
/// unsharded scan must not swallow `seg-3-…`, whose remainder carries a
/// dash; a shard-0 scan must not swallow `seg-0000….vrj`, whose remainder
/// is 19 digits).
fn is_segment_name(name: &str, prefix: &str) -> bool {
    name.strip_prefix(prefix)
        .and_then(|rest| rest.strip_suffix(".vrj"))
        .map(|digits| digits.len() == 20 && digits.bytes().all(|b| b.is_ascii_digit()))
        .unwrap_or(false)
}

fn open_segment_file(path: &Path, first_seq: u64) -> Result<BufWriter<File>, JournalError> {
    let file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(SEGMENT_MAGIC)?;
    writer.write_all(&first_seq.to_le_bytes())?;
    Ok(writer)
}

impl EventJournal {
    /// Creates (or reopens) the journal at `config.dir`.
    ///
    /// Reopening scans the directory: sealed segments are indexed, and the
    /// newest segment is recovered leniently — a torn final frame (the
    /// writer died mid-append) is truncated away rather than fatal.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError`] for I/O failures or a segment whose
    /// *non-tail* contents are corrupt.
    pub fn open(config: JournalConfig) -> Result<Self, JournalError> {
        std::fs::create_dir_all(&config.dir)?;
        let prefix = config.segment_prefix();
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&config.dir)?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|path| {
                path.file_name()
                    .and_then(|name| name.to_str())
                    .map(|name| is_segment_name(name, &prefix))
                    .unwrap_or(false)
            })
            .collect();
        paths.sort();

        let mut sealed = VecDeque::new();
        let mut next_seq = 0u64;
        let mut recovered_tail: Option<(u64, Vec<JournalRecord>)> = None;
        let last_index = paths.len().saturating_sub(1);
        for (i, path) in paths.iter().enumerate() {
            let bytes = std::fs::read(path)?;
            if i == last_index {
                // The newest segment becomes the active one; tolerate (and
                // truncate away) a torn final frame.
                let (first_seq, records, torn) = decode_segment_lossy(&bytes)?;
                if torn.is_some() {
                    std::fs::write(path, encode_segment(first_seq, &records))?;
                }
                next_seq = first_seq + records.len() as u64;
                recovered_tail = Some((first_seq, records));
            } else {
                let (first_seq, records) = decode_segment(&bytes)?;
                next_seq = first_seq + records.len() as u64;
                sealed.push_back(SealedSegment {
                    first_seq,
                    len: records.len() as u64,
                    path: path.clone(),
                });
            }
        }

        let (active_first, active) = recovered_tail.unwrap_or((next_seq, Vec::new()));
        let active: Vec<Arc<JournalRecord>> = active.into_iter().map(Arc::new).collect();
        let path = segment_path(&config.dir, &prefix, active_first);
        let active_file = if active.is_empty() {
            open_segment_file(&path, active_first)?
        } else {
            // Reopen for append; the recovery rewrite above left only whole
            // frames in the file.
            BufWriter::new(OpenOptions::new().append(true).open(&path)?)
        };
        let anchor = sealed
            .front()
            .map(|segment| segment.first_seq)
            .unwrap_or(active_first);
        Ok(EventJournal {
            config,
            inner: Mutex::new(JournalInner {
                sealed,
                active,
                active_first,
                active_file,
                next_seq,
                anchor,
                faults: None,
            }),
        })
    }

    /// Installs a write-fault injector (see [`JournalFaults`]); test-only.
    pub fn install_faults(&self, faults: Box<dyn JournalFaults>) {
        self.inner.lock().faults = Some(faults);
    }

    /// Removes the write-fault injector.
    pub fn clear_faults(&self) {
        self.inner.lock().faults = None;
    }

    /// Appends one record and returns the sequence number it was assigned.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] if the segment file cannot be written.
    pub fn append(&self, record: JournalRecord) -> Result<u64, JournalError> {
        let mut frame = Vec::with_capacity(FRAME_HEADER + 16);
        record.encode_into(&mut frame);
        let record = Arc::new(record);
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        if let Some(faults) = inner.faults.as_mut() {
            // The injector damages only what reaches the disk; the
            // in-memory tail (what live readers see, and what the writer
            // believes it appended) stays whole.
            faults.on_append(seq, &mut frame);
        }
        inner.active_file.write_all(&frame)?;
        inner.active.push(record);
        inner.next_seq += 1;
        if inner.active.len() >= self.config.segment_records {
            self.rotate_locked(&mut inner)?;
        }
        Ok(seq)
    }

    /// Seals the active segment and starts a new one.
    fn rotate_locked(&self, inner: &mut JournalInner) -> Result<(), JournalError> {
        inner.active_file.flush()?;
        let prefix = self.config.segment_prefix();
        let first_seq = inner.active_first;
        let len = inner.active.len() as u64;
        let path = segment_path(&self.config.dir, &prefix, first_seq);
        inner.sealed.push_back(SealedSegment {
            first_seq,
            len,
            path,
        });
        inner.active.clear();
        inner.active_first = inner.next_seq;
        let path = segment_path(&self.config.dir, &prefix, inner.active_first);
        inner.active_file = open_segment_file(&path, inner.active_first)?;
        Ok(())
    }

    /// Flushes the active segment file to the OS.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on failure.
    pub fn flush(&self) -> Result<(), JournalError> {
        self.inner.lock().active_file.flush().map_err(Into::into)
    }

    /// The sequence number the next appended record will receive (equal to
    /// the number of records ever appended).
    #[must_use]
    pub fn tail_sequence(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// The oldest sequence number still retained.
    #[must_use]
    pub fn oldest_sequence(&self) -> u64 {
        let inner = self.inner.lock();
        inner
            .sealed
            .front()
            .map(|segment| segment.first_seq)
            .unwrap_or(inner.active_first)
    }

    /// The current retention anchor.
    #[must_use]
    pub fn anchor(&self) -> u64 {
        self.inner.lock().anchor
    }

    /// Moves the retention anchor to `seq` (the oldest live checkpoint's
    /// event sequence) and deletes every sealed segment that lies entirely
    /// below it.  The anchor never moves backwards.
    pub fn set_anchor(&self, seq: u64) {
        let mut inner = self.inner.lock();
        if seq <= inner.anchor {
            return;
        }
        inner.anchor = seq;
        while let Some(front) = inner.sealed.front() {
            if front.first_seq + front.len <= seq {
                let dead = inner.sealed.pop_front().expect("front exists");
                let _ = std::fs::remove_file(&dead.path);
            } else {
                break;
            }
        }
    }

    /// Reads up to `max` records starting at sequence `from`.
    ///
    /// Returns the sequence of the first record returned (`>= from`; greater
    /// only if `from` has already been retired past by the retention anchor,
    /// which a correctly anchored reader never observes) and the records.
    /// An empty vector means the journal holds nothing at or after `from`.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError`] if a sealed segment cannot be read back.
    pub fn read_from(
        &self,
        from: u64,
        max: usize,
    ) -> Result<(u64, Vec<JournalRecord>), JournalError> {
        // Index the sealed segments under the lock, but do the file reads —
        // and the materialisation of the active tail's records (payload
        // clones) — outside it, so a catching-up reader never stalls the
        // appender: the lock-held work is pointer clones only.
        let (sealed_paths, active_first, active_tail): (
            Vec<(u64, u64, PathBuf)>,
            u64,
            Vec<Arc<JournalRecord>>,
        ) = {
            let inner = self.inner.lock();
            let sealed = inner
                .sealed
                .iter()
                .filter(|segment| segment.first_seq + segment.len > from)
                .map(|segment| (segment.first_seq, segment.len, segment.path.clone()))
                .collect();
            let skip = (from.saturating_sub(inner.active_first)) as usize;
            let take: Vec<Arc<JournalRecord>> = inner
                .active
                .iter()
                .skip(skip)
                .take(max)
                .cloned()
                .collect();
            (sealed, inner.active_first, take)
        };

        let mut start = from;
        let mut records: Vec<JournalRecord> = Vec::new();
        for (first_seq, _len, path) in sealed_paths {
            if records.len() >= max {
                break;
            }
            let bytes = std::fs::read(&path)?;
            let (file_first, segment_records) = decode_segment(&bytes)?;
            debug_assert_eq!(file_first, first_seq);
            let skip = (start.saturating_sub(first_seq)) as usize;
            if records.is_empty() {
                start = start.max(first_seq);
            }
            records.extend(
                segment_records
                    .into_iter()
                    .skip(skip)
                    .take(max - records.len()),
            );
        }
        if records.len() < max && !active_tail.is_empty() {
            if records.is_empty() {
                start = start.max(active_first);
            }
            let room = max - records.len();
            records.extend(
                active_tail
                    .iter()
                    .take(room)
                    .map(|record| (**record).clone()),
            );
        }
        Ok((start, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seed: u64) -> JournalRecord {
        JournalRecord {
            kind: EventKind::Syscall,
            sysno: (seed % 300) as u16,
            tid: (seed % 5) as u32,
            clock: seed,
            result: seed as i64 - 7,
            args: [seed, seed + 1, seed + 2, seed + 3, seed + 4, seed + 5],
            payload: if seed.is_multiple_of(3) {
                Some(vec![seed as u8; (seed % 17) as usize])
            } else {
                None
            },
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "varan-journal-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn frame_round_trips_with_and_without_payload() {
        for seed in 0..20u64 {
            let original = record(seed);
            let mut bytes = Vec::new();
            original.encode_into(&mut bytes);
            let mut cursor = 0usize;
            let decoded = JournalRecord::decode_from(&bytes, &mut cursor).unwrap();
            assert_eq!(decoded, original);
            assert_eq!(cursor, bytes.len());
        }
    }

    #[test]
    fn empty_payload_stays_distinct_from_none() {
        let mut with_empty = record(1);
        with_empty.payload = Some(Vec::new());
        let mut bytes = Vec::new();
        with_empty.encode_into(&mut bytes);
        let mut cursor = 0;
        let decoded = JournalRecord::decode_from(&bytes, &mut cursor).unwrap();
        assert_eq!(decoded.payload, Some(Vec::new()));
    }

    #[test]
    fn event_conversion_preserves_inline_fields() {
        let original = record(9);
        let event = original.to_event();
        let back = JournalRecord::from_event(&event, original.payload.clone());
        assert_eq!(back.kind, original.kind);
        assert_eq!(back.sysno, original.sysno);
        assert_eq!(back.clock, original.clock);
        assert_eq!(back.result, original.result);
        assert_eq!(&back.args[..EVENT_INLINE_ARGS], &original.args[..EVENT_INLINE_ARGS]);
        // The two spilled registers are not representable in a ring event.
        assert_eq!(back.args[4], 0);
    }

    #[test]
    fn segment_decode_rejects_garbage() {
        assert_eq!(decode_segment(b"junk").unwrap_err(), JournalError::BadMagic);
        let mut bytes = encode_segment(0, &[record(1)]);
        bytes[0] = b'X';
        assert_eq!(decode_segment(&bytes).unwrap_err(), JournalError::BadMagic);
        let mut bytes = encode_segment(0, &[record(1)]);
        bytes[16] = 200; // unknown event kind
        assert!(matches!(
            decode_segment(&bytes).unwrap_err(),
            JournalError::Corrupt { .. }
        ));
    }

    #[test]
    fn strict_decode_rejects_torn_tail_lossy_recovers_it() {
        let records: Vec<JournalRecord> = (0..5).map(record).collect();
        let mut bytes = encode_segment(7, &records);
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(
            decode_segment(&bytes).unwrap_err(),
            JournalError::Truncated { .. }
        ));
        let (first, recovered, torn) = decode_segment_lossy(&bytes).unwrap();
        assert_eq!(first, 7);
        assert_eq!(recovered, records[..4].to_vec());
        assert!(torn.is_some());
    }

    #[test]
    fn journal_appends_rotates_and_reads_back() {
        let dir = temp_dir("rotate");
        let journal =
            EventJournal::open(JournalConfig::new(&dir).with_segment_records(8)).unwrap();
        for seed in 0..30u64 {
            assert_eq!(journal.append(record(seed)).unwrap(), seed);
        }
        assert_eq!(journal.tail_sequence(), 30);
        let (start, all) = journal.read_from(0, usize::MAX).unwrap();
        assert_eq!(start, 0);
        assert_eq!(all.len(), 30);
        assert_eq!(all[17], record(17));
        // Mid-stream read crossing a segment boundary.
        let (start, tail) = journal.read_from(13, 10).unwrap();
        assert_eq!(start, 13);
        assert_eq!(tail.len(), 10);
        assert_eq!(tail[0], record(13));
        // Past the tail.
        let (_, none) = journal.read_from(30, usize::MAX).unwrap();
        assert!(none.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_a_torn_active_segment() {
        let dir = temp_dir("torn");
        {
            let journal =
                EventJournal::open(JournalConfig::new(&dir).with_segment_records(100)).unwrap();
            for seed in 0..10u64 {
                journal.append(record(seed)).unwrap();
            }
            journal.flush().unwrap();
        }
        // Tear the final frame of the active segment.
        let seg = segment_path(&dir, "seg-", 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.truncate(bytes.len() - 5);
        std::fs::write(&seg, &bytes).unwrap();

        let journal =
            EventJournal::open(JournalConfig::new(&dir).with_segment_records(100)).unwrap();
        assert_eq!(journal.tail_sequence(), 9, "torn record truncated, not fatal");
        let (_, records) = journal.read_from(0, usize::MAX).unwrap();
        assert_eq!(records, (0..9).map(record).collect::<Vec<_>>());
        // Appending continues from the recovered position.
        assert_eq!(journal.append(record(99)).unwrap(), 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_torn_write_is_recovered_on_reopen() {
        /// Tears the frame of one chosen sequence down to a prefix.
        struct TearAt {
            seq: u64,
            keep: usize,
        }
        impl JournalFaults for TearAt {
            fn on_append(&mut self, seq: u64, frame: &mut Vec<u8>) {
                if seq == self.seq {
                    let keep = self.keep.min(frame.len().saturating_sub(1));
                    frame.truncate(keep);
                }
            }
        }

        let dir = temp_dir("fault-injector");
        {
            let journal =
                EventJournal::open(JournalConfig::new(&dir).with_segment_records(100)).unwrap();
            journal.install_faults(Box::new(TearAt { seq: 7, keep: 10 }));
            for seed in 0..8u64 {
                journal.append(record(seed)).unwrap();
            }
            // The writer believes all 8 made it: the in-memory tail serves
            // live readers the whole stream.
            assert_eq!(journal.tail_sequence(), 8);
            let (_, live) = journal.read_from(0, usize::MAX).unwrap();
            assert_eq!(live.len(), 8);
            journal.flush().unwrap();
        }
        // Reopen: the torn final frame is truncated away, never fatal.
        let journal =
            EventJournal::open(JournalConfig::new(&dir).with_segment_records(100)).unwrap();
        assert_eq!(journal.tail_sequence(), 7);
        let (_, records) = journal.read_from(0, usize::MAX).unwrap();
        assert_eq!(records, (0..7).map(record).collect::<Vec<_>>());
        // Appending continues from the recovered position, uninjected.
        assert_eq!(journal.append(record(70)).unwrap(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_deletes_whole_segments_below_the_anchor() {
        let dir = temp_dir("retain");
        let journal =
            EventJournal::open(JournalConfig::new(&dir).with_segment_records(4)).unwrap();
        for seed in 0..20u64 {
            journal.append(record(seed)).unwrap();
        }
        assert_eq!(journal.oldest_sequence(), 0);
        journal.set_anchor(10);
        // Segments [0..4) and [4..8) die; [8..12) survives because record 10
        // lives in it.
        assert_eq!(journal.oldest_sequence(), 8);
        assert_eq!(journal.anchor(), 10);
        let (start, records) = journal.read_from(10, usize::MAX).unwrap();
        assert_eq!(start, 10);
        assert_eq!(records.len(), 10);
        assert_eq!(records[0], record(10));
        // The anchor never moves backwards.
        journal.set_anchor(3);
        assert_eq!(journal.anchor(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_name_filter_keeps_shards_apart() {
        assert!(is_segment_name("seg-00000000000000000000.vrj", "seg-"));
        assert!(is_segment_name("seg-3-00000000000000000042.vrj", "seg-3-"));
        // An unsharded scan must not swallow shard segments…
        assert!(!is_segment_name("seg-3-00000000000000000042.vrj", "seg-"));
        // …and a shard-0 scan must not swallow unsharded ones.
        assert!(!is_segment_name("seg-00000000000000000000.vrj", "seg-0-"));
        assert!(!is_segment_name("seg-0000000000000000000.vrj", "seg-"));
        assert!(!is_segment_name("seg-00000000000000000000.tmp", "seg-"));
    }

    #[test]
    fn sharded_journals_rotate_and_reopen_independently() {
        let dir = temp_dir("sharded");
        let mk = |shard: u32| {
            JournalConfig::new(&dir)
                .with_segment_records(4)
                .with_shard(shard)
        };
        {
            let a = EventJournal::open(mk(0)).unwrap();
            let b = EventJournal::open(mk(1)).unwrap();
            for seed in 0..10u64 {
                a.append(record(seed)).unwrap();
            }
            b.append(record(99)).unwrap();
            a.flush().unwrap();
            b.flush().unwrap();
        }
        let a = EventJournal::open(mk(0)).unwrap();
        let b = EventJournal::open(mk(1)).unwrap();
        assert_eq!(a.tail_sequence(), 10);
        assert_eq!(b.tail_sequence(), 1);
        let (_, records) = a.read_from(0, usize::MAX).unwrap();
        assert_eq!(records, (0..10).map(record).collect::<Vec<_>>());
        // Retention on shard 0 never deletes shard 1's files.
        a.set_anchor(10);
        assert_eq!(b.tail_sequence(), 1);
        let (_, survivor) = b.read_from(0, usize::MAX).unwrap();
        assert_eq!(survivor, vec![record(99)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_log_style_single_segment_round_trip() {
        // The record-replay log encodes itself as one segment with
        // first_seq 0; make sure that shape round-trips here too.
        let records: Vec<JournalRecord> = (0..12).map(record).collect();
        let bytes = encode_segment(0, &records);
        let (first, decoded) = decode_segment(&bytes).unwrap();
        assert_eq!(first, 0);
        assert_eq!(decoded, records);
    }
}
