//! The spill-to-disk event journal: a segmented, append-only, disk-backed
//! log of the leader's event stream.
//!
//! The in-memory ring buffer (§3.3.1) is deliberately tiny — one lap of
//! events — which is exactly why a *late-joining* or *lagging* follower can
//! never be served from it: by the time the follower attaches, the slots it
//! needs have been recycled.  The journal solves this by having the producer
//! spill every published event to an append-only log on disk.  Followers that
//! are catching up read the journal at their own pace without ever gating
//! the leader's ring space; only once a follower is within one ring lap of
//! the cursor does it register a gating sequence and switch to live ring
//! consumption (see `varan_core::fleet`).
//!
//! # Checkpoint-anchored retention and compaction
//!
//! The journal cannot grow forever.  Retention is anchored at the **oldest
//! live checkpoint**: a joiner restores a kernel checkpoint taken at event
//! sequence `S` and then replays the journal from `S`, so every segment
//! whose events all precede the oldest checkpoint any live (or future)
//! joiner could restore from is dead weight and is deleted by
//! [`EventJournal::set_anchor`].  Whole segments are the retention unit,
//! so the segment *straddling* the anchor survives with a dead prefix;
//! [`EventJournal::compact_to_anchor`] rewrites that segment into a fresh
//! checksummed one starting exactly at the anchor, keeping the disk
//! footprint and a joiner's replay length bounded by the checkpoint
//! cadence rather than by history (docs/DURABILITY.md).
//!
//! # On-disk format (v2)
//!
//! One format serves both this journal and the record-replay log
//! (`varan_core::record_replay` encodes its `RecordLog` as a single segment
//! with first-sequence 0): a segment file is the [`SEGMENT_MAGIC`] header,
//! the little-endian `u64` sequence number of its first record, then a run
//! of frames.  Each frame is a fixed 79-byte header (kind, sysno, tid,
//! clock, result, six argument registers, payload length), the payload
//! bytes, and a little-endian CRC32C over everything from the first header
//! byte through the last payload byte.  A *sealed* segment (rotated away
//! from, or a saved record-replay log) ends with a 16-byte trailer:
//! [`TRAILER_MAGIC`] plus a rolling FNV-1a fold of every frame's CRC, so a
//! spliced or re-ordered segment is caught even if each individual frame
//! still checksums.
//!
//! Decoding validates every length against the remaining input and every
//! frame against its CRC, so a truncated, bit-flipped or spliced file
//! yields a [`JournalError`] naming the byte offset — or, for the *final*
//! segment of a journal that died mid-append, a clean truncation to the
//! last whole frame.  [`EventJournal::open`] scrubs every segment: damage
//! beyond a routine torn tail quarantines the journal's damaged suffix
//! (the bytes are preserved as `.quarantine` files, never silently
//! absorbed) and is reported via [`EventJournal::scrub_reports`].

use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::crc32c::crc32c;
use crate::event::{Event, EventKind, EVENT_INLINE_ARGS};

/// Magic bytes opening every journal segment (and every record-replay log).
/// The `2` is the frame-format version: v2 added per-frame CRC32C and the
/// sealed-segment trailer, and is not readable by (or from) v1.
pub const SEGMENT_MAGIC: &[u8; 8] = b"VRNJSEG2";

/// Magic bytes opening the 16-byte trailer that seals a finished segment.
/// The first byte (`V`) is not a valid [`EventKind`], so a decoder can
/// never mistake a trailer for a frame even before checking all 8 bytes.
pub const TRAILER_MAGIC: &[u8; 8] = b"VRNJTRL2";

/// Number of argument registers preserved per record (the full x86-64
/// system-call register set, not just the [`EVENT_INLINE_ARGS`] an in-ring
/// event keeps inline).
pub const JOURNAL_ARGS: usize = 6;

/// Fixed size of a frame before its payload bytes.
const FRAME_HEADER: usize = 1 + 2 + 4 + 8 + 8 + 8 * JOURNAL_ARGS + 8;

/// Bytes of CRC32C appended after each frame's payload.
const FRAME_CRC: usize = 4;

/// Total size of the sealed-segment trailer: magic plus the CRC fold.
const TRAILER_LEN: usize = 16;

/// FNV-1a basis for the trailer's rolling fold of frame CRCs.
const TRAILER_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a multiplier for the trailer fold.
const TRAILER_PRIME: u64 = 0x0100_0000_01b3;

/// Payload-length marker meaning "no payload" (distinct from an empty one).
const NO_PAYLOAD: u64 = u64::MAX;

/// Upper bound accepted for a single payload while decoding; anything larger
/// is treated as corruption rather than attempted as an allocation.
const MAX_PAYLOAD: u64 = 1 << 30;

/// Folds one frame's CRC into the trailer's rolling hash.
fn fold_frame_crc(hash: u64, crc: u32) -> u64 {
    let mut hash = hash;
    for byte in crc.to_le_bytes() {
        hash = (hash ^ u64::from(byte)).wrapping_mul(TRAILER_PRIME);
    }
    hash
}

/// The trailer fold's starting state: the segment's first-sequence field is
/// folded in ahead of any frame CRC, so a sealed segment's *numbering* is
/// protected too — a bit flip in the header's sequence would otherwise
/// silently renumber every record in the segment.
fn trailer_basis(first_seq: u64) -> u64 {
    let mut hash = TRAILER_BASIS;
    for byte in first_seq.to_le_bytes() {
        hash = (hash ^ u64::from(byte)).wrapping_mul(TRAILER_PRIME);
    }
    hash
}

/// The trailer fold a writer resuming mid-segment must continue from.
fn fold_records(first_seq: u64, records: &[JournalRecord]) -> u64 {
    let mut fold = trailer_basis(first_seq);
    let mut scratch = Vec::new();
    for record in records {
        scratch.clear();
        fold = fold_frame_crc(fold, record.encode_into(&mut scratch));
    }
    fold
}

/// Errors produced while encoding, decoding or persisting journal data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JournalError {
    /// The bytes do not start with [`SEGMENT_MAGIC`].
    BadMagic,
    /// The input ended in the middle of a header, frame or trailer.
    Truncated {
        /// Byte offset at which the input ran out.
        offset: usize,
    },
    /// A frame carried a field that cannot be valid (unknown event kind,
    /// absurd payload length) or failed its checksum.
    Corrupt {
        /// Byte offset of the offending frame.
        offset: usize,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A frame-level error, wrapped with the identity of the segment it
    /// occurred in so multi-segment readers report *which* file failed.
    InSegment {
        /// First sequence number of the failing segment.
        first_seq: u64,
        /// The frame-level error inside it.
        error: Box<JournalError>,
    },
    /// An I/O error while reading or writing segment files.
    Io(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::BadMagic => write!(f, "journal segment: missing magic header"),
            JournalError::Truncated { offset } => {
                write!(f, "journal segment truncated at byte {offset}")
            }
            JournalError::Corrupt { offset, reason } => {
                write!(f, "journal segment corrupt at byte {offset}: {reason}")
            }
            JournalError::InSegment { first_seq, error } => {
                write!(f, "journal segment starting at sequence {first_seq}: {error}")
            }
            JournalError::Io(err) => write!(f, "journal i/o error: {err}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(err: std::io::Error) -> Self {
        JournalError::Io(err.to_string())
    }
}

/// One event as persisted in the journal: the ring event's fields plus the
/// two argument registers and the out-of-line payload that do not fit in a
/// 64-byte ring slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalRecord {
    /// The kind of external action ([`EventKind`] as its `u8` value).
    pub kind: EventKind,
    /// System call (or signal) number.
    pub sysno: u16,
    /// Producing thread index within the variant.
    pub tid: u32,
    /// Lamport timestamp attached by the producing variant.
    pub clock: u64,
    /// Result the leader observed.
    pub result: i64,
    /// All six argument registers.
    pub args: [u64; JOURNAL_ARGS],
    /// Out-of-line payload, materialised inline on disk.
    pub payload: Option<Vec<u8>>,
}

impl JournalRecord {
    /// Builds a record from an in-ring event and its copied-out payload.
    /// The two argument registers an event does not keep inline are zero.
    #[must_use]
    pub fn from_event(event: &Event, payload: Option<Vec<u8>>) -> Self {
        let mut args = [0u64; JOURNAL_ARGS];
        args[..EVENT_INLINE_ARGS].copy_from_slice(event.args());
        JournalRecord {
            kind: event.kind(),
            sysno: event.sysno(),
            tid: event.tid(),
            clock: event.clock(),
            result: event.result(),
            args,
            payload,
        }
    }

    /// Reconstructs the in-ring view of this record (the payload, which
    /// would live in the shared pool, is returned separately by the caller
    /// holding this record).
    #[must_use]
    pub fn to_event(&self) -> Event {
        Event::syscall(self.sysno, &self.args[..EVENT_INLINE_ARGS], self.result)
            .with_kind(self.kind)
            .with_tid(self.tid)
            .with_clock(self.clock)
    }

    /// Appends this record's frame to `out` and returns the frame's CRC32C
    /// (computed over the header and payload bytes, stored after them).
    pub fn encode_into(&self, out: &mut Vec<u8>) -> u32 {
        let start = out.len();
        self.encode_into_unchecked(out);
        let crc = crc32c(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
        crc
    }

    /// Appends this record's frame *without* the trailing CRC32C.
    ///
    /// The result is not decodable — [`JournalRecord::decode_from`] will
    /// report it truncated or checksum-mismatched.  This exists so the
    /// benchmark suite can measure the checksum's cost on the leader's
    /// spill path (`BENCH_ring.json`); every production writer goes through
    /// [`JournalRecord::encode_into`].
    pub fn encode_into_unchecked(&self, out: &mut Vec<u8>) {
        out.push(self.kind as u8);
        out.extend_from_slice(&self.sysno.to_le_bytes());
        out.extend_from_slice(&self.tid.to_le_bytes());
        out.extend_from_slice(&self.clock.to_le_bytes());
        out.extend_from_slice(&self.result.to_le_bytes());
        for arg in self.args {
            out.extend_from_slice(&arg.to_le_bytes());
        }
        match &self.payload {
            Some(payload) => {
                out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                out.extend_from_slice(payload);
            }
            None => out.extend_from_slice(&NO_PAYLOAD.to_le_bytes()),
        }
    }

    /// Decodes one frame starting at `*cursor`, advancing the cursor past it.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Truncated`] if the input ends inside the
    /// frame and [`JournalError::Corrupt`] for invalid field values or a
    /// checksum mismatch; the cursor is left unspecified on error.
    pub fn decode_from(bytes: &[u8], cursor: &mut usize) -> Result<Self, JournalError> {
        let start = *cursor;
        let header = bytes
            .get(start..start.saturating_add(FRAME_HEADER))
            .ok_or(JournalError::Truncated { offset: start })?;
        let take8 = |at: usize| -> u64 {
            u64::from_le_bytes(header[at..at + 8].try_into().expect("8 bytes"))
        };
        let payload_len = take8(23 + 8 * JOURNAL_ARGS);
        let mut at = start + FRAME_HEADER;
        let payload_bytes = if payload_len == NO_PAYLOAD {
            None
        } else {
            if payload_len > MAX_PAYLOAD {
                return Err(JournalError::Corrupt {
                    offset: start,
                    reason: "payload length exceeds the 1 GiB bound",
                });
            }
            let end = at
                .checked_add(payload_len as usize)
                .ok_or(JournalError::Corrupt {
                    offset: start,
                    reason: "payload length overflows",
                })?;
            let payload = bytes
                .get(at..end)
                .ok_or(JournalError::Truncated { offset: at })?;
            at = end;
            Some(payload)
        };
        // Verify the checksum before trusting any decoded field: a flipped
        // header or payload bit must surface as a checksum mismatch, not be
        // handed to a replayer as a plausible-looking record.
        let stored = bytes
            .get(at..at + FRAME_CRC)
            .ok_or(JournalError::Truncated { offset: at })?;
        let stored = u32::from_le_bytes(stored.try_into().expect("4 bytes"));
        if stored != crc32c(&bytes[start..at]) {
            return Err(JournalError::Corrupt {
                offset: start,
                reason: "frame checksum mismatch",
            });
        }
        let kind = EventKind::from_u8(header[0]).ok_or(JournalError::Corrupt {
            offset: start,
            reason: "unknown event kind",
        })?;
        let sysno = u16::from_le_bytes(header[1..3].try_into().expect("2 bytes"));
        let tid = u32::from_le_bytes(header[3..7].try_into().expect("4 bytes"));
        let clock = take8(7);
        let result = take8(15) as i64;
        let mut args = [0u64; JOURNAL_ARGS];
        for (i, arg) in args.iter_mut().enumerate() {
            *arg = take8(23 + 8 * i);
        }
        *cursor = at + FRAME_CRC;
        Ok(JournalRecord {
            kind,
            sysno,
            tid,
            clock,
            result,
            args,
            payload: payload_bytes.map(<[u8]>::to_vec),
        })
    }
}

/// How a scrub classified the damage it found in a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrubKind {
    /// The writer died mid-append: the final frame (or trailer) is an
    /// incomplete prefix.  Routine crash recovery, no data was corrupted.
    TornTail,
    /// Frame or trailer bytes failed validation — a checksum mismatch, an
    /// impossible field, or a bad trailer hash.  Media corruption.
    Corrupt,
}

/// The first undecodable point found while scanning a segment's bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentDamage {
    /// Byte offset of the first frame (or trailer) that failed.
    pub offset: usize,
    /// Tear vs corruption.
    pub kind: ScrubKind,
    /// The decoder's reason.
    pub reason: &'static str,
}

/// Everything a scan of one segment's bytes yields: the decodable record
/// prefix, whether a valid trailer sealed it, and the first damage, if any.
#[derive(Debug, Clone)]
pub struct SegmentScan {
    /// Sequence number of the segment's first record.
    pub first_seq: u64,
    /// Every record decoded before the damage point (all of them if clean).
    pub records: Vec<JournalRecord>,
    /// The first undecodable point, or `None` for a clean segment.
    pub damage: Option<SegmentDamage>,
    /// True if the segment ends with a trailer whose hash verified.
    pub sealed: bool,
}

/// Encodes a whole *sealed* segment: magic, first-record sequence, frames,
/// and the trailer fold of every frame's CRC.  This is the shape of a
/// rotated-away-from journal segment and of a saved record-replay log.
#[must_use]
pub fn encode_segment(first_seq: u64, records: &[JournalRecord]) -> Vec<u8> {
    let mut out = encode_segment_unsealed(first_seq, records);
    let fold = fold_records(first_seq, records);
    out.extend_from_slice(TRAILER_MAGIC);
    out.extend_from_slice(&fold.to_le_bytes());
    out
}

/// Encodes a segment *without* the sealing trailer — the on-disk shape of
/// a journal's active segment, which the writer will keep appending to.
#[must_use]
pub fn encode_segment_unsealed(first_seq: u64, records: &[JournalRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + records.len() * (FRAME_HEADER + FRAME_CRC + 16));
    out.extend_from_slice(SEGMENT_MAGIC);
    out.extend_from_slice(&first_seq.to_le_bytes());
    for record in records {
        record.encode_into(&mut out);
    }
    out
}

/// Scans a segment's bytes, decoding as far as possible and classifying
/// the first failure instead of erroring on it.
///
/// This is the primitive under both decode modes and under
/// [`EventJournal::open`]'s scrub: strict decoding rejects any damage,
/// lossy decoding tolerates a torn tail, and the scrub additionally
/// salvages the record prefix ahead of a corrupt frame.
///
/// # Errors
///
/// Returns [`JournalError::BadMagic`] only — a segment without its magic
/// header has no trustworthy first-sequence, so there is nothing to scan.
pub fn scan_segment(bytes: &[u8]) -> Result<SegmentScan, JournalError> {
    if bytes.len() < SEGMENT_MAGIC.len() + 8 || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let first_seq = u64::from_le_bytes(
        bytes[SEGMENT_MAGIC.len()..SEGMENT_MAGIC.len() + 8]
            .try_into()
            .expect("8 bytes"),
    );
    let mut cursor = SEGMENT_MAGIC.len() + 8;
    let mut records = Vec::new();
    let mut fold = trailer_basis(first_seq);
    let damaged = |offset, kind, reason| SegmentScan {
        first_seq,
        records: Vec::new(), // placeholder, replaced by caller below
        damage: Some(SegmentDamage {
            offset,
            kind,
            reason,
        }),
        sealed: false,
    };
    while cursor < bytes.len() {
        let frame_start = cursor;
        if bytes[cursor..].starts_with(TRAILER_MAGIC) {
            if bytes.len() - cursor < TRAILER_LEN {
                let mut scan = damaged(frame_start, ScrubKind::TornTail, "torn segment trailer");
                scan.records = records;
                return Ok(scan);
            }
            let stored = u64::from_le_bytes(
                bytes[cursor + 8..cursor + TRAILER_LEN]
                    .try_into()
                    .expect("8 bytes"),
            );
            if stored != fold {
                let mut scan = damaged(
                    frame_start,
                    ScrubKind::Corrupt,
                    "segment trailer hash mismatch",
                );
                scan.records = records;
                return Ok(scan);
            }
            if cursor + TRAILER_LEN != bytes.len() {
                let mut scan = damaged(
                    cursor + TRAILER_LEN,
                    ScrubKind::Corrupt,
                    "bytes after segment trailer",
                );
                scan.records = records;
                return Ok(scan);
            }
            return Ok(SegmentScan {
                first_seq,
                records,
                damage: None,
                sealed: true,
            });
        }
        match JournalRecord::decode_from(bytes, &mut cursor) {
            Ok(record) => {
                let crc = u32::from_le_bytes(
                    bytes[cursor - FRAME_CRC..cursor]
                        .try_into()
                        .expect("4 bytes"),
                );
                fold = fold_frame_crc(fold, crc);
                records.push(record);
            }
            Err(JournalError::Truncated { .. }) => {
                let mut scan = damaged(frame_start, ScrubKind::TornTail, "torn frame");
                scan.records = records;
                return Ok(scan);
            }
            Err(JournalError::Corrupt { offset, reason }) => {
                let mut scan = damaged(offset, ScrubKind::Corrupt, reason);
                scan.records = records;
                return Ok(scan);
            }
            Err(err) => return Err(err),
        }
    }
    Ok(SegmentScan {
        first_seq,
        records,
        damage: None,
        sealed: false,
    })
}

/// Decodes a segment strictly: every byte must belong to a whole,
/// checksum-valid frame (or the sealing trailer).
///
/// # Errors
///
/// Returns [`JournalError`] for a missing header, a truncated frame, a
/// checksum mismatch or any invalid field — this is the right mode for a
/// log that claims to be complete, like a saved record-replay log.
pub fn decode_segment(bytes: &[u8]) -> Result<(u64, Vec<JournalRecord>), JournalError> {
    let scan = scan_segment(bytes)?;
    match scan.damage {
        Some(SegmentDamage {
            offset,
            kind: ScrubKind::TornTail,
            ..
        }) => Err(JournalError::Truncated { offset }),
        Some(SegmentDamage {
            offset,
            kind: ScrubKind::Corrupt,
            reason,
        }) => Err(JournalError::Corrupt { offset, reason }),
        None => Ok((scan.first_seq, scan.records)),
    }
}

/// Decodes a segment, tolerating a torn final frame: returns every whole
/// frame plus the byte offset of the torn tail, if any.  Used when opening
/// a journal directory whose writer may have died mid-append.
///
/// # Errors
///
/// Still returns [`JournalError`] if the magic header itself is missing or
/// a portion fails validation (a checksum mismatch, unknown kind or absurd
/// length is corruption, not tearing).
pub fn decode_segment_lossy(
    bytes: &[u8],
) -> Result<(u64, Vec<JournalRecord>, Option<usize>), JournalError> {
    let scan = scan_segment(bytes)?;
    match scan.damage {
        Some(SegmentDamage {
            offset,
            kind: ScrubKind::TornTail,
            ..
        }) => Ok((scan.first_seq, scan.records, Some(offset))),
        Some(SegmentDamage {
            offset,
            kind: ScrubKind::Corrupt,
            reason,
        }) => Err(JournalError::Corrupt { offset, reason }),
        None => Ok((scan.first_seq, scan.records, None)),
    }
}

/// Test-only fault injection on the journal's disk writes.
///
/// The deterministic simulator (`varan-sim`) uses this to model the ways a
/// real log dies: torn final frames (the writer crashed mid-`write`), short
/// writes (the filesystem accepted a prefix), flipped bits (media
/// corruption).  The hook sees the encoded frame *about to reach the file*
/// and may mutate or truncate it; the in-memory tail is deliberately left
/// intact — exactly the state of a writer that believed its append
/// succeeded — so dropping and reopening the journal exercises the real
/// recovery path ([`EventJournal::open`]'s scrub).
///
/// Production executions never construct one: the only cost on the append
/// path is an `Option` check.
pub trait JournalFaults: Send {
    /// Called with frame `seq`'s encoded bytes before they are written to
    /// the active segment file; mutate (or truncate) them to inject the
    /// fault.
    fn on_append(&mut self, seq: u64, frame: &mut Vec<u8>);
}

impl fmt::Debug for dyn JournalFaults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JournalFaults")
    }
}

/// What [`EventJournal::open`]'s verify-on-reopen scrub found and did about
/// one damaged segment.
///
/// A report is evidence, not an error: the open still succeeds, positioned
/// at the last trustworthy record, and the caller (the fleet, the
/// simulator's invariant checks) decides whether the loss is survivable —
/// typically by re-seeding the affected follower from a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// First sequence number of the damaged segment.
    pub segment_first_seq: u64,
    /// Byte offset of the damage within that segment's file.
    pub offset: usize,
    /// Routine torn tail vs real corruption.
    pub kind: ScrubKind,
    /// The decoder's reason.
    pub reason: &'static str,
    /// The journal's tail after the scrub: the sequence of the first record
    /// that was lost.  Everything below is intact and contiguous.
    pub new_tail: u64,
    /// Damaged files preserved (as `<name>.quarantine`) for forensics.
    /// Empty for a routine torn tail.
    pub quarantined: Vec<PathBuf>,
}

/// Factory producing an append-time fault injector for a freshly opened
/// journal (see [`JournalConfig::fault_factory`]).
pub type JournalFaultFactory = Arc<dyn Fn() -> Box<dyn JournalFaults> + Send + Sync>;

/// Configuration of an [`EventJournal`].
#[derive(Clone)]
pub struct JournalConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Records per segment before rotating to a new file.
    pub segment_records: usize,
    /// Shard index owning this journal, if it belongs to a sharded data
    /// plane.  A sharded journal names its segments `seg-<shard>-<seq>.vrj`
    /// instead of `seg-<seq>.vrj`, so any number of shard journals can share
    /// one directory while each scans, rotates and retires only its own
    /// files.
    pub shard: Option<u32>,
    /// The telemetry registry scrub verdicts, quarantines and compactions
    /// report into.  `None` (the default) uses the process-wide
    /// [`varan_obs::global`] registry; the deterministic simulation installs
    /// an isolated registry per seeded run.
    pub obs: Option<Arc<varan_obs::Registry>>,
    /// Test-only: a [`JournalFaults`] injector installed the moment the
    /// journal opens, *before* the first append can reach the disk.  The
    /// simulator's composed mode needs this because it damages a specific
    /// early sequence of a journal the fleet opens internally — installing
    /// the injector after launch would race the leader's first appends.
    /// `None` (production) costs nothing.
    pub fault_factory: Option<JournalFaultFactory>,
}

impl fmt::Debug for JournalConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JournalConfig")
            .field("dir", &self.dir)
            .field("segment_records", &self.segment_records)
            .field("shard", &self.shard)
            .field("obs", &self.obs.is_some())
            .field("fault_factory", &self.fault_factory.is_some())
            .finish()
    }
}

impl JournalConfig {
    /// A journal rooted at `dir` with the default segment size.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalConfig {
            dir: dir.into(),
            segment_records: 4096,
            shard: None,
            obs: None,
            fault_factory: None,
        }
    }

    /// Overrides the records-per-segment rotation threshold.
    #[must_use]
    pub fn with_segment_records(mut self, records: usize) -> Self {
        self.segment_records = records.max(1);
        self
    }

    /// Marks this journal as shard `shard` of a sharded data plane (see
    /// [`JournalConfig::shard`]).
    #[must_use]
    pub fn with_shard(mut self, shard: u32) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Reports this journal's durability telemetry into `obs` instead of
    /// the process-wide default registry.
    #[must_use]
    pub fn with_obs(mut self, obs: Arc<varan_obs::Registry>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Installs `factory` as the journal's append-time fault injector (see
    /// [`JournalConfig::fault_factory`]); test-only.
    #[must_use]
    pub fn with_fault_factory(mut self, factory: JournalFaultFactory) -> Self {
        self.fault_factory = Some(factory);
        self
    }

    /// The filename prefix of this journal's segments.
    #[must_use]
    pub fn segment_prefix(&self) -> String {
        match self.shard {
            Some(shard) => format!("seg-{shard}-"),
            None => "seg-".to_owned(),
        }
    }
}

/// A sealed (fully written, rotated-away-from) segment.
#[derive(Debug)]
struct SealedSegment {
    first_seq: u64,
    len: u64,
    path: PathBuf,
}

/// Decoded sealed segments kept for re-reads.  Catch-up replay walks the
/// journal in fixed-size batches smaller than a segment, so consecutive
/// [`EventJournal::read_from`] calls land in the same (immutable) sealed
/// file; caching the decoded records means each segment is read and
/// CRC-verified once per replay pass instead of once per batch.  Entries
/// are keyed by path *and* first sequence: compaction rewrites a segment
/// under a new path, so a stale entry can never be served.
#[derive(Debug)]
struct DecodedSegment {
    first_seq: u64,
    path: PathBuf,
    records: Arc<Vec<JournalRecord>>,
}

/// How many decoded sealed segments [`EventJournal`] keeps around for
/// readers (LRU).  Sized for a few concurrent catch-up replays without
/// holding more than a handful of segments' payloads in memory.
const SEGMENT_CACHE_CAP: usize = 4;

#[derive(Debug)]
struct JournalInner {
    sealed: VecDeque<SealedSegment>,
    /// The active segment's records, kept in memory so readers can serve
    /// the tail without re-reading a file the writer still appends to.
    /// `Arc`-wrapped so a reader's batch copy under the lock is a run of
    /// pointer clones; the payload bytes are only cloned outside the lock.
    active: Vec<Arc<JournalRecord>>,
    active_first: u64,
    /// Buffered writer for the active segment: appends cost a memcpy, not a
    /// syscall (readers never look at the active *file* — they read the
    /// in-memory copy above — so buffering does not delay visibility; the
    /// buffer is flushed on rotation and on drop, and a torn tail from a
    /// crash is what `open`'s recovery truncates away).
    active_file: BufWriter<File>,
    /// Rolling fold of the active segment's frame CRCs — becomes the
    /// trailer hash when the segment seals at rotation.
    crc_fold: u64,
    next_seq: u64,
    anchor: u64,
    /// What the verify-on-reopen scrub found, if anything.
    scrub: Vec<ScrubReport>,
    /// Test-only write-fault injection; `None` in production.
    faults: Option<Box<dyn JournalFaults>>,
}

impl Drop for JournalInner {
    fn drop(&mut self) {
        let _ = self.active_file.flush();
    }
}

/// The disk-backed event journal: one writer (the leader's monitor), any
/// number of readers (joining followers), segmented files with
/// checkpoint-anchored retention, per-frame CRCs and sealed-segment
/// trailer hashes.
///
/// All operations take a short internal lock; the writer's append is a
/// memory push plus one buffered file write, so the leader's publish path
/// never waits on a reader (readers never hold the lock across I/O on the
/// active segment — its tail is served from memory).
pub struct EventJournal {
    config: JournalConfig,
    inner: Mutex<JournalInner>,
    /// LRU of decoded sealed segments, under its own lock so a reader's
    /// file I/O and CRC verification never block the appender.
    read_cache: Mutex<Vec<DecodedSegment>>,
    /// Where scrub/quarantine/compaction telemetry goes (the configured
    /// registry, or the process-wide default).
    obs: Arc<varan_obs::Registry>,
}

impl fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("EventJournal")
            .field("dir", &self.config.dir)
            .field("segments", &(inner.sealed.len() + 1))
            .field("next_seq", &inner.next_seq)
            .field("anchor", &inner.anchor)
            .finish()
    }
}

fn segment_path(dir: &Path, prefix: &str, first_seq: u64) -> PathBuf {
    dir.join(format!("{prefix}{first_seq:020}.vrj"))
}

/// True if `name` is one of this journal's segment files: the prefix, then
/// exactly 20 ASCII digits, then `.vrj`.  The digit check keeps sharded and
/// unsharded journals sharing a directory out of each other's scans (an
/// unsharded scan must not swallow `seg-3-…`, whose remainder carries a
/// dash; a shard-0 scan must not swallow `seg-0000….vrj`, whose remainder
/// is 19 digits).  Quarantined files (`….vrj.quarantine`) fail the suffix
/// check, so scrubbed evidence is never re-indexed.
fn is_segment_name(name: &str, prefix: &str) -> bool {
    name.strip_prefix(prefix)
        .and_then(|rest| rest.strip_suffix(".vrj"))
        .map(|digits| digits.len() == 20 && digits.bytes().all(|b| b.is_ascii_digit()))
        .unwrap_or(false)
}

/// The first-sequence a segment's filename claims (used only when the file
/// body is too damaged to read its own header).
fn seq_from_name(path: &Path, prefix: &str) -> u64 {
    path.file_name()
        .and_then(|name| name.to_str())
        .and_then(|name| name.strip_prefix(prefix))
        .and_then(|rest| rest.strip_suffix(".vrj"))
        .and_then(|digits| digits.parse().ok())
        .unwrap_or(0)
}

/// `<name>.quarantine` beside the original.
fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(std::ffi::OsStr::to_os_string)
        .unwrap_or_default();
    name.push(".quarantine");
    path.with_file_name(name)
}

fn open_segment_file(path: &Path, first_seq: u64) -> Result<BufWriter<File>, JournalError> {
    let file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(SEGMENT_MAGIC)?;
    writer.write_all(&first_seq.to_le_bytes())?;
    Ok(writer)
}

impl EventJournal {
    /// Creates (or reopens) the journal at `config.dir`.
    ///
    /// Reopening scrubs every segment in sequence order.  A torn final
    /// frame on the newest segment (the writer died mid-append) is
    /// truncated away as routine crash recovery.  Any other damage — a
    /// checksum-mismatched frame, a bad trailer hash, a tear inside a
    /// sealed segment — quarantines the journal's suffix from that point:
    /// the damaged bytes are preserved as `.quarantine` files, the intact
    /// record prefix becomes the new tail, and a [`ScrubReport`] records
    /// what was lost so the caller can re-seed affected followers from a
    /// checkpoint instead of replaying corrupt data.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError`] only for I/O failures — damage is scrubbed,
    /// not fatal.
    pub fn open(config: JournalConfig) -> Result<Self, JournalError> {
        std::fs::create_dir_all(&config.dir)?;
        let prefix = config.segment_prefix();
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&config.dir)?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|path| {
                path.file_name()
                    .and_then(|name| name.to_str())
                    .map(|name| is_segment_name(name, &prefix))
                    .unwrap_or(false)
            })
            .collect();
        paths.sort();

        let mut sealed = VecDeque::new();
        let mut scrub: Vec<ScrubReport> = Vec::new();
        let mut tail: Option<(u64, Vec<JournalRecord>)> = None;
        let mut next_seq = 0u64;
        // Index from which the on-disk files are damaged (or shadowed by
        // damage before them) and must move aside as evidence.
        let mut quarantine_from: Option<usize> = None;

        for (i, path) in paths.iter().enumerate() {
            let is_last = i + 1 == paths.len();
            let bytes = std::fs::read(path)?;
            let scan = match scan_segment(&bytes) {
                Ok(scan) => scan,
                Err(_) => {
                    // Unreadable header: nothing salvageable in this file.
                    // Restart the active segment at the sequence the
                    // filename carries so numbering stays contiguous with
                    // the surviving prefix.
                    let first_seq = seq_from_name(path, &prefix);
                    scrub.push(ScrubReport {
                        segment_first_seq: first_seq,
                        offset: 0,
                        kind: ScrubKind::Corrupt,
                        reason: "missing segment magic",
                        new_tail: first_seq,
                        quarantined: Vec::new(),
                    });
                    tail = Some((first_seq, Vec::new()));
                    quarantine_from = Some(i);
                    break;
                }
            };
            match scan.damage {
                None if is_last && !scan.sealed => {
                    // The newest segment, still open for appends.
                    tail = Some((scan.first_seq, scan.records));
                }
                None => {
                    // A clean sealed segment (or, if last, one whose
                    // trailer landed but whose successor file never did —
                    // treat it as sealed and start a fresh active segment).
                    next_seq = scan.first_seq + scan.records.len() as u64;
                    sealed.push_back(SealedSegment {
                        first_seq: scan.first_seq,
                        len: scan.records.len() as u64,
                        path: path.clone(),
                    });
                }
                Some(damage) => {
                    let routine_tear = is_last && damage.kind == ScrubKind::TornTail;
                    let mut quarantined = Vec::new();
                    if !routine_tear {
                        // Preserve the damaged bytes before the rewrite
                        // below destroys them.
                        let qpath = quarantine_path(path);
                        std::fs::write(&qpath, &bytes)?;
                        quarantined.push(qpath);
                    }
                    // The intact prefix becomes the (unsealed) active
                    // segment; appends resume right after the last
                    // trustworthy record.
                    std::fs::write(path, encode_segment_unsealed(scan.first_seq, &scan.records))?;
                    scrub.push(ScrubReport {
                        segment_first_seq: scan.first_seq,
                        offset: damage.offset,
                        kind: damage.kind,
                        reason: damage.reason,
                        new_tail: scan.first_seq + scan.records.len() as u64,
                        quarantined,
                    });
                    tail = Some((scan.first_seq, scan.records));
                    if !is_last {
                        quarantine_from = Some(i + 1);
                    }
                    break;
                }
            }
        }

        if let Some(from) = quarantine_from {
            // Everything past the damage point is an untrusted suffix:
            // replay is sequential, so records above a lost range must not
            // be served even if their own frames verify.  Move the files
            // aside (they fail `is_segment_name`, so they are never
            // re-indexed) and note them in the report.
            let mut moved = Vec::new();
            for path in &paths[from..] {
                let qpath = quarantine_path(path);
                std::fs::rename(path, &qpath)?;
                moved.push(qpath);
            }
            scrub
                .last_mut()
                .expect("quarantine implies a scrub report")
                .quarantined
                .extend(moved);
        }

        let (active_first, active_records) = tail.unwrap_or((next_seq, Vec::new()));
        next_seq = active_first + active_records.len() as u64;
        let crc_fold = fold_records(active_first, &active_records);
        let active: Vec<Arc<JournalRecord>> = active_records.into_iter().map(Arc::new).collect();
        let path = segment_path(&config.dir, &prefix, active_first);
        let active_file = if active.is_empty() {
            open_segment_file(&path, active_first)?
        } else {
            // Reopen for append; any recovery rewrite above left only
            // whole, checksummed frames in the file.
            BufWriter::new(OpenOptions::new().append(true).open(&path)?)
        };
        let anchor = sealed
            .front()
            .map(|segment| segment.first_seq)
            .unwrap_or(active_first);
        let obs = config.obs.clone().unwrap_or_else(varan_obs::global_arc);
        // Surface the scrub verdicts while they are fresh: one scrub count
        // per report, one corruption count per `Corrupt` verdict, one
        // quarantine count per preserved file — so "did we ever lose data"
        // is a counter read, not a sim-output archaeology session.
        for report in &scrub {
            obs.metrics.journal_scrubs.add(1);
            let kind_tag = match report.kind {
                ScrubKind::TornTail => 1,
                ScrubKind::Corrupt => 2,
            };
            obs.trace("journal.scrub", kind_tag, report.new_tail);
            if report.kind == ScrubKind::Corrupt {
                obs.metrics.journal_corruptions_detected.add(1);
            }
            if !report.quarantined.is_empty() {
                obs.metrics
                    .journal_quarantines
                    .add(report.quarantined.len() as u64);
                obs.trace(
                    "journal.quarantine",
                    report.segment_first_seq,
                    report.quarantined.len() as u64,
                );
            }
        }
        // Armed before the journal is handed to anyone, so even sequence 0
        // can be damaged deterministically.
        let faults = config.fault_factory.as_ref().map(|factory| factory());
        Ok(EventJournal {
            config,
            inner: Mutex::new(JournalInner {
                sealed,
                active,
                active_first,
                active_file,
                crc_fold,
                next_seq,
                anchor,
                scrub,
                faults,
            }),
            read_cache: Mutex::new(Vec::new()),
            obs,
        })
    }

    /// What the verify-on-reopen scrub found, oldest first.  Empty for a
    /// journal that opened clean.
    #[must_use]
    pub fn scrub_reports(&self) -> Vec<ScrubReport> {
        self.inner.lock().scrub.clone()
    }

    /// Installs a write-fault injector (see [`JournalFaults`]); test-only.
    pub fn install_faults(&self, faults: Box<dyn JournalFaults>) {
        self.inner.lock().faults = Some(faults);
    }

    /// Removes the write-fault injector.
    pub fn clear_faults(&self) {
        self.inner.lock().faults = None;
    }

    /// Appends one record and returns the sequence number it was assigned.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] if the segment file cannot be written.
    pub fn append(&self, record: JournalRecord) -> Result<u64, JournalError> {
        let mut frame = Vec::with_capacity(FRAME_HEADER + FRAME_CRC + 16);
        let crc = record.encode_into(&mut frame);
        let record = Arc::new(record);
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        if let Some(faults) = inner.faults.as_mut() {
            // The injector damages only what reaches the disk; the
            // in-memory tail (what live readers see, and what the writer
            // believes it appended) stays whole.
            faults.on_append(seq, &mut frame);
        }
        inner.active_file.write_all(&frame)?;
        inner.active.push(record);
        inner.crc_fold = fold_frame_crc(inner.crc_fold, crc);
        inner.next_seq += 1;
        if inner.active.len() >= self.config.segment_records {
            self.rotate_locked(&mut inner)?;
        }
        Ok(seq)
    }

    /// Seals the active segment (writing its trailer) and starts a new one.
    fn rotate_locked(&self, inner: &mut JournalInner) -> Result<(), JournalError> {
        inner.active_file.write_all(TRAILER_MAGIC)?;
        let fold = inner.crc_fold;
        inner.active_file.write_all(&fold.to_le_bytes())?;
        inner.active_file.flush()?;
        let prefix = self.config.segment_prefix();
        let first_seq = inner.active_first;
        let len = inner.active.len() as u64;
        let path = segment_path(&self.config.dir, &prefix, first_seq);
        inner.sealed.push_back(SealedSegment {
            first_seq,
            len,
            path,
        });
        inner.active.clear();
        inner.active_first = inner.next_seq;
        inner.crc_fold = trailer_basis(inner.active_first);
        let path = segment_path(&self.config.dir, &prefix, inner.active_first);
        inner.active_file = open_segment_file(&path, inner.active_first)?;
        Ok(())
    }

    /// Flushes the active segment file to the OS.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on failure.
    pub fn flush(&self) -> Result<(), JournalError> {
        self.inner.lock().active_file.flush().map_err(Into::into)
    }

    /// The sequence number the next appended record will receive (equal to
    /// the number of records ever appended).
    #[must_use]
    pub fn tail_sequence(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// The oldest sequence number still retained.
    #[must_use]
    pub fn oldest_sequence(&self) -> u64 {
        let inner = self.inner.lock();
        inner
            .sealed
            .front()
            .map(|segment| segment.first_seq)
            .unwrap_or(inner.active_first)
    }

    /// The current retention anchor.
    #[must_use]
    pub fn anchor(&self) -> u64 {
        self.inner.lock().anchor
    }

    /// Number of segment files the journal currently spans (sealed plus
    /// the active one).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.inner.lock().sealed.len() + 1
    }

    /// Moves the retention anchor to `seq` (the oldest live checkpoint's
    /// event sequence) and deletes every sealed segment that lies entirely
    /// below it.  The anchor never moves backwards.
    pub fn set_anchor(&self, seq: u64) {
        let mut inner = self.inner.lock();
        if seq <= inner.anchor {
            return;
        }
        inner.anchor = seq;
        let mut retired = 0u64;
        while let Some(front) = inner.sealed.front() {
            if front.first_seq + front.len <= seq {
                let dead = inner.sealed.pop_front().expect("front exists");
                let _ = std::fs::remove_file(&dead.path);
                retired += 1;
            } else {
                break;
            }
        }
        drop(inner);
        let shard = u64::from(self.config.shard.unwrap_or(0));
        self.obs.trace("journal.anchor", shard, seq);
        if retired > 0 {
            self.obs.metrics.journal_compactions.add(1);
            self.obs.trace("journal.retire_segments", shard, retired);
        }
    }

    /// Compacts the journal up to the retention anchor: if the oldest
    /// sealed segment *straddles* the anchor (its first records precede it
    /// but its last do not, so whole-segment retention kept it alive), the
    /// segment is rewritten as a fresh sealed, checksummed segment whose
    /// first record *is* the anchor, and the old file is removed.
    ///
    /// Returns the number of dead records dropped (0 if nothing straddled
    /// the anchor).  Together with [`EventJournal::set_anchor`] this keeps
    /// the disk footprint and a joiner's replay length bounded by the
    /// checkpoint cadence: nothing below the oldest restorable checkpoint
    /// survives on disk.  The active segment is never compacted — it is
    /// already bounded by `segment_records`.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError`] if the segment cannot be read back intact
    /// or the replacement cannot be written; the journal is unchanged on
    /// error.
    pub fn compact_to_anchor(&self) -> Result<u64, JournalError> {
        let mut inner = self.inner.lock();
        let anchor = inner.anchor;
        let Some(front) = inner.sealed.front() else {
            return Ok(0);
        };
        if front.first_seq >= anchor {
            return Ok(0);
        }
        let old_path = front.path.clone();
        let old_first = front.first_seq;
        let bytes = std::fs::read(&old_path)?;
        let (file_first, records) =
            decode_segment(&bytes).map_err(|err| JournalError::InSegment {
                first_seq: old_first,
                error: Box::new(err),
            })?;
        debug_assert_eq!(file_first, old_first);
        let keep: Vec<JournalRecord> = records
            .into_iter()
            .skip((anchor - old_first) as usize)
            .collect();
        let prefix = self.config.segment_prefix();
        let new_path = segment_path(&self.config.dir, &prefix, anchor);
        std::fs::write(&new_path, encode_segment(anchor, &keep))?;
        let front = inner.sealed.front_mut().expect("front exists");
        front.first_seq = anchor;
        front.len = keep.len() as u64;
        front.path = new_path;
        drop(inner);
        let _ = std::fs::remove_file(&old_path);
        let removed = anchor - old_first;
        self.obs.metrics.journal_compactions.add(1);
        self.obs
            .trace("journal.compact", u64::from(self.config.shard.unwrap_or(0)), removed);
        Ok(removed)
    }

    /// Reads up to `max` records starting at sequence `from`.
    ///
    /// Returns the sequence of the first record returned (`>= from`; greater
    /// only if `from` has already been retired past by the retention anchor,
    /// which a correctly anchored reader never observes) and the records.
    /// An empty vector means the journal holds nothing at or after `from`.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::InSegment`] naming the failing segment if a
    /// sealed segment cannot be read back intact.
    pub fn read_from(
        &self,
        from: u64,
        max: usize,
    ) -> Result<(u64, Vec<JournalRecord>), JournalError> {
        // Index the sealed segments under the lock, but do the file reads —
        // and the materialisation of the active tail's records (payload
        // clones) — outside it, so a catching-up reader never stalls the
        // appender: the lock-held work is pointer clones only.
        let (sealed_paths, active_first, active_tail): (
            Vec<(u64, u64, PathBuf)>,
            u64,
            Vec<Arc<JournalRecord>>,
        ) = {
            let inner = self.inner.lock();
            let sealed = inner
                .sealed
                .iter()
                .filter(|segment| segment.first_seq + segment.len > from)
                .map(|segment| (segment.first_seq, segment.len, segment.path.clone()))
                .collect();
            let skip = (from.saturating_sub(inner.active_first)) as usize;
            let take: Vec<Arc<JournalRecord>> = inner
                .active
                .iter()
                .skip(skip)
                .take(max)
                .cloned()
                .collect();
            (sealed, inner.active_first, take)
        };

        let mut start = from;
        let mut records: Vec<JournalRecord> = Vec::new();
        for (first_seq, _len, path) in sealed_paths {
            if records.len() >= max {
                break;
            }
            let segment_records = self.sealed_records(first_seq, &path)?;
            let skip = (start.saturating_sub(first_seq)) as usize;
            if records.is_empty() {
                start = start.max(first_seq);
            }
            records.extend(
                segment_records
                    .iter()
                    .skip(skip)
                    .take(max - records.len())
                    .cloned(),
            );
        }
        if records.len() < max && !active_tail.is_empty() {
            if records.is_empty() {
                start = start.max(active_first);
            }
            let room = max - records.len();
            records.extend(
                active_tail
                    .iter()
                    .take(room)
                    .map(|record| (**record).clone()),
            );
        }
        Ok((start, records))
    }

    /// The decoded records of a sealed segment, served from the read cache
    /// when the same file was decoded recently (sealed files are immutable;
    /// compaction replaces a segment under a new path, never in place).
    fn sealed_records(
        &self,
        first_seq: u64,
        path: &Path,
    ) -> Result<Arc<Vec<JournalRecord>>, JournalError> {
        let mut cache = self.read_cache.lock();
        if let Some(at) = cache
            .iter()
            .position(|entry| entry.first_seq == first_seq && entry.path == path)
        {
            let entry = cache.remove(at);
            let records = Arc::clone(&entry.records);
            cache.push(entry);
            return Ok(records);
        }
        drop(cache);
        let bytes = std::fs::read(path)?;
        let (file_first, decoded) = decode_segment(&bytes).map_err(|err| JournalError::InSegment {
            first_seq,
            error: Box::new(err),
        })?;
        debug_assert_eq!(file_first, first_seq);
        let records = Arc::new(decoded);
        let mut cache = self.read_cache.lock();
        if cache.len() >= SEGMENT_CACHE_CAP {
            cache.remove(0);
        }
        cache.push(DecodedSegment {
            first_seq,
            path: path.to_owned(),
            records: Arc::clone(&records),
        });
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seed: u64) -> JournalRecord {
        JournalRecord {
            kind: EventKind::Syscall,
            sysno: (seed % 300) as u16,
            tid: (seed % 5) as u32,
            clock: seed,
            result: seed as i64 - 7,
            args: [seed, seed + 1, seed + 2, seed + 3, seed + 4, seed + 5],
            payload: if seed.is_multiple_of(3) {
                Some(vec![seed as u8; (seed % 17) as usize])
            } else {
                None
            },
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "varan-journal-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn frame_round_trips_with_and_without_payload() {
        for seed in 0..20u64 {
            let original = record(seed);
            let mut bytes = Vec::new();
            original.encode_into(&mut bytes);
            let mut cursor = 0usize;
            let decoded = JournalRecord::decode_from(&bytes, &mut cursor).unwrap();
            assert_eq!(decoded, original);
            assert_eq!(cursor, bytes.len());
        }
    }

    #[test]
    fn empty_payload_stays_distinct_from_none() {
        let mut with_empty = record(1);
        with_empty.payload = Some(Vec::new());
        let mut bytes = Vec::new();
        with_empty.encode_into(&mut bytes);
        let mut cursor = 0;
        let decoded = JournalRecord::decode_from(&bytes, &mut cursor).unwrap();
        assert_eq!(decoded.payload, Some(Vec::new()));
    }

    #[test]
    fn every_single_byte_flip_in_a_frame_is_detected() {
        let original = record(3); // has a payload
        let mut bytes = Vec::new();
        original.encode_into(&mut bytes);
        for at in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[at] ^= 0x40;
            let mut cursor = 0;
            let decoded = JournalRecord::decode_from(&flipped, &mut cursor);
            // A flip may masquerade as a tear (length field) but must never
            // decode into a record different from the original.
            match decoded {
                Err(_) => {}
                Ok(record) => assert_eq!(record, original, "byte {at} absorbed silently"),
            }
        }
    }

    #[test]
    fn unchecked_encoding_is_the_frame_minus_its_crc() {
        let original = record(6);
        let mut checked = Vec::new();
        original.encode_into(&mut checked);
        let mut unchecked = Vec::new();
        original.encode_into_unchecked(&mut unchecked);
        assert_eq!(&checked[..checked.len() - FRAME_CRC], &unchecked[..]);
    }

    #[test]
    fn event_conversion_preserves_inline_fields() {
        let original = record(9);
        let event = original.to_event();
        let back = JournalRecord::from_event(&event, original.payload.clone());
        assert_eq!(back.kind, original.kind);
        assert_eq!(back.sysno, original.sysno);
        assert_eq!(back.clock, original.clock);
        assert_eq!(back.result, original.result);
        assert_eq!(&back.args[..EVENT_INLINE_ARGS], &original.args[..EVENT_INLINE_ARGS]);
        // The two spilled registers are not representable in a ring event.
        assert_eq!(back.args[4], 0);
    }

    #[test]
    fn segment_decode_rejects_garbage() {
        assert_eq!(decode_segment(b"junk").unwrap_err(), JournalError::BadMagic);
        let mut bytes = encode_segment(0, &[record(1)]);
        bytes[0] = b'X';
        assert_eq!(decode_segment(&bytes).unwrap_err(), JournalError::BadMagic);
        let mut bytes = encode_segment(0, &[record(1)]);
        bytes[16] = 200; // flipped kind byte: caught by the frame CRC
        assert!(matches!(
            decode_segment(&bytes).unwrap_err(),
            JournalError::Corrupt { offset: 16, .. }
        ));
    }

    #[test]
    fn sealed_segment_ends_with_a_verifying_trailer() {
        let records: Vec<JournalRecord> = (0..5).map(record).collect();
        let bytes = encode_segment(7, &records);
        assert_eq!(
            &bytes[bytes.len() - TRAILER_LEN..bytes.len() - 8],
            TRAILER_MAGIC
        );
        let scan = scan_segment(&bytes).unwrap();
        assert!(scan.sealed);
        assert!(scan.damage.is_none());
        // Damage the trailer hash: the scan flags it even though every
        // frame still checksums individually.
        let mut bad = bytes.clone();
        let at = bad.len() - 1;
        bad[at] ^= 0xFF;
        let scan = scan_segment(&bad).unwrap();
        assert_eq!(scan.records, records, "frames themselves are intact");
        let damage = scan.damage.unwrap();
        assert_eq!(damage.kind, ScrubKind::Corrupt);
        assert_eq!(damage.reason, "segment trailer hash mismatch");
    }

    #[test]
    fn strict_decode_rejects_torn_tail_lossy_recovers_it() {
        let records: Vec<JournalRecord> = (0..5).map(record).collect();
        let sealed = encode_segment(7, &records);
        // Tear through the trailer *and* into the final frame's CRC.
        let mut bytes = sealed.clone();
        bytes.truncate(bytes.len() - TRAILER_LEN - 3);
        assert!(matches!(
            decode_segment(&bytes).unwrap_err(),
            JournalError::Truncated { .. }
        ));
        let (first, recovered, torn) = decode_segment_lossy(&bytes).unwrap();
        assert_eq!(first, 7);
        assert_eq!(recovered, records[..4].to_vec());
        assert!(torn.is_some());
        // A tear that only loses the trailer keeps every record.
        let mut bytes = sealed;
        bytes.truncate(bytes.len() - 3);
        let (_, recovered, torn) = decode_segment_lossy(&bytes).unwrap();
        assert_eq!(recovered, records);
        assert!(torn.is_some());
    }

    #[test]
    fn journal_appends_rotates_and_reads_back() {
        let dir = temp_dir("rotate");
        let journal =
            EventJournal::open(JournalConfig::new(&dir).with_segment_records(8)).unwrap();
        for seed in 0..30u64 {
            assert_eq!(journal.append(record(seed)).unwrap(), seed);
        }
        assert_eq!(journal.tail_sequence(), 30);
        let (start, all) = journal.read_from(0, usize::MAX).unwrap();
        assert_eq!(start, 0);
        assert_eq!(all.len(), 30);
        assert_eq!(all[17], record(17));
        // Mid-stream read crossing a segment boundary.
        let (start, tail) = journal.read_from(13, 10).unwrap();
        assert_eq!(start, 13);
        assert_eq!(tail.len(), 10);
        assert_eq!(tail[0], record(13));
        // Past the tail.
        let (_, none) = journal.read_from(30, usize::MAX).unwrap();
        assert!(none.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotated_segments_are_sealed_on_disk() {
        let dir = temp_dir("sealed");
        let journal =
            EventJournal::open(JournalConfig::new(&dir).with_segment_records(4)).unwrap();
        for seed in 0..6u64 {
            journal.append(record(seed)).unwrap();
        }
        let bytes = std::fs::read(segment_path(&dir, "seg-", 0)).unwrap();
        let scan = scan_segment(&bytes).unwrap();
        assert!(scan.sealed, "rotated segment must carry a trailer");
        assert_eq!(scan.records.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_a_torn_active_segment() {
        let dir = temp_dir("torn");
        {
            let journal =
                EventJournal::open(JournalConfig::new(&dir).with_segment_records(100)).unwrap();
            for seed in 0..10u64 {
                journal.append(record(seed)).unwrap();
            }
            journal.flush().unwrap();
        }
        // Tear the final frame of the active segment.
        let seg = segment_path(&dir, "seg-", 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.truncate(bytes.len() - 5);
        std::fs::write(&seg, &bytes).unwrap();

        let journal =
            EventJournal::open(JournalConfig::new(&dir).with_segment_records(100)).unwrap();
        assert_eq!(journal.tail_sequence(), 9, "torn record truncated, not fatal");
        let reports = journal.scrub_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, ScrubKind::TornTail);
        assert_eq!(reports[0].new_tail, 9);
        assert!(reports[0].quarantined.is_empty(), "tears are routine");
        let (_, records) = journal.read_from(0, usize::MAX).unwrap();
        assert_eq!(records, (0..9).map(record).collect::<Vec<_>>());
        // Appending continues from the recovered position.
        assert_eq!(journal.append(record(99)).unwrap(), 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_torn_write_is_recovered_on_reopen() {
        /// Tears the frame of one chosen sequence down to a prefix.
        struct TearAt {
            seq: u64,
            keep: usize,
        }
        impl JournalFaults for TearAt {
            fn on_append(&mut self, seq: u64, frame: &mut Vec<u8>) {
                if seq == self.seq {
                    let keep = self.keep.min(frame.len().saturating_sub(1));
                    frame.truncate(keep);
                }
            }
        }

        let dir = temp_dir("fault-injector");
        {
            let journal =
                EventJournal::open(JournalConfig::new(&dir).with_segment_records(100)).unwrap();
            journal.install_faults(Box::new(TearAt { seq: 7, keep: 10 }));
            for seed in 0..8u64 {
                journal.append(record(seed)).unwrap();
            }
            // The writer believes all 8 made it: the in-memory tail serves
            // live readers the whole stream.
            assert_eq!(journal.tail_sequence(), 8);
            let (_, live) = journal.read_from(0, usize::MAX).unwrap();
            assert_eq!(live.len(), 8);
            journal.flush().unwrap();
        }
        // Reopen: the torn final frame is truncated away, never fatal.
        let journal =
            EventJournal::open(JournalConfig::new(&dir).with_segment_records(100)).unwrap();
        assert_eq!(journal.tail_sequence(), 7);
        let (_, records) = journal.read_from(0, usize::MAX).unwrap();
        assert_eq!(records, (0..7).map(record).collect::<Vec<_>>());
        // Appending continues from the recovered position, uninjected.
        assert_eq!(journal.append(record(70)).unwrap(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_payload_byte_is_detected_and_scrubbed_never_absorbed() {
        let dir = temp_dir("flip");
        {
            let journal =
                EventJournal::open(JournalConfig::new(&dir).with_segment_records(100)).unwrap();
            for seed in 0..10u64 {
                journal.append(record(seed)).unwrap();
            }
            journal.flush().unwrap();
        }
        // Flip one payload byte of record 6 (seed 6 carries a payload) —
        // mid-file, so this cannot masquerade as a tear.
        let seg = segment_path(&dir, "seg-", 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        let clean = bytes.clone();
        let mut cursor = 16;
        for _ in 0..6 {
            JournalRecord::decode_from(&bytes, &mut cursor).unwrap();
        }
        let flip_at = cursor + FRAME_HEADER; // first payload byte of record 6
        bytes[flip_at] ^= 0x01;
        std::fs::write(&seg, &bytes).unwrap();

        let journal =
            EventJournal::open(JournalConfig::new(&dir).with_segment_records(100)).unwrap();
        // Detected: the scrub names the segment, offset and reason.
        let reports = journal.scrub_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].segment_first_seq, 0);
        assert_eq!(reports[0].kind, ScrubKind::Corrupt);
        assert_eq!(reports[0].reason, "frame checksum mismatch");
        assert_eq!(reports[0].offset, cursor, "offset of the damaged frame");
        assert_eq!(reports[0].new_tail, 6);
        // The damaged bytes are preserved as evidence.
        assert_eq!(reports[0].quarantined.len(), 1);
        assert_eq!(std::fs::read(&reports[0].quarantined[0]).unwrap(), bytes);
        // Recovered: the intact prefix is served, the corrupt record and
        // its successors are not, and appends continue at the new tail.
        assert_eq!(journal.tail_sequence(), 6);
        let (_, records) = journal.read_from(0, usize::MAX).unwrap();
        assert_eq!(records, (0..6).map(record).collect::<Vec<_>>());
        assert_eq!(journal.append(record(60)).unwrap(), 6);
        // Never absorbed: nothing the journal returns differs from what
        // was originally appended.
        let (_, reread) = journal.read_from(0, usize::MAX).unwrap();
        for (i, got) in reread.iter().take(6).enumerate() {
            let mut cursor = 16;
            for _ in 0..i {
                JournalRecord::decode_from(&clean, &mut cursor).unwrap();
            }
            let expected = JournalRecord::decode_from(&clean, &mut cursor).unwrap();
            assert_eq!(*got, expected);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_in_a_sealed_segment_quarantines_the_suffix() {
        let dir = temp_dir("quarantine");
        {
            let journal =
                EventJournal::open(JournalConfig::new(&dir).with_segment_records(4)).unwrap();
            for seed in 0..14u64 {
                journal.append(record(seed)).unwrap();
            }
            journal.flush().unwrap();
        }
        // Three sealed segments ([0..4), [4..8), [8..12)) plus the active
        // tail [12..14).  Corrupt a frame in the second sealed segment.
        let seg = segment_path(&dir, "seg-", 4);
        let mut bytes = std::fs::read(&seg).unwrap();
        let mut cursor = 16;
        JournalRecord::decode_from(&bytes, &mut cursor).unwrap();
        bytes[cursor + 2] ^= 0x80; // inside record 5's header
        std::fs::write(&seg, &bytes).unwrap();

        let journal =
            EventJournal::open(JournalConfig::new(&dir).with_segment_records(4)).unwrap();
        // The journal truncates to the last trustworthy record: 4 records
        // of segment 0 plus the single intact record of segment 4.
        assert_eq!(journal.tail_sequence(), 5);
        let (_, records) = journal.read_from(0, usize::MAX).unwrap();
        assert_eq!(records, (0..5).map(record).collect::<Vec<_>>());
        let reports = journal.scrub_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].segment_first_seq, 4);
        assert_eq!(reports[0].kind, ScrubKind::Corrupt);
        assert_eq!(reports[0].new_tail, 5);
        // The damaged segment and the two later files all moved aside.
        assert_eq!(reports[0].quarantined.len(), 3);
        for qpath in &reports[0].quarantined {
            assert!(qpath.exists(), "{} missing", qpath.display());
        }
        // Appends continue from the scrubbed tail.
        assert_eq!(journal.append(record(50)).unwrap(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_quarantine_increments_the_telemetry_counter_exactly_once() {
        let dir = temp_dir("quarantine-obs");
        {
            let journal =
                EventJournal::open(JournalConfig::new(&dir).with_segment_records(100)).unwrap();
            for seed in 0..10u64 {
                journal.append(record(seed)).unwrap();
            }
            journal.flush().unwrap();
        }
        // Flip a payload byte mid-file: one damaged frame, one preserved
        // `.quarantine` file.
        let seg = segment_path(&dir, "seg-", 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        let mut cursor = 16;
        for _ in 0..6 {
            JournalRecord::decode_from(&bytes, &mut cursor).unwrap();
        }
        bytes[cursor + FRAME_HEADER] ^= 0x01;
        std::fs::write(&seg, &bytes).unwrap();

        let obs = Arc::new(varan_obs::Registry::new());
        let journal = EventJournal::open(
            JournalConfig::new(&dir)
                .with_segment_records(100)
                .with_obs(Arc::clone(&obs)),
        )
        .unwrap();
        assert_eq!(journal.scrub_reports().len(), 1);

        // One damaged file, one counter increment — and every scrub-side
        // verdict is surfaced through the snapshot, not only the reports.
        let snap = obs.snapshot();
        assert_eq!(snap.journal_quarantines, 1);
        assert_eq!(snap.journal_scrubs, 1);
        assert_eq!(snap.journal_corruptions_detected, 1);
        let traces = obs.trace_ring().snapshot();
        assert_eq!(
            traces
                .events
                .iter()
                .filter(|event| event.kind == "journal.quarantine")
                .count(),
            1
        );

        // A second open of the already-scrubbed directory finds a clean
        // journal: no new scrub, no double-counted quarantine.
        drop(journal);
        let reopened_obs = Arc::new(varan_obs::Registry::new());
        let reopened = EventJournal::open(
            JournalConfig::new(&dir)
                .with_segment_records(100)
                .with_obs(Arc::clone(&reopened_obs)),
        )
        .unwrap();
        assert!(reopened.scrub_reports().is_empty());
        assert_eq!(reopened_obs.snapshot().journal_quarantines, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_deletes_whole_segments_below_the_anchor() {
        let dir = temp_dir("retain");
        let journal =
            EventJournal::open(JournalConfig::new(&dir).with_segment_records(4)).unwrap();
        for seed in 0..20u64 {
            journal.append(record(seed)).unwrap();
        }
        assert_eq!(journal.oldest_sequence(), 0);
        journal.set_anchor(10);
        // Segments [0..4) and [4..8) die; [8..12) survives because record 10
        // lives in it.
        assert_eq!(journal.oldest_sequence(), 8);
        assert_eq!(journal.anchor(), 10);
        let (start, records) = journal.read_from(10, usize::MAX).unwrap();
        assert_eq!(start, 10);
        assert_eq!(records.len(), 10);
        assert_eq!(records[0], record(10));
        // The anchor never moves backwards.
        journal.set_anchor(3);
        assert_eq!(journal.anchor(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_rewrites_the_straddling_segment_to_the_anchor() {
        let dir = temp_dir("compact");
        let journal =
            EventJournal::open(JournalConfig::new(&dir).with_segment_records(4)).unwrap();
        for seed in 0..20u64 {
            journal.append(record(seed)).unwrap();
        }
        journal.set_anchor(10);
        assert_eq!(journal.oldest_sequence(), 8, "whole-segment retention");
        assert_eq!(journal.compact_to_anchor().unwrap(), 2);
        assert_eq!(journal.oldest_sequence(), 10, "compacted to the anchor");
        // The rewritten segment is sealed and checksummed; the old file is
        // gone and the new one carries the anchor sequence.
        assert!(!segment_path(&dir, "seg-", 8).exists());
        let bytes = std::fs::read(segment_path(&dir, "seg-", 10)).unwrap();
        let scan = scan_segment(&bytes).unwrap();
        assert!(scan.sealed);
        assert_eq!(scan.first_seq, 10);
        assert_eq!(scan.records.len(), 2);
        // Reads above the anchor are byte-identical to the originals.
        let (start, records) = journal.read_from(10, usize::MAX).unwrap();
        assert_eq!(start, 10);
        assert_eq!(records, (10..20).map(record).collect::<Vec<_>>());
        // Idempotent: nothing left to drop.
        assert_eq!(journal.compact_to_anchor().unwrap(), 0);
        // A compacted journal reopens clean.
        drop(journal);
        let journal =
            EventJournal::open(JournalConfig::new(&dir).with_segment_records(4)).unwrap();
        assert!(journal.scrub_reports().is_empty());
        assert_eq!(journal.tail_sequence(), 20);
        let (_, records) = journal.read_from(10, usize::MAX).unwrap();
        assert_eq!(records, (10..20).map(record).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_treats_a_sealed_newest_segment_as_sealed() {
        // Crash window: rotation flushed the trailer but the successor
        // file was never created.  Reopen must not append after a trailer.
        let dir = temp_dir("sealed-newest");
        {
            let journal =
                EventJournal::open(JournalConfig::new(&dir).with_segment_records(4)).unwrap();
            for seed in 0..4u64 {
                journal.append(record(seed)).unwrap();
            }
        }
        // Remove the empty successor the rotation created, leaving only
        // the sealed segment — the crash-window on-disk state.
        std::fs::remove_file(segment_path(&dir, "seg-", 4)).unwrap();
        let journal =
            EventJournal::open(JournalConfig::new(&dir).with_segment_records(4)).unwrap();
        assert!(journal.scrub_reports().is_empty());
        assert_eq!(journal.tail_sequence(), 4);
        assert_eq!(journal.append(record(40)).unwrap(), 4);
        journal.flush().unwrap();
        // The sealed file was left untouched; the append went to a fresh
        // active segment.
        let (_, records) = journal.read_from(0, usize::MAX).unwrap();
        assert_eq!(records.len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_name_filter_keeps_shards_apart() {
        assert!(is_segment_name("seg-00000000000000000000.vrj", "seg-"));
        assert!(is_segment_name("seg-3-00000000000000000042.vrj", "seg-3-"));
        // An unsharded scan must not swallow shard segments…
        assert!(!is_segment_name("seg-3-00000000000000000042.vrj", "seg-"));
        // …and a shard-0 scan must not swallow unsharded ones.
        assert!(!is_segment_name("seg-00000000000000000000.vrj", "seg-0-"));
        assert!(!is_segment_name("seg-0000000000000000000.vrj", "seg-"));
        assert!(!is_segment_name("seg-00000000000000000000.tmp", "seg-"));
        // Quarantined evidence is never re-indexed.
        assert!(!is_segment_name(
            "seg-00000000000000000000.vrj.quarantine",
            "seg-"
        ));
    }

    #[test]
    fn sharded_journals_rotate_and_reopen_independently() {
        let dir = temp_dir("sharded");
        let mk = |shard: u32| {
            JournalConfig::new(&dir)
                .with_segment_records(4)
                .with_shard(shard)
        };
        {
            let a = EventJournal::open(mk(0)).unwrap();
            let b = EventJournal::open(mk(1)).unwrap();
            for seed in 0..10u64 {
                a.append(record(seed)).unwrap();
            }
            b.append(record(99)).unwrap();
            a.flush().unwrap();
            b.flush().unwrap();
        }
        let a = EventJournal::open(mk(0)).unwrap();
        let b = EventJournal::open(mk(1)).unwrap();
        assert_eq!(a.tail_sequence(), 10);
        assert_eq!(b.tail_sequence(), 1);
        let (_, records) = a.read_from(0, usize::MAX).unwrap();
        assert_eq!(records, (0..10).map(record).collect::<Vec<_>>());
        // Retention on shard 0 never deletes shard 1's files.
        a.set_anchor(10);
        assert_eq!(b.tail_sequence(), 1);
        let (_, survivor) = b.read_from(0, usize::MAX).unwrap();
        assert_eq!(survivor, vec![record(99)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_log_style_single_segment_round_trip() {
        // The record-replay log encodes itself as one segment with
        // first_seq 0; make sure that shape round-trips here too.
        let records: Vec<JournalRecord> = (0..12).map(record).collect();
        let bytes = encode_segment(0, &records);
        let (first, decoded) = decode_segment(&bytes).unwrap();
        assert_eq!(first, 0);
        assert_eq!(decoded, records);
    }
}
