//! Cache-padded monotonic sequence counters.
//!
//! The Disruptor pattern coordinates producers and consumers exclusively
//! through monotonically increasing sequence numbers.  Each counter lives on
//! its own cache line to avoid false sharing between the leader (producer)
//! and follower (consumer) threads, mirroring the cache-aligned layout used by
//! the original VARAN implementation (§3.3.1).

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

/// Sentinel value meaning "this sequence is not (yet/any longer) in use".
///
/// Consumer slots start at this value and return to it when a follower is
/// discarded (e.g. after it crashes, §5.1) so that it no longer gates the
/// producer.
pub(crate) const SEQUENCE_INITIAL: u64 = u64::MAX;

/// A cache-padded, monotonically increasing sequence counter.
///
/// Sequences start at [`u64::MAX`] (conceptually "-1") so that the first
/// published slot is sequence `0`, matching the LMAX Disruptor convention.
///
/// # Examples
///
/// ```
/// use varan_ring::Sequence;
///
/// let seq = Sequence::new();
/// assert_eq!(seq.get(), u64::MAX);
/// seq.set(5);
/// assert_eq!(seq.get(), 5);
/// ```
#[derive(Debug)]
pub struct Sequence {
    value: CachePadded<AtomicU64>,
}

impl Default for Sequence {
    fn default() -> Self {
        Self::new()
    }
}

impl Sequence {
    /// Creates a sequence initialised to the pre-first value ([`u64::MAX`]).
    #[must_use]
    pub fn new() -> Self {
        Sequence {
            value: CachePadded::new(AtomicU64::new(SEQUENCE_INITIAL)),
        }
    }

    /// Creates a sequence initialised to `value`.
    #[must_use]
    pub fn with_value(value: u64) -> Self {
        Sequence {
            value: CachePadded::new(AtomicU64::new(value)),
        }
    }

    /// Reads the current value with acquire ordering.
    #[must_use]
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// Publishes `value` with release ordering.
    #[inline]
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Release);
    }

    /// Returns `true` if the sequence is at its pre-first/retired value.
    #[must_use]
    #[inline]
    pub fn is_initial(&self) -> bool {
        self.get() == SEQUENCE_INITIAL
    }

    /// Number of slots published so far (`0` when nothing has been published).
    #[must_use]
    #[inline]
    pub fn count(&self) -> u64 {
        let v = self.get();
        if v == SEQUENCE_INITIAL {
            0
        } else {
            v + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_initial() {
        let seq = Sequence::new();
        assert!(seq.is_initial());
        assert_eq!(seq.count(), 0);
    }

    #[test]
    fn set_and_get_round_trip() {
        let seq = Sequence::with_value(41);
        assert_eq!(seq.get(), 41);
        seq.set(42);
        assert_eq!(seq.get(), 42);
        assert_eq!(seq.count(), 43);
        assert!(!seq.is_initial());
    }

    #[test]
    fn occupies_distinct_cache_lines() {
        // CachePadded guarantees at least 64-byte alignment on x86-64.
        assert!(std::mem::size_of::<Sequence>() >= 64);
    }
}
