//! Software CRC32C (Castagnoli, polynomial `0x1EDC6F41`, reflected
//! `0x82F63B78`) — the checksum guarding every journal frame.
//!
//! The journal's durability story (docs/DURABILITY.md) needs a checksum
//! that is cheap on the leader's spill path, has good burst-error
//! detection, and matches a widely deployed standard so on-disk segments
//! remain checkable by external tooling.  CRC32C is what iSCSI, ext4 and
//! Btrfs settled on for the same job.  The vendored dependency set carries
//! no CRC crate, so this is the classic byte-at-a-time table
//! implementation; the table is built in a `const fn` at compile time and
//! the whole module is safe code.  At journal frame sizes (tens to
//! hundreds of bytes) the table walk is far below the cost of the buffered
//! file write it protects — `BENCH_ring.json` tracks the measured spill
//! overhead (`spill_crc_append_per_sec` vs `spill_nocrc_append_per_sec`).

/// Reflected CRC32C (Castagnoli) polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC32C of `bytes`, with the standard init (`!0`) and final xor (`!0`).
///
/// Matches the value every other CRC32C implementation (iSCSI, SSE4.2
/// `crc32` instruction, the `crc32c` crates) produces for the same input.
#[must_use]
pub fn crc32c(bytes: &[u8]) -> u32 {
    !extend(!0, bytes)
}

/// Streams more `bytes` into an in-progress CRC state.
///
/// The state is the *raw* (pre-final-xor) register: start from `!0`, call
/// `extend` per chunk, and finish with a final `!state`.  [`crc32c`] is the
/// one-shot composition of exactly that.
#[must_use]
pub fn extend(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &byte in bytes {
        crc = TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_check_value() {
        // The standard CRC catalogue check value for CRC-32C("123456789").
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let state = extend(!0, &data[..split]);
            let state = extend(state, &data[split..]);
            assert_eq!(!state, crc32c(data));
        }
    }

    #[test]
    fn single_bit_flips_always_change_the_crc() {
        let data = vec![0xA5u8; 64];
        let base = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
