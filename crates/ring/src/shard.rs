//! The sharded data plane: N independent ring+pool+journal lanes.
//!
//! Varan's original design (and this reproduction's PR 1–5 layers) funnels
//! every event through **one** shared ring, so every follower contends on a
//! single gating sequence and aggregate throughput stops scaling the moment
//! a second consumer appears (BENCH_ring.json: 46.1M events/s with one
//! follower, 28.7M with three).  A [`ShardSet`] removes that ceiling by
//! partitioning the event stream into `N` fully independent shards — each
//! with its own ring buffer (own leader cursor, own gating sequences), its
//! own payload pool, and its own journal (own `seg-<shard>-*.vrj` segment
//! files and own retention anchor).  Nothing on the hot path is shared
//! between shards: a leader publishing into shard 2 never touches a cache
//! line a shard-0 consumer reads.
//!
//! # Keying
//!
//! Events are keyed to shards **by connection/file descriptor at capture
//! time** ([`shard_for_key`]): every syscall naming descriptor `fd` in its
//! first argument register maps to `shard_for_key(fd, N)`; syscalls that
//! name no descriptor (time, getpid, exit, …) key to shard 0, the control
//! shard.  Keying off the *request* (not the result) means the leader and
//! every follower compute the same shard for the same program point without
//! any extra coordination — followers allocate descriptors deterministically
//! (lowest-free, same as the leader), so the same fd stream lands on the
//! same shard in every version.  `varan-kernel`'s `connection_key` extracts
//! the key; this module turns keys into shard indices.
//!
//! # Consistent cuts
//!
//! With one journal, a checkpoint is one sequence number.  With a shard set
//! it is a **cut vector**: one sequence per shard ([`ShardSet::consistent_cut`]).
//! No cross-shard barrier is needed to take one — each shard's journal is
//! appended *before* its ring publish (the PR-3 invariant, per shard), so a
//! cut component read before the kernel snapshot can only under-estimate
//! that shard's tail, never over-estimate it, and per-shard replay from the
//! cut is race-free exactly as single-ring replay was.  Retention is
//! per-shard as well ([`ShardSet::set_anchors`]): an idle shard's anchor
//! follows its own tail instead of being pinned by a busy shard's oldest
//! checkpoint.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use crate::error::RingError;
use crate::event::Event;
use crate::journal::{EventJournal, JournalConfig, JournalError};
use crate::ring::{Consumer, Producer, RingBuffer, WaitStrategy};
use crate::shmem::{PoolAllocator, PoolConfig};

/// Maps a connection/descriptor key to a shard index, deterministically.
///
/// A Fibonacci-style multiplicative mix spreads consecutive descriptor
/// numbers (the common case: a server accepting fds 4, 5, 6, …) across the
/// whole shard space before the modulo, so neighbouring connections land on
/// different shards.  The function is pure: the same `(key, shards)` pair
/// yields the same index in every process, every version, every run — the
/// property the follower replay path and the checkpoint/restore round-trip
/// both rely on.
#[must_use]
pub fn shard_for_key(key: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    // splitmix64-style finalizer: full-avalanche, dependency-free.
    let mut h = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    (h % shards as u64) as usize
}

/// Errors building a [`ShardSet`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ShardError {
    /// A shard's ring buffer could not be created.
    Ring(RingError),
    /// A shard's journal could not be opened.
    Journal(JournalError),
    /// The spec asked for zero shards.
    ZeroShards,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Ring(err) => write!(f, "shard ring: {err}"),
            ShardError::Journal(err) => write!(f, "shard journal: {err}"),
            ShardError::ZeroShards => f.write_str("shard set needs at least one shard"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<RingError> for ShardError {
    fn from(err: RingError) -> Self {
        ShardError::Ring(err)
    }
}

impl From<JournalError> for ShardError {
    fn from(err: JournalError) -> Self {
        ShardError::Journal(err)
    }
}

/// Configuration of a [`ShardSet`].
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Number of independent shards (rings/pools/journals).
    pub shards: usize,
    /// Ring capacity per shard, in events (power of two).
    pub ring_capacity: usize,
    /// Consumer slots per shard ring (one per prospective member).
    pub consumers: usize,
    /// Wait strategy for every shard ring.
    pub wait: WaitStrategy,
    /// Payload-pool configuration per shard.
    pub pool: PoolConfig,
    /// Directory for the shard journals (`seg-<shard>-*.vrj` files, all in
    /// one directory); `None` disables journaling (no joiner catch-up).
    pub journal_dir: Option<PathBuf>,
    /// Records per journal segment before rotation.
    pub segment_records: usize,
}

impl ShardSpec {
    /// A spec with `shards` shards and the paper's defaults elsewhere.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        ShardSpec {
            shards,
            ring_capacity: 256,
            consumers: 4,
            wait: WaitStrategy::Yield,
            pool: PoolConfig::default(),
            journal_dir: None,
            segment_records: 4096,
        }
    }

    /// Overrides the per-shard ring capacity.
    #[must_use]
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Overrides the per-shard consumer slot count.
    #[must_use]
    pub fn with_consumers(mut self, consumers: usize) -> Self {
        self.consumers = consumers;
        self
    }

    /// Enables journaling rooted at `dir`.
    #[must_use]
    pub fn with_journal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Overrides the journal segment rotation threshold.
    #[must_use]
    pub fn with_segment_records(mut self, records: usize) -> Self {
        self.segment_records = records.max(1);
        self
    }

    /// Overrides the wait strategy.
    #[must_use]
    pub fn with_wait(mut self, wait: WaitStrategy) -> Self {
        self.wait = wait;
        self
    }
}

/// One shard: an independent ring + payload pool + optional journal lane.
pub struct Shard {
    index: usize,
    ring: Arc<RingBuffer<Event>>,
    pool: Arc<PoolAllocator>,
    journal: Option<Arc<EventJournal>>,
}

impl fmt::Debug for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shard")
            .field("index", &self.index)
            .field("published", &self.ring.published())
            .field("journaled", &self.journal.is_some())
            .finish()
    }
}

impl Shard {
    /// This shard's index within the set.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// This shard's ring buffer.
    #[must_use]
    pub fn ring(&self) -> &Arc<RingBuffer<Event>> {
        &self.ring
    }

    /// This shard's payload pool.
    #[must_use]
    pub fn pool(&self) -> &Arc<PoolAllocator> {
        &self.pool
    }

    /// This shard's journal, if the set was built with one.
    #[must_use]
    pub fn journal(&self) -> Option<&Arc<EventJournal>> {
        self.journal.as_ref()
    }

    /// Events published into this shard so far (the shard's leader cursor).
    #[must_use]
    pub fn published(&self) -> u64 {
        self.ring.published()
    }
}

/// `N` independent ring+pool+journal shards, addressed by key.
///
/// See the [module docs](self) for the keying and consistent-cut story.
pub struct ShardSet {
    shards: Vec<Shard>,
}

impl fmt::Debug for ShardSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardSet")
            .field("shards", &self.shards.len())
            .field("published", &self.published_vector())
            .finish()
    }
}

impl ShardSet {
    /// Builds the shard set described by `spec`.
    ///
    /// Each shard gets its own ring, pool and (if `spec.journal_dir` is set)
    /// its own journal writing `seg-<shard>-*.vrj` segments; all journals
    /// share one directory but never one file or one anchor.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] for a zero-shard spec, an invalid ring
    /// capacity, or a journal directory that cannot be opened.
    pub fn new(spec: &ShardSpec) -> Result<Self, ShardError> {
        if spec.shards == 0 {
            return Err(ShardError::ZeroShards);
        }
        let mut shards = Vec::with_capacity(spec.shards);
        for index in 0..spec.shards {
            let ring = Arc::new(RingBuffer::new(
                spec.ring_capacity,
                spec.consumers,
                spec.wait,
            )?);
            let pool = Arc::new(PoolAllocator::new(spec.pool.clone()));
            let journal = match &spec.journal_dir {
                Some(dir) => {
                    let config = JournalConfig::new(dir)
                        .with_segment_records(spec.segment_records)
                        .with_shard(index as u32);
                    Some(Arc::new(EventJournal::open(config)?))
                }
                None => None,
            };
            shards.push(Shard {
                index,
                ring,
                pool,
                journal,
            });
        }
        Ok(ShardSet { shards })
    }

    /// Number of shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True only for an (unconstructible) empty set; kept for API hygiene.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Shard `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn shard(&self, index: usize) -> &Shard {
        &self.shards[index]
    }

    /// Iterates the shards in index order.
    pub fn iter(&self) -> impl Iterator<Item = &Shard> {
        self.shards.iter()
    }

    /// The shard index a key maps to.
    #[must_use]
    pub fn shard_index_for(&self, key: u64) -> usize {
        shard_for_key(key, self.shards.len())
    }

    /// The shard a key maps to.
    #[must_use]
    pub fn shard_for(&self, key: u64) -> &Shard {
        &self.shards[self.shard_index_for(key)]
    }

    /// One producer handle per shard, in index order.
    #[must_use]
    pub fn producers(&self) -> Vec<Producer<Event>> {
        self.shards.iter().map(|s| s.ring.producer()).collect()
    }

    /// Claims consumer slot `slot` on **every** shard, in index order — one
    /// member's view of the whole set.
    ///
    /// # Errors
    ///
    /// Returns [`RingError`] if the slot is out of range or already claimed
    /// on any shard (claims made before the failure are not rolled back;
    /// callers treat this as fatal for the member).
    pub fn claim_slot(&self, slot: usize) -> Result<Vec<Consumer<Event>>, RingError> {
        self.shards.iter().map(|s| s.ring.consumer(slot)).collect()
    }

    /// Per-shard published counts, in index order.
    #[must_use]
    pub fn published_vector(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.ring.published()).collect()
    }

    /// Sum of events published across all shards.
    #[must_use]
    pub fn total_published(&self) -> u64 {
        self.shards.iter().map(|s| s.ring.published()).sum()
    }

    /// Takes a consistent cut: each shard's journal tail (or ring cursor if
    /// the set is unjournaled), in index order.  Components are read without
    /// a cross-shard barrier — see the [module docs](self) for why per-shard
    /// journal-before-publish makes that safe.
    #[must_use]
    pub fn consistent_cut(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| match &s.journal {
                Some(journal) => journal.tail_sequence(),
                None => s.ring.published(),
            })
            .collect()
    }

    /// Moves each shard's retention anchor to the matching component of
    /// `cut` (missing components leave that shard untouched).  Anchors never
    /// move backwards; each shard deletes only its *own* dead segments, so
    /// an idle shard can retire history even while a busy shard's oldest
    /// checkpoint pins that busy shard's segments.
    pub fn set_anchors(&self, cut: &[u64]) {
        for (shard, &anchor) in self.shards.iter().zip(cut) {
            if let Some(journal) = &shard.journal {
                journal.set_anchor(anchor);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("varan-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keying_is_deterministic_and_in_range() {
        for shards in 1..=8usize {
            for key in 0..512u64 {
                let a = shard_for_key(key, shards);
                let b = shard_for_key(key, shards);
                assert_eq!(a, b);
                assert!(a < shards);
            }
        }
        // Single shard degenerates to the unsharded data plane.
        assert_eq!(shard_for_key(u64::MAX, 1), 0);
    }

    #[test]
    fn consecutive_descriptors_spread_across_shards() {
        // A server's accepted fds are consecutive integers; they must not
        // all pile onto one shard.
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for fd in 4..68u64 {
            counts[shard_for_key(fd, shards)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(min > 0, "some shard got no connections: {counts:?}");
        assert!(
            max <= min * 4,
            "descriptor keying badly imbalanced: {counts:?}"
        );
    }

    #[test]
    fn shard_set_builds_independent_lanes() {
        let dir = temp_dir("lanes");
        let spec = ShardSpec::new(4)
            .with_ring_capacity(64)
            .with_consumers(2)
            .with_journal_dir(&dir)
            .with_segment_records(8);
        let set = ShardSet::new(&spec).unwrap();
        assert_eq!(set.len(), 4);

        let producers = set.producers();
        for (i, producer) in producers.iter().enumerate() {
            for k in 0..(i as u64 + 1) {
                producer.publish(Event::checkpoint(k));
            }
        }
        assert_eq!(set.published_vector(), vec![1, 2, 3, 4]);
        assert_eq!(set.total_published(), 10);

        // Each member claims the same slot index on every shard.
        let consumers = set.claim_slot(0).unwrap();
        assert_eq!(consumers.len(), 4);
        // Claiming the same slot twice fails on the first shard.
        assert!(set.claim_slot(0).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_journals_share_a_directory_but_not_segments() {
        let dir = temp_dir("segfiles");
        let spec = ShardSpec::new(2)
            .with_ring_capacity(16)
            .with_journal_dir(&dir)
            .with_segment_records(2);
        let set = ShardSet::new(&spec).unwrap();
        use crate::journal::JournalRecord;
        let record = JournalRecord::default();
        for _ in 0..5 {
            set.shard(0).journal().unwrap().append(record.clone()).unwrap();
        }
        set.shard(1).journal().unwrap().append(record.clone()).unwrap();
        for shard in set.iter() {
            shard.journal().unwrap().flush().unwrap();
        }
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.iter().any(|n| n.starts_with("seg-0-")), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("seg-1-")), "{names:?}");

        // Reopening sees only the owning shard's segments.
        drop(set);
        let set = ShardSet::new(&spec).unwrap();
        assert_eq!(set.shard(0).journal().unwrap().tail_sequence(), 5);
        assert_eq!(set.shard(1).journal().unwrap().tail_sequence(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_shard_anchors_do_not_pin_each_other() {
        let dir = temp_dir("anchors");
        let spec = ShardSpec::new(2)
            .with_ring_capacity(16)
            .with_journal_dir(&dir)
            .with_segment_records(2);
        let set = ShardSet::new(&spec).unwrap();
        use crate::journal::JournalRecord;
        let record = JournalRecord::default();
        // Shard 0 is busy (10 records), shard 1 idle (1 record).
        for _ in 0..10 {
            set.shard(0).journal().unwrap().append(record.clone()).unwrap();
        }
        set.shard(1).journal().unwrap().append(record.clone()).unwrap();

        // A checkpoint whose cut holds shard 0 at 2 (an old observer) must
        // not stop shard 1 retiring up to its own tail — and vice versa.
        set.set_anchors(&[2, 1]);
        assert_eq!(set.shard(0).journal().unwrap().oldest_sequence(), 2);
        assert_eq!(set.shard(0).journal().unwrap().anchor(), 2);
        assert_eq!(set.shard(1).journal().unwrap().anchor(), 1);

        // Advancing only shard 0's component later releases its segments
        // without consulting shard 1.
        set.set_anchors(&[10]);
        assert_eq!(set.shard(0).journal().unwrap().oldest_sequence(), 10);
        assert_eq!(set.shard(1).journal().unwrap().anchor(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn consistent_cut_tracks_journal_tails() {
        let dir = temp_dir("cut");
        let spec = ShardSpec::new(3)
            .with_ring_capacity(16)
            .with_journal_dir(&dir);
        let set = ShardSet::new(&spec).unwrap();
        use crate::journal::JournalRecord;
        let record = JournalRecord::default();
        set.shard(1).journal().unwrap().append(record.clone()).unwrap();
        set.shard(1).journal().unwrap().append(record.clone()).unwrap();
        set.shard(2).journal().unwrap().append(record).unwrap();
        assert_eq!(set.consistent_cut(), vec![0, 2, 1]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
