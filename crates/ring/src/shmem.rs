//! Bucketed shared-memory pool allocator (§3.3.4).
//!
//! System-call payloads that do not fit into a 64-byte event (e.g. the buffer
//! returned by `read`) are copied into a shared memory pool and referenced
//! from the event by a [`SharedPtr`].  The allocator has the notion of
//! *buckets* for different allocation sizes; each bucket holds a list of
//! *segments*, each segment is divided into equally sized *chunks*, and each
//! bucket keeps a free list of chunks.  A lock is associated with each bucket
//! and held only during allocation and deallocation, matching the paper's
//! locking discipline ("locks are used only during memory allocation and
//! deallocation").
//!
//! In the original system the pool lives in a POSIX shared-memory segment; in
//! this reproduction it is a heap arena shared between the leader and follower
//! threads, addressed by the same offset-based shared pointers.
//!
//! The read path is kept hot-path-clean: segments are bump-allocated so the
//! directory is base-sorted and [`PoolAllocator::read_into`] /
//! [`PoolAllocator::read_with`] resolve a shared pointer with one O(log n)
//! binary search and copy into a caller-owned buffer (or borrow in place)
//! without allocating.  Double frees are detected in O(1) via a mirror set of
//! each bucket's free list.

use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, RwLock};

use crate::error::RingError;
use crate::event::SharedPtr;

/// Offset reserved at the start of the arena so that a valid region never has
/// offset zero (offset zero is the [`SharedPtr::NULL`] sentinel).
const ARENA_BASE: u32 = 64;

/// Sentinel for "poison-on-free disabled" (any value above `u8::MAX`).
const POISON_DISABLED: u64 = u64::MAX;

/// Configuration for a [`PoolAllocator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolConfig {
    /// Maximum total bytes the pool may hand out (across all segments).
    pub pool_size: usize,
    /// Chunk sizes of the buckets, in ascending order.
    pub bucket_sizes: Vec<usize>,
    /// Number of chunks carved out of each new segment.
    pub chunks_per_segment: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            // 16 MiB default pool, mirroring a modest shm segment.
            pool_size: 16 * 1024 * 1024,
            bucket_sizes: vec![64, 256, 1024, 4096, 16384, 65536],
            chunks_per_segment: 16,
        }
    }
}

/// A chunk handed out by the pool.
///
/// The region remembers the number of bytes requested (`len`), which may be
/// smaller than the underlying chunk.  Convert it to a [`SharedPtr`] with
/// [`SharedRegion::ptr`] to embed it into an [`crate::Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SharedRegion {
    ptr: SharedPtr,
    bucket: usize,
}

impl SharedRegion {
    /// The shared pointer identifying this region inside the pool.
    #[must_use]
    pub fn ptr(&self) -> SharedPtr {
        self.ptr
    }

    /// Number of bytes requested when the region was allocated.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ptr.len() as usize
    }

    /// Returns `true` if the requested length was zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ptr.len() == 0
    }
}

/// Counters exposed for tests and the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Chunks currently allocated (not yet freed).
    pub live_chunks: u64,
    /// Total allocations performed.
    pub total_allocs: u64,
    /// Total frees performed.
    pub total_frees: u64,
    /// Segments carved so far.
    pub segments: u64,
    /// Bytes of arena capacity consumed by segments.
    pub arena_bytes: u64,
}

/// Free chunks of one bucket: a LIFO stack for O(1) alloc plus a mirror set
/// for O(1) double-free detection (`free.contains` on the stack was O(n)).
#[derive(Debug, Default)]
struct FreeList {
    stack: Vec<u32>,
    members: HashSet<u32>,
}

impl FreeList {
    fn pop(&mut self) -> Option<u32> {
        let offset = self.stack.pop()?;
        self.members.remove(&offset);
        Some(offset)
    }

    /// Pushes `offset`; returns `false` (without pushing) if it was already
    /// free.
    fn push(&mut self, offset: u32) -> bool {
        if !self.members.insert(offset) {
            return false;
        }
        self.stack.push(offset);
        true
    }

    fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

#[derive(Debug)]
struct Bucket {
    chunk_size: usize,
    /// Free chunks (global arena offsets). Guarded by the per-bucket lock.
    free: Mutex<FreeList>,
}

#[derive(Debug, Default)]
struct Segment {
    /// Global offset of the first byte of this segment.
    base: u32,
    /// Segment length in bytes, fixed at creation (kept outside the data
    /// lock so `locate` never has to lock the payload bytes).
    len: u32,
    data: RwLock<Vec<u8>>,
}

/// The bucketed shared-memory pool allocator.
///
/// # Examples
///
/// ```
/// use varan_ring::{PoolAllocator, PoolConfig};
///
/// # fn main() -> Result<(), varan_ring::RingError> {
/// let pool = PoolAllocator::new(PoolConfig::default());
/// let region = pool.alloc_and_write(b"response body")?;
/// assert_eq!(pool.read(region.ptr()), b"response body");
/// pool.free(region)?;
/// # Ok(())
/// # }
/// ```
pub struct PoolAllocator {
    config: PoolConfig,
    buckets: Vec<Bucket>,
    /// Segment directory, append-only. Guarded by `grow_lock` for writers.
    segments: RwLock<Vec<Segment>>,
    grow_lock: Mutex<()>,
    next_offset: AtomicU64,
    live_chunks: AtomicU64,
    total_allocs: AtomicU64,
    total_frees: AtomicU64,
    /// Poison byte written over every freed chunk, or a sentinel above
    /// `u8::MAX` when disabled (the default).  Test-oriented: makes
    /// use-after-free of a pool region observable as poisoned payload bytes
    /// instead of silently stale data ([`PoolAllocator::set_poison_on_free`]).
    poison: AtomicU64,
}

impl fmt::Debug for PoolAllocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolAllocator")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for PoolAllocator {
    fn default() -> Self {
        Self::new(PoolConfig::default())
    }
}

impl PoolAllocator {
    /// Creates a pool with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.bucket_sizes` is empty or not strictly ascending, or
    /// if `chunks_per_segment` is zero; these are programming errors in the
    /// embedding code rather than runtime conditions.
    #[must_use]
    pub fn new(config: PoolConfig) -> Self {
        assert!(
            !config.bucket_sizes.is_empty(),
            "pool must have at least one bucket"
        );
        assert!(
            config
                .bucket_sizes
                .windows(2)
                .all(|pair| pair[0] < pair[1]),
            "bucket sizes must be strictly ascending"
        );
        assert!(config.chunks_per_segment > 0, "segments must hold chunks");
        let buckets = config
            .bucket_sizes
            .iter()
            .map(|&chunk_size| Bucket {
                chunk_size,
                free: Mutex::new(FreeList::default()),
            })
            .collect();
        PoolAllocator {
            config,
            buckets,
            segments: RwLock::new(Vec::new()),
            grow_lock: Mutex::new(()),
            next_offset: AtomicU64::new(u64::from(ARENA_BASE)),
            live_chunks: AtomicU64::new(0),
            total_allocs: AtomicU64::new(0),
            total_frees: AtomicU64::new(0),
            poison: AtomicU64::new(POISON_DISABLED),
        }
    }

    /// Enables (`Some(byte)`) or disables (`None`) poisoning of freed
    /// chunks: while enabled, [`PoolAllocator::free`] overwrites the whole
    /// chunk with `byte` before returning it to the free list, so any
    /// reader still holding the region's [`SharedPtr`] observes poison
    /// instead of silently stale bytes.  Disabled by default — the free
    /// path stays O(1); this is a test facility for use-after-free hunting
    /// (the lap-reclamation property tests in `crates/ring/tests/`).
    pub fn set_poison_on_free(&self, byte: Option<u8>) {
        let value = byte.map_or(POISON_DISABLED, u64::from);
        self.poison.store(value, Ordering::Relaxed);
    }

    /// The configuration this pool was created with.
    #[must_use]
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Allocation statistics.
    #[must_use]
    pub fn stats(&self) -> AllocStats {
        let segments = self.segments.read();
        AllocStats {
            live_chunks: self.live_chunks.load(Ordering::Relaxed),
            total_allocs: self.total_allocs.load(Ordering::Relaxed),
            total_frees: self.total_frees.load(Ordering::Relaxed),
            segments: segments.len() as u64,
            arena_bytes: self.next_offset.load(Ordering::Relaxed) - u64::from(ARENA_BASE),
        }
    }

    fn bucket_for(&self, len: usize) -> Result<usize, RingError> {
        self.config
            .bucket_sizes
            .iter()
            .position(|&size| size >= len)
            .ok_or(RingError::AllocationTooLarge {
                requested: len,
                max_chunk: *self.config.bucket_sizes.last().expect("non-empty"),
            })
    }

    /// Allocates a region of at least `len` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::AllocationTooLarge`] if `len` exceeds the largest
    /// bucket chunk size and [`RingError::OutOfSharedMemory`] if the pool is
    /// exhausted.
    pub fn alloc(&self, len: usize) -> Result<SharedRegion, RingError> {
        let bucket_index = self.bucket_for(len)?;
        let bucket = &self.buckets[bucket_index];
        let offset = {
            let mut free = bucket.free.lock();
            match free.pop() {
                Some(offset) => offset,
                None => {
                    drop(free);
                    self.grow_bucket(bucket_index)?;
                    bucket
                        .free
                        .lock()
                        .pop()
                        .expect("grow_bucket must add chunks to the free list")
                }
            }
        };
        self.live_chunks.fetch_add(1, Ordering::Relaxed);
        self.total_allocs.fetch_add(1, Ordering::Relaxed);
        Ok(SharedRegion {
            ptr: SharedPtr::new(offset, len as u32),
            bucket: bucket_index,
        })
    }

    /// Allocates a region and copies `data` into it.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`PoolAllocator::alloc`].
    pub fn alloc_and_write(&self, data: &[u8]) -> Result<SharedRegion, RingError> {
        let region = self.alloc(data.len())?;
        self.write(region.ptr(), data);
        Ok(region)
    }

    /// Carves a new segment for `bucket_index`, adding its chunks to the free
    /// list.
    fn grow_bucket(&self, bucket_index: usize) -> Result<(), RingError> {
        let _guard = self.grow_lock.lock();
        let bucket = &self.buckets[bucket_index];
        // Another thread may have grown the bucket while we waited.
        if !bucket.free.lock().is_empty() {
            return Ok(());
        }
        let chunk_size = bucket.chunk_size;
        let segment_bytes = chunk_size * self.config.chunks_per_segment;
        let used = self.next_offset.load(Ordering::Relaxed) - u64::from(ARENA_BASE);
        if used + segment_bytes as u64 > self.config.pool_size as u64 {
            return Err(RingError::OutOfSharedMemory {
                requested: segment_bytes,
                available: self.config.pool_size.saturating_sub(used as usize),
            });
        }
        let base = self
            .next_offset
            .fetch_add(segment_bytes as u64, Ordering::Relaxed) as u32;
        let segment = Segment {
            base,
            len: segment_bytes as u32,
            data: RwLock::new(vec![0u8; segment_bytes]),
        };
        self.segments.write().push(segment);
        let mut free = bucket.free.lock();
        for chunk in 0..self.config.chunks_per_segment {
            free.push(base + (chunk * chunk_size) as u32);
        }
        Ok(())
    }

    /// Maps a global arena offset to `(segment index, offset inside it)`.
    ///
    /// Segments are bump-allocated under the grow lock, so the directory is
    /// append-only and base-sorted: a binary search finds the owning segment
    /// in O(log n) instead of scanning (and locking) every segment.
    fn locate(&self, offset: u32) -> Option<(usize, usize)> {
        let segments = self.segments.read();
        let index = segments
            .partition_point(|segment| segment.base <= offset)
            .checked_sub(1)?;
        let segment = &segments[index];
        if offset < segment.base + segment.len {
            Some((index, (offset - segment.base) as usize))
        } else {
            None
        }
    }

    /// Copies `data` into the region identified by `ptr`.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` does not identify a region inside this pool or if
    /// `data` is longer than the region, both of which indicate corruption of
    /// the event stream.
    pub fn write(&self, ptr: SharedPtr, data: &[u8]) {
        assert!(
            data.len() <= ptr.len() as usize,
            "payload of {} bytes does not fit region of {} bytes",
            data.len(),
            ptr.len()
        );
        let (segment_index, local) = self
            .locate(ptr.offset())
            .expect("shared pointer does not belong to this pool");
        let segments = self.segments.read();
        let mut segment = segments[segment_index].data.write();
        segment[local..local + data.len()].copy_from_slice(data);
    }

    /// Reads the full contents of the region identified by `ptr`.
    ///
    /// Allocates a fresh `Vec` per call; hot paths should prefer
    /// [`PoolAllocator::read_into`] (reused buffer) or
    /// [`PoolAllocator::read_with`] (borrow, no copy).
    ///
    /// # Panics
    ///
    /// Panics if `ptr` does not identify a region inside this pool.
    #[must_use]
    pub fn read(&self, ptr: SharedPtr) -> Vec<u8> {
        let mut buf = Vec::with_capacity(ptr.len() as usize);
        self.read_into(ptr, &mut buf);
        buf
    }

    /// Copies the region identified by `ptr` into `buf`, reusing its
    /// capacity (the buffer is cleared first), and returns the number of
    /// bytes copied.
    ///
    /// After the buffer has grown to the largest payload size this performs
    /// zero heap allocations per read, unlike [`PoolAllocator::read`].
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is non-null and does not identify a region inside
    /// this pool.
    pub fn read_into(&self, ptr: SharedPtr, buf: &mut Vec<u8>) -> usize {
        buf.clear();
        if ptr.is_null() {
            return 0;
        }
        self.read_with(ptr, |bytes| buf.extend_from_slice(bytes));
        ptr.len() as usize
    }

    /// Calls `f` with the region's bytes borrowed in place — a zero-copy
    /// read for callers that only inspect the payload.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is non-null and does not identify a region inside
    /// this pool.
    pub fn read_with<R>(&self, ptr: SharedPtr, f: impl FnOnce(&[u8]) -> R) -> R {
        if ptr.is_null() {
            return f(&[]);
        }
        let (segment_index, local) = self
            .locate(ptr.offset())
            .expect("shared pointer does not belong to this pool");
        let segments = self.segments.read();
        let segment = segments[segment_index].data.read();
        f(&segment[local..local + ptr.len() as usize])
    }

    /// Returns a region's chunk to its bucket's free list.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::ForeignRegion`] if the region does not belong to
    /// this pool and [`RingError::DoubleFree`] if the chunk is already free.
    pub fn free(&self, region: SharedRegion) -> Result<(), RingError> {
        if self.locate(region.ptr().offset()).is_none() {
            return Err(RingError::ForeignRegion);
        }
        let bucket = self
            .buckets
            .get(region.bucket)
            .ok_or(RingError::ForeignRegion)?;
        let poison = self.poison.load(Ordering::Relaxed);
        if poison <= u64::from(u8::MAX) {
            // Overwrite the *whole* chunk (not just the requested length) so
            // any stale SharedPtr into it — whatever its length — reads
            // poison.  Done before the chunk re-enters the free list: a
            // racing re-allocation can only overwrite poison, never the
            // other way around.
            let chunk = vec![poison as u8; bucket.chunk_size];
            let (segment_index, local) = self
                .locate(region.ptr().offset())
                .expect("checked above");
            let segments = self.segments.read();
            let mut segment = segments[segment_index].data.write();
            segment[local..local + bucket.chunk_size].copy_from_slice(&chunk);
        }
        let mut free = bucket.free.lock();
        // O(1) membership check via the free list's mirror set (previously a
        // linear `Vec::contains` scan).
        if !free.push(region.ptr().offset()) {
            return Err(RingError::DoubleFree);
        }
        self.live_chunks.fetch_sub(1, Ordering::Relaxed);
        self.total_frees.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_payloads() {
        let pool = PoolAllocator::default();
        let region = pool.alloc_and_write(b"hello world").unwrap();
        assert_eq!(pool.read(region.ptr()), b"hello world");
        assert_eq!(region.len(), 11);
        pool.free(region).unwrap();
    }

    #[test]
    fn reuses_freed_chunks() {
        let pool = PoolAllocator::default();
        let first = pool.alloc(100).unwrap();
        let offset = first.ptr().offset();
        pool.free(first).unwrap();
        let second = pool.alloc(100).unwrap();
        assert_eq!(second.ptr().offset(), offset, "freed chunk should be reused");
        assert_eq!(pool.stats().live_chunks, 1);
    }

    #[test]
    fn different_sizes_use_different_buckets() {
        let pool = PoolAllocator::default();
        let small = pool.alloc(10).unwrap();
        let large = pool.alloc(5000).unwrap();
        assert_ne!(small.bucket, large.bucket);
        pool.free(small).unwrap();
        pool.free(large).unwrap();
    }

    #[test]
    fn rejects_oversized_allocations() {
        let pool = PoolAllocator::default();
        let err = pool.alloc(1 << 20).unwrap_err();
        assert!(matches!(err, RingError::AllocationTooLarge { .. }));
    }

    #[test]
    fn exhausts_pool_gracefully() {
        let pool = PoolAllocator::new(PoolConfig {
            pool_size: 1024,
            bucket_sizes: vec![256],
            chunks_per_segment: 4,
        });
        // One segment of 4 * 256 = 1024 bytes fits; the next does not.
        let regions: Vec<_> = (0..4).map(|_| pool.alloc(200).unwrap()).collect();
        let err = pool.alloc(200).unwrap_err();
        assert!(matches!(err, RingError::OutOfSharedMemory { .. }));
        for region in regions {
            pool.free(region).unwrap();
        }
        // After freeing, chunks are reusable without growing the arena.
        assert!(pool.alloc(200).is_ok());
    }

    #[test]
    fn poison_on_free_overwrites_the_chunk() {
        let pool = PoolAllocator::default();
        pool.set_poison_on_free(Some(0x5a));
        let region = pool.alloc_and_write(b"live payload").unwrap();
        let stale = region.ptr();
        pool.free(region).unwrap();
        // The stale pointer now reads poison, not the old payload.
        assert_eq!(pool.read(stale), vec![0x5a; stale.len() as usize]);
        // Re-allocation overwrites the poison as usual.
        let fresh = pool.alloc_and_write(b"new payload!").unwrap();
        assert_eq!(pool.read(fresh.ptr()), b"new payload!");
        pool.set_poison_on_free(None);
        let offset = fresh.ptr().offset();
        pool.free(fresh).unwrap();
        let reused = pool.alloc(12).unwrap();
        assert_eq!(reused.ptr().offset(), offset);
        // Poison disabled: the old bytes are simply stale, not poisoned.
        assert_eq!(pool.read(reused.ptr()), b"new payload!");
    }

    #[test]
    fn double_free_is_detected() {
        let pool = PoolAllocator::default();
        let region = pool.alloc(32).unwrap();
        pool.free(region).unwrap();
        assert_eq!(pool.free(region).unwrap_err(), RingError::DoubleFree);
    }

    #[test]
    fn zero_length_allocations_are_valid() {
        let pool = PoolAllocator::default();
        let region = pool.alloc_and_write(b"").unwrap();
        assert!(region.is_empty());
        assert!(pool.read(region.ptr()).is_empty());
        pool.free(region).unwrap();
    }

    #[test]
    fn null_pointer_reads_empty() {
        let pool = PoolAllocator::default();
        assert!(pool.read(SharedPtr::NULL).is_empty());
        let mut buf = vec![1, 2, 3];
        assert_eq!(pool.read_into(SharedPtr::NULL, &mut buf), 0);
        assert!(buf.is_empty());
        assert_eq!(pool.read_with(SharedPtr::NULL, <[u8]>::len), 0);
    }

    #[test]
    fn read_into_reuses_buffer_capacity() {
        let pool = PoolAllocator::default();
        let big = pool.alloc_and_write(&[0xaa; 900]).unwrap();
        let small = pool.alloc_and_write(b"tiny").unwrap();
        let mut buf = Vec::new();
        assert_eq!(pool.read_into(big.ptr(), &mut buf), 900);
        assert_eq!(buf, vec![0xaa; 900]);
        let capacity = buf.capacity();
        assert_eq!(pool.read_into(small.ptr(), &mut buf), 4);
        assert_eq!(buf, b"tiny");
        assert_eq!(buf.capacity(), capacity, "read_into must not reallocate");
    }

    #[test]
    fn read_with_borrows_in_place() {
        let pool = PoolAllocator::default();
        let region = pool.alloc_and_write(b"zero copy").unwrap();
        let sum: u64 = pool.read_with(region.ptr(), |bytes| {
            bytes.iter().map(|&b| u64::from(b)).sum()
        });
        assert_eq!(sum, b"zero copy".iter().map(|&b| u64::from(b)).sum());
    }

    #[test]
    fn locate_finds_regions_across_many_segments() {
        // Small segments force many grow calls; the base-sorted binary
        // search must resolve a pointer in every one of them.
        let pool = PoolAllocator::new(PoolConfig {
            pool_size: 1024 * 1024,
            bucket_sizes: vec![32, 128],
            chunks_per_segment: 2,
        });
        let mut regions = Vec::new();
        for i in 0..64u8 {
            let len = if i % 2 == 0 { 20 } else { 100 };
            let payload = vec![i; len];
            regions.push((pool.alloc_and_write(&payload).unwrap(), payload));
        }
        assert!(pool.stats().segments >= 32);
        for (region, payload) in &regions {
            assert_eq!(&pool.read(region.ptr()), payload);
        }
        // Offsets outside every segment are rejected, not misattributed.
        assert!(matches!(
            pool.free(SharedRegion {
                ptr: SharedPtr::new(u32::MAX - 8, 4),
                bucket: 0
            }),
            Err(RingError::ForeignRegion)
        ));
        assert!(matches!(
            pool.free(SharedRegion {
                ptr: SharedPtr::new(1, 4),
                bucket: 0
            }),
            Err(RingError::ForeignRegion)
        ));
    }

    #[test]
    fn offsets_never_collide_across_buckets() {
        let pool = PoolAllocator::default();
        let mut offsets = std::collections::HashSet::new();
        for len in [8usize, 100, 1000, 4000, 16000, 60000, 8, 100] {
            let region = pool.alloc(len).unwrap();
            assert!(
                offsets.insert(region.ptr().offset()),
                "offset collision for len {len}"
            );
        }
    }

    #[test]
    fn concurrent_allocations_are_disjoint() {
        let pool = std::sync::Arc::new(PoolAllocator::default());
        let mut handles = Vec::new();
        for thread in 0..4u8 {
            let pool = std::sync::Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let mut regions = Vec::new();
                for i in 0..50u8 {
                    let payload = vec![thread ^ i; 128];
                    regions.push((pool.alloc_and_write(&payload).unwrap(), payload));
                }
                for (region, payload) in &regions {
                    assert_eq!(&pool.read(region.ptr()), payload);
                }
                for (region, _) in regions {
                    pool.free(region).unwrap();
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.live_chunks, 0);
        assert_eq!(stats.total_allocs, 200);
        assert_eq!(stats.total_frees, 200);
    }
}
