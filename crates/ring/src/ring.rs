//! Disruptor-style shared ring buffer (§3.3.1).
//!
//! The leader publishes events into a fixed-size ring held entirely in memory;
//! each follower consumes the stream at its own pace through a dedicated
//! consumer slot.  The design follows the LMAX Disruptor pattern cited by the
//! paper: a single monotonically increasing publication cursor, one gating
//! sequence per consumer, cache-padded counters, and no locks on the hot path
//! (locks are only used by the optional blocking wait strategy and during
//! allocation, exactly as described in the paper).
//!
//! # Publication ordering: cursor gating vs the seqlock fallback
//!
//! Slot contents are synchronised by **cursor gating**: a producer stores
//! into slot `seq & mask` strictly before its release-store of `seq` into the
//! publication cursor, and a consumer acquire-loads the cursor before reading
//! any slot at or below it.  That acquire/release edge is what makes the slot
//! read well-defined — a consumer never touches a slot the cursor has not
//! vouched for, and a producer never overwrites a slot until every live
//! gating sequence has moved past it (the space check against
//! [`Producer`]'s cached minimum gating sequence).  The per-slot
//! [`AtomicCell`] seqlock is a *fallback* integrity layer on top of that
//! protocol: on the uncontended path its optimistic read succeeds on the
//! first attempt (two atomic loads around a 64-byte copy, no retry), and only
//! if a store to the *same* slot is literally in flight — which cursor gating
//! already makes unreachable for correctly sequenced accesses — does the
//! reader retry instead of ever blocking.  There is no mutex or condvar
//! anywhere on the publish→consume path under [`WaitStrategy::Spin`] and
//! [`WaitStrategy::Yield`]; under [`WaitStrategy::Block`] the condvar mutex
//! is taken only by parties that actually wait, and `notify` skips it
//! entirely while the waiter count is zero.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::atomic::AtomicCell;
use crossbeam::utils::CachePadded;
use parking_lot::{Condvar, Mutex};

use crate::error::RingError;
use crate::sequence::Sequence;

/// How a waiting party (producer waiting for space, consumer waiting for an
/// event) should behave (§3.3.1).
///
/// The paper's followers busy-wait by default and fall back to a futex-based
/// *waitlock* around blocking system calls; both behaviours are available
/// here, plus a cooperative-yield middle ground used in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WaitStrategy {
    /// Busy-wait (spin) until progress is possible. Lowest latency, burns CPU.
    #[default]
    Spin,
    /// Spin but call [`std::thread::yield_now`] between polls.
    Yield,
    /// Block on a condition variable until the other side signals progress.
    Block,
}

/// Aggregate statistics exposed by the ring for the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Total events published since creation.
    pub published: u64,
    /// Number of times the producer had to wait for a slow consumer.
    pub producer_waits: u64,
    /// Number of times any consumer had to wait for the producer.
    pub consumer_waits: u64,
}

struct Shared<T> {
    capacity: usize,
    mask: u64,
    slots: Vec<CachePadded<AtomicCell<T>>>,
    /// Highest published slot (u64::MAX before the first publication).
    cursor: Sequence,
    /// Next slot index to be claimed by a producer.
    claim: CachePadded<AtomicU64>,
    /// Last slot consumed by each follower (u64::MAX before the first).
    consumers: Vec<Sequence>,
    /// Last slot each follower has *finished replaying* (u64::MAX before the
    /// first) — the lap counter gating pool-region reclamation.  Trails the
    /// consumed sequence: a zero-copy follower advances its gate at peek
    /// time but only advances its lap once the batch's pool payloads are no
    /// longer referenced ([`Consumer::advance_lap_to`]).
    laps: Vec<Sequence>,
    /// Whether each consumer slot opted into lap gating
    /// ([`Consumer::enable_lap_gate`]).  Consumers that never replay pool
    /// payloads (observers, benches) stay untracked and bound reclamation
    /// by their consumed sequence instead.
    lap_tracked: Vec<AtomicBool>,
    /// Per-slot replay signatures ([`crate::Event::signature`]-shaped u64s),
    /// stored by the signed publish paths before the cursor commit so any
    /// consumer that can see the slot can also see its signature.
    sigs: Vec<AtomicU64>,
    /// Which consumer slots are live; retired slots no longer gate the producer.
    active: Vec<AtomicBool>,
    claimed: Vec<AtomicBool>,
    strategy: WaitStrategy,
    // Blocking wait support.
    mutex: Mutex<()>,
    condvar: Condvar,
    /// Number of threads currently blocked on the condvar; lets `notify`
    /// skip the mutex entirely when nobody is waiting.
    waiters: AtomicU64,
    // Statistics.
    producer_waits: AtomicU64,
    consumer_waits: AtomicU64,
}

impl<T> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared")
            .field("capacity", &self.capacity)
            .field("cursor", &self.cursor)
            .field("strategy", &self.strategy)
            .finish_non_exhaustive()
    }
}

/// A single-address-space stand-in for VARAN's shared-memory event ring.
///
/// The ring is created with a fixed capacity (a power of two; the paper's
/// default is 256) and a fixed number of consumer slots, one per follower.
/// Producers and consumers are obtained with [`RingBuffer::producer`] and
/// [`RingBuffer::consumer`] and may be moved to other threads.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use varan_ring::{Event, RingBuffer, WaitStrategy};
///
/// # fn main() -> Result<(), varan_ring::RingError> {
/// let ring = Arc::new(RingBuffer::<Event>::new(8, 1, WaitStrategy::Yield)?);
/// let producer = ring.producer();
/// let mut consumer = ring.consumer(0)?;
/// producer.publish(Event::syscall(3, &[1], 0));
/// assert_eq!(consumer.next_blocking().sysno(), 3);
/// # Ok(())
/// # }
/// ```
pub struct RingBuffer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for RingBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RingBuffer")
            .field("capacity", &self.shared.capacity)
            .field("consumers", &self.shared.consumers.len())
            .field("strategy", &self.shared.strategy)
            .finish()
    }
}

impl<T: Copy + Default + Send + 'static> RingBuffer<T> {
    /// Creates a ring with `capacity` slots (must be a non-zero power of two)
    /// and `consumers` follower slots.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::ZeroCapacity`] if `capacity` is zero and
    /// [`RingError::CapacityNotPowerOfTwo`] if it is not a power of two.
    pub fn new(
        capacity: usize,
        consumers: usize,
        strategy: WaitStrategy,
    ) -> Result<Self, RingError> {
        if capacity == 0 {
            return Err(RingError::ZeroCapacity);
        }
        if !capacity.is_power_of_two() {
            return Err(RingError::CapacityNotPowerOfTwo(capacity));
        }
        let slots = (0..capacity)
            .map(|_| CachePadded::new(AtomicCell::new(T::default())))
            .collect();
        let shared = Shared {
            capacity,
            mask: capacity as u64 - 1,
            slots,
            cursor: Sequence::new(),
            claim: CachePadded::new(AtomicU64::new(0)),
            consumers: (0..consumers).map(|_| Sequence::new()).collect(),
            laps: (0..consumers).map(|_| Sequence::new()).collect(),
            lap_tracked: (0..consumers).map(|_| AtomicBool::new(false)).collect(),
            sigs: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            active: (0..consumers).map(|_| AtomicBool::new(true)).collect(),
            claimed: (0..consumers).map(|_| AtomicBool::new(false)).collect(),
            strategy,
            mutex: Mutex::new(()),
            condvar: Condvar::new(),
            waiters: AtomicU64::new(0),
            producer_waits: AtomicU64::new(0),
            consumer_waits: AtomicU64::new(0),
        };
        Ok(RingBuffer {
            shared: Arc::new(shared),
        })
    }

    /// Creates a ring with the paper's default capacity of 256 events.
    ///
    /// # Errors
    ///
    /// Never fails in practice (256 is a power of two); the `Result` is kept
    /// for signature consistency with [`RingBuffer::new`].
    pub fn with_default_capacity(
        consumers: usize,
        strategy: WaitStrategy,
    ) -> Result<Self, RingError> {
        Self::new(256, consumers, strategy)
    }

    /// Returns a producer handle for publishing events into this ring.
    #[must_use]
    pub fn producer(self: &Arc<Self>) -> Producer<T> {
        Producer {
            shared: Arc::clone(&self.shared),
            cached_gate: AtomicU64::new(0),
            cached_reclaim: AtomicU64::new(0),
        }
    }

    /// Claims consumer slot `index` and returns its handle.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::InvalidConsumer`] if `index` is out of range and
    /// [`RingError::ConsumerAlreadyClaimed`] if the slot was already handed
    /// out.
    pub fn consumer(self: &Arc<Self>, index: usize) -> Result<Consumer<T>, RingError> {
        let claimed = self
            .shared
            .claimed
            .get(index)
            .ok_or(RingError::InvalidConsumer {
                index,
                consumers: self.shared.consumers.len(),
            })?;
        if claimed.swap(true, Ordering::AcqRel) {
            return Err(RingError::ConsumerAlreadyClaimed(index));
        }
        Ok(Consumer {
            shared: Arc::clone(&self.shared),
            index,
            next: 0,
        })
    }

    /// The ring capacity in events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// The number of consumer slots (live or retired).
    #[must_use]
    pub fn consumer_slots(&self) -> usize {
        self.shared.consumers.len()
    }

    /// Number of events published so far.
    #[must_use]
    pub fn published(&self) -> u64 {
        self.shared.cursor.count()
    }

    /// Snapshot of ring statistics.
    #[must_use]
    pub fn stats(&self) -> RingStats {
        RingStats {
            published: self.shared.cursor.count(),
            producer_waits: self.shared.producer_waits.load(Ordering::Relaxed),
            consumer_waits: self.shared.consumer_waits.load(Ordering::Relaxed),
        }
    }

    /// The number of events consumer `index` still has to process before it
    /// catches up with the leader ("log distance", §5.3).
    ///
    /// Returns `None` for out-of-range or retired consumers.
    #[must_use]
    pub fn backlog(&self, index: usize) -> Option<u64> {
        let seq = self.shared.consumers.get(index)?;
        if !self.shared.active.get(index)?.load(Ordering::Acquire) {
            return None;
        }
        Some(self.shared.cursor.count().saturating_sub(seq.count()))
    }
}

/// Whether the `VARAN_SIM_REVERT_GATE_FIX` fault-resurrection knob is set.
///
/// Read once per process (so a production environment that leaked the
/// variable cannot flip behaviour mid-run, and the no-consumer rescan path
/// costs an atomic load instead of an environment lookup) and announced
/// loudly on stderr: this deliberately resurrects a data-loss bug and must
/// only ever be set by the simulation harness's self-test.
fn gate_fix_reverted() -> bool {
    use std::sync::OnceLock;
    static REVERTED: OnceLock<bool> = OnceLock::new();
    *REVERTED.get_or_init(|| {
        let on = std::env::var_os("VARAN_SIM_REVERT_GATE_FIX").is_some();
        if on {
            eprintln!(
                "varan-ring: VARAN_SIM_REVERT_GATE_FIX is set — the PR-4 \
                 infinite-producer-gate bug is RESURRECTED for this process \
                 (simulation self-test only; never set in production)"
            );
        }
        on
    })
}

impl<T> Shared<T> {
    fn min_active_consumed(&self) -> u64 {
        let mut min = u64::MAX;
        let mut any = false;
        for (seq, active) in self.consumers.iter().zip(self.active.iter()) {
            if active.load(Ordering::Acquire) {
                any = true;
                min = min.min(seq.count());
            }
        }
        if any {
            min
        } else if gate_fix_reverted() {
            // Fault-resurrection knob for the simulator's self-test: the
            // pre-fix behaviour (an unbounded gate a producer may cache
            // forever, silently lapping any late-registering joiner).
            // `varan-sim`'s sweep must rediscover this bug whenever
            // `VARAN_SIM_REVERT_GATE_FIX` is set — the regression test
            // that the simulation harness itself still has teeth.
            u64::MAX
        } else {
            // No live consumers: nothing gates the producer *right now* —
            // but report the current cursor rather than infinity, so a
            // cached copy of this value can never authorise publishing more
            // than one lap past the cursor at the time it was taken.  That
            // bound is what makes mid-flight registration race-free
            // ([`Consumer::resume_at`]): a joiner that registers within a
            // lap of the cursor forces the producer to rescan (and observe
            // the new gate) before its slots could be overwritten.  With an
            // infinite cache, a producer running without followers would
            // never rescan and silently lap a late joiner.
            self.cursor.count()
        }
    }

    /// The number of leading sequences whose pool payloads may be recycled:
    /// every sequence below the returned count has been fully *replayed*
    /// (not merely consumed) by every live consumer.
    ///
    /// Lap-tracked consumers bound this by their lap counter; untracked
    /// consumers (which never hold pool borrows past their gate) bound it by
    /// their consumed sequence.  With no live consumers the count of the
    /// publication cursor is returned — the same discipline as
    /// [`Shared::min_active_consumed`]'s cached-gate bound, and for the same
    /// reason: a cached copy of this value must never authorise recycling a
    /// region published *after* the cache was taken, so a joiner that
    /// registers mid-publish ([`Consumer::resume_at`]) is protected as soon
    /// as the producer refreshes.  The `VARAN_SIM_REVERT_GATE_FIX` knob
    /// deliberately does not reach this path: resurrecting the gate bug must
    /// not also corrupt payload reclamation.
    fn min_reclaimable(&self) -> u64 {
        let mut min = u64::MAX;
        let mut any = false;
        for (index, active) in self.active.iter().enumerate() {
            if !active.load(Ordering::Acquire) {
                continue;
            }
            any = true;
            let bound = if self.lap_tracked[index].load(Ordering::Acquire) {
                self.laps[index].count()
            } else {
                self.consumers[index].count()
            };
            min = min.min(bound);
        }
        if any {
            min
        } else {
            self.cursor.count()
        }
    }

    fn wait(&self, spin_count: &mut u32) {
        match self.strategy {
            WaitStrategy::Spin => std::hint::spin_loop(),
            WaitStrategy::Yield => std::thread::yield_now(),
            WaitStrategy::Block => {
                // Re-check happens in the caller's loop; bounded wait avoids
                // missed wakeups turning into deadlocks (a notifier may read
                // the waiter count as zero in the instant before we block).
                self.waiters.fetch_add(1, Ordering::SeqCst);
                let mut guard = self.mutex.lock();
                self.condvar
                    .wait_for(&mut guard, Duration::from_micros(50));
                drop(guard);
                self.waiters.fetch_sub(1, Ordering::SeqCst);
            }
        }
        *spin_count = spin_count.saturating_add(1);
    }

    fn notify(&self) {
        // Uncontended fast path: a single relaxed-ish atomic load. The mutex
        // is only touched when a thread is actually parked on the condvar.
        if self.strategy == WaitStrategy::Block && self.waiters.load(Ordering::SeqCst) > 0 {
            let _guard = self.mutex.lock();
            self.condvar.notify_all();
        }
    }
}

/// Publishing side of a [`RingBuffer`]; held by the leader's monitor.
///
/// Cloning the producer is cheap; all clones publish into the same ring and
/// are safe to use from multiple leader threads (each process/thread tuple
/// normally has its own ring, §3.3.3, but the producer itself is also
/// multi-thread safe).
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Cached copy of the minimum gating sequence (a consumed-events count).
    /// Consumer sequences only move forward, so any claim below
    /// `cached_gate + capacity` is safe without rescanning every follower —
    /// the classic Disruptor optimisation that turns N acquire loads per
    /// publish into roughly one rescan per ring lap.  Per-handle (clones
    /// start cold), so no cross-producer cache-line traffic.
    cached_gate: AtomicU64,
    /// Cached copy of [`Shared::min_reclaimable`] — the lap-gated payload
    /// reclamation horizon.  Lap counters only move forward, so any pool
    /// region tied to a sequence below the cache is provably dead without
    /// rescanning; the leader refreshes it at most once per retirement pass
    /// ([`Producer::refresh_reclaim_horizon`]).  Starts at zero (nothing
    /// reclaimable) so clones are conservative until their first refresh.
    cached_reclaim: AtomicU64,
}

impl<T> Clone for Producer<T> {
    fn clone(&self) -> Self {
        Producer {
            shared: Arc::clone(&self.shared),
            cached_gate: AtomicU64::new(0),
            cached_reclaim: AtomicU64::new(0),
        }
    }
}

impl<T> fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Producer")
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}

impl<T: Copy + Default + Send + 'static> Producer<T> {
    /// Waits until slot `seq` may be written (every live follower has
    /// consumed the slot it overwrites), using the cached gating sequence to
    /// avoid rescanning the follower sequences on the fast path.
    fn wait_for_space(&self, seq: u64) {
        let shared = &*self.shared;
        let gate = self.cached_gate.load(Ordering::Relaxed);
        if seq < gate.saturating_add(shared.capacity as u64) {
            // Fast path: the cache already proves the slot is free. One
            // relaxed load, no follower rescan.
            return;
        }
        let slow_path_entered = if varan_obs::enabled() {
            Some(Instant::now())
        } else {
            None
        };
        let mut spins = 0u32;
        let mut waited = false;
        loop {
            let gate = shared.min_active_consumed();
            if seq < gate.saturating_add(shared.capacity as u64) {
                self.cached_gate.store(gate, Ordering::Relaxed);
                break;
            }
            waited = true;
            shared.wait(&mut spins);
        }
        if waited {
            shared.producer_waits.fetch_add(1, Ordering::Relaxed);
            // Publish→gate-advance latency: how long this publish stalled
            // behind the slowest follower.  Recorded only when an actual
            // wait happened, so the fast path stays a single relaxed load.
            if let (Some(started), Some(metrics)) = (slow_path_entered, varan_obs::hot()) {
                metrics
                    .publish_gate_wait_nanos
                    .record(started.elapsed().as_nanos() as u64);
            }
        }
    }

    /// Publishes slots `first..=last` in claim order: waits until every
    /// earlier claim is visible, then release-stores the new cursor.
    fn commit(&self, first: u64, last: u64) {
        let shared = &*self.shared;
        let mut spins = 0u32;
        while shared.cursor.get() != first.wrapping_sub(1) {
            shared.wait(&mut spins);
        }
        shared.cursor.set(last);
        shared.notify();
    }

    /// Publishes `value`, blocking (according to the ring's wait strategy)
    /// until a slot is free, and returns the sequence number it was assigned.
    pub fn publish(&self, value: T) -> u64 {
        let shared = &*self.shared;
        let seq = shared.claim.fetch_add(1, Ordering::AcqRel);
        // Wait for space: slot `seq` overwrites slot `seq - capacity`, which
        // must have been consumed by every live follower.
        self.wait_for_space(seq);
        let idx = (seq & shared.mask) as usize;
        shared.slots[idx].store(value);
        self.commit(seq, seq);
        if let Some(metrics) = varan_obs::hot() {
            metrics.ring_publishes.add(1);
        }
        seq
    }

    /// Publishes every value in `values` as one claim, amortising the claim
    /// `fetch_add`, the gating check and the cursor store over the whole
    /// batch, and returns the sequence assigned to the first value (`None`
    /// for an empty batch).
    ///
    /// # Panics
    ///
    /// Panics if `values` is longer than the ring capacity (the batch could
    /// never fit in flight at once).
    pub fn publish_batch(&self, values: &[T]) -> Option<u64> {
        let shared = &*self.shared;
        let n = values.len() as u64;
        if n == 0 {
            return None;
        }
        assert!(
            values.len() <= shared.capacity,
            "batch of {} events exceeds ring capacity {}",
            values.len(),
            shared.capacity
        );
        let first = shared.claim.fetch_add(n, Ordering::AcqRel);
        let last = first + (n - 1);
        self.wait_for_space(last);
        for (i, value) in values.iter().enumerate() {
            let idx = ((first + i as u64) & shared.mask) as usize;
            shared.slots[idx].store(*value);
        }
        self.commit(first, last);
        if let Some(metrics) = varan_obs::hot() {
            metrics.ring_publishes.add(1);
        }
        Some(first)
    }

    /// Publishes `value` together with its replay signature
    /// ([`crate::Event::signature`]-shaped), exactly like
    /// [`Producer::publish`] but also storing the signature into the
    /// per-slot signature lane before the cursor commit — so a consumer
    /// that can see the slot ([`Consumer::sig_at`]) also sees its
    /// signature, with no extra synchronisation.
    pub fn publish_signed(&self, value: T, sig: u64) -> u64 {
        let shared = &*self.shared;
        let seq = shared.claim.fetch_add(1, Ordering::AcqRel);
        self.wait_for_space(seq);
        let idx = (seq & shared.mask) as usize;
        shared.slots[idx].store(value);
        shared.sigs[idx].store(sig, Ordering::Relaxed);
        self.commit(seq, seq);
        if let Some(metrics) = varan_obs::hot() {
            metrics.ring_publishes.add(1);
        }
        seq
    }

    /// Publishes `values` as one claim together with their replay
    /// signatures (the batched form of [`Producer::publish_signed`]), and
    /// returns the sequence assigned to the first value (`None` for an
    /// empty batch).
    ///
    /// # Panics
    ///
    /// Panics if `values` is longer than the ring capacity or `sigs` has a
    /// different length than `values`.
    pub fn publish_batch_signed(&self, values: &[T], sigs: &[u64]) -> Option<u64> {
        let shared = &*self.shared;
        assert_eq!(
            values.len(),
            sigs.len(),
            "each published value needs exactly one signature"
        );
        let n = values.len() as u64;
        if n == 0 {
            return None;
        }
        assert!(
            values.len() <= shared.capacity,
            "batch of {} events exceeds ring capacity {}",
            values.len(),
            shared.capacity
        );
        let first = shared.claim.fetch_add(n, Ordering::AcqRel);
        let last = first + (n - 1);
        self.wait_for_space(last);
        for (i, (value, sig)) in values.iter().zip(sigs.iter()).enumerate() {
            let idx = ((first + i as u64) & shared.mask) as usize;
            shared.slots[idx].store(*value);
            shared.sigs[idx].store(*sig, Ordering::Relaxed);
        }
        self.commit(first, last);
        if let Some(metrics) = varan_obs::hot() {
            metrics.ring_publishes.add(1);
        }
        Some(first)
    }

    /// Attempts to publish without waiting for space.
    ///
    /// Returns `Ok(sequence)` on success or `Err(value)` (handing the value
    /// back) if the ring is full.  Used by the security-oriented unbuffered
    /// configuration discussed in §6.
    pub fn try_publish(&self, value: T) -> Result<u64, T> {
        let shared = &*self.shared;
        // Single check against the current claim; racy over-claiming is
        // avoided by doing a CAS on the claim counter.
        loop {
            let seq = shared.claim.load(Ordering::Acquire);
            let mut gate = self.cached_gate.load(Ordering::Relaxed);
            if seq >= gate.saturating_add(shared.capacity as u64) {
                // The cache is a lower bound on consumption; rescan before
                // declaring the ring full.
                gate = shared.min_active_consumed();
                self.cached_gate.store(gate, Ordering::Relaxed);
                if seq >= gate.saturating_add(shared.capacity as u64) {
                    return Err(value);
                }
            }
            if shared
                .claim
                .compare_exchange(seq, seq + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            let idx = (seq & shared.mask) as usize;
            shared.slots[idx].store(value);
            self.commit(seq, seq);
            if let Some(metrics) = varan_obs::hot() {
                metrics.ring_publishes.add(1);
            }
            return Ok(seq);
        }
    }

    /// Number of events published into the ring so far.
    #[must_use]
    pub fn published(&self) -> u64 {
        self.shared.cursor.count()
    }

    /// The gating sequence this handle last cached — the producer's own
    /// lower bound on its slowest live follower, refreshed only when the
    /// publish path runs out of cached headroom.  One relaxed load.
    #[must_use]
    pub fn cached_gate(&self) -> u64 {
        self.cached_gate.load(Ordering::Relaxed)
    }

    /// The lap-gated payload reclamation horizon this handle last cached:
    /// every sequence below the returned count has been fully replayed by
    /// every live consumer, so pool regions tied to those sequences are
    /// dead.  One relaxed load — reading the horizon never rescans.
    #[must_use]
    pub fn reclaim_horizon(&self) -> u64 {
        self.cached_reclaim.load(Ordering::Relaxed)
    }

    /// Rescans the consumer lap counters, refreshes the cached reclamation
    /// horizon and returns the new value.  The leader's payload-retirement
    /// pass calls this at most once per batch, when the cached horizon has
    /// run out of headroom — the same amortisation discipline as the
    /// publish gate cache.
    pub fn refresh_reclaim_horizon(&self) -> u64 {
        let horizon = self.shared.min_reclaimable();
        self.cached_reclaim.store(horizon, Ordering::Relaxed);
        horizon
    }

    /// Follower lag estimate in sequences, computed entirely from state the
    /// producer already maintains: `published - cached_gate`.  Two relaxed
    /// loads and a subtraction — reading lag never rescans the follower
    /// sequences, so it cannot perturb the hot path.  The estimate is an
    /// upper bound: the cached gate is refreshed lazily, so a quiet ring may
    /// report stale (too-large) lag until the next publish slow path.
    #[must_use]
    pub fn lag_estimate(&self) -> u64 {
        self.published().saturating_sub(self.cached_gate())
    }
}

/// Consuming side of a [`RingBuffer`]; held by a follower's monitor.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    index: usize,
    /// Next sequence this consumer expects to read.
    next: u64,
}

impl<T> fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Consumer")
            .field("index", &self.index)
            .field("next", &self.next)
            .finish()
    }
}

impl<T: Copy + Default + Send + 'static> Consumer<T> {
    /// The consumer slot index this handle was created for.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Returns the next event if one has been published, without blocking.
    pub fn try_next(&mut self) -> Option<T> {
        let shared = &*self.shared;
        if shared.cursor.count() <= self.next {
            return None;
        }
        let idx = (self.next & shared.mask) as usize;
        let value = shared.slots[idx].load();
        shared.consumers[self.index].set(self.next);
        shared.notify();
        self.next += 1;
        Some(value)
    }

    /// Copies every published event (up to `max`) into `out` **without**
    /// advancing the gating sequence, and returns how many were appended.
    ///
    /// The copied slots stay gated — the producer cannot overwrite them (nor
    /// release resources tied to them, like pool payload regions) until
    /// [`Consumer::advance`] acknowledges the batch.  Use the peek/advance
    /// pair when batch processing needs to read side data that lives only as
    /// long as the slot is unconsumed; use [`Consumer::try_next_batch`] when
    /// the events are self-contained.
    pub fn peek_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let shared = &*self.shared;
        let published = shared.cursor.count();
        if published <= self.next || max == 0 {
            return 0;
        }
        let available = (published - self.next).min(max as u64);
        out.reserve(available as usize);
        for i in 0..available {
            let idx = ((self.next + i) & shared.mask) as usize;
            out.push(shared.slots[idx].load());
        }
        available as usize
    }

    /// The replay signature stored alongside sequence `seq` by one of the
    /// signed publish paths ([`Producer::publish_signed`]).
    ///
    /// Only meaningful while `seq` is still gated by this consumer (at or
    /// above its lap counter when lap-gated, at or above its consumed
    /// sequence otherwise) and at or below the published cursor: outside
    /// that window the slot — and its signature lane — may have been
    /// recycled, and sequences published through the unsigned paths read
    /// back whatever signature last occupied the slot.
    #[must_use]
    pub fn sig_at(&self, seq: u64) -> u64 {
        let shared = &*self.shared;
        shared.sigs[(seq & shared.mask) as usize].load(Ordering::Relaxed)
    }

    /// Opts this consumer into lap-gated payload reclamation: from now on
    /// the producer's reclamation horizon ([`Producer::reclaim_horizon`])
    /// is bounded by this consumer's *lap* counter rather than its consumed
    /// sequence, so the consumer may advance its gate at peek time and keep
    /// borrowing pool payloads until it acknowledges the replay with
    /// [`Consumer::advance_lap_to`].
    ///
    /// The lap counter is initialised just below the next unread sequence
    /// (nothing this consumer has yet to replay can be reclaimed) before
    /// the tracking flag is released, so a producer rescan that observes
    /// the flag also observes the counter.
    pub fn enable_lap_gate(&mut self) {
        let shared = &*self.shared;
        shared.laps[self.index].set(self.next.wrapping_sub(1));
        shared.lap_tracked[self.index].store(true, Ordering::Release);
    }

    /// Acknowledges that every sequence below `next` has been fully
    /// replayed: pool regions tied to those sequences are no longer
    /// borrowed and may be recycled.  One release store per batch.
    ///
    /// # Panics
    ///
    /// Panics if `next` exceeds this consumer's consumed position — a
    /// replay cannot complete before its events were read.
    pub fn advance_lap_to(&mut self, next: u64) {
        assert!(
            next <= self.next,
            "cannot mark {next} replayed: only consumed up to {}",
            self.next
        );
        self.shared.laps[self.index].set(next.wrapping_sub(1));
    }

    /// The number of sequences this consumer has marked fully replayed
    /// ([`Consumer::advance_lap_to`]).
    #[must_use]
    pub fn lap(&self) -> u64 {
        self.shared.laps[self.index].count()
    }

    /// Acknowledges `count` events previously returned by
    /// [`Consumer::peek_batch`]: one release store of the gating sequence
    /// and one notification for the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the number of published-but-unconsumed
    /// events (acknowledging events that were never read would let the
    /// producer overwrite live slots).
    pub fn advance(&mut self, count: usize) {
        if count == 0 {
            return;
        }
        let shared = &*self.shared;
        let published = shared.cursor.count();
        assert!(
            count as u64 <= published - self.next,
            "cannot acknowledge {count} events: only {} published and unconsumed",
            published - self.next
        );
        self.next += count as u64;
        // One gating advance per batch: frees `count` slots for the
        // producer in a single release store.
        shared.consumers[self.index].set(self.next - 1);
        shared.notify();
    }

    /// Reads every published event (up to `max`) into `out`, advancing the
    /// gating sequence **once** for the whole batch, and returns how many
    /// events were appended.
    ///
    /// Compared to calling [`Consumer::try_next`] in a loop this performs a
    /// single acquire load of the cursor, a single release store of the
    /// gating sequence and a single notification, no matter how many events
    /// were pending — the batched-consumption optimisation of §3.3.1.
    pub fn try_next_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let taken = self.peek_batch(out, max);
        self.advance(taken);
        if taken > 0 {
            if let Some(metrics) = varan_obs::hot() {
                metrics.ring_consumes.add(1);
            }
        }
        taken
    }

    /// Waits (according to the ring's wait strategy) until at least one
    /// unconsumed event is published or `timeout` elapses, without consuming
    /// anything.  Returns `true` if an event is available.
    pub fn wait_for_published(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            if self.shared.cursor.count() > self.next {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            self.shared.wait(&mut spins);
        }
    }

    /// Reads **every** event published up to the cursor into `out`, advancing
    /// the gating sequence once, and returns how many events were appended.
    pub fn drain(&mut self, out: &mut Vec<T>) -> usize {
        self.try_next_batch(out, usize::MAX)
    }

    /// Blocks (according to the ring's wait strategy) until the next event is
    /// available and returns it.
    pub fn next_blocking(&mut self) -> T {
        let mut spins = 0u32;
        let mut waited = false;
        loop {
            if let Some(value) = self.try_next() {
                if waited {
                    self.shared.consumer_waits.fetch_add(1, Ordering::Relaxed);
                }
                return value;
            }
            waited = true;
            self.shared.wait(&mut spins);
        }
    }

    /// Blocks until the next event is available or `timeout` elapses.
    pub fn next_timeout(&mut self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            if let Some(value) = self.try_next() {
                return Some(value);
            }
            if Instant::now() >= deadline {
                return None;
            }
            self.shared.wait(&mut spins);
        }
    }

    /// Number of events this consumer has not yet processed.
    #[must_use]
    pub fn backlog(&self) -> u64 {
        self.shared.cursor.count().saturating_sub(self.next)
    }

    /// Sequence number of the next event this consumer will read.
    #[must_use]
    pub fn next_sequence(&self) -> u64 {
        self.next
    }

    /// Permanently retires this consumer so it no longer gates the producer.
    ///
    /// Used when a follower crashes or is discarded by the coordinator (§5.1).
    pub fn unsubscribe(&mut self) {
        self.shared.active[self.index].store(false, Ordering::Release);
        self.shared.notify();
    }

    /// Returns `true` while this consumer slot gates the producer.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.shared.active[self.index].load(Ordering::Acquire)
    }

    /// (Re)registers this consumer at sequence `next`: the gating sequence
    /// is placed just below `next` (so slots `next..` are protected from
    /// reuse) and the slot is marked active.
    ///
    /// This is the elastic-membership primitive: a **joining** follower that
    /// has been catching up from the spill journal calls this once its
    /// replay position is within one ring lap of the cursor, atomically
    /// transitioning from journal replay to live ring consumption; while
    /// still registered, it also calls this after every replayed journal
    /// batch so its gate keeps pace and the producer is never gated by more
    /// than the backlog it just cleared.
    ///
    /// Safety of mid-flight registration rests on two facts: a producer's
    /// cached gating minimum is always `<=` the published cursor, so a stale
    /// cache can only authorise overwriting slots *below* the cursor at the
    /// time the cache was taken — all of which the joiner reads from the
    /// journal, never the ring (the leader appends to the journal **before**
    /// publishing); and the gating sequence is release-stored before the
    /// slot is flipped active, so any rescan that observes the slot also
    /// observes its sequence.
    pub fn resume_at(&mut self, next: u64) {
        self.next = next;
        // `next == 0` wraps to the SEQUENCE_INITIAL sentinel, which is the
        // correct "nothing consumed yet" gate.  The lap counter is placed
        // alongside the gating sequence *before* the active flip for the
        // same reason the gate is: a producer rescan (of either the publish
        // gate or the reclamation horizon) that observes the slot active
        // must also observe both bounds, or reclamation could recycle a
        // payload the fresh joiner is about to replay.
        self.shared.consumers[self.index].set(next.wrapping_sub(1));
        self.shared.laps[self.index].set(next.wrapping_sub(1));
        self.shared.active[self.index].store(true, Ordering::Release);
        self.shared.notify();
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.active[self.index].store(false, Ordering::Release);
        self.shared.notify();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn rejects_bad_capacities() {
        assert_eq!(
            RingBuffer::<Event>::new(0, 1, WaitStrategy::Spin).unwrap_err(),
            RingError::ZeroCapacity
        );
        assert_eq!(
            RingBuffer::<Event>::new(6, 1, WaitStrategy::Spin).unwrap_err(),
            RingError::CapacityNotPowerOfTwo(6)
        );
    }

    #[test]
    fn default_capacity_matches_paper() {
        let ring = RingBuffer::<Event>::with_default_capacity(1, WaitStrategy::Spin).unwrap();
        assert_eq!(ring.capacity(), 256);
    }

    #[test]
    fn late_registration_gates_a_previously_ungated_producer() {
        // A ring whose only consumer slot is retired: the producer runs
        // ungated (and its gate cache goes stale) — the state of a
        // single-version execution before any runtime joiner attaches.
        let ring = Arc::new(RingBuffer::<Event>::new(16, 1, WaitStrategy::Yield).unwrap());
        let mut consumer = ring.consumer(0).unwrap();
        consumer.unsubscribe();
        let producer = ring.producer();
        for i in 0..100 {
            producer.publish(Event::checkpoint(i));
        }
        // A joiner registers at the cursor mid-flight.  The producer's
        // cached gate must not let it lap the fresh registration: after at
        // most one lap of further publishes it has to observe the gate and
        // report the ring full.
        let pos = ring.published();
        consumer.resume_at(pos);
        let mut accepted = 0u64;
        while producer.try_publish(Event::checkpoint(1000 + accepted)).is_ok() {
            accepted += 1;
            assert!(
                accepted <= 16,
                "producer lapped a registered consumer (gate never observed)"
            );
        }
        assert!(accepted > 0, "one lap of space is genuinely free");
        // Draining the backlog re-opens exactly the consumed space.
        let mut batch = Vec::new();
        let taken = consumer.try_next_batch(&mut batch, 4);
        assert_eq!(taken, 4);
        assert_eq!(
            batch[0].args()[0],
            1000,
            "the joiner reads from its registration point, nothing earlier"
        );
        for extra in 0..4 {
            assert!(producer.try_publish(Event::checkpoint(2000 + extra)).is_ok());
        }
        assert!(producer.try_publish(Event::checkpoint(9999)).is_err());
    }

    #[test]
    fn late_registration_bounds_a_previously_unbounded_reclaim_horizon() {
        // The lap-counter mirror of the gate-cache case above: a producer
        // running without live consumers caches a reclamation horizon equal
        // to the cursor, never infinity — so a lap-gated joiner that
        // registers mid-publish can only ever lose regions it replays from
        // the journal, not regions it will read from the pool.
        let ring = Arc::new(RingBuffer::<Event>::new(16, 1, WaitStrategy::Yield).unwrap());
        let mut consumer = ring.consumer(0).unwrap();
        consumer.unsubscribe();
        let producer = ring.producer();
        for i in 0..100 {
            producer.publish(Event::checkpoint(i));
        }
        // No live consumers: the horizon is the cursor, not u64::MAX.  A
        // cached copy of this value can never authorise recycling a region
        // published after the cache was taken.
        assert_eq!(producer.refresh_reclaim_horizon(), 100);
        // A joiner registers at the cursor mid-flight and opts into lap
        // gating before consuming anything.
        let pos = ring.published();
        consumer.resume_at(pos);
        consumer.enable_lap_gate();
        producer.publish(Event::checkpoint(100));
        // The refreshed horizon is now bounded by the joiner's lap counter:
        // the newly published sequence is not reclaimable even though the
        // joiner has not consumed (let alone replayed) it yet.
        assert_eq!(producer.refresh_reclaim_horizon(), pos);
        // Consuming alone does not move the horizon for a lap-gated
        // consumer — only completed replay does.
        let mut batch = Vec::new();
        assert_eq!(consumer.try_next_batch(&mut batch, usize::MAX), 1);
        assert_eq!(producer.refresh_reclaim_horizon(), pos);
        consumer.advance_lap_to(consumer.next_sequence());
        assert_eq!(producer.refresh_reclaim_horizon(), pos + 1);
    }

    #[test]
    fn signed_publishes_expose_signatures_while_gated() {
        let ring = Arc::new(RingBuffer::<Event>::new(8, 1, WaitStrategy::Spin).unwrap());
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();
        let events: Vec<Event> = (0..5u16).map(|i| Event::syscall(i, &[u64::from(i)], 0)).collect();
        let sigs: Vec<u64> = events.iter().map(Event::signature).collect();
        let first = producer.publish_signed(events[0], sigs[0]);
        assert_eq!(first, 0);
        assert_eq!(producer.publish_batch_signed(&events[1..], &sigs[1..]), Some(1));
        let mut batch = Vec::new();
        assert_eq!(consumer.peek_batch(&mut batch, usize::MAX), 5);
        for (i, event) in batch.iter().enumerate() {
            assert_eq!(consumer.sig_at(i as u64), event.signature());
        }
        consumer.advance(5);
    }

    #[test]
    fn untracked_consumers_bound_reclamation_by_their_gate() {
        // A consumer that never opts into lap gating (an observer, a bench)
        // bounds the horizon by its consumed sequence: strictly tighter
        // than the old publish-lap delay, so payload lifetime can only
        // shrink for existing consumers.
        let ring = Arc::new(RingBuffer::<Event>::new(8, 1, WaitStrategy::Spin).unwrap());
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();
        for i in 0..6 {
            producer.publish(Event::checkpoint(i));
        }
        assert_eq!(producer.refresh_reclaim_horizon(), 0);
        let mut batch = Vec::new();
        assert_eq!(consumer.try_next_batch(&mut batch, 4), 4);
        assert_eq!(producer.refresh_reclaim_horizon(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot mark")]
    fn lap_cannot_outrun_consumption() {
        let ring = Arc::new(RingBuffer::<Event>::new(4, 1, WaitStrategy::Spin).unwrap());
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();
        consumer.enable_lap_gate();
        producer.publish(Event::checkpoint(0));
        consumer.advance_lap_to(1);
    }

    #[test]
    fn single_consumer_receives_in_order() {
        let ring = Arc::new(RingBuffer::<Event>::new(8, 1, WaitStrategy::Yield).unwrap());
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();
        for i in 0..100u16 {
            producer.publish(Event::syscall(i, &[], i as i64));
            let event = consumer.next_blocking();
            assert_eq!(event.sysno(), i);
        }
        assert_eq!(ring.published(), 100);
    }

    #[test]
    fn consumer_slots_cannot_be_claimed_twice() {
        let ring = Arc::new(RingBuffer::<Event>::new(8, 1, WaitStrategy::Spin).unwrap());
        let _c = ring.consumer(0).unwrap();
        assert_eq!(
            ring.consumer(0).unwrap_err(),
            RingError::ConsumerAlreadyClaimed(0)
        );
        assert!(matches!(
            ring.consumer(3).unwrap_err(),
            RingError::InvalidConsumer { index: 3, .. }
        ));
    }

    #[test]
    fn try_publish_fails_when_full() {
        let ring = Arc::new(RingBuffer::<Event>::new(4, 1, WaitStrategy::Spin).unwrap());
        let producer = ring.producer();
        let _consumer = ring.consumer(0).unwrap();
        for i in 0..4 {
            assert!(producer.try_publish(Event::checkpoint(i)).is_ok());
        }
        assert!(producer.try_publish(Event::checkpoint(4)).is_err());
    }

    #[test]
    fn unsubscribed_consumer_stops_gating() {
        let ring = Arc::new(RingBuffer::<Event>::new(4, 1, WaitStrategy::Spin).unwrap());
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();
        consumer.unsubscribe();
        // Far more events than the capacity: would deadlock if the retired
        // consumer still gated the producer.
        for i in 0..64 {
            producer.publish(Event::checkpoint(i));
        }
        assert_eq!(ring.published(), 64);
        assert_eq!(ring.backlog(0), None);
    }

    #[test]
    fn two_follower_threads_see_identical_streams() {
        let ring = Arc::new(RingBuffer::<Event>::new(16, 2, WaitStrategy::Yield).unwrap());
        let producer = ring.producer();
        let total = 500u64;
        let mut handles = Vec::new();
        for slot in 0..2 {
            let mut consumer = ring.consumer(slot).unwrap();
            handles.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                for _ in 0..total {
                    seen.push(consumer.next_blocking().args()[0]);
                }
                seen
            }));
        }
        for i in 0..total {
            producer.publish(Event::checkpoint(i));
        }
        for handle in handles {
            let seen = handle.join().unwrap();
            let expected: Vec<u64> = (0..total).collect();
            assert_eq!(seen, expected);
        }
        let stats = ring.stats();
        assert_eq!(stats.published, total);
    }

    #[test]
    fn blocking_strategy_delivers() {
        let ring = Arc::new(RingBuffer::<Event>::new(8, 1, WaitStrategy::Block).unwrap());
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();
        let handle = std::thread::spawn(move || consumer.next_blocking());
        std::thread::sleep(Duration::from_millis(20));
        producer.publish(Event::exit(0));
        assert_eq!(handle.join().unwrap().kind(), crate::EventKind::Exit);
    }

    #[test]
    fn backlog_tracks_distance_between_leader_and_follower() {
        let ring = Arc::new(RingBuffer::<Event>::new(16, 1, WaitStrategy::Spin).unwrap());
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();
        for i in 0..6 {
            producer.publish(Event::checkpoint(i));
        }
        assert_eq!(ring.backlog(0), Some(6));
        assert_eq!(consumer.backlog(), 6);
        let _ = consumer.next_blocking();
        assert_eq!(ring.backlog(0), Some(5));
    }

    #[test]
    fn try_next_returns_none_when_empty() {
        let ring = Arc::new(RingBuffer::<Event>::new(4, 1, WaitStrategy::Spin).unwrap());
        let mut consumer = ring.consumer(0).unwrap();
        assert!(consumer.try_next().is_none());
        assert!(consumer
            .next_timeout(Duration::from_millis(5))
            .is_none());
    }

    #[test]
    fn batched_drain_advances_gating_and_frees_producer_space() {
        let ring = Arc::new(RingBuffer::<Event>::new(8, 1, WaitStrategy::Spin).unwrap());
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();
        // Fill the ring to capacity; the next publish cannot proceed.
        for i in 0..8 {
            assert!(producer.try_publish(Event::checkpoint(i)).is_ok());
        }
        assert!(producer.try_publish(Event::checkpoint(8)).is_err());
        // One drain advances the gating sequence once for the whole batch...
        let mut batch = Vec::new();
        assert_eq!(consumer.drain(&mut batch), 8);
        let ids: Vec<u64> = batch.iter().map(|e| e.args()[0]).collect();
        assert_eq!(ids, (0..8).collect::<Vec<u64>>());
        // ...which frees a full ring of producer space in one step.
        for i in 8..16 {
            assert!(
                producer.try_publish(Event::checkpoint(i)).is_ok(),
                "slot {i} should be free after the batched drain"
            );
        }
        assert!(producer.try_publish(Event::checkpoint(16)).is_err());
    }

    #[test]
    fn peeked_events_stay_gated_until_advanced() {
        let ring = Arc::new(RingBuffer::<Event>::new(4, 1, WaitStrategy::Spin).unwrap());
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();
        for i in 0..4 {
            producer.publish(Event::checkpoint(i));
        }
        let mut batch = Vec::new();
        assert_eq!(consumer.peek_batch(&mut batch, usize::MAX), 4);
        // Peeking must not release the slots: the producer is still gated.
        assert!(producer.try_publish(Event::checkpoint(4)).is_err());
        // Re-peeking returns the same events (nothing was consumed).
        let mut again = Vec::new();
        assert_eq!(consumer.peek_batch(&mut again, usize::MAX), 4);
        assert_eq!(batch, again);
        consumer.advance(4);
        assert!(producer.try_publish(Event::checkpoint(4)).is_ok());
        assert_eq!(consumer.next_sequence(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot acknowledge")]
    fn advancing_past_published_panics() {
        let ring = Arc::new(RingBuffer::<Event>::new(4, 1, WaitStrategy::Spin).unwrap());
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();
        producer.publish(Event::checkpoint(0));
        consumer.advance(2);
    }

    #[test]
    fn wait_for_published_times_out_and_detects_events() {
        let ring = Arc::new(RingBuffer::<Event>::new(4, 1, WaitStrategy::Yield).unwrap());
        let producer = ring.producer();
        let consumer = ring.consumer(0).unwrap();
        assert!(!consumer.wait_for_published(Duration::from_millis(5)));
        producer.publish(Event::checkpoint(0));
        assert!(consumer.wait_for_published(Duration::from_millis(5)));
    }

    #[test]
    fn try_next_batch_respects_max_and_order() {
        let ring = Arc::new(RingBuffer::<Event>::new(16, 1, WaitStrategy::Spin).unwrap());
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();
        for i in 0..10 {
            producer.publish(Event::checkpoint(i));
        }
        let mut batch = Vec::new();
        assert_eq!(consumer.try_next_batch(&mut batch, 4), 4);
        assert_eq!(consumer.try_next_batch(&mut batch, usize::MAX), 6);
        assert_eq!(consumer.try_next_batch(&mut batch, usize::MAX), 0);
        let ids: Vec<u64> = batch.iter().map(|e| e.args()[0]).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u64>>());
        assert_eq!(consumer.next_sequence(), 10);
    }

    #[test]
    fn publish_batch_assigns_contiguous_sequences() {
        let ring = Arc::new(RingBuffer::<Event>::new(16, 1, WaitStrategy::Yield).unwrap());
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();
        assert_eq!(producer.publish_batch(&[]), None);
        let events: Vec<Event> = (0..12).map(Event::checkpoint).collect();
        let handle = std::thread::spawn(move || {
            let mut seen = Vec::new();
            while seen.len() < 12 {
                let mut batch = Vec::new();
                consumer.try_next_batch(&mut batch, usize::MAX);
                seen.extend(batch.iter().map(|e| e.args()[0]));
            }
            seen
        });
        assert_eq!(producer.publish_batch(&events[..5]), Some(0));
        assert_eq!(producer.publish_batch(&events[5..]), Some(5));
        assert_eq!(handle.join().unwrap(), (0..12).collect::<Vec<u64>>());
        assert_eq!(ring.published(), 12);
    }

    #[test]
    fn publish_batch_blocks_until_consumers_free_space() {
        let ring = Arc::new(RingBuffer::<Event>::new(8, 1, WaitStrategy::Yield).unwrap());
        let producer = ring.producer();
        let mut consumer = ring.consumer(0).unwrap();
        let total = 64u64;
        let drain = std::thread::spawn(move || {
            let mut seen = Vec::new();
            while (seen.len() as u64) < total {
                let mut batch = Vec::new();
                consumer.try_next_batch(&mut batch, usize::MAX);
                seen.extend(batch.iter().map(|e| e.args()[0]));
                std::thread::yield_now();
            }
            seen
        });
        // Publish far more than the capacity in max-size batches; each batch
        // must wait for the drain thread to free space.
        for chunk in 0..(total / 8) {
            let events: Vec<Event> = (chunk * 8..(chunk + 1) * 8).map(Event::checkpoint).collect();
            producer.publish_batch(&events);
        }
        assert_eq!(drain.join().unwrap(), (0..total).collect::<Vec<u64>>());
    }

    #[test]
    fn multi_producer_publishes_are_all_delivered() {
        let ring = Arc::new(RingBuffer::<Event>::new(64, 1, WaitStrategy::Yield).unwrap());
        let mut consumer = ring.consumer(0).unwrap();
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let producer = ring.producer();
            producers.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    producer.publish(Event::checkpoint(p * 1000 + i));
                }
            }));
        }
        let mut seen = Vec::new();
        for _ in 0..400 {
            seen.push(consumer.next_blocking().args()[0]);
        }
        for handle in producers {
            handle.join().unwrap();
        }
        seen.sort_unstable();
        let mut expected: Vec<u64> = (0..4)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }
}
